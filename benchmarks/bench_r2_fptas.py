"""E6 — Algorithm 5 / Theorem 22: the FPTAS for R2|G=bipartite|Cmax.

Regenerates: the eps sweep (ratio vs the (1+eps) guarantee, runtime vs
1/eps) and the fidelity check between the paper's 2T-sentinel encoding and
native machine pinning.
"""

import time
from fractions import Fraction

import pytest

from repro.analysis.suites import random_r2_instance
from repro.analysis.tables import format_table
from repro.core.r2_fptas import r2_fptas
from repro.core.r2_reduction import reduce_r2
from repro.scheduling.dp_unrelated import solve_r2_dp

from benchmarks._common import emit_record, emit_table

EPS_SWEEP = (2, 1, Fraction(1, 2), Fraction(1, 5), Fraction(1, 20), Fraction(1, 100))


def exact_optimum(instance):
    red = reduce_r2(instance)
    rows = red.dummy_matrix()
    rows[0].extend([red.private_load_m1, None])
    rows[1].extend([None, red.private_load_m2])
    return solve_r2_dp(rows).makespan


def test_e6_eps_sweep(benchmark):
    def build():
        inst = random_r2_instance(160, edge_probability=0.05, seed=60)
        opt = exact_optimum(inst)
        rows = []
        for eps in EPS_SWEEP:
            t0 = time.perf_counter()
            s = r2_fptas(inst, eps=eps)
            dt = (time.perf_counter() - t0) * 1e3
            ratio = float(s.makespan / opt)
            assert s.makespan <= (1 + Fraction(eps)) * opt  # Theorem 22
            rows.append([str(eps), float(1 + Fraction(eps)), ratio, dt])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["eps", "guarantee", "measured ratio", "time (ms)"]
    emit_table(
        "E6_r2_fptas",
        format_table(
            cols,
            rows,
            title="E6 (Thm 22): Algorithm 5 accuracy/time trade-off",
        ),
    )
    emit_record("E6_r2_fptas", cols, rows)


def test_e6_sentinel_vs_pinned(benchmark):
    def build():
        rows = []
        for seed in range(6):
            inst = random_r2_instance(60, edge_probability=0.1, seed=100 + seed)
            opt = exact_optimum(inst)
            pinned = r2_fptas(inst, eps=Fraction(1, 3)).makespan
            sentinel = r2_fptas(
                inst, eps=Fraction(1, 3), use_sentinel_times=True
            ).makespan
            assert pinned <= Fraction(4, 3) * opt
            assert sentinel <= Fraction(4, 3) * opt
            rows.append([seed, float(opt), float(pinned), float(sentinel)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["seed", "optimum", "pinned jobs", "2T sentinel"]
    emit_table(
        "E6_sentinel_fidelity",
        format_table(
            cols,
            rows,
            title="E6: the paper's 2T sentinel encoding matches native pinning",
        ),
    )
    emit_record("E6_sentinel_fidelity", cols, rows)


@pytest.mark.parametrize("eps", [1, Fraction(1, 10)])
def test_e6_fptas_speed(benchmark, eps):
    inst = random_r2_instance(120, edge_probability=0.08, seed=61)
    s = benchmark(lambda: r2_fptas(inst, eps=eps))
    assert s.is_feasible()
