"""E1 — Theorem 4: the exact algorithm for Q2|G=bipartite, p_j=1|Cmax.

Regenerates: optimality cross-check of both split-feasibility methods
(the paper's FPTAS construction and the direct subset-sum) against brute
force, plus runtime scaling of the practical method.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.q2_unit_exact import q2_unit_exact
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import unit_uniform_instance

from benchmarks._common import emit_record, emit_table

SPEEDS = (Fraction(3), Fraction(2))


def make_instance(n_side: int, seed: int):
    graph = gnnp(n_side, 2.0 / n_side, seed=seed)
    return unit_uniform_instance(graph, SPEEDS)


def test_e1_table(benchmark):
    rows = []
    rng = np.random.default_rng(1)

    def build():
        out = []
        # oracle regime: compare against brute force
        for n_side in (3, 4, 5):
            inst = make_instance(n_side, seed=int(rng.integers(1 << 30)))
            sub = q2_unit_exact(inst, method="subset_sum").makespan
            fpt = q2_unit_exact(inst, method="fptas").makespan
            opt = brute_force_makespan(inst)
            assert sub == fpt == opt
            out.append([inst.n, "both vs brute force", float(opt), "exact match"])
        # self-consistency regime: the two methods at larger n
        for n_side in (20, 60, 150):
            inst = make_instance(n_side, seed=int(rng.integers(1 << 30)))
            sub = q2_unit_exact(inst, method="subset_sum").makespan
            out.append([inst.n, "subset_sum", float(sub), "reference"])
        return out

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["n jobs", "method", "optimum Cmax", "check"]
    emit_table(
        "E1_q2_exact",
        format_table(
            cols,
            rows,
            title="E1 (Theorem 4): exact Q2 unit-job algorithm",
        ),
    )
    emit_record("E1_q2_exact", cols, rows)


@pytest.mark.parametrize("n_side", [25, 100, 300])
def test_e1_subset_sum_speed(benchmark, n_side):
    inst = make_instance(n_side, seed=7)
    result = benchmark(lambda: q2_unit_exact(inst, method="subset_sum"))
    assert result.is_feasible()


def test_e1_paper_fptas_method_speed(benchmark):
    inst = make_instance(12, seed=9)
    result = benchmark.pedantic(
        lambda: q2_unit_exact(inst, method="fptas"), rounds=1, iterations=1
    )
    assert result.is_feasible()
