"""E10 — unrelated workload families (repro.workloads): R-algorithms head-to-head.

Sweeps the named ``p_ij`` models (``uniform_pij``, ``correlated``,
``restricted_assignment``, ``two_value``; plus the Theorem 24
``hardness_r`` geometry at ``m = 3``) across graph families and drives
``r2_two_approx`` / ``r2_fptas`` / ``lst`` / ``r_color_split``
head-to-head through the batch engine.  Ratios are against the exact
unrelated lower bound, aggregated per (model, algorithm) by
:func:`repro.analysis.suites.summarize_models`.

Set ``REPRO_BENCH_SMOKE=1`` for the CI smoke shape (tiny ``n``, one
seed) — the point of that run is that the R-pipeline (workloads ->
specs/tasks -> runner -> aggregation) cannot silently rot, not the
numbers.
"""

import os

from repro.analysis.suites import (
    model_ratio_table,
    summarize_models,
    unrelated_workload_suite,
)
from repro.io import instance_to_dict
from repro.runtime import BatchTask

from benchmarks._common import emit_record, emit_table, run_batch

MODEL_COLS = [
    "model", "algorithm", "count", "cached", "errors", "mean ratio",
    "worst ratio", "solve time (ms)",
]

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N = 6 if SMOKE else 16
SEEDS = 1 if SMOKE else 3
FAMILIES = ("gnnp", "path") if SMOKE else ("gnnp", "path", "crown")

R2_ALGORITHMS = ("r2_two_approx", "r2_fptas", "lst", "r_color_split")
RM_ALGORITHMS = ("lst", "r_color_split")


def _tasks(suite, algorithms):
    return [
        BatchTask(name, instance_to_dict(inst), algorithm)
        for name, inst in suite
        for algorithm in algorithms
    ]


def test_e10_r2_model_families(benchmark):
    """The four p_ij models on two machines: every R2 method applies."""

    def build():
        suite = unrelated_workload_suite(
            n=N, m=2, graph_families=FAMILIES, seeds=SEEDS, seed=0
        )
        return run_batch(_tasks(suite, R2_ALGORITHMS))

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    assert results and all(r.error is None for r in results)
    # the exact lower bound is genuine: no method lands below it
    assert all(r.ratio is None or r.ratio >= 1.0 for r in results)
    rows = summarize_models(results)
    assert {row[0] for row in rows} == {
        "uniform_pij", "correlated", "restricted_assignment", "two_value"
    }
    emit_table(
        "E10_unrelated_families",
        model_ratio_table(
            results,
            title="E10: unrelated workload models x R2 algorithms "
            "(ratio vs exact R lower bound)",
        ),
    )
    emit_record(
        "E10_unrelated_families", MODEL_COLS, rows,
        notes=f"n={N}, seeds={SEEDS}, smoke={SMOKE}",
    )


def test_e10_hardness_r_families(benchmark):
    """Theorem 24 geometry at m = 3: only the graph-blind/fallback methods
    apply, and the adversarial gap shows up as large ratios."""

    def build():
        suite = unrelated_workload_suite(
            n=max(N, 6),
            m=3,
            models=("hardness_r",),
            graph_families=FAMILIES,
            seeds=SEEDS,
            seed=0,
        )
        return run_batch(_tasks(suite, RM_ALGORITHMS))

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    assert results and all(r.error is None for r in results)
    split = [r for r in results if r.chosen == "r_color_split"]
    assert split and all(r.feasible for r in split)
    emit_table(
        "E10_hardness_r",
        model_ratio_table(
            results,
            title="E10 (Thm 24 context): hardness_r instances, m = 3",
        ),
    )
    emit_record(
        "E10_hardness_r", MODEL_COLS, summarize_models(results),
        notes=f"n={max(N, 6)}, seeds={SEEDS}, smoke={SMOKE}",
    )
