"""E5 — Algorithm 4 / Theorem 21: 2-approximation on two unrelated machines.

Regenerates: measured ratio vs the exact DP optimum across instance sizes
and conflict densities, plus the O(n) runtime scaling claim.
"""

import numpy as np
import pytest

from repro.analysis.ratio import collect_ratio_stats
from repro.analysis.suites import random_r2_instance
from repro.analysis.tables import format_table
from repro.core.r2_fptas import r2_fptas
from repro.core.r2_reduction import reduce_r2
from repro.core.r2_two_approx import r2_two_approx
from repro.scheduling.dp_unrelated import solve_r2_dp

from benchmarks._common import emit_record, emit_table


def exact_optimum(instance):
    """Exact optimum via Algorithm 3 + untrimmed DP on the components."""
    red = reduce_r2(instance)
    rows = red.dummy_matrix()
    rows[0].extend([red.private_load_m1, None])
    rows[1].extend([None, red.private_load_m2])
    return solve_r2_dp(rows).makespan


def test_e5_ratio_table(benchmark):
    def build():
        rows = []
        rng = np.random.default_rng(50)
        for n in (20, 60, 150):
            for density in (0.05, 0.2, 0.5):
                ratios = []
                for _ in range(6):
                    inst = random_r2_instance(
                        n, edge_probability=density, seed=int(rng.integers(1 << 30))
                    )
                    s = r2_two_approx(inst)
                    opt = exact_optimum(inst)
                    ratio = float(s.makespan / opt)
                    assert s.makespan <= 2 * opt  # Theorem 21
                    ratios.append(ratio)
                stats = collect_ratio_stats(ratios)
                rows.append([n, density, stats.mean, stats.maximum])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["n jobs", "edge density", "mean ratio", "max ratio"]
    emit_table(
        "E5_r2_two_approx",
        format_table(
            cols,
            rows,
            title="E5 (Thm 21): Algorithm 4 vs exact optimum (bound: 2)",
        ),
    )
    emit_record("E5_r2_two_approx", cols, rows)


@pytest.mark.parametrize("n", [50, 200, 800, 3200])
def test_e5_linear_time_scaling(benchmark, n):
    """Theorem 21 claims O(n); the per-size medians should scale ~linearly."""
    inst = random_r2_instance(n, edge_probability=min(0.2, 20.0 / n), seed=51)
    s = benchmark(lambda: r2_two_approx(inst))
    assert s.is_feasible()
