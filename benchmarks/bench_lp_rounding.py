"""E12 — the Lenstra–Shmoys–Tardos baseline ([18]) on unrelated machines.

Regenerates: (a) the certified ratio ``Cmax / T*`` of LP rounding on
graph-free ``R`` instances, confirming the factor-2 shape of [18];
(b) the price-of-incompatibility table on ``R2``: LST (graph-blind)
versus the paper's Algorithm 4 / Algorithm 5, which respect the graph.
"""

import numpy as np
import pytest

from repro.analysis.suites import random_r2_instance
from repro.analysis.tables import format_table
from repro.core.r2_fptas import r2_fptas
from repro.core.r2_two_approx import r2_two_approx
from repro.graphs.generators import empty_graph
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UnrelatedInstance
from repro.scheduling.lp_rounding import lst_two_approx

from benchmarks._common import emit_record, emit_table


def _graph_free_r(n, m, seed, high=30):
    rng = np.random.default_rng(seed)
    times = rng.integers(1, high, size=(m, n)).tolist()
    return UnrelatedInstance(empty_graph(n), times)


def test_e12_certified_factor_two(benchmark):
    def build():
        rows = []
        worst = 0.0
        for n, m in [(8, 2), (12, 3), (16, 4), (24, 4), (30, 5)]:
            ratios = []
            for seed in range(5):
                inst = _graph_free_r(n, m, seed=1000 * n + seed)
                result = lst_two_approx(inst)
                ratios.append(result.certified_ratio)
            rows.append(
                [n, m, float(np.mean(ratios)), float(np.max(ratios))]
            )
            worst = max(worst, max(ratios))
        return rows, worst

    rows, worst = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["n", "m", "mean Cmax/T*", "max"]
    emit_table(
        "E12_lst_certified",
        format_table(
            cols,
            rows,
            title="E12: LST rounding, certified ratio vs the LP deadline",
        ),
    )
    emit_record("E12_lst_certified", cols, rows)
    # shape: [18] guarantees a factor 2 (plus search tolerance)
    assert worst <= 2.0 + 1e-6


def test_e12_price_of_incompatibility_r2(benchmark):
    """Against the exact constrained optimum, LST shows what ignoring the
    graph would cost (or illegally save)."""

    def build():
        rows = []
        for seed in range(6):
            inst = random_r2_instance(n=12, seed=200 + seed)
            opt = brute_force_makespan(inst)
            lst = lst_two_approx(inst)
            alg4 = r2_two_approx(inst)
            alg5 = r2_fptas(inst, eps="1/10")
            rows.append(
                [
                    seed,
                    float(opt),
                    float(alg4.makespan / opt),
                    float(alg5.makespan / opt),
                    float(lst.schedule.makespan / opt),
                    lst.schedule.is_feasible(),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["seed", "opt Cmax", "Alg4/opt", "Alg5/opt", "LST/opt", "LST feasible"]
    emit_table(
        "E12_r2_price_of_incompatibility",
        format_table(
            cols,
            rows,
            title="E12: graph-respecting algorithms vs graph-blind LST on R2",
        ),
    )
    emit_record("E12_r2_price_of_incompatibility", cols, rows)
    # shape: the paper's guarantees hold against the exact optimum
    for row in rows:
        assert row[2] <= 2.0 + 1e-9      # Algorithm 4 is 2-approximate
        assert row[3] <= 1.1 + 1e-9      # Algorithm 5 at eps = 1/10


@pytest.mark.parametrize("n", [10, 20, 40])
def test_e12_lst_speed(benchmark, n):
    inst = _graph_free_r(n, 3, seed=n)
    result = benchmark.pedantic(
        lambda: lst_two_approx(inst), rounds=2, iterations=1
    )
    assert result.certified_ratio <= 2.0 + 1e-6
