"""E10 — Lemma 10: runtime scaling of Algorithm 1 and its components.

The paper claims ``O(|J|^2 + |J||E| + |M| log |M|)``.  This harness times
the three dominant pieces (heavy-set screening + max-weight independent
set via flow, inequitable coloring, C**max computation) and the whole
algorithm across a size sweep; pytest-benchmark's per-size medians expose
the growth rate.
"""

import os

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.graphs.coloring import inequitable_two_coloring
from repro.graphs.independent_set import max_weight_independent_set
from repro.machines.profiles import power_law_speeds
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.bounds import uniform_capacity_lower_bound
from repro.scheduling.instance import UniformInstance

from benchmarks._common import emit_record, emit_table, run_batch

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
GROWTH_SIZES = (50, 100) if SMOKE else (50, 100, 200, 400, 800)


def make_instance(n_side: int, m: int, seed: int) -> UniformInstance:
    graph = gnnp(n_side, 3.0 / n_side, seed=seed)
    rng = np.random.default_rng(seed)
    p = [int(x) for x in rng.integers(1, 15, graph.n)]
    return UniformInstance(graph, p, power_law_speeds(m))


@pytest.mark.parametrize("n_side", [50, 100, 200, 400])
def test_e10_full_algorithm(benchmark, n_side):
    inst = make_instance(n_side, 8, seed=100)
    res = benchmark(lambda: sqrt_approx_schedule(inst, s1_solver="two_approx"))
    assert res.schedule.is_feasible()


@pytest.mark.parametrize("n_side", [100, 400, 1600])
def test_e10_mwis_component(benchmark, n_side):
    inst = make_instance(n_side, 4, seed=101)
    s = benchmark(lambda: max_weight_independent_set(inst.graph, inst.p))
    assert inst.graph.is_independent_set(s)


@pytest.mark.parametrize("n_side", [100, 400, 1600])
def test_e10_coloring_component(benchmark, n_side):
    inst = make_instance(n_side, 4, seed=102)
    c1, c2 = benchmark(lambda: inequitable_two_coloring(inst.graph, inst.p))
    assert len(c1) + len(c2) == inst.n


@pytest.mark.parametrize("m", [8, 64, 512])
def test_e10_capacity_bound_component(benchmark, m):
    inst = make_instance(100, m, seed=103)
    bound = benchmark(lambda: uniform_capacity_lower_bound(inst, inst.total_p // 2))
    assert bound > 0


def test_e10_growth_table(benchmark):
    """One-shot wall-clock growth table (medians are in the benchmark
    output; this table gives the at-a-glance shape).  Timing comes from
    the batch engine's per-solve wall clock and measures the registry's
    ``sqrt_approx`` route (``s1_solver="fptas"``, the paper's choice —
    what ``solve()`` users actually get); the parametrized
    ``test_e10_full_algorithm`` medians above keep covering the
    ``two_approx`` variant."""

    def build():
        instances = [
            make_instance(n_side, 8, seed=104) for n_side in GROWTH_SIZES
        ]
        results = run_batch(instances, algorithm="sqrt_approx")
        return [
            [inst.n, inst.graph.edge_count, rec.wall_time_s * 1e3]
            for inst, rec in zip(instances, results)
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    # sanity on the growth shape: 16x jobs should cost far less than
    # the naive cubic blowup (4096x); allow generous noise
    t_small, t_big = rows[0][2], rows[-1][2]
    assert t_big < t_small * 1500
    cols = ["n jobs", "|E|", "Algorithm 1 time (ms)"]
    emit_table(
        "E10_scaling",
        format_table(
            cols,
            rows,
            title="E10 (Lemma 10): Algorithm 1 wall-clock growth",
        ),
    )
    emit_record("E10_scaling", cols, rows, notes=f"smoke={SMOKE}")
