"""E18 — local-search polishing on top of the paper's algorithms.

Regenerates: a table of makespan ratios before/after polishing for
Algorithm 1, the BJW baseline and the trivial two-machine split.  The
guarantees carry over (polishing never regresses); the table shows how
much constant-factor slack each algorithm leaves in practice.
"""

import numpy as np
import pytest

from repro.analysis.suites import standard_uniform_suite
from repro.analysis.tables import format_table
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.scheduling.baselines import bjw_identical_approx, two_machine_split
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.local_search import improve_schedule

from benchmarks._common import emit_record, emit_table


def test_e18_polish_table(benchmark):
    def build():
        suite = [
            inst
            for _, inst in standard_uniform_suite(
                n=18, m=4, weight_kind="uniform", seed=180
            )
        ]
        algorithms = {
            "alg1": lambda inst: sqrt_approx_schedule(
                inst, s1_solver="two_approx"
            ).schedule,
            "split2": two_machine_split,
            "bjw": lambda inst: (
                bjw_identical_approx(inst) if inst.is_identical else None
            ),
        }
        rows = []
        for name, run in algorithms.items():
            before, after, steps = [], [], 0
            for inst in suite:
                schedule = run(inst)
                if schedule is None:
                    continue
                lower = min_cover_time(inst.speeds, inst.total_p)
                if lower == 0:
                    continue
                polished = improve_schedule(schedule)
                assert polished.schedule.makespan <= schedule.makespan
                before.append(float(schedule.makespan / lower))
                after.append(float(polished.schedule.makespan / lower))
                steps += polished.moves + polished.swaps
            rows.append(
                [
                    name,
                    len(before),
                    float(np.mean(before)),
                    float(np.mean(after)),
                    float(np.mean(before) / np.mean(after)),
                    steps,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["algorithm", "instances", "mean ratio", "polished", "gain", "steps"]
    emit_table(
        "E18_local_search",
        format_table(
            cols,
            rows,
            title="E18: local-search polishing on the standard uniform suite",
        ),
    )
    emit_record("E18_local_search", cols, rows)
    # shape: polishing never regresses, and the sloppy baseline (split2)
    # gains the most
    gains = {row[0]: row[4] for row in rows}
    for gain in gains.values():
        assert gain >= 1.0 - 1e-9
    assert gains["split2"] >= gains["alg1"] - 1e-9


@pytest.mark.parametrize("n", [20, 60])
def test_e18_polish_speed(benchmark, n):
    from repro.machines.profiles import geometric_speeds
    from repro.random_graphs.gilbert import gnnp
    from repro.scheduling.instance import unit_uniform_instance

    graph = gnnp(n // 2, 2.0 / n, seed=n)
    inst = unit_uniform_instance(graph, geometric_speeds(4))
    start = two_machine_split(inst)
    result = benchmark(lambda: improve_schedule(start))
    assert result.schedule.makespan <= start.makespan
