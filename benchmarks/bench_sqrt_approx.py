"""E2 — Algorithm 1 / Theorem 9: ratio of the sqrt(sum p_j)-approximation.

Regenerates: measured ratio (vs exact C**max lower bound; vs brute-force
optimum at oracle sizes) per graph family and speed profile, against the
theoretical sqrt(sum p_j) envelope.
"""

import math

import numpy as np
import pytest

from repro.analysis.ratio import collect_ratio_stats
from repro.analysis.suites import (
    job_weight_profile,
    speed_profile_suite,
    standard_graph_families,
)
from repro.analysis.tables import format_table
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance

from benchmarks._common import emit_record, emit_table

from tests.conftest import random_uniform_instance


def test_e2_family_table(benchmark):
    def build():
        rows = []
        rng = np.random.default_rng(2)
        for gname, graph in standard_graph_families(24, seed=3):
            p = job_weight_profile(graph.n, "uniform", seed=rng)
            for sname, speeds in speed_profile_suite(5, seed=rng):
                inst = UniformInstance(graph, p, speeds)
                res = sqrt_approx_schedule(inst, s1_solver="two_approx")
                lower = res.capacity_bound or min_cover_time(
                    inst.speeds, inst.total_p
                )
                ratio = float(res.schedule.makespan / lower)
                envelope = math.sqrt(inst.total_p)
                assert res.schedule.is_feasible()
                rows.append([gname, sname, res.chosen, ratio, envelope])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    worst = max(r[3] for r in rows)
    cols = ["graph", "speeds", "chosen", "Cmax/C**", "sqrt(sum p)"]
    emit_table(
        "E2_sqrt_approx_families",
        format_table(
            cols,
            rows,
            title=(
                "E2 (Thm 9): Algorithm 1 measured ratio vs capacity bound "
                f"(worst {worst:.2f}, all far below the envelope)"
            ),
        ),
    )
    emit_record("E2_sqrt_approx_families", cols, rows)


def test_e2_exact_ratio_small(benchmark):
    """Oracle-size run: ratio vs the true optimum."""

    def build():
        rng = np.random.default_rng(4)
        ratios = []
        for _ in range(25):
            inst = random_uniform_instance(rng, max_jobs=8, max_machines=4)
            res = sqrt_approx_schedule(inst)
            opt = brute_force_makespan(inst)
            ratios.append(float(res.schedule.makespan / opt))
            assert res.schedule.makespan**2 <= inst.total_p * opt**2
        return collect_ratio_stats(ratios)

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["instances", "mean ratio", "min", "max"]
    rows = [[stats.count, stats.mean, stats.minimum, stats.maximum]]
    emit_table(
        "E2_sqrt_approx_exact",
        format_table(
            cols,
            rows,
            title="E2 (Thm 9): Algorithm 1 vs exact optimum (oracle sizes)",
        ),
    )
    emit_record("E2_sqrt_approx_exact", cols, rows)
    assert stats.maximum < 2.5  # empirically far below the sqrt envelope


@pytest.mark.parametrize("n", [40, 120])
def test_e2_algorithm1_speed(benchmark, n):
    rng = np.random.default_rng(5)
    from repro.random_graphs.gilbert import gnnp

    graph = gnnp(n // 2, 3.0 / n, seed=rng)
    p = job_weight_profile(graph.n, "uniform", seed=rng)
    inst = UniformInstance(graph, p, speed_profile_suite(6, seed=rng)[1][1])
    res = benchmark(lambda: sqrt_approx_schedule(inst, s1_solver="two_approx"))
    assert res.schedule.is_feasible()
