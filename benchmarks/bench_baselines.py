"""E9 — cross-cutting comparison: the paper's algorithms vs baselines.

Regenerates: one table per machine environment comparing, on a shared
suite, Algorithm 1 against the [3]-style identical-machine 2-approximation,
the graph-aware greedy heuristic (which can fail), the trivial two-machine
split, and the infeasible graph-free LPT (the "price of incompatibility"
reference point).
"""

import numpy as np
import pytest

from repro.analysis.suites import standard_uniform_suite
from repro.analysis.tables import format_table
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.scheduling.baselines import (
    bjw_identical_approx,
    two_machine_split,
    unconstrained_lpt,
)
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.list_scheduling import graph_aware_greedy

from benchmarks._common import emit_record, emit_table


def test_e9_uniform_comparison(benchmark):
    def build():
        suite = standard_uniform_suite(n=20, m=4, weight_kind="uniform", seed=90)
        totals = {"alg1": [], "greedy": [], "split2": [], "lpt_free": []}
        greedy_failures = 0
        for _, inst in suite:
            lower = min_cover_time(inst.speeds, inst.total_p)
            if lower == 0:
                continue
            res = sqrt_approx_schedule(inst, s1_solver="two_approx")
            totals["alg1"].append(float(res.schedule.makespan / lower))
            g = graph_aware_greedy(inst)
            if g is None:
                greedy_failures += 1
            else:
                totals["greedy"].append(float(g.makespan / lower))
            totals["split2"].append(float(two_machine_split(inst).makespan / lower))
            totals["lpt_free"].append(float(unconstrained_lpt(inst).makespan / lower))
        rows = [
            [name, len(vals), float(np.mean(vals)), float(np.max(vals))]
            for name, vals in totals.items()
        ]
        rows.append(["greedy (failed)", greedy_failures, "-", "-"])
        return rows, totals

    (rows, totals) = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["algorithm", "instances", "mean Cmax/C**", "max"]
    emit_table(
        "E9_uniform_comparison",
        format_table(
            cols,
            rows,
            title="E9: algorithms vs baselines on the standard uniform suite",
        ),
    )
    emit_record("E9_uniform_comparison", cols, rows)
    # shape: Algorithm 1 dominates the trivial two-machine split on average
    assert np.mean(totals["alg1"]) <= np.mean(totals["split2"]) + 1e-9


def test_e9_identical_machines(benchmark):
    """On identical machines the [3] baseline and Algorithm 1 both carry a
    2-approx style guarantee; compare them head to head."""

    def build():
        suite = standard_uniform_suite(n=20, m=4, weight_kind="uniform", seed=91)
        rows = []
        a1_vals, bjw_vals = [], []
        for name, inst in suite:
            if not inst.is_identical:
                continue
            lower = min_cover_time(inst.speeds, inst.total_p)
            if lower == 0:
                continue
            a1 = sqrt_approx_schedule(inst, s1_solver="two_approx").schedule
            bw = bjw_identical_approx(inst)
            a1_vals.append(float(a1.makespan / lower))
            bjw_vals.append(float(bw.makespan / lower))
            rows.append([name, a1_vals[-1], bjw_vals[-1]])
        rows.append(["MEAN", float(np.mean(a1_vals)), float(np.mean(bjw_vals))])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["instance", "Alg 1 ratio", "BJW [3] ratio"]
    emit_table(
        "E9_identical_comparison",
        format_table(
            cols,
            rows,
            title="E9: Algorithm 1 vs the [3] 2-approx on identical machines",
        ),
    )
    emit_record("E9_identical_comparison", cols, rows)


@pytest.mark.parametrize(
    "weight_kind", ["unit", "uniform", "heavy_tailed", "one_giant"]
)
def test_e9_weight_profiles(benchmark, weight_kind):
    """Algorithm 1 across job-size distributions (heavy tails stress the
    independent-set step; 'one_giant' stresses the p_max condition)."""

    def build():
        suite = standard_uniform_suite(n=18, m=4, weight_kind=weight_kind, seed=92)
        ratios = []
        for _, inst in suite:
            lower = min_cover_time(inst.speeds, inst.total_p)
            if lower == 0:
                continue
            res = sqrt_approx_schedule(inst, s1_solver="two_approx")
            ratios.append(float(res.schedule.makespan / lower))
        return ratios

    ratios = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["weight profile", "instances", "mean ratio", "max ratio"]
    rows = [[weight_kind, len(ratios), float(np.mean(ratios)), float(np.max(ratios))]]
    emit_table(
        f"E9_weights_{weight_kind}",
        format_table(
            cols,
            rows,
            title="E9: Algorithm 1 vs C** across job-size distributions",
        ),
    )
    emit_record(f"E9_weights_{weight_kind}", cols, rows)
