"""E7 — Theorem 8: the YES/NO makespan gap of the Qm reduction.

Regenerates:

* the k-sweep of the certified gap (``no_bound / yes_bound``) on faithful
  paper-sized instances, with the YES-side schedule constructed from an
  actual coloring extension;
* the exact verification on small-scale NO instances (brute force);
* the capacity-bound blindness: C**max stays near the YES level on NO
  instances, showing why no capacity argument can see the gap the
  reduction certifies (the whole point of the inapproximability proof).
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.graphs.precoloring import claw_no_instance, planted_yes_instance, solve_prext
from repro.hardness.q_reduction import theorem8_reduction
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.brute_force import brute_force_makespan

from benchmarks._common import emit_record, emit_table


def test_e7_k_sweep(benchmark):
    def build():
        prext = planted_yes_instance(6, seed=70)
        coloring = solve_prext(prext)
        assert coloring is not None
        rows = []
        for k in (1, 2, 3, 5):
            q = theorem8_reduction(prext, k=k)
            s = q.schedule_from_extension(coloring)
            assert s.is_feasible()
            assert s.makespan <= q.yes_makespan_bound
            rows.append(
                [
                    k,
                    q.instance.n,
                    float(s.makespan),
                    float(q.yes_makespan_bound),
                    float(q.no_makespan_lower_bound),
                    float(q.gap),
                ]
            )
        # the certified gap must grow with k (this is what defeats any
        # O(n^{1/2-eps}) approximation after choosing k large enough)
        gaps = [r[-1] for r in rows]
        assert gaps == sorted(gaps) and gaps[-1] > gaps[0]
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["k", "n' jobs", "YES Cmax", "YES bound", "NO bound", "gap"]
    emit_table(
        "E7_theorem8_gap",
        format_table(
            cols,
            rows,
            title="E7 (Thm 8): YES/NO separation of the Qm reduction",
        ),
    )
    emit_record("E7_theorem8_gap", cols, rows)


def test_e7_no_side_exact(benchmark):
    def build():
        rows = []
        no = claw_no_instance()
        assert solve_prext(no) is None
        for sizes in ((1, 1, 1), (2, 1, 1), (2, 2, 1)):
            q = theorem8_reduction(no, k=1, gadget_sizes=sizes)
            opt = brute_force_makespan(q.instance)
            assert opt >= q.no_makespan_lower_bound
            rows.append(
                [str(sizes), q.instance.n, float(opt), float(q.no_makespan_lower_bound)]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["gadget sizes", "n'", "exact optimum", "certified bound"]
    emit_table(
        "E7_no_side_exact",
        format_table(
            cols,
            rows,
            title="E7 (Thm 8): exhaustive NO-side verification (claw seed)",
        ),
    )
    emit_record("E7_no_side_exact", cols, rows)


def test_e7_capacity_bound_blindness(benchmark):
    """C**max cannot distinguish YES from NO — only the coloring can."""

    def build():
        yes = planted_yes_instance(6, seed=71)
        no_seed = claw_no_instance(padding=2)  # n = 6 as well
        rows = []
        for label, prext in (("YES", yes), ("NO", no_seed)):
            q = theorem8_reduction(prext, k=3)
            cap = min_cover_time(q.instance.speeds, q.instance.n)
            rows.append(
                [label, q.instance.n, float(cap), float(q.no_makespan_lower_bound)]
            )
        # capacity bounds of YES and NO instances are within a whisker
        assert abs(rows[0][2] - rows[1][2]) / rows[0][2] < 0.05
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["seed", "n'", "C**max", "NO-side true bound"]
    emit_table(
        "E7_capacity_blindness",
        format_table(
            cols,
            rows,
            title=(
                "E7: capacity lower bounds are blind to the gap "
                "(NO instances cost >= the last column, C** never sees it)"
            ),
        ),
    )
    emit_record("E7_capacity_blindness", cols, rows)


@pytest.mark.parametrize("k", [2, 5])
def test_e7_reduction_speed(benchmark, k):
    prext = planted_yes_instance(6, seed=72)
    q = benchmark(lambda: theorem8_reduction(prext, k=k))
    assert q.instance.n == 6 + 48 * k * k * 6 + 4 * k * 6 + 2
