"""E3 — Algorithm 2 / Theorem 19: a.a.s. 2-approximation on G(n, n, p).

Regenerates: the ratio series makespan / C**max over growing n in the
three p(n) regimes (the finite-n shape of the theorem's asymptotic
promise), for two speed profiles.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.random_graph_scheduler import random_graph_schedule
from repro.random_graphs.gilbert import gnnp
from repro.random_graphs.regimes import Regime, probability_for_regime
from repro.scheduling.instance import unit_uniform_instance

from benchmarks._common import emit_record, emit_table, run_batch

PROFILES = {
    "mixed": (Fraction(8), Fraction(4), Fraction(2), Fraction(1), Fraction(1)),
    "identical": (Fraction(1),) * 5,
}
SAMPLES = 5


def worst_ratio(n: int, regime: Regime, speeds, rng) -> float:
    """Worst makespan / ``C**max`` over a batch of sampled graphs.

    The batch engine's recorded ratio uses the capacity lower bound,
    which for unit jobs coincides with ``min_cover_time(speeds, n)``.
    """
    p = probability_for_regime(regime, n)
    samples = [
        unit_uniform_instance(gnnp(n, p, seed=rng), speeds)
        for _ in range(SAMPLES)
    ]
    results = run_batch(samples, algorithm="random_graph")
    return max(r.ratio for r in results)


def test_e3_regime_series(benchmark):
    def build():
        rng = np.random.default_rng(30)
        rows = []
        for pname, speeds in PROFILES.items():
            for n in (50, 100, 200, 400):
                row = [pname, n]
                for regime in Regime:
                    row.append(worst_ratio(n, regime, speeds, rng))
                rows.append(row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["speeds", "n/side", "subcritical", "critical a=2", "supercritical"]
    emit_table(
        "E3_random_graph_ratio",
        format_table(
            cols,
            rows,
            title=(
                "E3 (Thm 19): Algorithm 2 worst Cmax/C**max over "
                f"{SAMPLES} samples — the paper promises a.a.s. <= 2"
            ),
        ),
    )
    emit_record("E3_random_graph_ratio", cols, rows)
    # the theorem's shape: no regime drifts above 2 by more than finite-n noise
    assert all(r[2] <= 2.6 and r[3] <= 2.6 and r[4] <= 2.6 for r in rows)


@pytest.mark.parametrize("n", [100, 400, 1000])
def test_e3_algorithm2_speed(benchmark, n):
    graph = gnnp(n, 2.0 / n, seed=31)
    inst = unit_uniform_instance(graph, PROFILES["mixed"])
    s = benchmark(lambda: random_graph_schedule(inst))
    assert s.is_feasible()
