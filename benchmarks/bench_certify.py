"""E11 (E-cert) — certification sweep: schedule audits + guarantee checks.

Drives :func:`repro.analysis.suites.certification_suite` (workload
models x graph families, both machine environments) through the
guarantee auditor (:mod:`repro.certify.auditor`): every applicable
registered algorithm runs on every instance, each schedule is audited
end-to-end over exact rationals, and observed ratios are compared
against the declared guarantees with exact-oracle ground truth where
tractable.  The sweep must report **zero** conflict / eligibility /
guarantee violations — any `violated` or `infeasible_output` row is a
bug in either an algorithm, the dispatch policy, or the paper-claim
encoding, and fails the run.

A second experiment pins the oracle itself: the pruned branch-and-bound
(:func:`repro.certify.certified_optimal`) must agree with the naive
``brute_force_optimal`` on everything the latter can reach.

Set ``REPRO_BENCH_SMOKE=1`` for the CI smoke shape (tiny ``n``, fewer
families) — the point of that run is that the certification pipeline
cannot silently rot, not the numbers.
"""

import os

import numpy as np

from repro.analysis.suites import (
    certification_suite,
    certification_summary,
    violation_table,
)
from repro.certify import (
    VIOLATION_STATUSES,
    audit_guarantees,
    certified_optimal,
)
from repro.scheduling.brute_force import brute_force_makespan

from benchmarks._common import emit_record, emit_table
from tests.conftest import random_r2, random_uniform_instance

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N = 5 if SMOKE else 10
SEEDS = 1 if SMOKE else 2
FAMILIES = ("gnnp", "path") if SMOKE else ("gnnp", "path", "crown", "matching", "empty")
ORACLE_MAX_N = 12 if SMOKE else 16
ORACLE_TRIALS = 10 if SMOKE else 40


def test_e11_certification_sweep(benchmark):
    """Every dispatched algorithm, audited: zero violations required."""

    def build():
        suite = certification_suite(
            n=N, seeds=SEEDS, graph_families=FAMILIES, seed=0
        )
        return suite, audit_guarantees(suite, oracle_max_n=ORACLE_MAX_N)

    suite, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert suite and rows
    violations = [r for r in rows if r.status in VIOLATION_STATUSES]
    assert not violations, [r.to_dict() for r in violations]
    # every audited certificate that exists and isn't graph-blind-by-design
    # recomputed a makespan
    assert all(
        r.certificate is None or r.certificate.recomputed_makespan is not None
        for r in rows
        if r.status != "error"
    )
    emit_table(
        "E11_certification",
        violation_table(
            rows,
            title=f"E11: certification sweep ({len(suite)} instances, "
            f"{len(rows)} audits, 0 violations required)",
        ),
    )
    emit_record(
        "E11_certification",
        ["algorithm", "status", "count", "worst ratio"],
        certification_summary(rows),
        notes=f"{len(suite)} instances, {len(rows)} audits, smoke={SMOKE}",
    )


def test_e11_oracle_matches_brute_force(benchmark):
    """The pruned oracle and the naive brute force agree exactly."""

    def build():
        rng = np.random.default_rng(0xCE47)
        pairs = []
        for _ in range(ORACLE_TRIALS):
            inst = random_uniform_instance(rng)
            pairs.append((brute_force_makespan(inst), certified_optimal(inst)))
        for _ in range(ORACLE_TRIALS // 2):
            inst = random_r2(rng)
            pairs.append((brute_force_makespan(inst), certified_optimal(inst)))
        return pairs

    pairs = benchmark.pedantic(build, rounds=1, iterations=1)
    assert pairs
    assert all(naive == oracle.makespan for naive, oracle in pairs)
    assert all(
        oracle.proof in ("bound-tight", "search-exhausted")
        for _, oracle in pairs
    )
