"""Shared helpers for the benchmark/experiment harness.

Every experiment writes two artifacts to ``benchmarks/out/``:

* ``<id>.txt`` (:func:`emit_table`) — the human-readable regenerated
  table, stamped with git revision + UTC timestamp, which
  EXPERIMENTS.md / ``repro report`` reference;
* ``BENCH_<id>.json`` (:func:`emit_record`) — the machine-readable
  perf/ratio record of the same sweep (schema
  :data:`repro.perf.record.BENCH_FORMAT`), validated on emit and
  appended to ``BENCH_trajectory.jsonl`` so repeated runs accumulate a
  perf trajectory (``repro perf --check`` gates it in CI;
  ``repro.analysis.perf_trend`` renders it).

Instance sweeps go through :func:`run_batch`, the benchmark-side handle
on the :mod:`repro.runtime` engine, instead of per-benchmark ad-hoc
loops.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.perf.record import (
    BenchPhase,
    BenchRecord,
    git_revision,
    utc_timestamp,
    write_bench_record,
)
from repro.runtime import BatchResult, BatchRunner

OUT_DIR = Path(__file__).parent / "out"


def run_batch(
    items: Iterable[Any],
    algorithm: str = "auto",
    workers: int = 1,
    cache: str | Path | None = None,
) -> list[BatchResult]:
    """Solve an instance sweep through the batch engine, in input order.

    ``items`` accepts everything :meth:`BatchRunner.run` does —
    instances, ``(name, instance)`` pairs, or tasks.  Records carry the
    resolved algorithm, exact makespan, the environment's exact lower
    bound, the makespan/bound ratio, and per-solve wall time, which is
    what the experiment tables are built from.
    """
    runner = BatchRunner(algorithm=algorithm, workers=workers, cache=cache)
    return runner.run_to_list(items)


def emit_table(experiment_id: str, text: str) -> None:
    """Persist and print one experiment's table (with provenance header)."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / f"{experiment_id}.txt"
    header = f"# {experiment_id} @ {git_revision()} {utc_timestamp()}"
    path.write_text(f"{header}\n{text}\n")
    print(f"\n{text}\n[written to {path}]")


def emit_record(
    experiment_id: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    phases: Iterable[BenchPhase] = (),
    notes: str = "",
    meta: dict[str, Any] | None = None,
) -> BenchRecord:
    """Persist one experiment's sweep as ``BENCH_<experiment_id>.json``.

    ``columns``/``rows`` mirror the data behind the emitted ``.txt``
    table; cells are coerced to JSON-stable scalars (exact rationals as
    ``"num/den"``).  ``meta`` carries headline scalars outside the sweep
    table (e.g. a speedup quotient).  The record is schema-validated,
    written next to the ``.txt``, and appended to the
    ``BENCH_trajectory.jsonl`` perf trajectory.  Returns the built
    record.
    """
    record = BenchRecord.build(
        experiment_id, columns, rows, phases=phases, notes=notes, meta=meta
    )
    path = write_bench_record(record, OUT_DIR)
    print(f"[bench record written to {path}]")
    return record
