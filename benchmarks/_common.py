"""Shared helpers for the benchmark/experiment harness.

Every experiment writes its regenerated table to ``benchmarks/out/`` (so
EXPERIMENTS.md can reference concrete artefacts) and prints it (visible
with ``pytest -s``).
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit_table(experiment_id: str, text: str) -> None:
    """Persist and print one experiment's table."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
