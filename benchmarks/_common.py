"""Shared helpers for the benchmark/experiment harness.

Every experiment writes its regenerated table to ``benchmarks/out/`` (so
EXPERIMENTS.md can reference concrete artefacts) and prints it (visible
with ``pytest -s``).  Instance sweeps go through :func:`run_batch`, the
benchmark-side handle on the :mod:`repro.runtime` engine, instead of
per-benchmark ad-hoc loops.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.runtime import BatchResult, BatchRunner

OUT_DIR = Path(__file__).parent / "out"


def run_batch(
    items: Iterable[Any],
    algorithm: str = "auto",
    workers: int = 1,
    cache: str | Path | None = None,
) -> list[BatchResult]:
    """Solve an instance sweep through the batch engine, in input order.

    ``items`` accepts everything :meth:`BatchRunner.run` does —
    instances, ``(name, instance)`` pairs, or tasks.  Records carry the
    resolved algorithm, exact makespan, the environment's exact lower
    bound, the makespan/bound ratio, and per-solve wall time, which is
    what the experiment tables are built from.
    """
    runner = BatchRunner(algorithm=algorithm, workers=workers, cache=cache)
    return runner.run_to_list(items)


def emit_table(experiment_id: str, text: str) -> None:
    """Persist and print one experiment's table."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
