"""E8 — Theorem 24: the YES/NO gap of the Rm reduction.

Regenerates: the d-sweep gap table with exact optima on small seeds, and
the m-sweep showing extra slow machines never help (their processing time
``d`` exceeds the NO bound).
"""

import pytest

from repro.analysis.tables import format_table
from repro.graphs.precoloring import claw_no_instance, planted_yes_instance, solve_prext
from repro.hardness.r_reduction import theorem24_reduction
from repro.scheduling.brute_force import brute_force_makespan

from benchmarks._common import emit_record, emit_table


def test_e8_d_sweep(benchmark):
    def build():
        yes = planted_yes_instance(7, seed=80)
        coloring = solve_prext(yes)
        assert coloring is not None
        no = claw_no_instance(padding=3)  # same n = 7
        assert solve_prext(no) is None
        rows = []
        for d in (10, 50, 250, 1000):
            r_yes = theorem24_reduction(yes, d=d)
            yes_opt = brute_force_makespan(r_yes.instance)
            s = r_yes.schedule_from_extension(coloring)
            assert s.makespan <= r_yes.yes_makespan_bound
            r_no = theorem24_reduction(no, d=d)
            no_opt = brute_force_makespan(r_no.instance)
            assert yes_opt <= r_yes.yes_makespan_bound  # YES world: <= n
            assert no_opt >= r_no.no_makespan_lower_bound  # NO world: >= d
            rows.append([d, float(yes_opt), float(no_opt), float(no_opt / yes_opt)])
        # the measured gap scales linearly with d: who wins is unambiguous
        assert rows[-1][3] > rows[0][3]
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["d", "YES optimum", "NO optimum", "measured gap"]
    emit_table(
        "E8_theorem24_gap",
        format_table(
            cols,
            rows,
            title="E8 (Thm 24): exact YES/NO separation of the Rm reduction",
        ),
    )
    emit_record("E8_theorem24_gap", cols, rows)


def test_e8_extra_machines_useless(benchmark):
    def build():
        yes = planted_yes_instance(6, seed=81)
        rows = []
        for m in (3, 4, 5):
            r = theorem24_reduction(yes, d=40, m=m)
            opt = brute_force_makespan(r.instance)
            rows.append([m, float(opt)])
        assert len({v for _, v in rows}) == 1  # identical optima
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["m", "YES optimum"]
    emit_table(
        "E8_machines_sweep",
        format_table(
            cols,
            rows,
            title="E8 (Thm 24): slow machines beyond the first three never help",
        ),
    )
    emit_record("E8_machines_sweep", cols, rows)


@pytest.mark.parametrize("n", [20, 100])
def test_e8_reduction_speed(benchmark, n):
    prext = planted_yes_instance(n, seed=82)
    r = benchmark(lambda: theorem24_reduction(prext, d=1000))
    assert r.instance.n == n
