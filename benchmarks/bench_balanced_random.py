"""E16 — the Section 6 improvement of Algorithm 2 (isolated-job balancing).

Regenerates: the ratio of plain Algorithm 2 vs the balanced variant in
the three `p(n)` regimes.  The paper predicts the improvement matters
most at `p = o(1/n)` ("better assigning the isolated jobs and using them
to balance the schedule") and vanishes as the graph densifies.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.random_graph_scheduler import (
    random_graph_schedule,
    random_graph_schedule_balanced,
)
from repro.machines.profiles import geometric_speeds
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.instance import unit_uniform_instance

from benchmarks._common import emit_record, emit_table

REGIMES = [
    ("subcritical p=0.2/n", lambda n: 0.2 / n),
    ("critical p=2/n", lambda n: 2.0 / n),
    ("supercritical p=20/n", lambda n: min(1.0, 20.0 / n)),
]


def test_e16_regime_table(benchmark):
    def build():
        rows = []
        sub_gain = None
        for name, pf in REGIMES:
            for n in (100, 300):
                plain_r, bal_r = [], []
                for seed in range(5):
                    graph = gnnp(n, pf(n), seed=16_000 + 31 * n + seed)
                    inst = unit_uniform_instance(graph, geometric_speeds(5))
                    lower = min_cover_time(inst.speeds, inst.n)
                    plain = random_graph_schedule(inst)
                    balanced = random_graph_schedule_balanced(inst)
                    assert balanced.is_feasible()
                    plain_r.append(float(plain.makespan / lower))
                    bal_r.append(float(balanced.makespan / lower))
                gain = float(np.mean(plain_r) / np.mean(bal_r))
                if name.startswith("subcritical") and n == 300:
                    sub_gain = gain
                rows.append(
                    [name, n, float(np.mean(plain_r)), float(np.mean(bal_r)), gain]
                )
        return rows, sub_gain

    rows, sub_gain = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["regime", "n/side", "Alg2 Cmax/C**", "balanced Cmax/C**", "gain"]
    emit_table(
        "E16_balanced_random",
        format_table(
            cols,
            rows,
            title="E16 (Sec. 6): Algorithm 2 vs the isolated-job balanced variant",
        ),
    )
    emit_record("E16_balanced_random", cols, rows)
    # shape: the balanced variant never loses, and wins in the sparse
    # regime where almost all jobs are isolated
    for row in rows:
        assert row[3] <= row[2] + 1e-9
    assert sub_gain is not None and sub_gain >= 1.0


@pytest.mark.parametrize("n", [100, 400])
def test_e16_balanced_speed(benchmark, n):
    graph = gnnp(n, 2.0 / n, seed=n)
    inst = unit_uniform_instance(graph, geometric_speeds(4))
    schedule = benchmark(lambda: random_graph_schedule_balanced(inst))
    assert schedule.is_feasible()
