"""E21 — conflict-graph families beyond bipartite: dispatch, quality, audits.

The conflict-graph generalization (complete multipartite and block
incompatibility graphs, machine-eligibility masks) must hold up under
the same scrutiny as the bipartite paper families:

* (a) the engine dispatches each family to its strongest method —
  ``complete_multipartite_min_time`` (exact, Pikies–Turowski
  arXiv:2010.13207) on unit multipartite instances,
  ``conflict_color_split`` (optimal MCS coloring, Furmańczyk et al.
  arXiv:2207.05868 context) elsewhere — and every produced schedule is
  feasible;
* (b) on brute-force-tractable sizes the exact algorithm matches the
  oracle and the coloring split's gap is recorded;
* (c) the certification auditor sweeps the new families with **zero**
  violations (eligibility masks included).

Set ``REPRO_BENCH_SMOKE=1`` for the CI smoke shape (tiny instances) —
that run guards the pipeline, not the numbers.
"""

import os
from fractions import Fraction

from repro.certify import VIOLATION_STATUSES, audit_instance
from repro.engine import auto_choice, solve
from repro.graphs.conflict import BlockGraph, CompleteMultipartiteGraph
from repro.machines.profiles import geometric_speeds
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, unit_uniform_instance
from repro.workloads import (
    random_block_graph,
    random_complete_multipartite,
    random_eligibility,
)

from benchmarks._common import emit_record, emit_table
from repro.analysis.tables import format_table

F = Fraction

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: (label, graph, m) sweep cases per family
MULTIPARTITE_CASES = (
    [("K_{2,2,1}+1f", CompleteMultipartiteGraph.from_sizes([2, 2, 1], free=1), 3)]
    if SMOKE
    else [
        ("K_{2,2,1}+1f", CompleteMultipartiteGraph.from_sizes([2, 2, 1], free=1), 3),
        ("K_{3,2,2}", CompleteMultipartiteGraph.from_sizes([3, 2, 2]), 3),
        ("K_{4,3,2,1}", CompleteMultipartiteGraph.from_sizes([4, 3, 2, 1]), 4),
        ("rand(n=12,k=3)", random_complete_multipartite(12, 3, free=2, seed=21), 4),
    ]
)

BLOCK_CASES = (
    [("chain(3,2)", BlockGraph.chain([3, 2]), 3)]
    if SMOKE
    else [
        ("chain(3,2,4)", BlockGraph.chain([3, 2, 4]), 4),
        ("chain(3,3,3)", BlockGraph.chain([3, 3, 3]), 3),
        ("rand(n=14)", random_block_graph(14, max_block=4, seed=21), 4),
        ("rand(n=20)", random_block_graph(20, max_block=5, seed=22), 5),
    ]
)

ORACLE_MAX_N = 8 if SMOKE else 10


def _jobs(graph, seed):
    # small deterministic non-unit job sizes
    return [((seed + 3 * j) % 4) + 1 for j in range(graph.n)]


def test_e21_dispatch_and_quality(benchmark):
    """Auto dispatch per family; exactness/gap vs the oracle where tractable."""

    def build():
        rows = []
        for label, graph, m in MULTIPARTITE_CASES:
            inst = unit_uniform_instance(graph, geometric_speeds(m))
            chosen = auto_choice(inst)
            schedule = solve(inst)
            assert schedule.is_feasible()
            assert chosen == "complete_multipartite_min_time", (label, chosen)
            if inst.n <= ORACLE_MAX_N:
                opt = brute_force_makespan(inst)
                assert schedule.makespan == opt, label
                ratio = 1.0
            else:
                ratio = None
            rows.append(
                ["complete_multipartite", label, inst.n, m, chosen,
                 float(schedule.makespan), ratio]
            )
        for label, graph, m in BLOCK_CASES:
            inst = UniformInstance(graph, _jobs(graph, 2), geometric_speeds(m))
            chosen = auto_choice(inst)
            schedule = solve(inst)
            assert schedule.is_feasible()
            assert chosen == "conflict_color_split", (label, chosen)
            if inst.n <= ORACLE_MAX_N:
                opt = brute_force_makespan(inst)
                ratio = float(schedule.makespan / opt)
                assert schedule.makespan >= opt
            else:
                ratio = None
            rows.append(
                ["block", label, inst.n, m, chosen,
                 float(schedule.makespan), ratio]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["family", "graph", "n", "m", "chosen", "Cmax", "ratio vs opt"]
    emit_table(
        "E21_conflict_families",
        format_table(
            cols,
            [
                [c if c is not None else "-" for c in row]
                for row in rows
            ],
            title="E21: dispatch + quality on non-bipartite conflict families",
        ),
    )
    emit_record(
        "E21_conflict_families",
        cols,
        rows,
        notes="auto dispatch on complete multipartite / block conflict "
        "graphs; exact match vs brute force where tractable",
    )


def test_e21_eligibility_audit(benchmark):
    """Certification sweep over the new families + eligibility: 0 violations."""

    def build():
        audits = []
        for label, graph, m in MULTIPARTITE_CASES + BLOCK_CASES:
            inst = unit_uniform_instance(graph, geometric_speeds(m))
            audits.extend(audit_instance(label, inst, oracle_max_n=ORACLE_MAX_N))
        # eligibility-masked bipartite instances ride the same auditor
        from repro.graphs import generators

        for seed in range(1 if SMOKE else 3):
            graph = generators.matching_graph(3)
            m = 4
            inst = UniformInstance(
                graph,
                _jobs(graph, seed),
                geometric_speeds(m),
                eligible=random_eligibility(graph.n, m, choices=2, seed=seed),
            )
            audits.extend(
                audit_instance(f"masked-s{seed}", inst, oracle_max_n=ORACLE_MAX_N)
            )
        return audits

    audits = benchmark.pedantic(build, rounds=1, iterations=1)
    violations = [row for row in audits if row.status in VIOLATION_STATUSES]
    assert not violations, [
        (row.name, row.algorithm, row.status, row.detail)
        for row in violations
    ]
    rows = [
        [row.name, row.algorithm, row.status,
         None if row.ratio is None else float(row.ratio)]
        for row in audits
    ]
    cols = ["instance", "algorithm", "status", "ratio"]
    emit_table(
        "E21_conflict_audit",
        format_table(
            cols,
            [[c if c is not None else "-" for c in row] for row in rows],
            title=(
                f"E21: certification audit over conflict families "
                f"({len(audits)} audits, {len(violations)} violations)"
            ),
        ),
    )
    emit_record(
        "E21_conflict_audit",
        cols,
        rows,
        notes="auditor sweep over complete multipartite / block / "
        "eligibility-masked instances; must be violation-free",
        meta={"audits": len(audits), "violations": len(violations)},
    )
