"""E17 — Section 6 open problem: worst-case ratio for fixed speed sequences.

Regenerates: an empirical lower-bound table for the best achievable
approximation ratio per speed sequence.  [3] proves the equal-speed
answer is exactly 2; for other sequences the question is open — the
probe certifies lower bounds (exhaustive over all bipartite graphs on
2+2 and 2+3 unit jobs) for Algorithm 1 and for the dispatcher.
"""

from fractions import Fraction

import pytest

from repro.analysis.speed_probe import worst_ratio_exhaustive
from repro.analysis.tables import format_table
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.engine import solve

from benchmarks._common import emit_record, emit_table

F = Fraction

SPEED_SEQUENCES = [
    ("1,1,1", [F(1), F(1), F(1)]),
    ("2,1,1", [F(2), F(1), F(1)]),
    ("4,1,1", [F(4), F(1), F(1)]),
    ("4,2,1", [F(4), F(2), F(1)]),
    ("8,4,2", [F(8), F(4), F(2)]),
]


def _alg1(instance):
    return sqrt_approx_schedule(instance, s1_solver="two_approx").schedule


# sum = 19 > 16: forces Algorithm 1 past its exact base case
PROBE_WEIGHTS = [5, 4, 3, 3, 2, 2]


def test_e17_fixed_speed_table(benchmark):
    def build():
        rows = []
        for label, speeds in SPEED_SEQUENCES:
            a1 = worst_ratio_exhaustive(
                speeds, 3, 3, _alg1, weights=PROBE_WEIGHTS
            )
            auto = worst_ratio_exhaustive(
                speeds, 3, 3, solve, weights=PROBE_WEIGHTS
            )
            rows.append(
                [
                    label,
                    float(a1.ratio),
                    float(auto.ratio),
                    a1.instances_tried,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["speeds", "Alg1 worst ratio", "auto worst ratio", "graphs probed"]
    emit_table(
        "E17_speed_probe",
        format_table(
            cols,
            rows,
            title=(
                "E17 (Sec. 6): certified worst-case ratio lower bounds, "
                "all bipartite graphs on 3+3 jobs, p = (5,4,3,3,2,2)"
            ),
        ),
    )
    emit_record("E17_speed_probe", cols, rows)
    for row in rows:
        # Theorem 9 envelope: sqrt(19) ~ 4.36; measured worst cases
        # should sit far below it, and never above it
        assert row[1] <= 19 ** 0.5 + 1e-9
        # the dispatcher is never worse than Algorithm 1 on these probes
        assert row[2] <= row[1] + 1e-9


@pytest.mark.parametrize("label,speeds", SPEED_SEQUENCES[:2])
def test_e17_probe_speed(benchmark, label, speeds):
    result = benchmark.pedantic(
        lambda: worst_ratio_exhaustive(speeds, 3, 2, _alg1),
        rounds=1,
        iterations=1,
    )
    assert result.ratio >= 1
