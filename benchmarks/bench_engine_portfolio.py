"""E19 — portfolio execution vs single-algorithm ``auto`` dispatch.

Regenerates: a table comparing, per instance family, the makespan and
wall time of the engine's single ``auto`` choice against a k-way
portfolio race (:func:`repro.engine.portfolio_solve`).  The portfolio
must never return a worse makespan than ``auto`` (the auto choice is
always among its candidates); the interesting columns are how often a
lower-ranked method wins and what the race costs.

Set ``REPRO_BENCH_SMOKE=1`` for the CI smoke shape (tiny instances,
k=2) — that run guards the pipeline, not the numbers.
"""

import os
from fractions import Fraction

import numpy as np

from repro.analysis.suites import portfolio_gain_rows
from repro.analysis.tables import format_table
from repro.graphs import generators
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.instance import UnrelatedInstance, unit_uniform_instance

from benchmarks._common import emit_record, emit_table

F = Fraction

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N = 6 if SMOKE else 14
K = 2 if SMOKE else 4


def _suite():
    rng = np.random.default_rng(19)
    half = max(1, N // 2)
    yield "crown unit Q2", unit_uniform_instance(
        generators.crown(half), [F(2), F(1)]
    )
    yield "K_{a,b} unit Q3", unit_uniform_instance(
        generators.complete_bipartite(half, N - half), [F(3), F(2), F(1)]
    )
    yield "gnnp unit Q3", unit_uniform_instance(
        gnnp(half, 0.2, seed=rng), [F(3), F(2), F(1)]
    )
    graph = generators.matching_graph(half)
    times = rng.integers(1, 12, size=(2, graph.n)).tolist()
    yield "matching R2", UnrelatedInstance(graph, times)
    graph3 = generators.path_graph(N)
    times3 = rng.integers(1, 12, size=(3, graph3.n)).tolist()
    yield "path R3", UnrelatedInstance(graph3, times3)


def test_e19_portfolio_vs_auto(benchmark):
    def build():
        return portfolio_gain_rows(list(_suite()), k=K)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["instance", "auto choice", "auto Cmax", "auto ms",
            "portfolio winner", "portfolio Cmax", "portfolio ms", "gain"]
    emit_table(
        "E19_engine_portfolio",
        format_table(
            cols,
            rows,
            title=f"E19: k={K} portfolio race vs single auto dispatch",
        ),
    )
    emit_record("E19_engine_portfolio", cols, rows, notes=f"k={K}")
    # the acceptance bar: the portfolio is never worse than auto on any
    # instance, i.e. gain = auto Cmax / portfolio Cmax >= 1 everywhere
    for row in rows:
        assert row[7] >= 1.0 - 1e-12, row
