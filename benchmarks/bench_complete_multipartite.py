"""E13 — the exact unary algorithm for complete bipartite conflicts ([20]/[24]).

Regenerates: (a) optimality cross-check of the unary capacity algorithm
against brute force on small ``K_{a,b}`` instances; (b) the quality gap
between the exact algorithm and Algorithm 1 (which only promises
``sqrt(sum p_j)``) on larger ``K_{a,b}`` sweeps; (c) runtime scaling of
the exact algorithm, which is polynomial under unary encoding.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.complete_multipartite import (
    complete_multipartite_min_time,
    schedule_complete_bipartite_unit,
)
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.graphs.generators import complete_bipartite
from repro.machines.profiles import geometric_speeds, random_integer_speeds
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import unit_uniform_instance

from benchmarks._common import emit_record, emit_table

F = Fraction


def test_e13_exactness_table(benchmark):
    def build():
        rows = []
        rng = np.random.default_rng(13)
        for a, b, m in [(2, 2, 2), (3, 2, 3), (3, 3, 3), (4, 2, 4), (4, 3, 3)]:
            speeds = random_integer_speeds(m, high=4, seed=rng)
            inst = unit_uniform_instance(complete_bipartite(a, b), speeds)
            exact = schedule_complete_bipartite_unit(inst)
            opt = brute_force_makespan(inst)
            assert exact.makespan == opt
            rows.append([f"K_{{{a},{b}}}", m, float(opt), "exact match"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["graph", "m", "optimum Cmax", "check"]
    emit_table(
        "E13_exactness",
        format_table(
            cols,
            rows,
            title="E13: unary algorithm vs brute force on K_{a,b}, unit jobs",
        ),
    )
    emit_record("E13_exactness", cols, rows)


def test_e13_vs_algorithm1(benchmark):
    """The exact algorithm never loses to Algorithm 1 on its home turf."""

    def build():
        rows = []
        for a, b in [(10, 10), (20, 10), (30, 30), (50, 25), (60, 60)]:
            inst = unit_uniform_instance(
                complete_bipartite(a, b), geometric_speeds(5, ratio=2)
            )
            exact = schedule_complete_bipartite_unit(inst)
            approx = sqrt_approx_schedule(inst, s1_solver="two_approx").schedule
            rows.append(
                [
                    f"K_{{{a},{b}}}",
                    float(exact.makespan),
                    float(approx.makespan),
                    float(approx.makespan / exact.makespan),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["graph", "exact Cmax", "Algorithm 1 Cmax", "ratio"]
    emit_table(
        "E13_vs_algorithm1",
        format_table(
            cols,
            rows,
            title="E13: exact unary algorithm vs Algorithm 1 on K_{a,b}",
        ),
    )
    emit_record("E13_vs_algorithm1", cols, rows)
    for row in rows:
        assert row[3] >= 1.0 - 1e-9  # exact is optimal, ratio >= 1


@pytest.mark.parametrize("n_side", [20, 80, 200])
def test_e13_scaling(benchmark, n_side):
    speeds = geometric_speeds(6, ratio=2)
    solution = benchmark(
        lambda: complete_multipartite_min_time([n_side, n_side // 2], speeds)
    )
    assert solution.makespan > 0


def test_e13_three_parts(benchmark):
    """Beyond the paper: three mutually conflicting groups (the [24]
    complete multipartite generalisation), exact by the k-part DP."""

    def build():
        rows = []
        for parts in [(6, 5, 4), (10, 8, 2), (12, 12, 12)]:
            speeds = geometric_speeds(4, ratio=2)
            sol = complete_multipartite_min_time(list(parts), speeds)
            rows.append([str(parts), 4, float(sol.makespan)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["part sizes", "m", "optimal Cmax"]
    emit_table(
        "E13_three_parts",
        format_table(
            cols,
            rows,
            title="E13: exact makespans for complete tripartite conflicts",
        ),
    )
    emit_record("E13_three_parts", cols, rows)
