"""E20 — concurrent asyncio serving tier vs the sequential TCP fallback.

Regenerates: a closed-loop load comparison of the two ``repro serve``
TCP tiers.  Each of ``CONCURRENCY`` clients keeps one persistent
connection and issues ``REQUESTS`` solve requests with ``THINK_S`` of
think time between them — a mixed workload over gilbert/crown uniform
instances spanning an order of magnitude of solve time plus an
unrelated-machines family, with every client's first request identical
(the coalescing hot spot).  The table reports wall time, throughput,
and client-observed p50/p95/p99 latency per server, plus the serving
counters (solved/cached/coalesced/rejected).

The acceptance bar (async >= 4x sequential throughput at concurrency
32) is a *multiplexing* win, not a multi-core one: this runs on a
single CPU, where the sequential tier serves whole connections one at a
time so every other client's think and queue time is dead air, while
the asyncio tier interleaves all connections on one event loop.

Set ``REPRO_BENCH_SMOKE=1`` for the CI smoke shape (6 clients x 3
requests, tiny instances) — that run guards the pipeline, not the
numbers, and skips the speedup assertion.
"""

import asyncio
import json
import os
import threading
from fractions import Fraction
from time import perf_counter

import numpy as np

from repro.engine import AsyncEngineService, EngineService, serve_async, serve_tcp
from repro.engine.service import LatencyReservoir
from repro.analysis.tables import format_table
from repro.graphs import generators
from repro.io import instance_to_dict
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.instance import UnrelatedInstance, unit_uniform_instance

from benchmarks._common import emit_record, emit_table

F = Fraction

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
CONCURRENCY = 6 if SMOKE else 32
REQUESTS = 3 if SMOKE else 8
THINK_S = 0.005 if SMOKE else 0.03
SPEEDUP_BAR = 4.0


def _payload_pool():
    """The mixed workload: solve times spanning ~1.7ms to ~45ms."""
    rng = np.random.default_rng(20)
    speeds = [F(3), F(2), F(1)]
    halves = [(8, 0.3), (12, 0.2)] if SMOKE else [
        (60, 0.05), (150, 0.03), (300, 0.02), (600, 0.01),
    ]
    pool = [
        instance_to_dict(
            unit_uniform_instance(gnnp(half, p, seed=rng), speeds)
        )
        for half, p in halves
    ]
    graph = generators.matching_graph(6 if SMOKE else 30)
    times = rng.integers(1, 12, size=(2, graph.n)).tolist()
    pool.append(instance_to_dict(UnrelatedInstance(graph, times)))
    # biggest first: every client opens with it, so the async tier's
    # first wave coalesces onto one solve
    return pool


def _client_schedules(pool):
    big = pool[-2] if not SMOKE else pool[0]
    return [
        [big] + [pool[(i + r) % len(pool)] for r in range(1, REQUESTS)]
        for i in range(CONCURRENCY)
    ]


async def _run_load(host, port, schedules, think_s):
    """Drive every client concurrently; return (wall_s, latencies_s)."""

    async def one_client(client_id, payloads):
        latencies = []
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for r, payload in enumerate(payloads):
                request = {
                    "op": "solve",
                    "id": f"c{client_id}r{r}",
                    "instance": payload,
                }
                t0 = perf_counter()
                writer.write((json.dumps(request) + "\n").encode("utf-8"))
                await writer.drain()
                response = json.loads(await reader.readline())
                latencies.append(perf_counter() - t0)
                assert response["ok"], response
                assert response["assignment"], response
                await asyncio.sleep(think_s)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return latencies

    t0 = perf_counter()
    per_client = await asyncio.gather(
        *(one_client(i, s) for i, s in enumerate(schedules))
    )
    wall = perf_counter() - t0
    return wall, [lat for client in per_client for lat in client]


def _row(server, wall, latencies, stats):
    reservoir = LatencyReservoir(window=max(len(latencies), 1))
    for lat in latencies:
        reservoir.observe(lat)
    snap = reservoir.snapshot()
    return [
        server,
        CONCURRENCY,
        len(latencies),
        round(wall, 3),
        round(len(latencies) / wall, 1),
        snap["p50_ms"],
        snap["p95_ms"],
        snap["p99_ms"],
        stats.solved,
        stats.cached,
        stats.coalesced,
        stats.rejected,
        stats.errors,
    ]


def _bench_sequential(schedules):
    service = EngineService()
    address = []
    bound = threading.Event()

    def ready(addr):
        address.append(addr)
        bound.set()

    total = CONCURRENCY * REQUESTS
    server = threading.Thread(
        target=serve_tcp,
        args=(service,),
        kwargs={"port": 0, "max_requests": total, "ready": ready},
        daemon=True,
    )
    server.start()
    assert bound.wait(timeout=30)
    host, port = address[0]
    wall, latencies = asyncio.run(_run_load(host, port, schedules, THINK_S))
    server.join(timeout=30)
    assert not server.is_alive()
    return _row("sequential", wall, latencies, service.stats)


def _bench_async(schedules):
    service = AsyncEngineService(max_inflight=8, max_queue=64)

    async def run():
        address = []
        bound = asyncio.Event()

        def ready(addr):
            address.append(addr)
            bound.set()

        total = CONCURRENCY * REQUESTS
        server = asyncio.create_task(
            serve_async(service, port=0, max_requests=total, ready=ready)
        )
        await bound.wait()
        host, port = address[0]
        wall, latencies = await _run_load(host, port, schedules, THINK_S)
        await asyncio.wait_for(server, timeout=60)
        return wall, latencies

    try:
        wall, latencies = asyncio.run(run())
    finally:
        service.close()
    return _row("asyncio", wall, latencies, service.stats)


def test_e20_serve_load(benchmark):
    pool = _payload_pool()
    schedules = _client_schedules(pool)

    def build():
        return [_bench_sequential(schedules), _bench_async(schedules)]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["server", "clients", "requests", "wall_s", "qps",
            "p50_ms", "p95_ms", "p99_ms",
            "solved", "cached", "coalesced", "rejected", "errors"]
    seq, asy = rows
    speedup = asy[4] / seq[4]
    emit_table(
        "E20_serve_load",
        format_table(
            cols,
            rows,
            title=(
                f"E20: {CONCURRENCY} closed-loop clients x {REQUESTS} "
                f"requests, think {THINK_S * 1000:.0f}ms "
                f"(async/sequential qps = {speedup:.2f}x)"
            ),
        ),
    )
    emit_record(
        "SERVE_load", cols, rows,
        notes=(
            f"closed-loop: {CONCURRENCY} clients x {REQUESTS} requests, "
            f"think {THINK_S}s{' [smoke]' if SMOKE else ''}"
        ),
        meta={
            "speedup_qps": round(speedup, 3),
            "concurrency": CONCURRENCY,
            "requests_per_client": REQUESTS,
            "think_s": THINK_S,
            "smoke": SMOKE,
        },
    )
    # both tiers must answer everything correctly
    assert seq[12] == 0 and asy[12] == 0, rows
    assert asy[11] == 0, rows  # no rejections at this load
    # coalescing must actually fire on the identical first wave
    if not SMOKE:
        assert asy[10] >= CONCURRENCY // 4, rows
        # the acceptance bar: async sustains >= 4x sequential throughput
        assert speedup >= SPEEDUP_BAR, rows
