"""E4 — Section 4.1 asymptotics: Corollary 11, Lemmas 12-14.

Regenerates: the series comparing Monte-Carlo estimates of
``|V'_2|/n`` (inequitable-coloring smaller class), ``mu/n`` (maximum
matching) and the Lemma 14 ratio ``|V'_2|/mu`` against the paper's
closed-form curves, across the critical-regime parameter ``a``.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.random_graphs.statistics import graph_statistics, sample_statistics
from repro.random_graphs.gilbert import gnnp
from repro.random_graphs.theory import (
    matching_fraction_lower_bound,
    ratio_bound_lemma14,
    ratio_limit_constant,
    smaller_class_fraction_bound,
)

from benchmarks._common import emit_record, emit_table

N_SIDE = 150
SAMPLES = 8


def test_e4_a_sweep(benchmark):
    def build():
        rows = []
        for a in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
            stats = sample_statistics(N_SIDE, a / N_SIDE, SAMPLES, seed=int(100 * a))
            frac_v2 = float(np.mean([s.smaller_class_fraction for s in stats]))
            frac_mu = float(np.mean([s.matching_fraction for s in stats]))
            ratios = [s.lemma14_ratio for s in stats if s.lemma14_ratio is not None]
            ratio = float(np.mean(ratios)) if ratios else float("nan")
            rows.append(
                [
                    a,
                    frac_v2,
                    smaller_class_fraction_bound(N_SIDE, a),
                    frac_mu,
                    matching_fraction_lower_bound(a),
                    ratio,
                    ratio_bound_lemma14(a),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = [
        "a",
        "|V'2|/n emp",
        "Lem12 bound",
        "mu/n emp",
        "Lem13 bound",
        "|V'2|/mu emp",
        "Lem14 bound",
    ]
    emit_table(
        "E4_coloring_asymptotics",
        format_table(
            cols,
            rows,
            title=(
                f"E4 (Cor 11, Lem 12-14): G(n,n,a/n) at n={N_SIDE}, "
                f"{SAMPLES} samples; limit constant e/(e-1) = "
                f"{ratio_limit_constant():.4f}"
            ),
        ),
    )
    emit_record("E4_coloring_asymptotics", cols, rows)
    for row in rows:
        a, v2_emp, v2_bound, mu_emp, mu_bound, r_emp, r_bound = row
        assert v2_emp <= v2_bound + 0.05   # Lemma 12 (a.a.s. upper bound)
        assert mu_emp >= mu_bound - 0.05   # Lemma 13 (a.a.s. lower bound)
        assert r_emp <= ratio_limit_constant() + 0.1  # Lemma 14


@pytest.mark.parametrize("n", [100, 400])
def test_e4_statistics_speed(benchmark, n):
    graph = gnnp(n, 2.0 / n, seed=40)
    stats = benchmark(lambda: graph_statistics(graph, n))
    assert stats.matching_size <= n
