"""E15 — Theorem 17 ([26]): small maximal matchings in ``G(n,n,p)``.

Regenerates: the bracket ``Zito bound < beta <= small-heuristic <= mu``
measured over seeded samples in the ``p = omega(1/n)`` regime the
theorem covers, plus an exact-beta cross-check at tiny sizes.  The
theorem feeds Corollary 18, which is what lets Algorithm 2 assume a
near-perfect matching a.a.s.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.graphs.matching import maximum_matching_size
from repro.graphs.maximal_matching import (
    matching_size,
    minimum_maximal_matching_size,
    small_maximal_matching,
)
from repro.random_graphs.gilbert import gnnp
from repro.random_graphs.theory import zito_min_maximal_matching_bound

from benchmarks._common import emit_record, emit_table


def test_e15_bracket_table(benchmark):
    def build():
        rows = []
        violations = 0
        for n, p in [(50, 0.2), (100, 0.1), (200, 0.05), (400, 0.05), (400, 0.1)]:
            smalls, mus = [], []
            for seed in range(5):
                g = gnnp(n, p, seed=10_000 + 31 * n + seed)
                smalls.append(matching_size(small_maximal_matching(g)))
                mus.append(maximum_matching_size(g))
            bound = zito_min_maximal_matching_bound(n, p)
            mean_small = float(np.mean(smalls))
            mean_mu = float(np.mean(mus))
            if mean_small <= bound:
                violations += 1
            rows.append(
                [n, p, round(bound, 1), mean_small, mean_mu, mean_mu / n]
            )
        return rows, violations

    rows, violations = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["n", "p", "Zito bound", "beta (heuristic)", "mu", "mu/n"]
    emit_table(
        "E15_zito_bracket",
        format_table(
            cols,
            rows,
            title="E15 (Thm 17): smallest maximal matching vs the a.a.s. bound",
        ),
    )
    emit_record("E15_zito_bracket", cols, rows)
    # shape: the heuristic beta estimate sits above Zito's lower bound
    # (the bound is asymptotic; at these sizes it already holds)
    assert violations == 0
    # shape: mu/n -> 1 in this regime (Corollary 18)
    assert rows[-1][5] > 0.9


def test_e15_exact_beta_cross_check(benchmark):
    """At tiny sizes the heuristic is audited against exact beta."""

    def build():
        gaps = []
        for seed in range(12):
            g = gnnp(5, 0.4, seed=seed)
            exact = minimum_maximal_matching_size(g)
            heuristic = matching_size(small_maximal_matching(g))
            assert heuristic >= exact
            gaps.append(heuristic - exact)
        return gaps

    gaps = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["statistic", "value"]
    rows = [
        ["samples", len(gaps)],
        ["mean heuristic - beta", float(np.mean(gaps))],
        ["max gap", int(np.max(gaps))],
    ]
    emit_table(
        "E15_exact_cross_check",
        format_table(
            cols,
            rows,
            title="E15: small-matching heuristic audited against exact beta",
        ),
    )
    emit_record("E15_exact_cross_check", cols, rows)


@pytest.mark.parametrize("n", [100, 400, 800])
def test_e15_heuristic_speed(benchmark, n):
    g = gnnp(n, 10.0 / n, seed=n)
    mate = benchmark(lambda: small_maximal_matching(g))
    assert matching_size(mate) > 0
