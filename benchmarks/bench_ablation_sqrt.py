"""E11 — ablation of Algorithm 1's design choices.

Regenerates: a table of approximation ratios (vs the exact capacity lower
bound ``C**max``) for the paper algorithm and each single-knob ablation:
greedy independent set instead of the exact min-cut MWIS, arbitrary
proper coloring instead of the weighted inequitable coloring (Def. 1),
dropping the capacity schedule ``S2``, and committing to ``S2`` instead
of taking the better of the two candidates.
"""

import numpy as np
import pytest

from repro.analysis.suites import standard_uniform_suite
from repro.analysis.tables import format_table
from repro.core.ablations import ABLATION_VARIANTS, sqrt_approx_ablation
from repro.scheduling.bounds import min_cover_time

from benchmarks._common import emit_record, emit_table


def _suite():
    return [
        inst
        for _, inst in standard_uniform_suite(
            n=20, m=5, weight_kind="uniform", seed=110
        )
        if inst.total_p > 4
    ]


def test_e11_variant_table(benchmark):
    def build():
        suite = _suite()
        rows = []
        means = {}
        for variant in ABLATION_VARIANTS:
            ratios = []
            for inst in suite:
                lower = min_cover_time(inst.speeds, inst.total_p)
                if lower == 0:
                    continue
                schedule = sqrt_approx_ablation(inst, variant)
                assert schedule.is_feasible()
                ratios.append(float(schedule.makespan / lower))
            means[variant] = float(np.mean(ratios))
            rows.append(
                [
                    variant,
                    len(ratios),
                    float(np.mean(ratios)),
                    float(np.median(ratios)),
                    float(np.max(ratios)),
                ]
            )
        return rows, means

    rows, means = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["variant", "instances", "mean Cmax/C**", "median", "max"]
    emit_table(
        "E11_ablation_sqrt",
        format_table(
            cols,
            rows,
            title="E11: Algorithm 1 ablations on the standard uniform suite",
        ),
    )
    emit_record("E11_ablation_sqrt", cols, rows)
    # shape: the paper's min(S1, S2) provably dominates committing to a
    # single branch.  (greedy_mis / unweighted_coloring alter S2 itself,
    # so no domination theorem exists there — the table records the
    # empirical gap instead.)
    assert means["paper"] <= means["s1_only"] + 1e-9
    assert means["paper"] <= means["s2_preferred"] + 1e-9


@pytest.mark.parametrize("variant", sorted(ABLATION_VARIANTS))
def test_e11_variant_speed(benchmark, variant):
    inst = _suite()[3]
    schedule = benchmark(lambda: sqrt_approx_ablation(inst, variant))
    assert schedule.is_feasible()
