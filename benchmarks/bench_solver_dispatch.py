"""E14 — the structure-aware dispatcher picks the strongest method.

Regenerates: a table showing, per graph family, which algorithm ``auto``
dispatch selects and how its makespan compares against the exact optimum
(small instances, brute-force oracle).  Exact-capable families must come
out exact; approximations must stay within their guarantees.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.engine import explain_dispatch, solve
from repro.graphs import generators
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UnrelatedInstance, unit_uniform_instance

from benchmarks._common import emit_record, emit_table, run_batch

F = Fraction


def _cases():
    rng = np.random.default_rng(14)
    yield "K_{3,3} unit Q", unit_uniform_instance(
        generators.complete_bipartite(3, 3), [F(3), F(2), F(1)]
    ), True
    yield "crown(4) unit Q2", unit_uniform_instance(
        generators.crown(4), [F(2), F(1)]
    ), True
    yield "empty P3", unit_uniform_instance(
        generators.empty_graph(7), [F(1), F(1), F(1)]
    ), False
    yield "G(5,5,0.2) unit Q3", unit_uniform_instance(
        gnnp(5, 0.2, seed=rng), [F(3), F(2), F(1)]
    ), False
    graph = generators.matching_graph(4)
    times = rng.integers(1, 15, size=(2, graph.n)).tolist()
    yield "matching R2", UnrelatedInstance(graph, times), False
    graph3 = generators.empty_graph(6)
    times3 = rng.integers(1, 15, size=(3, graph3.n)).tolist()
    yield "empty R3", UnrelatedInstance(graph3, times3), False


def test_e14_dispatch_table(benchmark):
    def build():
        cases = list(_cases())
        results = run_batch((name, inst) for name, inst, _ in cases)
        rows = []
        for (name, inst, must_be_exact), rec in zip(cases, results):
            assert rec.error is None, (name, rec.error)
            # the engine's explain mode must agree with what the batch
            # path actually ran
            assert explain_dispatch(inst).chosen == rec.chosen, name
            opt = brute_force_makespan(inst)
            ratio = float(rec.makespan / opt)
            if must_be_exact:
                assert rec.makespan == opt, name
            rows.append(
                [name, rec.chosen, float(opt), float(rec.makespan), ratio]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    cols = ["instance", "auto choice", "opt Cmax", "auto Cmax", "ratio"]
    emit_table(
        "E14_dispatch",
        format_table(
            cols,
            rows,
            title="E14: structure-aware dispatch vs brute-force optimum",
        ),
    )
    emit_record("E14_dispatch", cols, rows)
    # shape: dispatch never exceeds twice the optimum on this suite and
    # the exact-capable rows are exact
    for row in rows:
        assert row[4] <= 2.0 + 1e-9


@pytest.mark.parametrize(
    "family,builder",
    [
        ("complete_bipartite", lambda: unit_uniform_instance(
            generators.complete_bipartite(12, 8), [F(3), F(2), F(1)])),
        ("crown", lambda: unit_uniform_instance(
            generators.crown(10), [F(2), F(1)])),
        ("gnnp", lambda: unit_uniform_instance(
            gnnp(12, 0.1, seed=5), [F(3), F(2), F(1)])),
    ],
)
def test_e14_dispatch_speed(benchmark, family, builder):
    inst = builder()
    schedule = benchmark(lambda: solve(inst))
    assert schedule.is_feasible()
