"""Tests for maximum-weight independent sets (Algorithm 1, step 2)."""

import numpy as np
import pytest

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite, crown, path_graph, star
from repro.graphs.independent_set import (
    independence_number,
    max_weight_independent_set,
    max_weight_independent_set_containing,
)

from tests.conftest import random_bipartite


def brute_mwis(g: BipartiteGraph, weights, required=frozenset()) -> int:
    best = -1
    for mask in range(1 << g.n):
        sel = {v for v in range(g.n) if (mask >> v) & 1}
        if required <= sel and g.is_independent_set(sel):
            best = max(best, sum(weights[v] for v in sel))
    return best


class TestMaxWeightIndependentSet:
    def test_star_avoids_center(self):
        s = max_weight_independent_set(star(4), [1] * 5)
        assert s == {1, 2, 3, 4}

    def test_heavy_center_wins(self):
        s = max_weight_independent_set(star(4), [100, 1, 1, 1, 1])
        assert s == {0}

    def test_optimality_vs_bruteforce(self):
        rng = np.random.default_rng(12)
        for _ in range(25):
            g = random_bipartite(rng, max_side=5)
            weights = [int(x) for x in rng.integers(1, 15, g.n)]
            s = max_weight_independent_set(g, weights)
            assert g.is_independent_set(s)
            assert sum(weights[v] for v in s) == brute_mwis(g, weights)

    def test_crown_takes_one_side(self):
        # crown(k) has alpha = k (for k >= 3 no cross-side mixing beats a side)
        s = max_weight_independent_set(crown(4), [1] * 8)
        assert len(s) == 4


class TestContainingVariant:
    def test_returns_none_for_conflicting_required(self):
        g = path_graph(3)
        assert max_weight_independent_set_containing(g, [1, 1, 1], {0, 1}) is None

    def test_contains_required(self):
        g = path_graph(5)
        s = max_weight_independent_set_containing(g, [1] * 5, {1})
        assert s is not None and 1 in s
        assert g.is_independent_set(s)

    def test_optimality_vs_bruteforce(self):
        rng = np.random.default_rng(13)
        trials = 0
        while trials < 20:
            g = random_bipartite(rng, max_side=5)
            weights = [int(x) for x in rng.integers(1, 15, g.n)]
            req_size = int(rng.integers(0, min(3, g.n) + 1))
            required = set(int(v) for v in rng.choice(g.n, size=req_size, replace=False))
            s = max_weight_independent_set_containing(g, weights, required)
            expected = brute_mwis(g, weights, frozenset(required))
            if s is None:
                assert not g.is_independent_set(required)
                continue
            trials += 1
            assert required <= s
            assert g.is_independent_set(s)
            assert sum(weights[v] for v in s) == expected

    def test_empty_required_equals_plain_mwis(self):
        rng = np.random.default_rng(14)
        for _ in range(10):
            g = random_bipartite(rng, max_side=5)
            weights = [int(x) for x in rng.integers(1, 15, g.n)]
            a = max_weight_independent_set_containing(g, weights, set())
            b = max_weight_independent_set(g, weights)
            assert a is not None
            assert sum(weights[v] for v in a) == sum(weights[v] for v in b)


class TestIndependenceNumber:
    def test_known_values(self):
        assert independence_number(complete_bipartite(3, 5)) == 5
        assert independence_number(star(6)) == 6
        assert independence_number(BipartiteGraph(4, [])) == 4
        assert independence_number(path_graph(5)) == 3

    def test_gallai_vs_mwis(self):
        rng = np.random.default_rng(15)
        for _ in range(20):
            g = random_bipartite(rng, max_side=6)
            alpha = independence_number(g)
            mwis = max_weight_independent_set(g, [1] * g.n)
            assert alpha == len(mwis)
