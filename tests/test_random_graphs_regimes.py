"""Tests for the p(n) regime classification and representatives."""

import math

import pytest

from repro.random_graphs.regimes import (
    Regime,
    classify_regime,
    probability_for_regime,
)


class TestClassify:
    def test_subcritical(self):
        assert classify_regime(1000, 1e-5) is Regime.SUBCRITICAL

    def test_critical(self):
        assert classify_regime(1000, 2.0 / 1000) is Regime.CRITICAL

    def test_supercritical(self):
        assert classify_regime(1000, 0.1) is Regime.SUPERCRITICAL

    def test_thresholds_configurable(self):
        assert classify_regime(100, 0.05, hi=4.0) is Regime.SUPERCRITICAL

    def test_bad_n(self):
        with pytest.raises(ValueError):
            classify_regime(0, 0.1)


class TestRepresentatives:
    @pytest.mark.parametrize("n", [10, 100, 1000])
    def test_subcritical_below_1_over_n(self, n):
        p = probability_for_regime(Regime.SUBCRITICAL, n)
        assert p * n < 1.0

    @pytest.mark.parametrize("n", [10, 100, 1000])
    def test_critical_is_a_over_n(self, n):
        p = probability_for_regime(Regime.CRITICAL, n, a=3.0)
        assert p == pytest.approx(min(1.0, 3.0 / n))

    @pytest.mark.parametrize("n", [10, 100, 1000])
    def test_supercritical_above_1_over_n(self, n):
        p = probability_for_regime(Regime.SUPERCRITICAL, n)
        assert p * n > 1.0
        assert p <= 1.0

    def test_supercritical_meets_theorem15(self):
        # n p - log n -> infinity along the representative
        for n in (100, 1000, 10000):
            p = probability_for_regime(Regime.SUPERCRITICAL, n)
            assert n * p - math.log(n) > 0

    def test_consistency_with_classifier(self):
        for n in (200, 2000):
            for regime in Regime:
                p = probability_for_regime(regime, n)
                assert classify_regime(n, p) is regime

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            probability_for_regime(Regime.CRITICAL, 100, a=0)
        with pytest.raises(ValueError):
            probability_for_regime(Regime.CRITICAL, 1)
