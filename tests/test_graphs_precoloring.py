"""Tests for 1-PrExt (Definition 2 / Theorem 3 machinery)."""

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.coloring import is_proper_coloring
from repro.graphs.generators import complete_bipartite, path_graph
from repro.graphs.precoloring import (
    PrExtInstance,
    claw_no_instance,
    planted_yes_instance,
    random_prext_instance,
    solve_prext,
)


def brute_force_prext(instance: PrExtInstance) -> bool:
    """Exhaustive ground truth for tiny instances."""
    g, k = instance.graph, instance.k
    import itertools

    for assign in itertools.product(range(k), repeat=g.n):
        if all(assign[v] == c for c, v in enumerate(instance.precolored)):
            if is_proper_coloring(g, assign):
                return True
    return False


class TestInstanceValidation:
    def test_requires_three_colors(self):
        g = path_graph(4)
        with pytest.raises(InvalidInstanceError):
            PrExtInstance(g, (0, 1))

    def test_distinct_vertices(self):
        g = path_graph(4)
        with pytest.raises(InvalidInstanceError):
            PrExtInstance(g, (0, 0, 1))

    def test_range_check(self):
        g = path_graph(3)
        with pytest.raises(InvalidInstanceError):
            PrExtInstance(g, (0, 1, 5))


class TestSolver:
    def test_claw_is_no(self):
        assert solve_prext(claw_no_instance()) is None

    def test_claw_with_padding_still_no(self):
        assert solve_prext(claw_no_instance(padding=5)) is None

    def test_claw_minus_edge_is_yes(self):
        # remove one leaf edge: the centre regains a color
        g = BipartiteGraph(4, [(0, 1), (0, 2)])
        inst = PrExtInstance(g, (1, 2, 3))
        assert solve_prext(inst) is not None

    def test_k33_same_side_precolor_is_no(self):
        # all three precolored vertices on one side of K_{3,3}: the other
        # side sees all three colors
        g = complete_bipartite(3, 3)
        inst = PrExtInstance(g, (0, 1, 2))
        assert solve_prext(inst) is None

    def test_k33_split_precolor_is_yes(self):
        g = complete_bipartite(3, 3)
        inst = PrExtInstance(g, (0, 1, 3))
        result = solve_prext(inst)
        assert result is not None

    def test_solution_is_proper_and_extends(self):
        for seed in range(10):
            inst = planted_yes_instance(10, seed=seed)
            coloring = solve_prext(inst)
            assert coloring is not None
            assert is_proper_coloring(inst.graph, coloring)
            for c, v in enumerate(inst.precolored):
                assert coloring[v] == c

    def test_agrees_with_bruteforce(self):
        rng = np.random.default_rng(20)
        yes = no = 0
        for _ in range(30):
            inst = random_prext_instance(7, edge_probability=0.45, seed=rng)
            got = solve_prext(inst) is not None
            want = brute_force_prext(inst)
            assert got == want
            yes += got
            no += not got
        # the sample should contain both answers, else the test is vacuous
        assert yes > 0 and no > 0

    def test_empty_edges_always_yes(self):
        g = BipartiteGraph(5, [])
        inst = PrExtInstance(g, (0, 1, 2))
        assert solve_prext(inst) is not None


class TestGenerators:
    def test_planted_always_yes(self):
        for seed in range(15):
            inst = planted_yes_instance(12, edge_probability=0.5, seed=seed)
            assert solve_prext(inst) is not None

    def test_planted_reproducible(self):
        a = planted_yes_instance(10, seed=4)
        b = planted_yes_instance(10, seed=4)
        assert a.graph == b.graph and a.precolored == b.precolored

    def test_planted_minimum_size(self):
        with pytest.raises(InvalidInstanceError):
            planted_yes_instance(2)

    def test_random_instance_valid(self):
        inst = random_prext_instance(9, seed=1)
        assert inst.k == 3
        assert len(set(inst.precolored)) == 3
