"""Tests for exact capacity lower bounds (C**max machinery)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import path_graph
from repro.scheduling.bounds import (
    area_lower_bound,
    min_cover_time,
    pmax_lower_bound,
    uniform_capacity_lower_bound,
    unrelated_lower_bound,
)
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.utils.rationals import floor_fraction


def capacity_at(speeds, t):
    return sum(floor_fraction(s * t) for s in speeds)


class TestMinCoverTime:
    def test_zero_demand(self):
        assert min_cover_time([Fraction(1)], 0) == 0

    def test_single_unit_machine(self):
        assert min_cover_time([Fraction(1)], 5) == 5

    def test_fast_machine(self):
        assert min_cover_time([Fraction(3)], 10) == Fraction(10, 3)

    def test_mixed_speeds_known_value(self):
        # speeds 3, 2, 1/2: at t=2 capacities are 6+4+1 = 11 >= 10;
        # strictly before t=2 the total is at most 5+3+0 = ... verify minimal
        t = min_cover_time([Fraction(3), Fraction(2), Fraction(1, 2)], 10)
        assert t == 2

    def test_no_machines_rejected(self):
        with pytest.raises(InvalidInstanceError):
            min_cover_time([], 1)

    @settings(max_examples=80)
    @given(
        st.lists(
            st.fractions(min_value=Fraction(1, 8), max_value=60, max_denominator=8),
            min_size=1,
            max_size=6,
        ),
        st.integers(1, 400),
    )
    def test_minimality_property(self, speeds, demand):
        """Result covers demand; any strictly earlier time does not."""
        t = min_cover_time(speeds, demand)
        assert capacity_at(speeds, t) >= demand
        # the predecessor jump point must fail: check just before t
        eps = Fraction(1, 10**9)
        if t > 0:
            assert capacity_at(speeds, t - eps) < demand

    def test_result_is_jump_point(self):
        speeds = [Fraction(5, 3), Fraction(2, 7)]
        t = min_cover_time(speeds, 17)
        # t must equal c / s_i for some machine and integer c
        assert any((s * t).denominator == 1 for s in speeds)


class TestSimpleBounds:
    def test_area_bound(self):
        inst = UniformInstance(path_graph(3), [2, 2, 2], [2, 1])
        assert area_lower_bound(inst) == Fraction(6, 3)

    def test_pmax_bound(self):
        inst = UniformInstance(path_graph(3), [2, 9, 2], [3, 1])
        assert pmax_lower_bound(inst) == Fraction(3)

    def test_pmax_empty(self):
        inst = UniformInstance(BipartiteGraph(0, []), [], [1])
        assert pmax_lower_bound(inst) == 0


class TestUniformCapacityBound:
    def test_is_lower_bound_on_optimum(self):
        """C** <= C* on random instances, checked against brute force."""
        import numpy as np

        from repro.graphs.independent_set import max_weight_independent_set
        from repro.scheduling.brute_force import brute_force_optimal
        from tests.conftest import random_uniform_instance

        rng = np.random.default_rng(33)
        for _ in range(15):
            inst = random_uniform_instance(rng, max_jobs=8, max_machines=3)
            mwis = max_weight_independent_set(inst.graph, inst.p)
            rest = inst.total_p - sum(inst.p[j] for j in mwis)
            if inst.m < 2 and rest:
                continue
            bound = uniform_capacity_lower_bound(inst, rest)
            opt = brute_force_optimal(inst).makespan
            assert bound <= opt, (bound, opt)

    def test_second_condition_raises_with_one_machine(self):
        inst = UniformInstance(path_graph(2), [1, 1], [1])
        with pytest.raises(InvalidInstanceError):
            uniform_capacity_lower_bound(inst, 1)

    def test_monotone_in_demand(self):
        inst = UniformInstance(path_graph(4), [3, 1, 4, 1], [3, 2, 1])
        bounds = [uniform_capacity_lower_bound(inst, d) for d in (0, 2, 5, 9)]
        assert bounds == sorted(bounds)

    def test_pmax_condition_dominates_when_one_giant(self):
        inst = UniformInstance(BipartiteGraph(3, []), [100, 1, 1], [2, 1, 1])
        bound = uniform_capacity_lower_bound(inst, 0)
        assert bound >= Fraction(100, 2)


class TestUnrelatedBound:
    def test_max_min_row(self):
        g = BipartiteGraph(2, [])
        inst = UnrelatedInstance(g, [[10, 1], [4, 8]])
        # per-job minima: 4, 1 -> bound = max(4, 5/2) = 4
        assert unrelated_lower_bound(inst) == 4

    def test_volume_dominates(self):
        g = BipartiteGraph(4, [])
        inst = UnrelatedInstance(g, [[3, 3, 3, 3], [3, 3, 3, 3]])
        assert unrelated_lower_bound(inst) == Fraction(12, 2)

    def test_respects_forbidden(self):
        g = BipartiteGraph(1, [])
        inst = UnrelatedInstance(g, [[None], [7]])
        assert unrelated_lower_bound(inst) == 7

    def test_empty(self):
        g = BipartiteGraph(0, [])
        inst = UnrelatedInstance(g, [[], []])
        assert unrelated_lower_bound(inst) == 0


class TestMinCoverTimeWithLoads:
    def test_zero_loads_reduces_to_min_cover_time(self):
        from repro.scheduling.bounds import min_cover_time_with_loads

        speeds = [Fraction(3), Fraction(2), Fraction(1)]
        for demand in (0, 1, 5, 17):
            assert min_cover_time_with_loads(speeds, [0, 0, 0], demand) == (
                min_cover_time(speeds, demand)
            )

    def test_zero_demand_is_the_frontier(self):
        from repro.scheduling.bounds import min_cover_time_with_loads

        speeds = [Fraction(2), Fraction(1)]
        assert min_cover_time_with_loads(speeds, [5, 1], 0) == Fraction(5, 2)

    def test_loaded_machines_push_the_answer_up(self):
        from repro.scheduling.bounds import min_cover_time_with_loads

        speeds = [Fraction(1), Fraction(1)]
        # 2 extra units on empty machines: T = 1; with 3 units already on
        # one machine the best is 3 on one, 2 on the other -> T = 3
        assert min_cover_time_with_loads(speeds, [0, 0], 2) == 1
        assert min_cover_time_with_loads(speeds, [3, 0], 2) == 3

    def test_exhaustive_against_definition(self):
        from repro.scheduling.bounds import min_cover_time_with_loads

        speeds = [Fraction(3), Fraction(2)]
        for loads in ([0, 0], [2, 1], [5, 0], [1, 4]):
            for demand in range(0, 8):
                t = min_cover_time_with_loads(speeds, loads, demand)
                frontier = max(
                    Fraction(l) / s for l, s in zip(loads, speeds)
                )
                assert t >= frontier
                residual = sum(
                    max(0, floor_fraction(s * t) - l)
                    for s, l in zip(speeds, loads)
                )
                assert residual >= demand
                # minimality: a slightly smaller t fails some condition
                eps = Fraction(1, 1000)
                smaller = t - eps
                if smaller >= 0 and demand > 0:
                    ok_frontier = smaller >= frontier
                    ok_residual = (
                        sum(
                            max(0, floor_fraction(s * smaller) - l)
                            for s, l in zip(speeds, loads)
                        )
                        >= demand
                    )
                    assert not (ok_frontier and ok_residual)

    def test_shape_mismatch_raises(self):
        from repro.scheduling.bounds import min_cover_time_with_loads

        with pytest.raises(InvalidInstanceError):
            min_cover_time_with_loads([Fraction(1)], [0, 0], 1)

    def test_no_machines_raises_on_demand(self):
        from repro.scheduling.bounds import min_cover_time_with_loads

        with pytest.raises(InvalidInstanceError):
            min_cover_time_with_loads([], [], 3)
        assert min_cover_time_with_loads([], [], 0) == 0


class TestUnrelatedBoundInvariant:
    def test_mutated_instance_raises_not_asserts(self):
        """The 'no eligible machine' guard must survive ``python -O``:
        an InvalidInstanceError, not a bare assert."""
        g = BipartiteGraph(2, [])
        inst = UnrelatedInstance(g, [[1, 2], [3, 4]])
        # simulate post-construction corruption through the slot
        # descriptor (the validated constructor would reject this, as a
        # deserialisation bug might not)
        broken_times = ((None, Fraction(2)), (None, Fraction(4)))
        type(inst).times.__set__(inst, broken_times)
        with pytest.raises(InvalidInstanceError):
            unrelated_lower_bound(inst)
