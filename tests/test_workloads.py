"""Tests for :mod:`repro.workloads` — scenario generation models."""

from fractions import Fraction

import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators
from repro.machines.profiles import geometric_speeds
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.engine import solve
from repro.workloads import (
    UNRELATED_MODELS,
    build_machines_instance,
    build_unrelated_instance,
    correlated,
    hardness_q,
    hardness_r,
    parse_jobs,
    parse_speeds,
    restricted_assignment,
    two_value,
    uniform_pij,
)

GRAPH = generators.crown(4)  # 8 vertices, 12 edges


class TestUnrelatedModels:
    @pytest.mark.parametrize("model", sorted(set(UNRELATED_MODELS) - {"hardness_r"}))
    def test_shape_and_positivity(self, model):
        inst = build_unrelated_instance(GRAPH, model, 3, seed=7)
        assert isinstance(inst, UnrelatedInstance)
        assert inst.m == 3 and inst.n == GRAPH.n
        assert all(t is not None and t > 0 for row in inst.times for t in row)

    @pytest.mark.parametrize("model", sorted(UNRELATED_MODELS))
    def test_deterministic_under_seed(self, model):
        m = 3  # hardness_r needs m >= 3
        a = build_unrelated_instance(GRAPH, model, m, seed=11)
        b = build_unrelated_instance(GRAPH, model, m, seed=11)
        c = build_unrelated_instance(GRAPH, model, m, seed=12)
        assert a.times == b.times
        assert a.times != c.times  # the families are genuinely random

    def test_uniform_pij_respects_range(self):
        inst = uniform_pij(GRAPH, 2, lo=5, hi=9, seed=0)
        assert all(5 <= t <= 9 for row in inst.times for t in row)
        with pytest.raises(InvalidInstanceError):
            uniform_pij(GRAPH, 2, lo=9, hi=5)

    def test_correlated_structure(self):
        p = [3] * GRAPH.n
        inst = correlated(GRAPH, 3, p=p, machine_lo=2, machine_hi=4, noise=0, seed=1)
        # noise = 0: each row is a constant multiple a_i * p_j of the base
        for row in inst.times:
            assert len({t for t in row}) == 1
            assert row[0] % 3 == 0 and 6 <= row[0] <= 12
        with pytest.raises(InvalidInstanceError):
            correlated(GRAPH, 2, noise=-1)

    def test_restricted_assignment_values_and_coverage(self):
        p = list(range(1, GRAPH.n + 1))
        inst = restricted_assignment(GRAPH, 3, p=p, allow_probability=0.3, seed=5)
        sentinel = 3 * sum(p) + 1
        for j in range(GRAPH.n):
            column = [inst.times[i][j] for i in range(3)]
            assert all(t in (Fraction(p[j]), Fraction(sentinel)) for t in column)
            # every job is eligible (non-sentinel) somewhere
            assert any(t == Fraction(p[j]) for t in column)

    def test_restricted_assignment_rejects_tiny_sentinel(self):
        with pytest.raises(InvalidInstanceError):
            restricted_assignment(GRAPH, 2, p=[9] * GRAPH.n, sentinel=4, seed=0)

    def test_two_value_support(self):
        inst = two_value(GRAPH, 2, low=2, high=7, high_probability=0.5, seed=3)
        values = {t for row in inst.times for t in row}
        assert values <= {Fraction(2), Fraction(7)}
        with pytest.raises(InvalidInstanceError):
            two_value(GRAPH, 2, low=5, high=5)

    def test_unknown_model_and_bad_params(self):
        with pytest.raises(InvalidInstanceError, match="unknown unrelated model"):
            build_unrelated_instance(GRAPH, "nope", 2)
        with pytest.raises(InvalidInstanceError, match="bad parameters"):
            build_unrelated_instance(GRAPH, "two_value", 2, bogus=1)


class TestAdversarialModels:
    def test_hardness_r_matrix(self):
        inst = hardness_r(GRAPH, d=50, m=4, seed=2)
        assert isinstance(inst, UnrelatedInstance)
        assert inst.m == 4 and inst.n == GRAPH.n
        values = {t for row in inst.times for t in row}
        assert values == {Fraction(1), Fraction(50)}
        assert all(t == Fraction(50) for t in inst.times[3])  # machines 4.. pay d
        # the instance is genuinely schedulable by the registered fallback
        assert solve(inst, algorithm="r_color_split").is_feasible()

    def test_hardness_r_default_gap_scales_with_n(self):
        inst = hardness_r(GRAPH, seed=2)
        assert Fraction(GRAPH.n * GRAPH.n) in {t for row in inst.times for t in row}

    def test_hardness_q_geometry(self):
        inst = hardness_q(GRAPH, k=2, m=3, seed=4)
        assert isinstance(inst, UniformInstance)
        assert inst.has_unit_jobs
        assert inst.m == 3
        # Theorem 8 speeds: 49k^2, 5k, 1
        assert inst.speeds[:3] == (Fraction(196), Fraction(10), Fraction(1))
        assert inst.n > GRAPH.n  # gadget vertices were attached

    def test_hardness_q_deterministic(self):
        a = hardness_q(GRAPH, seed=9)
        b = hardness_q(GRAPH, seed=9)
        assert a.n == b.n and a.speeds == b.speeds
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_hardness_needs_three_vertices(self):
        with pytest.raises(InvalidInstanceError):
            hardness_r(generators.empty_graph(2), seed=0)


class TestMachinesBlock:
    def test_unrelated_block(self):
        inst = build_machines_instance(
            GRAPH,
            {"kind": "unrelated", "model": "two_value", "m": 3, "high": 9},
            seed=1,
        )
        assert isinstance(inst, UnrelatedInstance) and inst.m == 3

    def test_uniform_speeds_block(self):
        inst = build_machines_instance(
            GRAPH, {"kind": "uniform", "speeds": "3,3/2,1"}, p=[2] * GRAPH.n
        )
        assert isinstance(inst, UniformInstance)
        assert inst.speeds == (Fraction(3), Fraction(3, 2), Fraction(1))
        assert inst.p == tuple([2] * GRAPH.n)

    def test_uniform_profile_block(self):
        inst = build_machines_instance(
            GRAPH, {"kind": "uniform", "profile": "geometric", "m": 4}
        )
        assert inst.speeds == geometric_speeds(4)
        assert inst.has_unit_jobs  # p=None defaults to unit jobs

    def test_uniform_hardness_q_block(self):
        inst = build_machines_instance(
            GRAPH, {"kind": "uniform", "model": "hardness_q", "k": 1}, seed=0
        )
        assert isinstance(inst, UniformInstance) and inst.m == 3

    def test_bad_blocks(self):
        with pytest.raises(InvalidInstanceError, match="kind"):
            build_machines_instance(GRAPH, {"kind": "identical"})
        with pytest.raises(InvalidInstanceError, match="JSON object"):
            build_machines_instance(GRAPH, "unrelated")
        with pytest.raises(InvalidInstanceError, match="'speeds' or 'profile'"):
            build_machines_instance(GRAPH, {"kind": "uniform"})
        with pytest.raises(InvalidInstanceError, match="not both"):
            build_machines_instance(
                GRAPH,
                {"kind": "uniform", "speeds": "1,1", "profile": "identical"},
            )
        with pytest.raises(InvalidInstanceError, match="unknown speed profile"):
            build_machines_instance(GRAPH, {"kind": "uniform", "profile": "warp"})
        with pytest.raises(InvalidInstanceError, match="unknown uniform model"):
            build_machines_instance(GRAPH, {"kind": "uniform", "model": "nope"})


class TestParsing:
    def test_parse_speeds_ok(self):
        assert parse_speeds("1,3,3/2") == [Fraction(3), Fraction(3, 2), Fraction(1)]
        assert parse_speeds([1, "2"]) == [Fraction(2), Fraction(1)]

    def test_parse_speeds_diagnostics(self):
        """Regression: malformed speeds raise InvalidInstanceError (a CLI
        diagnostic), never a raw ValueError traceback."""
        for bad in ("", "1,,2", "fast", "1/0"):
            with pytest.raises(InvalidInstanceError):
                parse_speeds(bad)
        with pytest.raises(InvalidInstanceError):
            parse_speeds([])

    def test_parse_jobs_ok(self):
        assert parse_jobs("unit", 3, None) == [1, 1, 1]
        assert parse_jobs([1, "2", 3], 3, None) == [1, 2, 3]
        drawn = parse_jobs("heavy_tailed", 5, 7)
        assert drawn == parse_jobs("heavy_tailed", 5, 7)  # seeded
        assert len(drawn) == 5

    def test_parse_jobs_diagnostics(self):
        with pytest.raises(InvalidInstanceError):
            parse_jobs("mystery", 3, None)
        with pytest.raises(InvalidInstanceError):
            parse_jobs(["x"], 1, None)


class TestConflictGraphGenerators:
    def test_complete_multipartite_from_sizes(self):
        from repro.workloads import complete_multipartite_graph

        g = complete_multipartite_graph([2, 3], free=1)
        assert g.n == 6 and len(g.parts()) == 2
        assert g.free_vertices() == [5]

    def test_random_complete_multipartite_deterministic(self):
        from repro.workloads import random_complete_multipartite

        a = random_complete_multipartite(10, 3, free=2, seed=4)
        b = random_complete_multipartite(10, 3, free=2, seed=4)
        assert a == b
        # n counts the classified vertices; free vertices are appended
        assert a.n == 12 and len(a.parts()) == 3
        assert sum(len(p) for p in a.parts()) == 10
        assert len(a.free_vertices()) == 2
        assert a != random_complete_multipartite(10, 3, free=2, seed=5)

    def test_block_chain(self):
        from repro.workloads import block_chain

        g = block_chain([3, 2, 4])
        assert g.n == 7 and len(g.blocks()) == 3

    def test_random_block_graph_deterministic_and_valid(self):
        from repro.graphs.structure import is_block_structure
        from repro.workloads import random_block_graph

        a = random_block_graph(14, max_block=4, seed=9)
        assert a.n == 14
        assert all(len(b) <= 4 for b in a.blocks())
        assert is_block_structure(a)
        assert a == random_block_graph(14, max_block=4, seed=9)

    def test_random_eligibility_shapes(self):
        from repro.workloads import random_eligibility

        masks = random_eligibility(6, 4, choices=2, seed=0)
        assert len(masks) == 6
        assert all(len(m) == 2 and m == sorted(m) for m in masks)
        assert all(0 <= i < 4 for m in masks for i in m)
        # choices >= m leaves every job unrestricted (None entries)
        assert random_eligibility(6, 2, choices=2, seed=0) == [None] * 6

    def test_machines_block_eligibility(self):
        inst = build_machines_instance(
            GRAPH,
            {"kind": "uniform", "profile": "geometric", "m": 4,
             "eligibility": {"choices": 2}},
            seed=3,
        )
        assert isinstance(inst, UniformInstance)
        assert inst.has_eligibility

    def test_eligibility_rejected_off_uniform(self):
        with pytest.raises(InvalidInstanceError, match="eligibility"):
            build_machines_instance(
                GRAPH,
                {"kind": "unrelated", "m": 3,
                 "eligibility": {"choices": 2}},
                seed=0,
            )
        with pytest.raises(InvalidInstanceError, match="eligibility"):
            build_machines_instance(
                GRAPH,
                {"kind": "uniform", "model": "hardness_q", "k": 1,
                 "eligibility": {"choices": 2}},
                seed=0,
            )

    def test_malformed_eligibility_block(self):
        with pytest.raises(InvalidInstanceError):
            build_machines_instance(
                GRAPH,
                {"kind": "uniform", "speeds": "2,1",
                 "eligibility": {"flavor": 2}},
                seed=0,
            )


class TestSuiteIntegration:
    def test_unrelated_workload_suite_names_and_determinism(self):
        from repro.analysis.suites import unrelated_workload_suite

        suite = unrelated_workload_suite(n=6, m=2, seeds=2, seed=0)
        names = [name for name, _ in suite]
        assert len(names) == len(set(names))
        assert all("/" in name for name in names)
        again = unrelated_workload_suite(n=6, m=2, seeds=2, seed=0)
        assert [inst.times for _, inst in suite] == [
            inst.times for _, inst in again
        ]

    def test_summarize_models_groups_by_prefix(self):
        from repro.analysis.suites import (
            model_ratio_table,
            summarize_models,
            unrelated_workload_suite,
            workload_model_of,
        )
        from repro.runtime import BatchRunner

        assert workload_model_of("two_value/path-n6-s0") == "two_value"
        assert workload_model_of("unprefixed") == "?"
        suite = unrelated_workload_suite(
            n=6, m=2, models=("two_value", "uniform_pij"),
            graph_families=("path",), seeds=1,
        )
        results = BatchRunner().run_to_list(suite)
        rows = summarize_models(results)
        assert [row[0] for row in rows] == ["two_value", "uniform_pij"]
        table = model_ratio_table(results, title="t")
        assert "two_value" in table and "worst ratio" in table
