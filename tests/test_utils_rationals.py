"""Tests for exact rational helpers."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.utils.rationals import (
    as_fraction,
    as_fraction_tuple,
    ceil_fraction,
    floor_fraction,
    lcm_of_denominators,
    rescale_to_integers,
)


class TestAsFraction:
    def test_int_passthrough(self):
        assert as_fraction(7) == Fraction(7)

    def test_fraction_identity(self):
        f = Fraction(3, 7)
        assert as_fraction(f) is f

    def test_float_uses_decimal_meaning(self):
        # 0.1 means one tenth, not the binary double closest to it
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_string(self):
        assert as_fraction("3/4") == Fraction(3, 4)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("inf"))
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            as_fraction([1])  # type: ignore[arg-type]

    def test_tuple_helper(self):
        assert as_fraction_tuple([1, "1/2"]) == (Fraction(1), Fraction(1, 2))


class TestFloorCeil:
    @given(st.integers(-10**9, 10**9), st.integers(1, 10**6))
    def test_floor_matches_python(self, num, den):
        f = Fraction(num, den)
        assert floor_fraction(f) == num // den

    @given(st.integers(-10**9, 10**9), st.integers(1, 10**6))
    def test_ceil_matches_python(self, num, den):
        f = Fraction(num, den)
        assert ceil_fraction(f) == -((-num) // den)

    def test_int_inputs(self):
        assert floor_fraction(5) == 5
        assert ceil_fraction(5) == 5

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**4))
    def test_floor_le_value_le_ceil(self, num, den):
        f = Fraction(num, den)
        assert floor_fraction(f) <= f <= ceil_fraction(f)


class TestRescale:
    def test_lcm_of_denominators(self):
        vals = [Fraction(1, 2), Fraction(1, 3), 5]
        assert lcm_of_denominators(vals) == 6

    def test_rescale_exact(self):
        vals = [Fraction(1, 2), Fraction(2, 3), 1]
        scaled, scale = rescale_to_integers(vals)
        assert scale == 6
        assert scaled == [3, 4, 6]
        for v, s in zip(vals, scaled):
            assert Fraction(s, scale) == v

    @given(
        st.lists(
            st.fractions(min_value=0, max_value=100, max_denominator=50),
            min_size=1,
            max_size=8,
        )
    )
    def test_rescale_roundtrip(self, vals):
        scaled, scale = rescale_to_integers(vals)
        assert scale >= 1
        assert all(isinstance(s, int) for s in scaled)
        for v, s in zip(vals, scaled):
            assert Fraction(s, scale) == v

    def test_all_ints_scale_one(self):
        scaled, scale = rescale_to_integers([1, 2, 3])
        assert scale == 1 and scaled == [1, 2, 3]
