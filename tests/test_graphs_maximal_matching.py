"""Tests for :mod:`repro.graphs.maximal_matching` (Theorem 17 support)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.matching import maximum_matching_size
from repro.graphs.maximal_matching import (
    greedy_maximal_matching,
    is_maximal_matching,
    matching_size,
    minimum_maximal_matching_size,
    small_maximal_matching,
)
from repro.random_graphs.gilbert import gnnp


class TestIsMaximalMatching:
    def test_empty_graph(self):
        g = generators.empty_graph(3)
        assert is_maximal_matching(g, [-1, -1, -1])

    def test_missing_partner_symmetry(self):
        g = BipartiteGraph(2, [(0, 1)])
        assert not is_maximal_matching(g, [1, -1])

    def test_non_edge_rejected(self):
        g = BipartiteGraph(4, [(0, 1), (2, 3)])
        assert not is_maximal_matching(g, [2, -1, 0, -1])

    def test_extendable_rejected(self):
        g = BipartiteGraph(2, [(0, 1)])
        assert not is_maximal_matching(g, [-1, -1])

    def test_valid_maximal(self):
        g = generators.path_graph(4)  # 0-1-2-3
        assert is_maximal_matching(g, [1, 0, 3, 2])
        assert is_maximal_matching(g, [-1, 2, 1, -1])  # middle edge dominates

    def test_wrong_length(self):
        g = BipartiteGraph(2, [(0, 1)])
        assert not is_maximal_matching(g, [1, 0, -1])


class TestGreedyMaximal:
    @pytest.mark.parametrize(
        "graph",
        [
            generators.path_graph(7),
            generators.complete_bipartite(3, 4),
            generators.crown(4),
            generators.matching_graph(5),
            generators.star(6),
        ],
    )
    def test_always_maximal(self, graph):
        mate = greedy_maximal_matching(graph)
        assert is_maximal_matching(graph, mate)

    def test_respects_custom_order(self):
        g = generators.path_graph(3)  # edges (0,1), (1,2)
        mate = greedy_maximal_matching(g, order=[(1, 2), (0, 1)])
        assert mate[1] == 2 and mate[0] == -1


class TestSmallMaximal:
    @pytest.mark.parametrize(
        "graph",
        [
            generators.path_graph(8),
            generators.complete_bipartite(4, 4),
            generators.crown(5),
            generators.double_star(3, 3),
            generators.caterpillar(4, 2),
        ],
    )
    def test_always_maximal(self, graph):
        mate = small_maximal_matching(graph)
        assert is_maximal_matching(graph, mate)

    def test_star_uses_single_edge(self):
        # beta(star) = 1: matching the centre dominates everything
        mate = small_maximal_matching(generators.star(6))
        assert matching_size(mate) == 1

    def test_double_star_bridge_edge(self):
        # the bridge edge covers both centres and dominates everything
        g = generators.double_star(3, 3)
        assert matching_size(small_maximal_matching(g)) == 1


class TestMinimumMaximal:
    def test_single_edge(self):
        assert minimum_maximal_matching_size(BipartiteGraph(2, [(0, 1)])) == 1

    def test_star_is_one(self):
        assert minimum_maximal_matching_size(generators.star(5)) == 1

    def test_double_star_is_one(self):
        # the bridge edge alone dominates every other edge
        assert minimum_maximal_matching_size(generators.double_star(3, 3)) == 1

    def test_path4(self):
        # P4 = 0-1-2-3: middle edge (1,2) alone is maximal
        assert minimum_maximal_matching_size(generators.path_graph(4)) == 1

    def test_path5(self):
        assert minimum_maximal_matching_size(generators.path_graph(5)) == 2

    def test_perfect_matching_graph(self):
        # disjoint edges: every edge must be picked
        assert minimum_maximal_matching_size(generators.matching_graph(4)) == 4

    def test_complete_bipartite(self):
        # K_{a,b}: any maximal matching has exactly min(a, b) edges
        assert minimum_maximal_matching_size(generators.complete_bipartite(3, 5)) == 3

    def test_empty(self):
        assert minimum_maximal_matching_size(generators.empty_graph(4)) == 0


def _nx_minimum_maximal_matching(graph: BipartiteGraph) -> int:
    """Oracle: brute force over all maximal matchings via networkx edges."""
    edges = list(graph.edges())
    best = len(edges)
    n = graph.n

    def recurse(idx: int, covered: set, size: int):
        nonlocal best
        if size >= best:
            return
        rest = [e for e in edges[idx:]]
        open_edges = [
            (u, v) for u, v in edges if u not in covered and v not in covered
        ]
        if not open_edges:
            best = min(best, size)
            return
        u, v = open_edges[0]
        for a, b in [(u, w) for w in graph.neighbors(u) if w not in covered] + [
            (v, w) for w in graph.neighbors(v) if w not in covered and w != u
        ]:
            recurse(idx, covered | {a, b}, size + 1)

    recurse(0, set(), 0)
    return best


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 6), p=st.floats(0.1, 0.9), seed=st.integers(0, 500))
def test_property_bnb_matches_exhaustive(n, p, seed):
    g = gnnp(n, p, seed=seed)
    assert minimum_maximal_matching_size(g) == _nx_minimum_maximal_matching(g)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 10), p=st.floats(0.05, 0.8), seed=st.integers(0, 500))
def test_property_sandwich(n, p, seed):
    """beta <= heuristic <= mu, and every output is maximal."""
    g = gnnp(n, p, seed=seed)
    mu = maximum_matching_size(g)
    small = matching_size(small_maximal_matching(g))
    greedy = matching_size(greedy_maximal_matching(g))
    beta = minimum_maximal_matching_size(g)
    assert beta <= small <= mu
    assert beta <= greedy <= mu
    assert is_maximal_matching(g, small_maximal_matching(g))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 8), seed=st.integers(0, 500))
def test_property_nx_oracle_maximum(n, seed):
    """The greedy matchings never exceed networkx's maximum matching."""
    g = gnnp(n, 0.4, seed=seed)
    nxg = g.to_networkx()
    mu_nx = len(nx.bipartite.maximum_matching(
        nxg, top_nodes=[v for v in range(g.n) if g.side[v] == 0]
    )) // 2
    assert matching_size(greedy_maximal_matching(g)) <= mu_nx
