"""Shared strategies and helpers for the differential-testing harness.

The strategies span the v3 instance vocabulary: every conflict-graph
kind (bipartite / complete multipartite / block), every machine kind
(identical / integer-speed / rational-speed uniform), unit and mixed
job sizes, and optional per-job eligibility masks.  Each differential
test draws from these and runs the rational reference, the integer
kernel, and the numpy kernel on the *same* instance, asserting
byte-identical results.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from fractions import Fraction
from typing import Iterator

from hypothesis import strategies as st

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.conflict import BlockGraph, CompleteMultipartiteGraph
from repro.scheduling.instance import UniformInstance


@contextmanager
def fastpath_mode(value: str | None) -> Iterator[None]:
    """Temporarily pin ``REPRO_FASTPATH`` (``None`` = unset = auto)."""
    old = os.environ.get("REPRO_FASTPATH")
    if value is None:
        os.environ.pop("REPRO_FASTPATH", None)
    else:
        os.environ["REPRO_FASTPATH"] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_FASTPATH", None)
        else:
            os.environ["REPRO_FASTPATH"] = old


@st.composite
def bipartite_graphs(draw: st.DrawFn, max_side: int = 8) -> BipartiteGraph:
    """Random two-sided graphs, including empty sides and no edges."""
    a = draw(st.integers(0, max_side))
    b = draw(st.integers(0, max_side))
    pairs = [(u, a + v) for u in range(a) for v in range(b)]
    edges = (
        draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs)))
        if pairs
        else []
    )
    return BipartiteGraph(a + b, edges, side=[0] * a + [1] * b)


@st.composite
def _partitioned(draw: st.DrawFn, max_n: int, max_parts: int) -> tuple[int, list[list[int]]]:
    n = draw(st.integers(1, max_n))
    k = draw(st.integers(1, min(max_parts, n)))
    labels = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    groups: list[list[int]] = [[] for _ in range(k)]
    for v, lab in enumerate(labels):
        groups[lab].append(v)
    return n, [g for g in groups if g]


@st.composite
def complete_multipartite_graphs(
    draw: st.DrawFn, max_n: int = 12, max_parts: int = 4
) -> CompleteMultipartiteGraph:
    n, parts = draw(_partitioned(max_n, max_parts))
    return CompleteMultipartiteGraph(n, parts)


@st.composite
def block_graphs(draw: st.DrawFn, max_n: int = 12, max_blocks: int = 4) -> BlockGraph:
    n, blocks = draw(_partitioned(max_n, max_blocks))
    return BlockGraph(n, blocks)


def conflict_graphs(max_n: int = 12) -> st.SearchStrategy:
    """All v3 conflict-graph kinds under one strategy."""
    return st.one_of(
        bipartite_graphs(max_side=max_n // 2),
        complete_multipartite_graphs(max_n=max_n),
        block_graphs(max_n=max_n),
    )


@st.composite
def speed_tuples(
    draw: st.DrawFn, m: int | None = None, max_m: int = 5
) -> tuple[Fraction, ...]:
    """Non-increasing positive speeds across the machine kinds."""
    if m is None:
        m = draw(st.integers(1, max_m))
    kind = draw(st.sampled_from(["identical", "integer", "rational"]))
    if kind == "identical":
        s = Fraction(draw(st.integers(1, 4)))
        return (s,) * m
    if kind == "integer":
        vals = [Fraction(draw(st.integers(1, 9))) for _ in range(m)]
    else:
        vals = [
            Fraction(draw(st.integers(1, 9)), draw(st.integers(1, 9)))
            for _ in range(m)
        ]
    return tuple(sorted(vals, reverse=True))


@st.composite
def uniform_instances(
    draw: st.DrawFn,
    max_n: int = 12,
    max_m: int = 5,
    with_eligibility: bool = False,
) -> UniformInstance:
    """A uniform instance over any graph kind and machine kind."""
    graph = draw(conflict_graphs(max_n=max_n))
    n = graph.n
    if draw(st.booleans()):
        p = [1] * n  # the paper's p_j = 1 restriction
    else:
        p = draw(st.lists(st.integers(1, 8), min_size=n, max_size=n))
    speeds = draw(speed_tuples(max_m=max_m))
    eligible = None
    if with_eligibility and n and draw(st.booleans()):
        m = len(speeds)
        eligible = [
            None
            if draw(st.booleans())
            else sorted(
                draw(
                    st.sets(
                        st.integers(0, m - 1), min_size=1, max_size=m
                    )
                )
            )
            for _ in range(n)
        ]
    return UniformInstance(graph, p, speeds, eligible=eligible)


@st.composite
def greedy_cases(
    draw: st.DrawFn,
) -> tuple[UniformInstance, list[int], list[int]]:
    """(instance, job subset, non-empty machine subset) for list scheduling."""
    inst = draw(uniform_instances())
    n, m = inst.n, inst.m
    jobs = draw(st.lists(st.integers(0, n - 1), unique=True)) if n else []
    machines = draw(
        st.lists(st.integers(0, m - 1), unique=True, min_size=1, max_size=m)
    )
    return inst, jobs, machines


@st.composite
def run_heavy_speed_tuples(draw: st.DrawFn) -> tuple[Fraction, ...]:
    """Speeds forming few contiguous groups of equal values.

    The event-calendar greedy treats each maximal equal-speed group as
    one arithmetic progression of completion times, so the interesting
    boundaries are group switches.  This draws the edge cases directly:
    a single group (all machines equal, including m = 1) and two- or
    three-group ladders whose switch a long run must straddle.
    """
    n_groups = draw(st.sampled_from([1, 1, 2, 3]))
    values = sorted(
        draw(
            st.lists(
                st.integers(1, 6),
                min_size=n_groups,
                max_size=n_groups,
                unique=True,
            )
        ),
        reverse=True,
    )
    speeds: list[Fraction] = []
    for value in values:
        speeds.extend([Fraction(value)] * draw(st.integers(1, 3)))
    return tuple(speeds)


@st.composite
def run_heavy_uniform_instances(draw: st.DrawFn) -> UniformInstance:
    """Instances whose LPT order is dominated by long equal-``p_j`` runs.

    Few distinct job sizes with large multiplicities make the run
    lengths comparable to *n*, so the batched water-level placement in
    the kernels (not the one-job heap step) carries most of the work,
    and runs regularly span the point where the water level crosses a
    speed-group boundary.
    """
    speeds = draw(run_heavy_speed_tuples())
    n_sizes = draw(st.integers(1, 3))
    sizes = draw(
        st.lists(
            st.integers(1, 9), min_size=n_sizes, max_size=n_sizes, unique=True
        )
    )
    p: list[int] = []
    for size in sizes:
        p.extend([size] * draw(st.integers(3, 12)))
    n = len(p)
    graph = BipartiteGraph(n, [], side=[0] * n)
    return UniformInstance(graph, p, speeds)


@st.composite
def run_heavy_greedy_cases(
    draw: st.DrawFn,
) -> tuple[UniformInstance, list[int], list[int]]:
    """Run-heavy (instance, jobs, machines) triples for the greedy tiers.

    Jobs stay near-complete so the equal-``p_j`` runs survive into the
    subset; machine lists may be permuted because the position-based
    tie-break is part of the pinned contract.
    """
    inst = draw(run_heavy_uniform_instances())
    n, m = inst.n, inst.m
    jobs = list(range(n))
    if draw(st.booleans()):
        dropped = draw(st.sets(st.integers(0, n - 1), max_size=2))
        jobs = [j for j in jobs if j not in dropped]
    machines = list(range(m))
    if draw(st.booleans()):
        machines = list(draw(st.permutations(machines)))
    return inst, jobs, machines
