"""End-to-end differential: solver and oracle behave identically with
the fast path on, off, and int-only.

The hot-loop tests prove kernel equivalence in isolation; these prove
the *composition* — ranked dispatch, the paper algorithms, and the
branch-and-bound oracle all sit on top of the dispatched hot loops, so
any divergence the unit-level tests missed (wiring, caching, mode
handling) surfaces here as a schedule or node-count mismatch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from diffutil import fastpath_mode, uniform_instances
from repro.certify.oracle import certified_optimal
from repro.engine import solve
from repro.exceptions import ReproError


@given(inst=uniform_instances(max_n=10, max_m=4, with_eligibility=True))
def test_solve_identical_across_modes(inst):
    outcomes = {}
    for mode in ("0", "int", None):
        with fastpath_mode(mode):
            try:
                schedule = solve(inst)
            except ReproError as exc:
                outcomes[mode] = ("raise", type(exc).__name__)
            else:
                outcomes[mode] = (
                    list(schedule.assignment),
                    schedule.makespan,
                    schedule.is_feasible(),
                )
    assert outcomes["0"] == outcomes["int"] == outcomes[None]


@settings(max_examples=15)
@given(inst=uniform_instances(max_n=7, max_m=3))
def test_oracle_identical_across_modes(inst):
    """The exact oracle: same makespan, same schedule, same node count —
    the bound it prunes with is a dispatched hot loop, so a kernel that
    returned a different (even if also-correct) bound would change the
    search tree and show up in ``nodes``."""
    outcomes = {}
    for mode in ("0", "int", None):
        with fastpath_mode(mode):
            try:
                result = certified_optimal(inst)
            except ReproError as exc:
                outcomes[mode] = ("raise", type(exc).__name__)
            else:
                outcomes[mode] = (
                    result.makespan,
                    list(result.schedule.assignment),
                    result.nodes,
                    result.proof,
                    result.seeded_from,
                )
    assert outcomes["0"] == outcomes["int"] == outcomes[None]


def test_mode_parsing():
    from repro import fastpath

    cases = {
        "0": "off",
        "off": "off",
        "FALSE": "off",
        " no ": "off",
        "int": "int",
        "1": "auto",
        "auto": "auto",
        "": "auto",
    }
    for raw, want in cases.items():
        with fastpath_mode(raw):
            assert fastpath.fastpath_mode() == want, raw
    with fastpath_mode(None):
        assert fastpath.fastpath_mode() == "auto"
        assert fastpath.enabled()
    with fastpath_mode("0"):
        assert not fastpath.enabled()


def test_rs005_style_import_guard():
    """kernels_numpy must be importable and report cleanly even if numpy
    were missing; with numpy present the guard is exercised via the
    FastpathUnavailable overflow paths instead."""
    from repro.fastpath import kernels_numpy

    assert isinstance(kernels_numpy.numpy_available(), bool)
    if kernels_numpy.numpy_available():
        with pytest.raises(kernels_numpy.FastpathUnavailable):
            kernels_numpy.capacity_at_numpy([2**63], 1, 1)
        with pytest.raises(kernels_numpy.FastpathUnavailable):
            kernels_numpy.assign_group_greedy_numpy(
                [2**63], [1], [0], [0]
            )
