"""Replay the frozen corpus against every fast-path tier.

The corpus (``tests/fixtures/differential/corpus.jsonl``, regenerated
by ``regen_corpus.py``) freezes ~50 cross-kind instances together with
the makespan the reference tier produced for them.  Failures here
reproduce immediately from a committed file — no Hypothesis shrinking,
no randomness — which is exactly what you want when a kernel change
breaks equivalence.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

import pytest

from diffutil import fastpath_mode
from repro import fastpath
from repro.engine import solve
from repro.fastpath import kernels_int, kernels_numpy
from repro.graphs import matching
from repro.graphs.bipartite import BipartiteGraph
from repro.io.serialization import instance_from_dict
from repro.scheduling import bounds, list_scheduling
from repro.scheduling.instance import UniformInstance

CORPUS = (
    Path(__file__).resolve().parents[1]
    / "fixtures"
    / "differential"
    / "corpus.jsonl"
)


def _records():
    with CORPUS.open(encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                yield json.loads(line)


RECORDS = list(_records())


def test_corpus_shape():
    """The corpus stays ~50 strong and spans the v3 vocabulary."""
    assert len(RECORDS) >= 45
    tags = [r["id"] for r in RECORDS]
    for needle in (
        "uniform-bipartite",
        "uniform-complete_multipartite",
        "uniform-block",
        "eligible-",
        "unrelated-",
        "runheavy-single-group",
        "runheavy-two-group",
        "runheavy-three-group",
        "-unit-",
        "-mixed-",
        "-identical-",
        "-rational-",
    ):
        assert any(needle in t for t in tags), f"corpus lost its {needle} coverage"


@pytest.mark.parametrize("record", RECORDS, ids=[r["id"] for r in RECORDS])
def test_corpus_end_to_end_equivalence(record):
    """engine.solve agrees with the frozen reference makespan in every
    fast-path mode, and the assignments coincide across modes."""
    inst = instance_from_dict(record["instance"])
    expected = Fraction(record["expected_makespan"])
    outcomes = {}
    for mode in ("0", "int", None):
        with fastpath_mode(mode):
            schedule = solve(inst)
        outcomes[mode] = (list(schedule.assignment), schedule.makespan)
        assert schedule.makespan == expected, (
            f"{record['id']}: mode={mode!r} makespan {schedule.makespan} "
            f"!= frozen {expected}"
        )
        assert schedule.is_feasible() == record["feasible"]
    assert outcomes["0"] == outcomes["int"] == outcomes[None]


@pytest.mark.parametrize(
    "record",
    [r for r in RECORDS if r["instance"]["kind"] == "uniform_instance"],
    ids=[
        r["id"]
        for r in RECORDS
        if r["instance"]["kind"] == "uniform_instance"
    ],
)
def test_corpus_hot_loops_byte_identical(record):
    """The three hot loops agree tier-by-tier on every frozen instance."""
    inst = instance_from_dict(record["instance"])
    assert isinstance(inst, UniformInstance)
    jobs = list(range(inst.n))
    machines = list(range(inst.m))
    view = fastpath.int_view(inst)
    assert view.verify()

    # greedy list scheduling
    with fastpath_mode("0"):
        ref_assign = list_scheduling.assign_group_greedy(inst, jobs, machines)
    ki = kernels_int.assign_group_greedy_int(
        view.p, view.speeds_scaled, jobs, machines
    )
    assert list(ki.items()) == list(ref_assign.items())
    if kernels_numpy.numpy_available():
        kn = kernels_numpy.assign_group_greedy_numpy(
            view.p, view.speeds_scaled, jobs, machines
        )
        assert list(kn.items()) == list(ref_assign.items())

    # cover-time bounds at the instance's own demand
    demand = inst.total_p
    with fastpath_mode("0"):
        ref_cover = bounds.min_cover_time(inst.speeds, demand)
        ref_loads = bounds.min_cover_time_with_loads(
            inst.speeds, [1] * inst.m, demand
        )
    scaled, scale = fastpath.scaled_speeds(tuple(inst.speeds))
    assert kernels_int.min_cover_time_int(scaled, scale, demand) == ref_cover
    assert (
        kernels_int.min_cover_time_with_loads_int(
            scaled, scale, [1] * inst.m, demand
        )
        == ref_loads
    )
    if kernels_numpy.numpy_available() and demand > 0:
        assert (
            kernels_numpy.min_cover_time_numpy(scaled, scale, demand)
            == ref_cover
        )
        assert (
            kernels_numpy.min_cover_time_with_loads_numpy(
                scaled, scale, [1] * inst.m, demand
            )
            == ref_loads
        )

    # matching, where the graph is bipartite
    if isinstance(inst.graph, BipartiteGraph):
        with fastpath_mode("0"):
            ref_mate = matching.hopcroft_karp(inst.graph)
        assert kernels_int.hopcroft_karp_int(inst.graph) == ref_mate
        if kernels_numpy.numpy_available():
            assert kernels_numpy.hopcroft_karp_numpy(inst.graph) == ref_mate
