"""Differential proof: greedy list-scheduling tiers are byte-identical.

Tie-break policy (pinned in :mod:`repro.fastpath.kernels_int`): jobs in
LPT order with ties by job id; each job goes to the machine minimising
the exact completion time, ties to the earliest position in the
``machines`` argument.  Assignments are compared as ordered item lists,
so even insertion order (= placement order) must coincide.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from diffutil import fastpath_mode, greedy_cases, run_heavy_greedy_cases
from repro import fastpath
from repro.exceptions import InvalidInstanceError
from repro.fastpath import kernels_int, kernels_numpy
from repro.scheduling import list_scheduling


@given(case=greedy_cases())
def test_greedy_tiers_byte_identical(case):
    inst, jobs, machines = case
    with fastpath_mode("0"):
        ref = list_scheduling.assign_group_greedy(inst, jobs, machines)

    view = fastpath.int_view(inst)
    ki = kernels_int.assign_group_greedy_int(
        view.p, view.speeds_scaled, jobs, machines
    )
    assert list(ki.items()) == list(ref.items())

    if kernels_numpy.numpy_available():
        kn = kernels_numpy.assign_group_greedy_numpy(
            view.p, view.speeds_scaled, jobs, machines
        )
        assert list(kn.items()) == list(ref.items())

    with fastpath_mode("int"):
        assert list(
            list_scheduling.assign_group_greedy(inst, jobs, machines).items()
        ) == list(ref.items())
    with fastpath_mode(None):
        assert list(
            list_scheduling.assign_group_greedy(inst, jobs, machines).items()
        ) == list(ref.items())


@given(case=greedy_cases())
def test_greedy_load_vectors_match(case):
    """Same per-machine loads across tiers (redundant with byte equality,
    but failure output localises which machine diverged)."""
    inst, jobs, machines = case
    with fastpath_mode("0"):
        ref = list_scheduling.assign_group_greedy(inst, jobs, machines)
    with fastpath_mode(None):
        fast = list_scheduling.assign_group_greedy(inst, jobs, machines)
    for i in machines:
        ref_load = sum(inst.p[j] for j, mi in ref.items() if mi == i)
        fast_load = sum(inst.p[j] for j, mi in fast.items() if mi == i)
        assert ref_load == fast_load, f"machine {i} load diverged"


def test_empty_machine_group_error_matches_reference():
    """All tiers raise the same typed error on jobs with no machines."""
    from repro.graphs.bipartite import BipartiteGraph
    from repro.scheduling.instance import UniformInstance

    inst = UniformInstance(BipartiteGraph(2, [(0, 1)]), [1, 1], [1])
    for mode in ("0", "int", None):
        with fastpath_mode(mode):
            with pytest.raises(InvalidInstanceError):
                list_scheduling.assign_group_greedy(inst, [0, 1], [])
            assert list_scheduling.assign_group_greedy(inst, [], []) == {}


@given(case=run_heavy_greedy_cases())
def test_run_heavy_tiers_byte_identical(case):
    """Long equal-p_j runs over grouped speeds — the event-calendar
    batching inputs — still produce byte-identical assignments."""
    inst, jobs, machines = case
    with fastpath_mode("0"):
        ref = list_scheduling.assign_group_greedy(inst, jobs, machines)

    view = fastpath.int_view(inst)
    ki = kernels_int.assign_group_greedy_int(
        view.p, view.speeds_scaled, jobs, machines
    )
    assert list(ki.items()) == list(ref.items())

    if kernels_numpy.numpy_available():
        kn = kernels_numpy.assign_group_greedy_numpy(
            view.p, view.speeds_scaled, jobs, machines
        )
        assert list(kn.items()) == list(ref.items())


@given(case=run_heavy_greedy_cases())
def test_run_heavy_numpy_batch_path_byte_identical(case):
    """Force the vectorized water-level batch (normally gated behind
    runs of >= _GREEDY_RUN_MIN jobs) onto hypothesis-sized runs so the
    np.lexsort placement itself is differentially tested, not just the
    heap fallback."""
    if not kernels_numpy.numpy_available():
        pytest.skip("numpy not importable")
    inst, jobs, machines = case
    with fastpath_mode("0"):
        ref = list_scheduling.assign_group_greedy(inst, jobs, machines)
    view = fastpath.int_view(inst)
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(kernels_numpy, "_GREEDY_RUN_MIN", 2)
        kn = kernels_numpy.assign_group_greedy_numpy(
            view.p, view.speeds_scaled, jobs, machines
        )
    assert list(kn.items()) == list(ref.items())


def test_numpy_round_robin_closed_form_matches():
    """The single-speed unit-job closed form (the paper's p_j = 1 case)
    must equal the heap path exactly, including machine order."""
    if not kernels_numpy.numpy_available():
        pytest.skip("numpy not importable")
    from repro.graphs.bipartite import BipartiteGraph
    from repro.scheduling.instance import UniformInstance

    n, m = 4 * fastpath.GREEDY_NUMPY_MIN_JOBS, 7
    g = BipartiteGraph(n, [], side=[0] * n)
    inst = UniformInstance(g, [1] * n, [2] * m)
    jobs = list(range(n))
    machines = [3, 0, 5, 1, 6, 2, 4]  # deliberately shuffled positions
    view = fastpath.int_view(inst)
    ref = kernels_int.assign_group_greedy_int(
        view.p, view.speeds_scaled, jobs, machines
    )
    kn = kernels_numpy.assign_group_greedy_numpy(
        view.p, view.speeds_scaled, jobs, machines
    )
    assert list(kn.items()) == list(ref.items())
    with fastpath_mode(None):
        assert list(
            list_scheduling.assign_group_greedy(inst, jobs, machines).items()
        ) == list(ref.items())
