"""Property tests for the integer-normalization layer (the IntView).

The certificate the whole fast path rests on: ``speeds_scaled[i] /
scale`` round-trips *exactly* to ``speeds[i]``, ``scale`` is the true
LCM of the denominators (minimal — a coarser common multiple would
also round-trip), and nothing silently truncates when the scale blows
past machine-word width: Python integers are arbitrary precision, and
the big-int properties here deliberately push beyond ``2**63``.
"""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from diffutil import speed_tuples, uniform_instances
from repro import fastpath
from repro.exceptions import InvalidInstanceError
from repro.fastpath.normalize import IntView

fracs = st.fractions(
    min_value=Fraction(1, 10**6),
    max_value=Fraction(10**6),
    max_denominator=10**6,
)


@given(speeds=st.lists(fracs, min_size=1, max_size=8))
def test_scaled_speeds_roundtrip_and_minimality(speeds):
    speeds = tuple(speeds)
    scaled, scale = fastpath.scaled_speeds(speeds)
    # exact round trip
    assert all(Fraction(si, scale) == s for si, s in zip(scaled, speeds))
    # scale is the true LCM of the denominators, not just a common multiple
    true_lcm = math.lcm(*(s.denominator for s in speeds))
    assert scale == true_lcm
    # every denominator divides the scale (restates minimality usefully)
    assert all(scale % s.denominator == 0 for s in speeds)


@given(inst=uniform_instances())
def test_int_view_certificate_verifies(inst):
    view = fastpath.int_view(inst)
    assert view.verify()
    assert view.p == tuple(inst.p)
    assert view.speeds == tuple(inst.speeds)
    # completion() is the exact rational load / speed
    for i, s in enumerate(inst.speeds):
        for load in (0, 1, 7):
            assert view.completion(i, load) == Fraction(load) / s


@given(
    primes=st.permutations(
        [2305843009213693951, 4611686018427387847, 9223372036854775783]
    ),
    numerators=st.lists(st.integers(1, 10**9), min_size=3, max_size=3),
)
def test_bigint_scale_beyond_2_63_is_exact(primes, numerators):
    """Denominators chosen so the LCM exceeds 2**63 by construction —
    the path a fixed-width implementation would silently corrupt."""
    speeds = tuple(
        Fraction(num, p) for num, p in zip(numerators, primes)
    )
    scaled, scale = fastpath.scaled_speeds(speeds)
    assert scale > 2**63
    assert all(Fraction(si, scale) == s for si, s in zip(scaled, speeds))
    assert scale == math.lcm(*(s.denominator for s in speeds))


def test_verify_rejects_corrupt_certificates():
    good = fastpath.scaled_speeds((Fraction(1, 3), Fraction(2, 5)))
    scaled, scale = good
    assert IntView(scaled, scale, (Fraction(1, 3), Fraction(2, 5))).verify()
    # wrong scaled value
    assert not IntView((scaled[0] + 1, scaled[1]), scale, (Fraction(1, 3), Fraction(2, 5))).verify()
    # round-trips but not minimal: doubled scale is not the true LCM
    assert not IntView(
        tuple(2 * x for x in scaled), 2 * scale, (Fraction(1, 3), Fraction(2, 5))
    ).verify()
    # non-positive scale / length mismatch
    assert not IntView(scaled, 0, (Fraction(1, 3), Fraction(2, 5))).verify()
    assert not IntView(scaled[:1], scale, (Fraction(1, 3), Fraction(2, 5))).verify()


def test_int_view_raises_typed_error_on_bad_instance():
    """int_view's safety net is a typed error, not a bare assert."""

    class _Fake:
        speeds = (Fraction(1, 3), Fraction(2, 5))
        p = (1, 2)

    view = fastpath.int_view(_Fake())
    assert view.verify()

    class _Corrupt:
        # a "Fraction" whose numerator lies about its denominator
        class _Bad:
            numerator = 1
            denominator = 3

            def __eq__(self, other):  # never equal: round-trip must fail
                return False

            def __hash__(self):
                return 0

        speeds = (_Bad(),)
        p = (1,)

    with pytest.raises(InvalidInstanceError):
        fastpath.int_view(_Corrupt())


@given(speeds=st.lists(fracs, min_size=1, max_size=6))
def test_scaled_speeds_cache_consistency(speeds):
    """The lru_cache must key on the exact tuple — same input, same object."""
    speeds = tuple(speeds)
    first = fastpath.scaled_speeds(speeds)
    second = fastpath.scaled_speeds(tuple(speeds))
    assert first == second
