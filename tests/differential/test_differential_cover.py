"""Differential proof: cover-time tiers return the identical Fraction.

``min_cover_time`` / ``min_cover_time_with_loads`` have a single-valued
answer (the least feasible jump point), so there is no tie-break policy
to pin — the assertion is simply that all tiers return the *same*
:class:`~fractions.Fraction`, which in canonical form means the same
numerator and denominator bytes.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from diffutil import fastpath_mode, speed_tuples
from repro import fastpath
from repro.fastpath import kernels_int, kernels_numpy
from repro.scheduling import bounds


@given(
    speeds=speed_tuples(),
    demand=st.integers(0, 60),
)
def test_min_cover_time_tiers_identical(speeds, demand):
    with fastpath_mode("0"):
        ref = bounds.min_cover_time(speeds, demand)

    scaled, scale = fastpath.scaled_speeds(speeds)
    ki = kernels_int.min_cover_time_int(scaled, scale, demand)
    assert (ki.numerator, ki.denominator) == (ref.numerator, ref.denominator)

    if kernels_numpy.numpy_available() and demand > 0:
        kn = kernels_numpy.min_cover_time_numpy(scaled, scale, demand)
        assert (kn.numerator, kn.denominator) == (ref.numerator, ref.denominator)

    for mode in ("int", None):
        with fastpath_mode(mode):
            assert bounds.min_cover_time(speeds, demand) == ref


@given(
    speeds=speed_tuples(),
    demand=st.integers(0, 40),
    data=st.data(),
)
def test_min_cover_time_with_loads_tiers_identical(speeds, demand, data):
    m = len(speeds)
    loads = data.draw(
        st.lists(st.integers(0, 20), min_size=m, max_size=m), label="loads"
    )
    with fastpath_mode("0"):
        ref = bounds.min_cover_time_with_loads(speeds, loads, demand)

    scaled, scale = fastpath.scaled_speeds(speeds)
    ki = kernels_int.min_cover_time_with_loads_int(scaled, scale, loads, demand)
    assert (ki.numerator, ki.denominator) == (ref.numerator, ref.denominator)

    if kernels_numpy.numpy_available():
        kn = kernels_numpy.min_cover_time_with_loads_numpy(
            scaled, scale, loads, demand
        )
        assert (kn.numerator, kn.denominator) == (ref.numerator, ref.denominator)

    for mode in ("int", None):
        with fastpath_mode(mode):
            assert bounds.min_cover_time_with_loads(speeds, loads, demand) == ref


@given(k=st.integers(1, 5), n=st.integers(1, 12), demand=st.integers(1, 40))
def test_hardness_style_speeds(k, n, demand):
    """The Theorem 8 speed geometry (s_i = 1/(k n)) — tiny rationals with
    a shared denominator, the shape the hardness pipeline feeds in."""
    speeds = (Fraction(49 * k * k), Fraction(5 * k), Fraction(1)) + tuple(
        Fraction(1, k * n) for _ in range(3)
    )
    with fastpath_mode("0"):
        ref = bounds.min_cover_time(speeds, demand)
    with fastpath_mode(None):
        assert bounds.min_cover_time(speeds, demand) == ref


def test_bigint_speeds_fall_back_not_truncate():
    """Scales beyond 2^63 must be exact: the numpy tier declines
    (FastpathUnavailable), the int tier answers exactly."""
    primes = [2305843009213693951, 2305843009213693967, 2305843009213693973]
    speeds = tuple(Fraction(1, p) for p in primes)
    scaled, scale = fastpath.scaled_speeds(speeds)
    assert scale > 2**63

    with fastpath_mode("0"):
        ref = bounds.min_cover_time(speeds, 3)
    ki = kernels_int.min_cover_time_int(scaled, scale, 3)
    assert ki == ref

    if kernels_numpy.numpy_available():
        with pytest.raises(kernels_numpy.FastpathUnavailable):
            kernels_numpy.min_cover_time_numpy(scaled, scale, 3)
    # the public API silently falls back to the exact int tier
    with fastpath_mode(None):
        assert bounds.min_cover_time(speeds, 3) == ref


def test_error_paths_match_reference():
    from repro.exceptions import InvalidInstanceError

    for mode in ("0", "int", None):
        with fastpath_mode(mode):
            with pytest.raises(InvalidInstanceError):
                bounds.min_cover_time([], 1)
            with pytest.raises(InvalidInstanceError):
                bounds.min_cover_time_with_loads([Fraction(1)], [0, 0], 1)
            assert bounds.min_cover_time([], 0) == 0
            assert bounds.min_cover_time_with_loads([], [], 0) == 0
