"""Differential proof: Hopcroft–Karp tiers produce byte-identical mates.

The tie-break policy (pinned in :mod:`repro.fastpath.kernels_int`): the
mate array is a deterministic function of the adjacency iteration
order, because greedy seeding scans left vertices in index order, BFS
levels are true distances (order-independent), and the augmenting DFS
consumes each adjacency list left to right.  All three tiers follow
it, so equality is asserted element-wise — not just matching size.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from diffutil import bipartite_graphs, fastpath_mode
from repro.fastpath import kernels_int, kernels_numpy
from repro.graphs import matching


@given(g=bipartite_graphs())
def test_matching_tiers_byte_identical(g):
    with fastpath_mode("0"):
        ref = matching.hopcroft_karp(g)

    assert kernels_int.hopcroft_karp_int(g) == ref

    if kernels_numpy.numpy_available():
        assert kernels_numpy.hopcroft_karp_numpy(g) == ref

    with fastpath_mode("int"):
        assert matching.hopcroft_karp(g) == ref
    with fastpath_mode(None):  # auto
        assert matching.hopcroft_karp(g) == ref

    # and the result is an actual matching of maximum size
    assert matching.is_matching(g, ref)


@given(g=bipartite_graphs(max_side=6))
def test_matching_size_invariant_across_tiers(g):
    with fastpath_mode("0"):
        size_ref = matching.maximum_matching_size(g)
    with fastpath_mode(None):
        assert matching.maximum_matching_size(g) == size_ref


def test_numpy_tier_exercised_above_cutoff():
    """Above the size cutoff, auto mode really takes the numpy kernel
    (guards the dispatcher against silently always falling back)."""
    if not kernels_numpy.numpy_available():
        pytest.skip("numpy not importable")
    from repro import fastpath

    a = fastpath.MATCHING_NUMPY_MIN_N // 2 + 1
    g_pairs = [(u, a + (u * 7 + k) % a) for u in range(a) for k in range(5)]
    from repro.graphs.bipartite import BipartiteGraph

    g = BipartiteGraph(2 * a, g_pairs, side=[0] * a + [1] * a)
    assert g.n >= fastpath.MATCHING_NUMPY_MIN_N
    assert 2 * g.edge_count >= fastpath.MATCHING_NUMPY_MIN_AVG_DEGREE * g.n
    ref = kernels_int.hopcroft_karp_int(g)
    assert kernels_numpy.hopcroft_karp_numpy(g) == ref
    with fastpath_mode(None):
        assert matching.hopcroft_karp(g) == ref
