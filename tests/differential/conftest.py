"""Differential-testing harness configuration.

Two Hypothesis profiles are registered here:

* ``differential`` — the default for local / tier-1 runs: a moderate
  example budget so the equivalence gate travels with every PR without
  dominating suite runtime.
* ``ci`` — the reduced budget used by the CI ``differential-smoke``
  step (``pytest tests/differential --hypothesis-profile=ci``), which
  leans on the frozen corpus under ``tests/fixtures/differential/`` for
  breadth and on Hypothesis only for fresh randomization.

Profiles deliberately carry ``deadline=None``: the reference tier runs
pure-``Fraction`` arithmetic and is legitimately slow on the occasional
large draw; wall-clock variance must not fail an equivalence proof.

The profile is applied per-test (autouse fixture) rather than globally
in ``pytest_configure`` so that a full-suite run keeps Hypothesis's
default budget for every *other* property test in the repo.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "differential",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(autouse=True)
def _differential_profile(request):
    # an explicit --hypothesis-profile (loaded by the hypothesis plugin
    # at configure time) governs the whole run; otherwise pin this
    # directory to "differential" and restore the prior profile after
    # each test so the rest of the suite keeps its own budget
    if request.config.getoption("--hypothesis-profile", default=None):
        yield
        return
    prior = getattr(settings, "_current_profile", None) or "default"
    settings.load_profile("differential")
    try:
        yield
    finally:
        settings.load_profile(prior)
