"""Tests for :mod:`repro.engine.portfolio` — k-way algorithm racing."""

from fractions import Fraction

import pytest

from repro.engine import (
    auto_choice,
    portfolio_candidates,
    portfolio_solve,
    solve,
)
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs import generators
from repro.random_graphs.gilbert import gnnp
from repro.runtime import BatchRunner
from repro.scheduling.instance import (
    UnrelatedInstance,
    unit_uniform_instance,
)

F = Fraction


def _instances():
    yield unit_uniform_instance(generators.crown(4), [F(3), F(1)])
    yield unit_uniform_instance(gnnp(5, 0.2, seed=3), [F(3), F(2), F(1)])
    yield UnrelatedInstance(generators.matching_graph(2), [[2, 3, 1, 4], [5, 1, 2, 2]])
    yield UnrelatedInstance(
        generators.path_graph(5),
        [[1 + ((i * j) % 4) for j in range(5)] for i in range(3)],
    )


class TestCandidates:
    def test_auto_choice_leads(self):
        for inst in _instances():
            names = portfolio_candidates(inst, k=3)
            assert names[0] == auto_choice(inst)
            assert 1 <= len(names) <= 3
            assert len(set(names)) == len(names)

    def test_no_exponential_and_no_blind_on_edged(self):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        names = portfolio_candidates(inst, k=100)
        assert "brute_force" not in names
        assert "lpt" not in names  # graph-blind, graph has edges

    def test_blind_allowed_on_edgeless(self):
        inst = UnrelatedInstance(
            generators.empty_graph(4), [[2, 3, 1, 4], [5, 1, 2, 2]]
        )
        names = portfolio_candidates(inst, k=100)
        assert "lst" in names

    def test_invalid_k_rejected(self):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        with pytest.raises(InvalidInstanceError, match="portfolio size"):
            portfolio_candidates(inst, k=0)

    def test_infeasible_instance_propagates(self):
        inst = unit_uniform_instance(generators.crown(3), [F(1)])
        with pytest.raises(InfeasibleInstanceError):
            portfolio_candidates(inst)


class TestRace:
    def test_never_worse_than_auto(self):
        for inst in _instances():
            auto_cmax = solve(inst).makespan
            result = portfolio_solve(inst, k=4)
            assert result.makespan <= auto_cmax
            assert result.schedule.is_feasible()
            assert result.schedule.makespan == result.makespan

    def test_entries_cover_candidates(self):
        inst = unit_uniform_instance(gnnp(5, 0.2, seed=3), [F(3), F(2), F(1)])
        result = portfolio_solve(inst, k=3, early_cutoff=False)
        assert len(result.entries) == len(portfolio_candidates(inst, k=3))
        assert not any(e.skipped for e in result.entries)
        assert result.chosen in {e.algorithm for e in result.entries}

    def test_early_cutoff_at_lower_bound(self):
        # unit jobs on an empty graph with identical speeds: the first
        # candidate (complete_multipartite, exact) hits the capacity
        # lower bound, so the rest of the race must be skipped
        inst = unit_uniform_instance(
            generators.empty_graph(6), [F(1), F(1), F(1)]
        )
        result = portfolio_solve(inst, k=3)
        assert result.lower_bound is not None
        assert result.makespan <= result.lower_bound
        assert result.cutoff
        assert any(e.skipped for e in result.entries)
        # without the cutoff every candidate runs
        full = portfolio_solve(inst, k=3, early_cutoff=False)
        assert not full.cutoff
        assert not any(e.skipped for e in full.entries)
        assert full.makespan == result.makespan

    def test_crashing_plugin_does_not_abort_the_race(self):
        """A candidate raising a non-ReproError (plugin bug) becomes an
        errored entry; the other candidates' schedules survive."""
        from repro.engine import (
            AlgorithmSpec,
            Capability,
            register_algorithm,
            unregister_algorithm,
        )

        def boom(instance):
            raise ValueError("plugin bug")

        register_algorithm(
            AlgorithmSpec(
                name="boom_plugin",
                guarantee="none",
                anchor="test fixture",
                run=boom,
                capability=Capability(machine_kind="uniform"),
                auto_rank=15,  # raced right after the auto choice
            )
        )
        try:
            inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
            result = portfolio_solve(inst, k=4, early_cutoff=False)
            entry = {e.algorithm: e for e in result.entries}["boom_plugin"]
            assert entry.error == "ValueError: plugin bug"
            assert result.schedule.is_feasible()
        finally:
            unregister_algorithm("boom_plugin")

    def test_table_renders(self):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        text = portfolio_solve(inst, k=3).table()
        assert "portfolio" in text and "Cmax" in text


class TestPoolRace:
    def test_pool_race_matches_sequential(self):
        inst = UnrelatedInstance(
            generators.path_graph(5),
            [[1 + ((i * j) % 4) for j in range(5)] for i in range(3)],
        )
        sequential = portfolio_solve(inst, k=3, early_cutoff=False)
        with BatchRunner(workers=2) as runner:
            raced = portfolio_solve(inst, k=3, runner=runner, early_cutoff=False)
        assert raced.makespan == sequential.makespan
        # without the cutoff the full field is received, so makespan
        # ties break by candidate order and the winner is deterministic
        assert raced.chosen == sequential.chosen
        assert raced.schedule.is_feasible()
        assert {e.algorithm for e in raced.entries} == {
            e.algorithm for e in sequential.entries
        }

    def test_workers_one_runner_falls_back_to_sequential(self):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        with BatchRunner(workers=1) as runner:
            assert runner.worker_pool() is None
            result = portfolio_solve(inst, k=2, runner=runner)
        assert result.schedule.is_feasible()
