"""Tests for input validation primitives."""

import pytest

from repro.exceptions import InvalidInstanceError
from repro.utils.validation import (
    check_positive_int,
    check_positive_ints,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(InvalidInstanceError):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.0, "1", None, True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(InvalidInstanceError):
            check_positive_int(bad, "x")

    def test_sequence_helper_reports_index(self):
        with pytest.raises(InvalidInstanceError, match=r"p\[1\]"):
            check_positive_ints([1, 0, 2], "p")

    def test_sequence_helper_returns_tuple(self):
        assert check_positive_ints([1, 2], "p") == (1, 2)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability(ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 5.0])
    def test_rejects_outside(self, bad):
        with pytest.raises(InvalidInstanceError):
            check_probability(bad)
