"""Tests for the parallel (root-split) exact oracle.

The contract under test: ``certified_optimal(instance, workers=k)``
returns the *same makespan* as the sequential search for every ``k``,
never hangs or leaks worker processes — including when a worker dies
mid-subtree — and silently degrades to the sequential search where
parallelism cannot apply (daemonic callers, single-branch roots).
"""

from __future__ import annotations

import json
import multiprocessing
from fractions import Fraction
from pathlib import Path

import numpy as np
import pytest

from repro.certify import certified_optimal, certify_schedule
from repro.certify.oracle import (
    _CRASH_ENV,
    _SearchContext,
    _effective_workers,
    _enumerate_prefixes,
    _incumbent_quantum,
    _scale_exact,
)
from repro.exceptions import InfeasibleInstanceError
from repro.graphs.conflict import CompleteMultipartiteGraph
from repro.io.serialization import instance_from_dict, instance_to_dict
from repro.machines.profiles import geometric_speeds
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.instance import UniformInstance

CORPUS = (
    Path(__file__).resolve().parent
    / "fixtures"
    / "differential"
    / "corpus.jsonl"
)


def _corpus_instances():
    with CORPUS.open(encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                record = json.loads(line)
                yield record["id"], instance_from_dict(record["instance"])


def _hard_instance() -> UniformInstance:
    """A search-exhausted instance whose root splits into several subtrees."""
    graph = gnnp(7, 0.3, seed=9)
    rng = np.random.default_rng(17)
    p = [int(x) for x in rng.integers(1, 9, graph.n)]
    return UniformInstance(graph, p, geometric_speeds(3, 2))


def test_corpus_parallel_determinism():
    """workers=2 reproduces the sequential makespan on every frozen
    corpus instance the exact search can afford (the run-heavy records
    reach n~40, past the oracle's reach), and its schedule passes full
    certification."""
    checked = 0
    for tag, instance in _corpus_instances():
        if instance.n > 14:
            continue
        seq = certified_optimal(instance)
        par = certified_optimal(instance, workers=2)
        assert par.makespan == seq.makespan, (
            f"{tag}: parallel makespan {par.makespan} != "
            f"sequential {seq.makespan}"
        )
        certificate = certify_schedule(par.schedule)
        assert certificate.ok, f"{tag}: {certificate.describe()}"
        checked += 1
    assert checked >= 45
    assert multiprocessing.active_children() == []


def test_parallel_metadata_and_teardown():
    instance = _hard_instance()
    seq = certified_optimal(instance)
    par = certified_optimal(instance, workers=2)
    assert seq.workers == 1 and seq.subtrees == 0
    assert par.workers == 2 and par.subtrees > 1
    assert par.makespan == seq.makespan
    assert par.proof == "search-exhausted"
    # the executor must be fully shut down before the result returns
    assert multiprocessing.active_children() == []


def test_worker_crash_falls_back_without_wrong_answer(monkeypatch):
    """A worker killed mid-subtree (the crash-injection hook dies like a
    SIGKILL) must cost only time: the answer matches the sequential
    search and no pool process survives."""
    instance = _hard_instance()
    seq = certified_optimal(instance)
    monkeypatch.setenv(_CRASH_ENV, "0")
    par = certified_optimal(instance, workers=2)
    assert par.makespan == seq.makespan
    assert par.schedule.is_feasible()
    assert multiprocessing.active_children() == []


def test_daemonic_caller_degrades_to_sequential():
    """Inside a daemonic pool worker (the BatchRunner shape) a nested
    oracle must not try to spawn children."""
    payload = instance_to_dict(_hard_instance())
    with multiprocessing.Pool(1) as pool:
        makespan_str, workers, subtrees = pool.apply(
            _oracle_in_daemon, (payload,)
        )
    seq = certified_optimal(_hard_instance())
    assert Fraction(makespan_str) == seq.makespan
    assert workers == 1
    assert subtrees == 0


def _oracle_in_daemon(payload):
    instance = instance_from_dict(payload)
    result = certified_optimal(instance, workers=4)
    return str(result.makespan), result.workers, result.subtrees


def test_effective_workers_guard():
    assert _effective_workers(0) == 1
    assert _effective_workers(1) == 1
    assert _effective_workers(3) == 3


def test_infeasible_instance_raises_with_workers():
    # a triangle of conflicts on two machines has no feasible schedule
    graph = CompleteMultipartiteGraph(3, [[0], [1], [2]])
    instance = UniformInstance(graph, [1, 1, 1], [Fraction(1), Fraction(1)])
    with pytest.raises(InfeasibleInstanceError):
        certified_optimal(instance, workers=2)


def test_incumbent_quantum_is_exact():
    instance = _hard_instance()
    ctx = _SearchContext(instance)
    quantum = _incumbent_quantum(ctx)
    seq = certified_optimal(instance)
    scaled = _scale_exact(seq.makespan, quantum)
    assert scaled is not None
    assert Fraction(scaled, quantum) == seq.makespan
    # a value outside the exact grid is refused, not rounded
    assert _scale_exact(Fraction(1, quantum + 1), quantum) is None


def test_prefix_enumeration_covers_root():
    """Every sequential root branch appears among the enumerated
    prefixes (pruned only by exact infeasibility and the symmetry
    break the search itself applies)."""
    instance = _hard_instance()
    ctx = _SearchContext(instance)
    seq = certified_optimal(instance)
    prefixes, explored = _enumerate_prefixes(ctx, seq.makespan + 1, 8)
    assert len(prefixes) > 1
    assert explored >= 1
    depth = len(prefixes[0])
    assert all(len(prefix) == depth for prefix in prefixes)
    assert len(set(prefixes)) == len(prefixes)
    # each prefix names real machines for the first branched jobs
    for prefix in prefixes:
        for rank, machine in enumerate(prefix):
            assert 0 <= machine < instance.m
            assert ctx.times[machine][ctx.branched[rank]] is not None
