"""Tests for the two-machine DP / FPTAS engine (Theorem 20 substitute)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidInstanceError
from repro.scheduling.dp_unrelated import solve_r2_dp


def exhaustive_best(times) -> Fraction:
    n = len(times[0])
    best = None
    for mask in range(1 << n):
        l1 = l2 = Fraction(0)
        ok = True
        for j in range(n):
            if (mask >> j) & 1:
                if times[1][j] is None:
                    ok = False
                    break
                l2 += Fraction(times[1][j])
            else:
                if times[0][j] is None:
                    ok = False
                    break
                l1 += Fraction(times[0][j])
        if ok:
            span = max(l1, l2)
            if best is None or span < best:
                best = span
    assert best is not None
    return best


def makespan_of(times, assignment) -> Fraction:
    loads = [Fraction(0), Fraction(0)]
    for j, i in enumerate(assignment):
        assert times[i][j] is not None
        loads[i] += Fraction(times[i][j])
    return max(loads)


class TestExactMode:
    def test_trivial(self):
        res = solve_r2_dp([[5], [1]])
        assert res.makespan == 1 and res.assignment == (1,)

    def test_empty(self):
        res = solve_r2_dp([[], []])
        assert res.makespan == 0 and res.assignment == ()

    def test_balances(self):
        res = solve_r2_dp([[3, 3, 3, 3], [3, 3, 3, 3]])
        assert res.makespan == 6

    def test_exact_vs_enumeration(self):
        rng = np.random.default_rng(40)
        for _ in range(30):
            n = int(rng.integers(1, 10))
            times = [[int(x) for x in rng.integers(1, 25, n)] for _ in range(2)]
            res = solve_r2_dp(times)
            assert res.makespan == exhaustive_best(times)
            assert makespan_of(times, res.assignment) == res.makespan

    def test_rational_times(self):
        times = [[Fraction(1, 3), Fraction(1, 2)], [Fraction(1, 2), Fraction(1, 3)]]
        res = solve_r2_dp(times)
        assert res.makespan == Fraction(1, 3)
        assert res.assignment == (0, 1)

    def test_forbidden_pairs(self):
        times = [[1, None, 1], [None, 1, 1]]
        res = solve_r2_dp(times)
        assert res.assignment[0] == 0 and res.assignment[1] == 1

    def test_job_forbidden_everywhere(self):
        with pytest.raises(InvalidInstanceError):
            solve_r2_dp([[None], [None]])

    def test_wrong_machine_count(self):
        with pytest.raises(InvalidInstanceError):
            solve_r2_dp([[1], [1], [1]])

    def test_ragged_rejected(self):
        with pytest.raises(InvalidInstanceError):
            solve_r2_dp([[1, 2], [1]])

    def test_negative_rejected(self):
        with pytest.raises(InvalidInstanceError):
            solve_r2_dp([[-1], [1]])

    def test_zero_times_fine(self):
        res = solve_r2_dp([[0, 0], [0, 0]])
        assert res.makespan == 0


class TestFptasMode:
    def test_eps_guarantee_random(self):
        rng = np.random.default_rng(41)
        for _ in range(20):
            n = int(rng.integers(1, 9))
            times = [[int(x) for x in rng.integers(1, 30, n)] for _ in range(2)]
            opt = exhaustive_best(times)
            for eps in (1, Fraction(1, 2), Fraction(1, 10)):
                res = solve_r2_dp(times, eps=eps)
                assert opt <= res.makespan <= (1 + Fraction(eps)) * opt
                assert makespan_of(times, res.assignment) == res.makespan

    def test_reported_makespan_is_achievable(self):
        """Even in trimmed mode the makespan equals the returned assignment's."""
        rng = np.random.default_rng(42)
        times = [[int(x) for x in rng.integers(1, 100, 40)] for _ in range(2)]
        res = solve_r2_dp(times, eps=Fraction(1, 3))
        assert makespan_of(times, res.assignment) == res.makespan

    def test_bad_eps_rejected(self):
        with pytest.raises(InvalidInstanceError):
            solve_r2_dp([[1], [1]], eps=0)
        with pytest.raises(InvalidInstanceError):
            solve_r2_dp([[1], [1]], eps=-1)

    def test_coarse_eps_still_two_approx(self):
        rng = np.random.default_rng(43)
        for _ in range(10):
            n = int(rng.integers(2, 8))
            times = [[int(x) for x in rng.integers(1, 20, n)] for _ in range(2)]
            res = solve_r2_dp(times, eps=1)
            assert res.makespan <= 2 * exhaustive_best(times)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 40), st.integers(1, 40)),
        min_size=1,
        max_size=9,
    )
)
def test_exactness_property(jobs):
    times = [[a for a, _ in jobs], [b for _, b in jobs]]
    res = solve_r2_dp(times)
    assert res.makespan == exhaustive_best(times)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 40), st.integers(1, 40)),
        min_size=1,
        max_size=12,
    ),
    st.fractions(min_value=Fraction(1, 20), max_value=2, max_denominator=20),
)
def test_fptas_guarantee_property(jobs, eps):
    times = [[a for a, _ in jobs], [b for _, b in jobs]]
    opt = exhaustive_best(times)
    res = solve_r2_dp(times, eps=eps)
    assert opt <= res.makespan <= (1 + eps) * opt
