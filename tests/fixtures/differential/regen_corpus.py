"""Regenerate the frozen differential corpus (``corpus.jsonl``).

Run from the repo root::

    REPRO_FASTPATH=0 PYTHONPATH=src python tests/fixtures/differential/regen_corpus.py

Deterministic: a fixed seed drives every draw, so reruns reproduce the
same ~50 instances byte-for-byte.  Expected makespans are computed with
``REPRO_FASTPATH=0`` (the rational reference tier) through the engine's
ranked dispatch — the corpus therefore freezes both the *instances* and
the *reference behaviour*, and ``test_differential_corpus.py`` replays
every fast-path tier against it without any Hypothesis shrinking in the
loop.

The mix spans the v3 vocabulary: bipartite / complete-multipartite /
block conflict graphs (general structure is realised by >= 3-part
multipartite and multi-block graphs — there is no concrete "general"
class), identical / integer / rational uniform speeds, unit and mixed
job sizes, with and without eligibility masks, plus unrelated (R)
instances.
"""

from __future__ import annotations

import json
import os
import random
import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[3] / "src"))
os.environ["REPRO_FASTPATH"] = "0"  # freeze against the reference tier

from repro.engine import solve  # noqa: E402
from repro.graphs.bipartite import BipartiteGraph  # noqa: E402
from repro.graphs.conflict import (  # noqa: E402
    BlockGraph,
    CompleteMultipartiteGraph,
)
from repro.io.serialization import frac_str, instance_to_dict  # noqa: E402
from repro.scheduling.instance import (  # noqa: E402
    UniformInstance,
    UnrelatedInstance,
)

SEED = 20260808
OUT = Path(__file__).resolve().parent / "corpus.jsonl"


def _bipartite(rng: random.Random, a: int, b: int, prob: float) -> BipartiteGraph:
    edges = [
        (u, a + v) for u in range(a) for v in range(b) if rng.random() < prob
    ]
    return BipartiteGraph(a + b, edges, side=[0] * a + [1] * b)


def _partition(rng: random.Random, n: int, k: int) -> list[list[int]]:
    labels = [rng.randrange(k) for _ in range(n)]
    for i in range(min(k, n)):  # keep all k parts non-empty
        labels[i] = i
    groups: list[list[int]] = [[] for _ in range(k)]
    for v, lab in enumerate(labels):
        groups[lab].append(v)
    return [g for g in groups if g]


def _speeds(rng: random.Random, m: int, kind: str) -> list[Fraction]:
    if kind == "identical":
        return [Fraction(rng.randint(1, 3))] * m
    if kind == "integer":
        vals = [Fraction(rng.randint(1, 8)) for _ in range(m)]
    else:
        vals = [
            Fraction(rng.randint(1, 8), rng.randint(1, 8)) for _ in range(m)
        ]
    return sorted(vals, reverse=True)


def _p(rng: random.Random, n: int, unit: bool) -> list[int]:
    return [1] * n if unit else [rng.randint(1, 8) for _ in range(n)]


def _graph(rng: random.Random, kind: str, n_target: int):
    """Return ``(graph, k_min)`` — ``k_min`` colors always suffice."""
    if kind == "bipartite":
        a = max(1, n_target // 2)
        return _bipartite(rng, a, n_target - a, rng.uniform(0.15, 0.5)), 2
    parts = _partition(rng, n_target, rng.randint(2, 4))
    if kind == "complete_multipartite":
        return CompleteMultipartiteGraph(n_target, parts), len(parts)
    g = BlockGraph(n_target, parts)
    return g, max(len(blk) for blk in parts)


def build_candidates(rng: random.Random):
    """Yield (tag, instance) candidates across the v3 vocabulary."""
    graph_kinds = ["bipartite", "complete_multipartite", "block"]
    speed_kinds = ["identical", "integer", "rational"]
    # 36 uniform instances: all graph-kind x speed-kind x {unit, mixed} x 2 sizes
    idx = 0
    for gk in graph_kinds:
        for sk in speed_kinds:
            for unit in (True, False):
                for n_target in (8, 14):
                    g, k_min = _graph(rng, gk, n_target)
                    m = rng.randint(max(2, k_min), max(2, k_min) + 2)
                    inst = UniformInstance(
                        g, _p(rng, g.n, unit), _speeds(rng, m, sk)
                    )
                    yield f"uniform-{gk}-{sk}-{'unit' if unit else 'mixed'}-{idx}", inst
                    idx += 1
    # 8 with eligibility masks
    for i in range(8):
        gk = graph_kinds[i % 3]
        g, k_min = _graph(rng, gk, 10)
        m = max(3, k_min + 1)
        eligible = [
            None
            if rng.random() < 0.5
            else sorted(rng.sample(range(m), rng.randint(2, m)))
            for _ in range(g.n)
        ]
        inst = UniformInstance(
            g,
            _p(rng, g.n, i % 2 == 0),
            _speeds(rng, m, speed_kinds[i % 3]),
            eligible=eligible,
        )
        yield f"eligible-{gk}-{i}", inst
    # 8 unrelated instances (m = 2, 3 and above the coloring need);
    # dispatch has no solver for forbidden pairs yet, so times stay finite
    for i in range(8):
        gk = graph_kinds[i % 3]
        g, k_min = _graph(rng, gk, 8)
        m = max(2 + (i % 2), k_min)
        times: list[list[Fraction | None]] = []
        for _ in range(m):
            times.append([Fraction(rng.randint(1, 12)) for _ in range(g.n)])
        inst = UnrelatedInstance(g, times)
        yield f"unrelated-{gk}-m{m}-{i}", inst
    # run-heavy instances: long equal-p_j runs over grouped speeds, the
    # event-calendar batching inputs.  A fresh generator (SEED + 1) keeps
    # every earlier record byte-identical across regenerations.
    yield from build_run_heavy_candidates(random.Random(SEED + 1))


def build_run_heavy_candidates(rng: random.Random):
    """Yield (tag, instance) with few distinct p values in long runs.

    Covers the calendar edge cases: a single speed group, all-equal
    speeds with all-equal jobs, and a dominant run long enough to span a
    speed-group switch mid-placement.
    """
    # (tag suffix, speed-group widths, distinct speed values drawn below)
    shapes = [
        ("single-group", [3]),
        ("two-group", [2, 2]),
        ("three-group", [1, 2, 1]),
        ("wide-single", [5]),
    ]
    idx = 0
    for suffix, widths in shapes:
        for n_sizes in (1, 2, 3):
            values = sorted(
                rng.sample(range(1, 7), len(widths)), reverse=True
            )
            speeds: list[Fraction] = []
            for value, width in zip(values, widths):
                speeds.extend([Fraction(value)] * width)
            sizes = sorted(rng.sample(range(1, 10), n_sizes), reverse=True)
            p: list[int] = []
            for size in sizes:
                p.extend([size] * rng.randint(6, 14))
            n = len(p)
            g = BipartiteGraph(n, [], side=[0] * n)
            inst = UniformInstance(g, p, speeds)
            yield f"runheavy-{suffix}-sizes{n_sizes}-{idx}", inst
            idx += 1


def main() -> None:
    rng = random.Random(SEED)
    records = []
    for tag, inst in build_candidates(rng):
        try:
            schedule = solve(inst)
        except Exception as exc:  # infeasible / no eligible algorithm
            print(f"skip {tag}: {type(exc).__name__}: {exc}")
            continue
        records.append(
            {
                "id": tag,
                "instance": instance_to_dict(inst),
                "expected_makespan": frac_str(schedule.makespan),
                "feasible": schedule.is_feasible(),
            }
        )
    with OUT.open("w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    print(f"wrote {len(records)} instances to {OUT}")


if __name__ == "__main__":
    main()
