"""Tests for proper and inequitable 2-colorings (Definition 1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.coloring import (
    inequitable_two_coloring,
    is_proper_coloring,
    proper_two_coloring,
)
from repro.graphs.generators import complete_bipartite, matching_graph, path_graph

from tests.conftest import random_bipartite


class TestProperTwoColoring:
    def test_path(self):
        colors = proper_two_coloring(path_graph(5))
        assert colors == (0, 1, 0, 1, 0)

    def test_is_proper(self):
        g = complete_bipartite(3, 4)
        assert is_proper_coloring(g, proper_two_coloring(g))

    def test_canonical_root_color(self):
        # smallest vertex of each component gets color 0
        g = BipartiteGraph(4, [(1, 3)])
        colors = proper_two_coloring(g)
        assert colors[0] == 0 and colors[1] == 0 and colors[3] == 1

    def test_independent_of_declared_sides(self):
        g1 = BipartiteGraph(2, [(0, 1)], side=[0, 1])
        g2 = BipartiteGraph(2, [(0, 1)], side=[1, 0])
        assert proper_two_coloring(g1) == proper_two_coloring(g2)


class TestInequitableColoring:
    def test_classes_are_independent(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            g = random_bipartite(rng)
            c1, c2 = inequitable_two_coloring(g)
            assert g.is_independent_set(c1)
            assert g.is_independent_set(c2)

    def test_classes_partition(self):
        g = complete_bipartite(2, 5)
        c1, c2 = inequitable_two_coloring(g)
        assert sorted(c1 + c2) == list(range(7))

    def test_cardinality_maximised_unweighted(self):
        # K_{2,5}: the larger class must take the 5-side
        g = complete_bipartite(2, 5)
        c1, c2 = inequitable_two_coloring(g)
        assert len(c1) == 5 and len(c2) == 2

    def test_isolated_vertices_join_class1(self):
        g = BipartiteGraph(4, [(0, 1)])
        c1, c2 = inequitable_two_coloring(g)
        assert 2 in c1 and 3 in c1
        assert len(c2) == 1

    def test_weighted_orientation_per_component(self):
        # component A: weights favour side {0}; component B: side {3, 4}
        g = BipartiteGraph(5, [(0, 1), (2, 3), (2, 4)])
        weights = [10, 1, 1, 5, 5]
        c1, c2 = inequitable_two_coloring(g, weights)
        assert set(c1) == {0, 3, 4}
        assert set(c2) == {1, 2}

    def test_weight_of_class1_is_maximum_over_orientations(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            g = random_bipartite(rng, max_side=5)
            weights = [int(x) for x in rng.integers(1, 10, g.n)]
            c1, c2 = inequitable_two_coloring(g, weights)
            w1 = sum(weights[v] for v in c1)
            w2 = sum(weights[v] for v in c2)
            assert w1 >= w2
            # brute force over component orientations
            from repro.graphs.components import connected_components
            from repro.graphs.coloring import proper_two_coloring

            base = proper_two_coloring(g)
            comps = connected_components(g)
            best = 0
            import itertools

            for flips in itertools.product([0, 1], repeat=len(comps)):
                total = 0
                for comp, flip in zip(comps, flips):
                    total += sum(
                        weights[v] for v in comp if base[v] == flip
                    )
                best = max(best, total)
            assert w1 == best

    def test_weights_length_checked(self):
        g = matching_graph(2)
        with pytest.raises(ValueError):
            inequitable_two_coloring(g, [1, 2])

    def test_empty_graph(self):
        c1, c2 = inequitable_two_coloring(BipartiteGraph(0, []))
        assert c1 == [] and c2 == []


class TestIsProperColoring:
    def test_accepts_valid(self):
        g = path_graph(4)
        assert is_proper_coloring(g, [0, 1, 0, 1])

    def test_rejects_conflict(self):
        g = path_graph(3)
        assert not is_proper_coloring(g, [0, 0, 1])

    def test_rejects_wrong_length(self):
        g = path_graph(3)
        assert not is_proper_coloring(g, [0, 1])

    def test_many_colors_fine(self):
        g = path_graph(3)
        assert is_proper_coloring(g, [5, 9, 5])


@given(st.integers(1, 7), st.integers(1, 7), st.data())
def test_inequitable_dominance_property(a, b, data):
    """|V'_1| >= |V'_2| and both classes independent, for any cross edges."""
    edges = data.draw(
        st.lists(st.tuples(st.integers(0, a - 1), st.integers(0, b - 1)), max_size=25)
    )
    g = BipartiteGraph.from_parts(a, b, edges)
    c1, c2 = inequitable_two_coloring(g)
    assert len(c1) >= len(c2)
    assert g.is_independent_set(c1) and g.is_independent_set(c2)
    assert sorted(c1 + c2) == list(range(g.n))
