"""The timing harness: deterministic statistics under injected clocks."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidInstanceError
from repro.perf import Stopwatch, measure


class FakeClock:
    """A monotone clock advancing by a scripted step per reading."""

    def __init__(self, steps):
        self.steps = iter(steps)
        self.now = 0.0

    def __call__(self) -> float:
        value = self.now
        self.now += next(self.steps, 0.0)
        return value


def test_measure_median_is_deterministic_under_fake_clocks():
    # clock readings come in (start, stop) pairs: deltas 5, 1, 3 seconds
    wall = FakeClock([5.0, 0.0, 1.0, 0.0, 3.0, 0.0])
    cpu = FakeClock([0.5, 0.0, 0.1, 0.0, 0.3, 0.0])
    calls = []
    result = measure(
        calls.append,
        "x",
        repeat=3,
        warmup=2,
        wall_clock=wall,
        cpu_clock=cpu,
    )
    assert len(calls) == 5  # 2 warmup + 3 timed
    assert result.wall_times_s == (5.0, 1.0, 3.0)
    assert result.median_s == 3.0
    assert result.min_s == 1.0
    assert result.mean_s == pytest.approx(3.0)
    assert result.cpu_median_s == pytest.approx(0.3)


def test_measure_fixed_repeat_counts_and_value():
    result = measure(sorted, [3, 1, 2], repeat=4, warmup=0)
    assert result.repeat == 4
    assert len(result.wall_times_s) == 4
    assert len(result.cpu_times_s) == 4
    assert result.value == [1, 2, 3]
    assert result.warmup == 0
    assert result.label == "sorted"


def test_measure_rejects_bad_policy():
    with pytest.raises(InvalidInstanceError):
        measure(lambda: None, repeat=0)
    with pytest.raises(InvalidInstanceError):
        measure(lambda: None, warmup=-1)


def test_timing_result_to_phase():
    wall = FakeClock([2.0, 0.0])
    cpu = FakeClock([1.0, 0.0])
    result = measure(
        lambda: None, repeat=1, warmup=0, wall_clock=wall, cpu_clock=cpu
    )
    phase = result.to_phase(name="solve", size={"n": 7}, ratio=1.5)
    assert phase.name == "solve"
    assert phase.wall_time_s == 2.0
    assert phase.cpu_time_s == 1.0
    assert phase.repeat == 1
    assert phase.size == {"n": 7}
    assert phase.ratio == 1.5


def test_stopwatch_collects_named_phases():
    wall = FakeClock([1.0, 0.0, 2.0, 0.0])
    sw = Stopwatch(wall_clock=wall, cpu_clock=None)
    with sw.phase("build", size={"n": 3}):
        pass
    with sw.phase("solve"):
        pass
    names = [(p.name, p.wall_time_s) for p in sw.phases]
    assert names == [("build", 1.0), ("solve", 2.0)]
    assert sw.phases[0].size == {"n": 3}
    assert sw.phases[0].cpu_time_s is None


def test_stopwatch_records_phase_even_on_exception():
    sw = Stopwatch(wall_clock=FakeClock([1.0]), cpu_clock=None)
    with pytest.raises(RuntimeError):
        with sw.phase("boom"):
            raise RuntimeError("inner failure")
    assert [p.name for p in sw.phases] == ["boom"]
