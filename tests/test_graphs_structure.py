"""Tests for :mod:`repro.graphs.structure` — graph-class recognition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.structure import (
    analyze_structure,
    complete_bipartite_parts,
    complete_bipartite_parts_with_free,
    is_bisubquartic,
    is_cubic,
    is_empty,
    is_forest,
    is_path,
    is_perfect_matching_graph,
    is_regular,
)


class TestBasicPredicates:
    def test_empty_graph_is_empty(self):
        assert is_empty(generators.empty_graph(5))

    def test_single_edge_not_empty(self):
        assert not is_empty(BipartiteGraph(2, [(0, 1)]))

    def test_zero_vertex_graph_is_empty(self):
        assert is_empty(BipartiteGraph(0))

    def test_matching_graph_is_perfect_matching(self):
        assert is_perfect_matching_graph(generators.matching_graph(4))

    def test_path_is_not_perfect_matching(self):
        assert not is_perfect_matching_graph(generators.path_graph(4))

    def test_empty_is_not_perfect_matching(self):
        assert not is_perfect_matching_graph(generators.empty_graph(4))

    def test_zero_vertices_not_perfect_matching(self):
        assert not is_perfect_matching_graph(BipartiteGraph(0))


class TestForest:
    def test_tree_is_forest(self):
        assert is_forest(generators.random_tree(20, seed=1))

    def test_forest_is_forest(self):
        assert is_forest(generators.random_forest(20, 4, seed=2))

    def test_cycle_is_not_forest(self):
        assert not is_forest(generators.even_cycle(6))

    def test_empty_graph_is_forest(self):
        assert is_forest(generators.empty_graph(7))

    def test_cycle_plus_tree_is_not_forest(self):
        g = generators.even_cycle(4).disjoint_union(generators.path_graph(3))
        assert not is_forest(g)

    def test_complete_bipartite_not_forest(self):
        assert not is_forest(generators.complete_bipartite(2, 3))


class TestPath:
    def test_path_recognised(self):
        assert is_path(generators.path_graph(6))

    def test_single_vertex_is_path(self):
        assert is_path(BipartiteGraph(1))

    def test_two_vertices_edge_is_path(self):
        assert is_path(generators.path_graph(2))

    def test_star_is_not_path(self):
        assert not is_path(generators.star(3))

    def test_cycle_is_not_path(self):
        assert not is_path(generators.even_cycle(4))

    def test_disconnected_paths_are_not_a_path(self):
        g = generators.path_graph(3).disjoint_union(generators.path_graph(3))
        assert not is_path(g)

    def test_zero_vertices_not_path(self):
        assert not is_path(BipartiteGraph(0))


class TestRegularity:
    def test_cycle_is_2_regular(self):
        assert is_regular(generators.even_cycle(8), 2)

    def test_k33_is_cubic(self):
        assert is_cubic(generators.complete_bipartite(3, 3))

    def test_k34_is_not_cubic(self):
        assert not is_cubic(generators.complete_bipartite(3, 4))

    def test_empty_graph_not_cubic(self):
        assert not is_cubic(generators.empty_graph(4))

    def test_zero_vertices_not_cubic(self):
        assert not is_cubic(BipartiteGraph(0))

    def test_bisubquartic_k44(self):
        assert is_bisubquartic(generators.complete_bipartite(4, 4))

    def test_not_bisubquartic_k55(self):
        assert not is_bisubquartic(generators.complete_bipartite(5, 5))

    def test_degree_bounded_generator_is_bisubquartic(self):
        g = generators.random_bipartite_degree_bounded(10, 10, 4, seed=3)
        assert is_bisubquartic(g)


class TestCompleteBipartite:
    @pytest.mark.parametrize("a,b", [(1, 1), (2, 3), (4, 4), (1, 7)])
    def test_kab_recognised(self, a, b):
        parts = complete_bipartite_parts(generators.complete_bipartite(a, b))
        assert parts is not None
        assert sorted(map(len, parts)) == sorted([a, b])

    def test_parts_are_the_actual_parts(self):
        g = generators.complete_bipartite(2, 3)
        left, right = complete_bipartite_parts(g)
        for u in left:
            for v in right:
                assert g.has_edge(u, v)

    def test_missing_edge_rejected(self):
        g = BipartiteGraph.from_parts(2, 2, [(0, 0), (0, 1), (1, 0)])  # K22 minus edge
        assert complete_bipartite_parts(g) is None

    def test_crown_rejected(self):
        assert complete_bipartite_parts(generators.crown(3)) is None

    def test_empty_graph_rejected(self):
        assert complete_bipartite_parts(generators.empty_graph(4)) is None

    def test_isolated_vertex_rejected(self):
        g = generators.complete_bipartite(2, 2).disjoint_union(BipartiteGraph(1))
        assert complete_bipartite_parts(g) is None

    def test_two_components_rejected(self):
        g = generators.complete_bipartite(2, 2).disjoint_union(
            generators.complete_bipartite(1, 1)
        )
        assert complete_bipartite_parts(g) is None

    def test_with_free_accepts_isolated(self):
        g = generators.complete_bipartite(2, 3).disjoint_union(BipartiteGraph(2))
        decomposition = complete_bipartite_parts_with_free(g)
        assert decomposition is not None
        left, right, free = decomposition
        assert sorted(map(len, (left, right))) == [2, 3]
        assert len(free) == 2

    def test_with_free_edgeless(self):
        left, right, free = complete_bipartite_parts_with_free(
            generators.empty_graph(3)
        )
        assert (left, right) == ([], [])
        assert len(free) == 3

    def test_with_free_rejects_double_star(self):
        assert complete_bipartite_parts_with_free(generators.double_star(2, 2)) is None

    def test_k1b_is_a_star(self):
        # stars are complete bipartite with a = 1
        parts = complete_bipartite_parts(generators.star(4))
        assert parts is not None
        assert sorted(map(len, parts)) == [1, 4]


class TestAnalyzeStructure:
    def test_empty(self):
        s = analyze_structure(generators.empty_graph(5))
        assert s.empty and s.forest and s.bisubquartic
        assert s.complete_bipartite is None
        assert "empty" in s.describe()

    def test_path(self):
        s = analyze_structure(generators.path_graph(5))
        assert s.path and s.forest and not s.empty
        assert "path" in s.describe()

    def test_complete_bipartite(self):
        s = analyze_structure(generators.complete_bipartite(3, 3))
        assert s.complete_bipartite is not None
        assert s.cubic
        assert "K_{3,3}" in s.describe()

    def test_kab_plus_isolated_description(self):
        g = generators.complete_bipartite(2, 2).disjoint_union(BipartiteGraph(1))
        s = analyze_structure(g)
        assert s.complete_bipartite is None
        assert s.complete_bipartite_free is not None
        assert "isolated" in s.describe()

    def test_counts(self):
        g = generators.matching_graph(3)
        s = analyze_structure(g)
        assert s.n == 6 and s.edge_count == 3 and s.components == 3
        assert s.max_degree == 1 and s.perfect_matching

    def test_general_bipartite_fallback_description(self):
        g = generators.crown(6)  # not complete bipartite, degree 5
        s = analyze_structure(g)
        assert "general bipartite" in s.describe() or "bisubquartic" not in s.describe()


@settings(max_examples=40, deadline=None)
@given(a=st.integers(1, 5), b=st.integers(1, 5))
def test_property_complete_bipartite_roundtrip(a, b):
    """Generated K_{a,b} is always recognised with the right part sizes."""
    parts = complete_bipartite_parts(generators.complete_bipartite(a, b))
    assert parts is not None
    assert sorted(map(len, parts)) == sorted([a, b])


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 24), seed=st.integers(0, 1000))
def test_property_random_trees_are_forests(n, seed):
    assert is_forest(generators.random_tree(n, seed=seed))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 20),
    extra=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_property_tree_plus_edge_is_not_forest(n, extra, seed):
    """Adding any edge inside a part of a spanning tree creates a cycle."""
    tree = generators.random_tree(n, seed=seed)
    side0 = tree.vertices_on_side(0)
    side1 = tree.vertices_on_side(1)
    # add a cross edge not already present, if one exists
    for u in side0:
        for v in side1:
            if not tree.has_edge(u, v):
                assert not is_forest(tree.with_edges([(u, v)]))
                return
    # K_{a,b} tree (star): every cross pair present — nothing to add
    assert tree.edge_count == n - 1
