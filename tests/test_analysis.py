"""Tests for the analysis harness (ratios, tables, sweeps, suites)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentRow, run_grid
from repro.analysis.ratio import RatioStats, collect_ratio_stats, ratio_of
from repro.analysis.suites import (
    job_weight_profile,
    random_r2_instance,
    speed_profile_suite,
    standard_graph_families,
    standard_uniform_suite,
)
from repro.analysis.tables import format_table, render_number


class TestRatio:
    def test_basic(self):
        assert ratio_of(Fraction(3), Fraction(2)) == 1.5

    def test_zero_zero(self):
        assert ratio_of(Fraction(0), Fraction(0)) == 1.0

    def test_zero_reference_positive_value(self):
        with pytest.raises(ZeroDivisionError):
            ratio_of(Fraction(1), Fraction(0))

    def test_stats(self):
        stats = collect_ratio_stats([1.0, 2.0, 3.0])
        assert stats == RatioStats(count=3, mean=2.0, minimum=1.0, maximum=3.0)

    def test_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            collect_ratio_stats([])


class TestTables:
    def test_render_number(self):
        assert render_number(3) == "3"
        assert render_number(Fraction(1, 2)) == "0.500"
        assert render_number(Fraction(4, 2)) == "2"
        assert render_number(1.23456, digits=2) == "1.23"
        assert render_number("x") == "x"

    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(set(len(l) for l in lines[1:])) == 1  # aligned widths

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestRunGrid:
    def test_cartesian_product_order(self):
        rows = run_grid(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda rng, a, b: {"key": f"{a}{b}"},
            seed=0,
        )
        assert [r.results["key"] for r in rows] == ["1x", "1y", "2x", "2y"]

    def test_rngs_deterministic(self):
        def measure(rng, a):
            return {"v": int(rng.integers(0, 1 << 30))}

        r1 = run_grid({"a": [1, 2]}, measure, seed=5)
        r2 = run_grid({"a": [1, 2]}, measure, seed=5)
        assert [x.results for x in r1] == [x.results for x in r2]

    def test_cells_flatten(self):
        row = ExperimentRow(params={"a": 1}, results={"v": 2.0})
        assert row.cells(["a"], ["v"]) == [1, 2.0]


class TestSuites:
    def test_graph_families_cover_names(self):
        fams = standard_graph_families(12, seed=0)
        names = {name for name, _ in fams}
        assert {"empty", "path", "tree", "crown", "gilbert_sparse"} <= names
        for _, g in fams:
            assert g.n >= 1

    def test_weight_profiles(self):
        for kind in ("unit", "uniform", "heavy_tailed", "one_giant"):
            p = job_weight_profile(10, kind, seed=1)
            assert len(p) == 10
            assert all(isinstance(x, int) and x >= 1 for x in p)
        assert job_weight_profile(10, "unit") == (1,) * 10
        giant = job_weight_profile(10, "one_giant", seed=2)
        assert max(giant) >= 10

    def test_weight_profile_unknown(self):
        with pytest.raises(ValueError):
            job_weight_profile(5, "nope")  # type: ignore[arg-type]

    def test_speed_profiles_sorted(self):
        for name, speeds in speed_profile_suite(5, seed=3):
            assert list(speeds) == sorted(speeds, reverse=True)
            assert all(s >= 1 for s in speeds)

    def test_uniform_suite_instances_valid(self):
        suite = standard_uniform_suite(n=10, m=3, seed=4)
        assert len(suite) > 20
        for name, inst in suite:
            assert "/" in name
            assert inst.m == 3

    def test_r2_suite(self):
        inst = random_r2_instance(12, seed=5)
        assert inst.m == 2
        assert all(t is not None for row in inst.times for t in row)
