"""Tests for the ``repro perf`` subcommand (scenarios + schema gate)."""

from __future__ import annotations

import json

from repro.cli import main
from repro.io import load_json, save_json
from repro.perf import BenchRecord, validate_bench_record


class TestPerfScenarios:
    def test_single_target_end_to_end(self, tmp_path, capsys):
        code = main(
            [
                "perf", "--target", "list_scheduling", "--smoke",
                "--repeat", "1", "--warmup", "0",
                "--out-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PERF_list_scheduling" in out
        assert "speedup" in out
        artifact = tmp_path / "BENCH_PERF_list_scheduling.json"
        data = load_json(artifact)
        validate_bench_record(data)
        record = BenchRecord.from_dict(data)
        assert record.columns[0] == "case"
        assert record.phases  # before/after timings recorded
        # the trajectory accumulated the same record
        trajectory = tmp_path / "BENCH_trajectory.jsonl"
        lines = trajectory.read_text().strip().splitlines()
        assert len(lines) == 1
        validate_bench_record(json.loads(lines[0]))

    def test_all_targets_smoke(self, tmp_path, capsys):
        code = main(
            [
                "perf", "--smoke", "--repeat", "1", "--warmup", "0",
                "--out-dir", str(tmp_path),
            ]
        )
        assert code == 0
        names = sorted(p.name for p in tmp_path.glob("BENCH_PERF_*.json"))
        assert names == [
            "BENCH_PERF_batch_fanout.json",
            "BENCH_PERF_fastpath.json",
            "BENCH_PERF_hopcroft_karp.json",
            "BENCH_PERF_list_scheduling.json",
            "BENCH_PERF_oracle.json",
            "BENCH_PERF_oracle_parallel.json",
        ]

    def test_profile_flag_prints_hotspots(self, tmp_path, capsys):
        code = main(
            [
                "perf", "--target", "hopcroft_karp", "--smoke",
                "--repeat", "1", "--warmup", "0", "--profile",
                "--out-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cumtime (ms)" in out

    def test_unknown_target_is_an_error(self, tmp_path, capsys):
        code = main(
            ["perf", "--target", "warp_drive", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown perf target" in capsys.readouterr().err


class TestPerfCheck:
    def _valid_record(self) -> dict:
        return BenchRecord.build(
            "E1_x", ["a"], [[1]], git_rev="r", timestamp="t"
        ).to_dict()

    def test_clean_directory_passes(self, tmp_path, capsys):
        save_json(self._valid_record(), tmp_path / "BENCH_E1_x.json")
        assert main(["perf", "--check", str(tmp_path)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_schema_violation_fails(self, tmp_path, capsys):
        save_json(self._valid_record(), tmp_path / "BENCH_E1_x.json")
        bad = self._valid_record()
        bad["rows"] = [["too", "wide"]]
        save_json(bad, tmp_path / "BENCH_E2_bad.json")
        assert main(["perf", "--check", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "SCHEMA VIOLATION" in captured.err
        assert "BENCH_E2_bad.json" in captured.err

    def test_bad_trajectory_line_fails(self, tmp_path, capsys):
        save_json(self._valid_record(), tmp_path / "BENCH_E1_x.json")
        (tmp_path / "BENCH_trajectory.jsonl").write_text(
            json.dumps({"format": "nope"}) + "\n"
        )
        assert main(["perf", "--check", str(tmp_path)]) == 1

    def test_truncated_trajectory_line_reports_not_crashes(self, tmp_path, capsys):
        # a killed run leaves a half-written line; the gate must report
        # it as a violation and still print earlier findings
        bad = self._valid_record()
        bad["rows"] = [["too", "wide"]]
        save_json(bad, tmp_path / "BENCH_E2_bad.json")
        (tmp_path / "BENCH_trajectory.jsonl").write_text(
            json.dumps(self._valid_record()) + "\n{\"format\": \"repro/ben"
        )
        assert main(["perf", "--check", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "BENCH_E2_bad.json" in captured.err
        assert "BENCH_trajectory.jsonl:1" in captured.err

    def test_empty_directory_is_an_error(self, tmp_path, capsys):
        assert main(["perf", "--check", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def _dirty_record(self) -> dict:
        return BenchRecord.build(
            "E1_x", ["a"], [[1]], git_rev="abc1234-dirty", timestamp="t"
        ).to_dict()

    def test_dirty_rev_rejected_by_default(self, tmp_path, capsys):
        save_json(self._dirty_record(), tmp_path / "BENCH_E1_x.json")
        assert main(["perf", "--check", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "dirty-tree git_rev" in err
        assert "--allow-dirty" in err

    def test_dirty_rev_in_trajectory_rejected(self, tmp_path, capsys):
        save_json(self._valid_record(), tmp_path / "BENCH_E1_x.json")
        (tmp_path / "BENCH_trajectory.jsonl").write_text(
            json.dumps(self._dirty_record()) + "\n"
        )
        assert main(["perf", "--check", str(tmp_path)]) == 1
        assert "BENCH_trajectory.jsonl:0: dirty-tree" in capsys.readouterr().err

    def test_allow_dirty_accepts_dirty_revs(self, tmp_path, capsys):
        save_json(self._dirty_record(), tmp_path / "BENCH_E1_x.json")
        (tmp_path / "BENCH_trajectory.jsonl").write_text(
            json.dumps(self._dirty_record()) + "\n"
        )
        assert main(["perf", "--check", str(tmp_path), "--allow-dirty"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_allow_dirty_still_enforces_schema(self, tmp_path, capsys):
        bad = self._dirty_record()
        bad["rows"] = [["too", "wide"]]
        save_json(bad, tmp_path / "BENCH_E1_x.json")
        assert main(["perf", "--check", str(tmp_path), "--allow-dirty"]) == 1
        assert "SCHEMA VIOLATION" in capsys.readouterr().err
