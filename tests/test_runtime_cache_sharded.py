"""Tests for :class:`repro.runtime.cache.ShardedResultCache`."""

from fractions import Fraction

import pytest

from repro.exceptions import CacheCollisionError, InvalidInstanceError
from repro.graphs import generators
from repro.runtime import BatchRunner, ResultCache, ShardedResultCache
from repro.scheduling.instance import unit_uniform_instance

F = Fraction


def _record(key: str, value: int = 1) -> dict:
    return {"key": key, "value": value}


class TestBasics:
    def test_put_record_contains(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        cache.put("abc123", _record("abc123"))
        assert "abc123" in cache
        assert cache.record("abc123")["value"] == 1
        assert "def456" not in cache
        with pytest.raises(KeyError):
            cache.record("def456")

    def test_keys_spread_over_shard_files(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        for key in ("0aaa", "1bbb", "fccc", "0ddd"):
            cache.put(key, _record(key))
        files = {p.name for p in cache.shard_files()}
        assert files == {"shard-0.jsonl", "shard-1.jsonl", "shard-f.jsonl"}
        assert len(cache) == 4

    def test_same_record_re_put_is_noop(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        cache.put("aa", _record("aa"))
        cache.put("aa", _record("aa"))
        path = cache.shard_files()[0]
        assert len(path.read_text().splitlines()) == 1

    def test_collision_raises(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        cache.put("aa", _record("aa", 1))
        with pytest.raises(CacheCollisionError):
            cache.put("aa", _record("aa", 2))

    def test_invalid_shard_chars(self, tmp_path):
        with pytest.raises(InvalidInstanceError):
            ShardedResultCache(tmp_path / "c", shard_chars=0)

    def test_two_char_shards(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", shard_chars=2)
        cache.put("abcd", _record("abcd"))
        assert cache.shard_files()[0].name == "shard-ab.jsonl"

    def test_short_keys_pad_to_the_declared_prefix(self, tmp_path):
        """A key shorter than shard_chars must not write a shard the
        reopen guard reads as a different shard_chars."""
        cache = ShardedResultCache(tmp_path / "c", shard_chars=2)
        cache.put("a", _record("a"))
        cache.put("", _record(""))
        assert {p.name for p in cache.shard_files()} == {
            "shard-a_.jsonl", "shard-__.jsonl",
        }
        reopened = ShardedResultCache(tmp_path / "c", shard_chars=2)
        assert "a" in reopened and "" in reopened

    def test_mismatched_shard_chars_rejected(self, tmp_path):
        """Reopening a directory with a different prefix length would
        miss every stored record — it must fail loudly instead."""
        ShardedResultCache(tmp_path / "c", shard_chars=2).put(
            "abcd", _record("abcd")
        )
        with pytest.raises(InvalidInstanceError, match="shard_chars=2"):
            ShardedResultCache(tmp_path / "c", shard_chars=1)
        # the matching value keeps working
        assert "abcd" in ShardedResultCache(tmp_path / "c", shard_chars=2)


class TestLaziness:
    def test_construction_loads_nothing(self, tmp_path):
        warm = ShardedResultCache(tmp_path / "c")
        for key in ("0a", "1b", "2c", "3d"):
            warm.put(key, _record(key))

        cold = ShardedResultCache(tmp_path / "c")
        assert cold.loaded_shards == ()
        assert "0a" in cold
        assert cold.loaded_shards == ("0",)  # exactly one shard parsed
        assert cold.record("1b")["key"] == "1b"
        assert cold.loaded_shards == ("0", "1")

    def test_len_is_the_eager_escape_hatch(self, tmp_path):
        warm = ShardedResultCache(tmp_path / "c")
        for key in ("0a", "1b", "2c"):
            warm.put(key, _record(key))
        cold = ShardedResultCache(tmp_path / "c")
        assert len(cold) == 3
        assert cold.loaded_shards == ("0", "1", "2")


class TestHealing:
    def test_garbage_and_truncated_lines_skipped(self, tmp_path):
        directory = tmp_path / "c"
        warm = ShardedResultCache(directory)
        warm.put("0aaa", _record("0aaa"))
        shard = directory / "shard-0.jsonl"
        # simulate a run killed mid-append: non-UTF-8 garbage, then a
        # truncated record with no trailing newline
        with shard.open("ab") as fh:
            fh.write(b"\xff\xfenot json\n")
            fh.write(b'{"key": "0bbb", "val')

        healed = ShardedResultCache(directory)
        assert "0aaa" in healed
        assert "0bbb" not in healed
        # the first append after healing must start on a fresh line
        healed.put("0ccc", _record("0ccc"))
        reread = ShardedResultCache(directory)
        assert "0aaa" in reread and "0ccc" in reread
        assert len(reread) == 2

    def test_last_record_wins_on_duplicate_keys(self, tmp_path):
        directory = tmp_path / "c"
        directory.mkdir()
        shard = directory / "shard-a.jsonl"
        shard.write_text(
            '{"key": "aa", "value": 1}\n{"key": "aa", "value": 2}\n'
        )
        cache = ShardedResultCache(directory)
        assert cache.record("aa")["value"] == 2


class TestMigration:
    def test_migrate_flat_jsonl(self, tmp_path):
        flat_path = tmp_path / "flat.jsonl"
        flat = ResultCache(flat_path)
        for key in ("0a", "1b", "fc"):
            flat.put(key, _record(key))

        sharded = ShardedResultCache.migrate_jsonl(flat_path, tmp_path / "shards")
        assert len(sharded) == 3
        assert {p.name for p in sharded.shard_files()} == {
            "shard-0.jsonl", "shard-1.jsonl", "shard-f.jsonl",
        }
        # the source file is untouched
        assert len(flat_path.read_text().splitlines()) == 3


class TestBatchRunnerIntegration:
    def test_runner_accepts_sharded_cache(self, tmp_path):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        cache = ShardedResultCache(tmp_path / "c")
        runner = BatchRunner(cache=cache)
        (first,) = runner.run_to_list([inst])
        assert first.cached is False and first.error is None

        # a fresh runner over the same directory answers from disk
        rerun = BatchRunner(cache=ShardedResultCache(tmp_path / "c"))
        (second,) = rerun.run_to_list([inst])
        assert second.cached is True
        assert second.makespan == first.makespan
