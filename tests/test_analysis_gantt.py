"""Tests for :mod:`repro.analysis.gantt` — ASCII schedule rendering."""

from fractions import Fraction

from repro.analysis.gantt import render_gantt, render_schedule_summary
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.scheduling.schedule import Schedule

F = Fraction


def _small_schedule():
    graph = BipartiteGraph(4, [(0, 2), (1, 3)])
    inst = UniformInstance(graph, [4, 2, 3, 1], [F(2), F(1)])
    return Schedule(inst, [0, 0, 1, 1])


class TestRenderGantt:
    def test_has_one_row_per_machine(self):
        out = render_gantt(_small_schedule())
        assert "M0" in out and "M1" in out
        assert out.count("\n") >= 3  # header + 2 machines + ruler

    def test_reports_makespan(self):
        schedule = _small_schedule()
        out = render_gantt(schedule)
        assert "Cmax" in out
        assert str(float(schedule.makespan)) in out or "4" in out

    def test_job_ids_appear(self):
        out = render_gantt(_small_schedule(), width=80)
        # wide chart: every job's id should be drawn inside its bar
        for j in range(4):
            assert str(j) in out.split("\n", 1)[1]

    def test_zero_jobs(self):
        inst = UniformInstance(generators.empty_graph(0), [], [F(1), F(1)])
        out = render_gantt(Schedule(inst, []))
        assert "Cmax = 0" in out
        assert "M0" in out and "M1" in out

    def test_idle_machine_renders_empty_bar(self):
        graph = generators.empty_graph(2)
        inst = UniformInstance(graph, [5, 3], [F(1), F(1), F(1)])
        out = render_gantt(Schedule(inst, [0, 0]))
        lines = out.split("\n")
        m2_line = next(line for line in lines if line.startswith("M2"))
        assert "[" not in m2_line and "#" not in m2_line

    def test_rows_do_not_exceed_width(self):
        schedule = _small_schedule()
        width = 40
        out = render_gantt(schedule, width=width)
        for line in out.split("\n")[1:]:
            bar = line.split("|")
            if len(bar) >= 2:
                assert len(bar[1]) <= width + 1

    def test_unrelated_instance_renders(self):
        graph = BipartiteGraph(2, [(0, 1)])
        inst = UnrelatedInstance(graph, [[F(3), None], [None, F(2)]])
        out = render_gantt(Schedule(inst, [0, 1]))
        assert "Cmax = 3" in out


class TestRenderSummary:
    def test_contains_machine_rows(self):
        out = render_schedule_summary(_small_schedule())
        assert "M0" in out and "M1" in out
        assert "feasible" in out

    def test_flags_infeasible(self):
        graph = BipartiteGraph(2, [(0, 1)])
        inst = UniformInstance(graph, [1, 1], [F(1), F(1)])
        bad = Schedule(inst, [0, 0], check=False)
        out = render_schedule_summary(bad)
        assert "INFEASIBLE" in out

    def test_share_column(self):
        out = render_schedule_summary(_small_schedule())
        assert "100%" in out

    def test_empty_machine_shows_dash(self):
        inst = UniformInstance(generators.empty_graph(1), [2], [F(1), F(1)])
        out = render_schedule_summary(Schedule(inst, [0]))
        assert "-" in out

    def test_long_job_list_truncated(self):
        n = 40
        inst = UniformInstance(generators.empty_graph(n), [1] * n, [F(1)])
        out = render_schedule_summary(Schedule(inst, [0] * n))
        assert "..." in out
