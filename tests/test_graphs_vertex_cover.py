"""Tests for König and weighted minimum vertex covers."""

import numpy as np
import pytest

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite, matching_graph, path_graph, star
from repro.graphs.matching import maximum_matching_size
from repro.graphs.vertex_cover import (
    is_vertex_cover,
    konig_vertex_cover,
    min_weight_vertex_cover,
)

from tests.conftest import random_bipartite


def brute_min_cover_weight(g: BipartiteGraph, weights) -> int:
    best = sum(weights)
    for mask in range(1 << g.n):
        cover = [v for v in range(g.n) if (mask >> v) & 1]
        if is_vertex_cover(g, cover):
            best = min(best, sum(weights[v] for v in cover))
    return best


class TestKonig:
    def test_star_covers_with_center(self):
        cover = konig_vertex_cover(star(5))
        assert cover == {0}

    def test_matching_graph(self):
        cover = konig_vertex_cover(matching_graph(3))
        assert len(cover) == 3
        assert is_vertex_cover(matching_graph(3), cover)

    def test_cover_size_equals_matching(self):
        rng = np.random.default_rng(8)
        for _ in range(40):
            g = random_bipartite(rng)
            cover = konig_vertex_cover(g)
            assert is_vertex_cover(g, cover)
            assert len(cover) == maximum_matching_size(g)

    def test_empty_graph(self):
        assert konig_vertex_cover(BipartiteGraph(4, [])) == set()


class TestWeightedCover:
    def test_unit_weights_match_konig_size(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            g = random_bipartite(rng, max_side=6)
            cover = min_weight_vertex_cover(g, [1] * g.n)
            assert is_vertex_cover(g, cover)
            assert len(cover) == maximum_matching_size(g)

    def test_weighted_optimality_vs_bruteforce(self):
        rng = np.random.default_rng(10)
        for _ in range(20):
            g = random_bipartite(rng, max_side=5)
            weights = [int(x) for x in rng.integers(1, 12, g.n)]
            cover = min_weight_vertex_cover(g, weights)
            assert is_vertex_cover(g, cover)
            assert sum(weights[v] for v in cover) == brute_min_cover_weight(g, weights)

    def test_prefers_light_side(self):
        # star with heavy centre: cover with all leaves instead
        g = star(3)
        cover = min_weight_vertex_cover(g, [100, 1, 1, 1])
        assert cover == {1, 2, 3}

    def test_rejects_bad_weights(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            min_weight_vertex_cover(g, [1, 1])
        with pytest.raises(ValueError):
            min_weight_vertex_cover(g, [1, 0, 1])

    def test_empty_graph(self):
        assert min_weight_vertex_cover(BipartiteGraph(0, []), []) == set()

    def test_complete_bipartite_takes_smaller_side(self):
        g = complete_bipartite(2, 6)
        cover = min_weight_vertex_cover(g, [1] * 8)
        assert cover == {0, 1}


class TestIsVertexCover:
    def test_detects_uncovered_edge(self):
        g = path_graph(3)
        assert not is_vertex_cover(g, [0])
        assert is_vertex_cover(g, [1])

    def test_full_vertex_set_always_covers(self):
        g = complete_bipartite(3, 3)
        assert is_vertex_cover(g, range(6))
