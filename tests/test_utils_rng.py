"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_reproducible(self):
        a = ensure_rng(42).integers(0, 1 << 30, 10)
        b = ensure_rng(42).integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent_and_deterministic(self):
        kids_a = spawn_rngs(7, 3)
        kids_b = spawn_rngs(7, 3)
        for a, b in zip(kids_a, kids_b):
            assert (a.integers(0, 1 << 30, 5) == b.integers(0, 1 << 30, 5)).all()

    def test_children_differ_from_each_other(self):
        kids = spawn_rngs(7, 2)
        a = kids[0].integers(0, 1 << 30, 20)
        b = kids[1].integers(0, 1 << 30, 20)
        assert not (a == b).all()

    def test_count_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
