"""Tests for :mod:`repro.scheduling.conflict_split` — MCS coloring split."""

from fractions import Fraction

import pytest

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs import generators
from repro.graphs.conflict import BlockGraph, CompleteMultipartiteGraph
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.conflict_split import (
    conflict_color_split,
    greedy_coloring,
    mcs_order,
)
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    unit_uniform_instance,
)

F = Fraction


def _is_proper(graph, color):
    return all(color[u] != color[v] for u, v in graph.edges())


class TestColoring:
    def test_mcs_order_is_a_permutation(self):
        g = BlockGraph.chain([3, 4, 2])
        assert sorted(mcs_order(g)) == list(range(g.n))

    def test_greedy_coloring_is_proper(self):
        for g in (
            BlockGraph.chain([3, 2, 4]),
            CompleteMultipartiteGraph.from_sizes([3, 2, 1], free=2),
            generators.crown(4),
        ):
            color = greedy_coloring(g)
            assert _is_proper(g, color)

    def test_optimal_on_block_graphs(self):
        # chromatic number of a block graph = size of its largest clique
        g = BlockGraph.chain([3, 2, 5, 4])
        assert max(greedy_coloring(g)) + 1 == 5

    def test_optimal_on_complete_multipartite(self):
        # chi(K_{a,b,c}) = number of classes, free vertices take color 0
        g = CompleteMultipartiteGraph.from_sizes([2, 2, 2], free=3)
        assert max(greedy_coloring(g)) + 1 == 3

    def test_explicit_order_respected(self):
        g = generators.matching_graph(2)
        color = greedy_coloring(g, order=[3, 2, 1, 0])
        assert _is_proper(g, color)


class TestConflictColorSplit:
    def test_block_uniform_is_feasible(self):
        g = BlockGraph.chain([3, 2, 3])
        inst = UniformInstance(g, [4, 1, 2, 5, 3, 1], [F(2), F(1), F(1)])
        schedule = conflict_color_split(inst)
        assert schedule.is_feasible()

    def test_infeasibility_is_exact_on_block_graphs(self):
        # K_4 inside: needs 4 machines, 3 is a proof of infeasibility
        g = BlockGraph.chain([4, 2])
        inst = unit_uniform_instance(g, [F(1)] * 3)
        with pytest.raises(InfeasibleInstanceError, match="4 machines"):
            conflict_color_split(inst)

    def test_spare_machines_get_used(self):
        # 2 color classes on 4 machines: rebalancing may offload jobs
        g = CompleteMultipartiteGraph.from_sizes([3, 3])
        inst = UniformInstance(g, [9, 1, 1, 9, 1, 1], [F(1)] * 4)
        schedule = conflict_color_split(inst)
        assert schedule.is_feasible()
        assert schedule.makespan <= 11

    def test_matches_optimum_on_small_cases(self):
        g = CompleteMultipartiteGraph.from_sizes([2, 2])
        inst = unit_uniform_instance(g, [F(1), F(1)])
        schedule = conflict_color_split(inst)
        assert schedule.is_feasible()
        assert schedule.makespan == brute_force_makespan(inst)

    def test_eligibility_masks_honoured(self):
        g = CompleteMultipartiteGraph.from_sizes([2, 2])
        inst = UniformInstance(
            g,
            [1, 1, 1, 1],
            [F(1)] * 3,
            eligible=[[0], [0, 1], [1, 2], None],
        )
        schedule = conflict_color_split(inst)
        assert schedule.is_feasible()
        for j, machine in enumerate(schedule.assignment):
            assert machine in inst.eligible_machines(j)

    def test_eligibility_can_make_instance_infeasible(self):
        # both jobs conflict and both may only use machine 0
        g = CompleteMultipartiteGraph.from_sizes([1, 1])
        inst = UniformInstance(
            g, [1, 1], [F(1), F(1)], eligible=[[0], [0]]
        )
        with pytest.raises(InfeasibleInstanceError, match="no machine"):
            conflict_color_split(inst)

    def test_unrelated_with_forbidden_pairs(self):
        g = BlockGraph(4, [[0, 1], [2, 3]])
        inst = UnrelatedInstance(
            g,
            [
                [2, None, 3, 4],
                [5, 1, None, 2],
            ],
        )
        schedule = conflict_color_split(inst)
        assert schedule.is_feasible()
        assert schedule.assignment[1] == 1  # forbidden on machine 0

    def test_registry_exposure(self):
        """The engine registers the split as the rank-500 fallback with
        eligibility support."""
        from repro.engine import ALGORITHMS

        spec = ALGORITHMS["conflict_color_split"]
        assert spec.capability.supports_eligibility
        assert spec.capability.min_machines == 2
        g = BlockGraph.chain([3, 3])
        inst = unit_uniform_instance(g, [F(1)] * 3)
        assert spec.applies(inst)
        masked = UniformInstance(
            generators.matching_graph(2),
            [1, 1, 1, 1],
            [F(1), F(1)],
            eligible=[[0], None, None, [1]],
        )
        assert spec.applies(masked)
        ok, reasons = ALGORITHMS["sqrt_approx"].matches(masked)
        assert not ok
        assert any("eligibility" in r for r in reasons)

    def test_one_machine_rejected_via_registry(self):
        from repro.engine import solve

        g = BlockGraph(2, [[0, 1]])
        inst = unit_uniform_instance(g, [F(1)])
        with pytest.raises((InfeasibleInstanceError, InvalidInstanceError)):
            solve(inst, algorithm="conflict_color_split")
