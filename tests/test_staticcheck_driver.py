"""Driver, reporter, CLI, and repo-self-check tests for the linter."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.staticcheck import (
    LINT_FORMAT,
    lint_file,
    lint_paths,
    module_path_for,
    render_json,
    render_text,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


class TestModulePath:
    def test_package_file(self):
        path = REPO_SRC / "repro" / "certify" / "auditor.py"
        assert module_path_for(path) == "repro/certify/auditor.py"

    def test_nested_package(self):
        path = REPO_SRC / "repro" / "staticcheck" / "rules" / "base.py"
        assert module_path_for(path) == "repro/staticcheck/rules/base.py"

    def test_non_package_file_falls_back_to_name(self, tmp_path):
        f = tmp_path / "script.py"
        f.write_text("x = 1\n")
        assert module_path_for(f) == "script.py"


class TestDriver:
    def test_lint_file_matches_scope_regardless_of_root(self, tmp_path):
        # a synthetic package named repro/certify triggers RS001 scoping
        pkg = tmp_path / "repro" / "certify"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        bad = pkg / "bad.py"
        bad.write_text("RATIO = 1.5\n")
        report = lint_file(bad)
        assert [f.rule_id for f in report.active()] == ["RS001"]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "a.py").write_text("import ortools\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.py").write_text("import pulp\n")
        report = lint_paths([tmp_path])
        assert report.files_scanned == 2
        assert sorted(f.rule_id for f in report.active()) == [
            "RS005",
            "RS005",
        ]

    def test_unreadable_file_is_a_finding(self, tmp_path):
        report = lint_paths([tmp_path / "missing.py"])
        (finding,) = report.active()
        assert finding.rule_id == "RS000"
        assert "unreadable" in finding.message


class TestReporters:
    def test_json_schema(self, tmp_path):
        (tmp_path / "a.py").write_text("import ortools\n")
        report = lint_paths([tmp_path])
        payload = json.loads(render_json(report))
        assert payload["format"] == LINT_FORMAT
        assert payload["ok"] is False
        assert payload["counts"]["active"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "RS005"
        assert entry["line"] == 1

    def test_text_failure_and_hints(self, tmp_path):
        (tmp_path / "a.py").write_text("import ortools\n")
        report = lint_paths([tmp_path])
        text = render_text(report, fix_hints=True)
        assert "lint FAILED" in text
        assert "hint:" in text

    def test_text_clean(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        text = render_text(lint_paths([tmp_path]))
        assert "lint clean" in text


class TestCli:
    def test_lint_clean_exit_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_lint_violation_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import ortools\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "RS005" in capsys.readouterr().out

    def test_lint_json_artifact(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import ortools\n")
        out = tmp_path / "report.json"
        code = main(
            ["lint", "--format", "json", "--out", str(out), str(tmp_path)]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["format"] == LINT_FORMAT
        assert payload["ok"] is False
        # stdout carries the same schema
        assert json.loads(capsys.readouterr().out)["format"] == LINT_FORMAT

    def test_lint_rules_subset(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import ortools\n")
        assert main(["lint", "--rules", "RS004", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_lint_unknown_rule_exit_two(self, tmp_path, capsys):
        assert main(["lint", "--rules", "RS999", str(tmp_path)]) == 2
        assert "RS999" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RS001", "RS002", "RS003", "RS004", "RS005"):
            assert rule_id in out


class TestTypingGate:
    def test_pyproject_mypy_config_parses(self):
        import tomllib

        config = tomllib.loads(
            (REPO_SRC.parent / "pyproject.toml").read_text()
        )
        mypy = config["tool"]["mypy"]
        assert mypy["mypy_path"] == "src"
        overrides = config["tool"]["mypy"]["overrides"]
        strict = overrides[0]
        assert "repro.engine.*" in strict["module"]
        assert strict["disallow_untyped_defs"] is True

    def test_py_typed_marker_shipped(self):
        import tomllib

        assert (REPO_SRC / "repro" / "py.typed").is_file()
        config = tomllib.loads(
            (REPO_SRC.parent / "pyproject.toml").read_text()
        )
        package_data = config["tool"]["setuptools"]["package-data"]
        assert "py.typed" in package_data["repro"]

    def test_strict_tier_has_no_unannotated_defs(self):
        """A local stand-in for mypy's disallow_untyped_defs (mypy is
        only guaranteed in CI): every function in the strict tier must
        annotate every parameter and its return."""
        import ast

        missing: list[str] = []
        for pkg in ("engine", "certify", "runtime", "staticcheck", "perf", "fastpath"):
            for path in sorted((REPO_SRC / "repro" / pkg).rglob("*.py")):
                tree = ast.parse(path.read_text(encoding="utf-8"))
                for node in ast.walk(tree):
                    if not isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    args = node.args
                    params = args.posonlyargs + args.args + args.kwonlyargs
                    bad = [
                        a.arg
                        for a in params
                        if a.annotation is None and a.arg not in ("self", "cls")
                    ]
                    if node.returns is None:
                        bad.append("(return)")
                    if bad:
                        missing.append(
                            f"{path.name}:{node.lineno} {node.name}: {bad}"
                        )
        assert not missing, "\n".join(missing)

    def test_mypy_accepts_config_when_available(self):
        import subprocess
        import sys

        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--version"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0


class TestRepoSelfCheck:
    def test_repo_src_is_lint_clean(self):
        """The gate the CI runs: the repo's own src/ must pass its linter.

        Every waiver must carry a reason and suppress something — the
        driver reports missing reasons and unused waivers as RS000,
        which fails this test too.
        """
        report = lint_paths([REPO_SRC])
        assert report.active() == [], render_text(report)

    def test_repo_waivers_all_used_and_reasoned(self):
        report = lint_paths([REPO_SRC])
        assert report.waivers, "the repo documents waivers; expected some"
        for waiver in report.waivers:
            assert waiver.reason, f"waiver without reason: {waiver}"
            assert waiver.used, f"unused waiver: {waiver}"
