"""Tests for :mod:`repro.hardness.pipeline` — schedulers as 1-PrExt deciders.

The Theorem 8 reduction inflates instances by design (gadget layers of
size ``6 k^2 n``), so the Q-side pipeline is exercised with the coloring
oracle (``schedule_from_extension``) standing in for a gap-certified
scheduler; the Theorem 24 reduction keeps the original ``n`` jobs, so
brute force is a genuine exact scheduler there.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.precoloring import (
    claw_no_instance,
    planted_yes_instance,
    solve_prext,
)
from repro.hardness.pipeline import (
    decide_prext_via_q,
    decide_prext_via_r,
    decide_reduction,
)
from repro.hardness.q_reduction import theorem8_reduction
from repro.scheduling.brute_force import brute_force_optimal
from repro.scheduling.list_scheduling import graph_aware_greedy


def _greedy_scheduler(instance):
    schedule = graph_aware_greedy(instance)
    assert schedule is not None, "greedy failed on a reduction instance"
    return schedule


def _oracle_scheduler(hard):
    """A gap-certified scheduler for Q reductions: solve the seed 1-PrExt
    exactly and schedule from the extension (YES), else fall back to
    greedy (sound: on NO instances every schedule is >= the NO bound)."""

    def run(instance):
        coloring = solve_prext(hard.prext)
        if coloring is not None:
            return hard.schedule_from_extension(coloring)
        return _greedy_scheduler(instance)

    return run


class TestQReductionDecider:
    def test_oracle_decides_yes(self):
        prext = planted_yes_instance(5, seed=1)
        hard = theorem8_reduction(prext, k=2)
        decision = decide_reduction(
            hard, _oracle_scheduler(hard), certified_below_gap=True
        )
        assert decision.answer is True
        assert decision.conclusive
        assert decision.makespan <= decision.yes_bound < decision.no_bound
        assert solve_prext(prext) is not None

    def test_oracle_decides_no(self):
        prext = claw_no_instance()
        hard = theorem8_reduction(prext, k=2)
        decision = decide_reduction(
            hard, _oracle_scheduler(hard), certified_below_gap=True
        )
        assert decision.answer is False
        assert decision.makespan >= decision.no_bound
        assert solve_prext(prext) is None

    def test_heuristic_never_falsely_certifies(self):
        """Without the certificate flag, greedy can only say YES or
        abstain — on a NO instance it must abstain (its makespan is
        forced to the NO bound by the theorem)."""
        prext = claw_no_instance()
        decision = decide_prext_via_q(prext, _greedy_scheduler, k=2)
        assert decision.answer is None

    def test_heuristic_is_defeated_but_sound(self):
        """The reduction gadgets are engineered to punish anything short
        of a gap-certified scheduler: greedy (when it completes at all)
        lands far above the NO bound even on YES instances, so it
        abstains — and must never certify a wrong answer."""
        abstentions = 0
        for seed in range(6):
            prext = planted_yes_instance(5, seed=seed)
            try:
                decision = decide_prext_via_q(prext, _greedy_scheduler, k=2)
            except AssertionError:
                continue  # greedy ran out of conflict-free machines
            assert decision.answer in (True, None)
            if decision.answer is True:
                assert solve_prext(prext) is not None
            else:
                abstentions += 1
        # the gadgets really do defeat the heuristic on this family
        assert abstentions >= 1

    def test_reduction_field(self):
        prext = planted_yes_instance(4, seed=2)
        hard = theorem8_reduction(prext, k=1)
        decision = decide_reduction(hard, _oracle_scheduler(hard), True)
        assert decision.reduction == "theorem8"


class TestRReductionDecider:
    def test_exact_scheduler_decides_yes(self):
        prext = planted_yes_instance(6, seed=5)
        decision = decide_prext_via_r(
            prext, brute_force_optimal, d=8, certified_below_gap=True
        )
        assert decision.answer is True
        assert solve_prext(prext) is not None

    def test_exact_scheduler_decides_no(self):
        prext = claw_no_instance()
        decision = decide_prext_via_r(
            prext, brute_force_optimal, d=8, certified_below_gap=True
        )
        assert decision.answer is False
        assert solve_prext(prext) is None

    def test_greedy_is_sound_without_certificate(self):
        for seed in range(4):
            prext = planted_yes_instance(6, seed=seed)
            decision = decide_prext_via_r(prext, _greedy_scheduler, d=8)
            assert decision.answer in (True, None)
            if decision.answer is True:
                assert solve_prext(prext) is not None

    def test_reduction_field(self):
        prext = planted_yes_instance(4, seed=2)
        decision = decide_prext_via_r(
            prext, brute_force_optimal, d=4, certified_below_gap=True
        )
        assert decision.reduction == "theorem24"


@settings(max_examples=10, deadline=None)
@given(n=st.integers(4, 7), seed=st.integers(0, 300))
def test_property_pipelines_match_direct_solver(n, seed):
    """Both reductions, decided with gap-certified schedulers, agree with
    the direct 1-PrExt backtracking solver on random planted instances."""
    prext = planted_yes_instance(n, seed=seed)
    truth = solve_prext(prext) is not None
    # k=2 is the least k whose Theorem 8 bounds separate (kn > n + 2);
    # at k=1 the reduction cannot certify NO and the decider abstains
    hard = theorem8_reduction(prext, k=2)
    q = decide_reduction(hard, _oracle_scheduler(hard), certified_below_gap=True)
    r = decide_prext_via_r(prext, brute_force_optimal, d=6, certified_below_gap=True)
    assert q.answer is truth
    assert r.answer is truth
