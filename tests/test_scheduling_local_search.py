"""Tests for :mod:`repro.scheduling.local_search`."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidScheduleError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.baselines import two_machine_split
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    identical_instance,
    unit_uniform_instance,
)
from repro.scheduling.local_search import improve_schedule
from repro.scheduling.schedule import Schedule

F = Fraction


class TestImproveSchedule:
    def test_rejects_infeasible_input(self):
        graph = BipartiteGraph(2, [(0, 1)])
        inst = identical_instance(graph, [1, 1], 2)
        bad = Schedule(inst, [0, 0], check=False)
        with pytest.raises(InvalidScheduleError):
            improve_schedule(bad)

    def test_zero_jobs(self):
        inst = identical_instance(generators.empty_graph(0), [], 2)
        result = improve_schedule(Schedule(inst, []))
        assert result.schedule.makespan == 0
        assert result.moves == result.swaps == 0

    def test_moves_drain_an_overloaded_machine(self):
        # everything starts on machine 0; moves spread it out
        inst = identical_instance(generators.empty_graph(6), [1] * 6, 3)
        start = Schedule(inst, [0] * 6)
        result = improve_schedule(start)
        assert result.schedule.makespan == 2
        assert result.moves >= 4

    def test_swap_needed_case(self):
        # two machines, jobs sized so only a swap improves: {5,1} vs {4,3}
        # -> optimal {4,1+?}...  5+1=6, 4+3=7 -> swap 1 and 3: 5+3=8 worse;
        # swap 5 and 4: {4,1}=5, {5,3}=8 worse; move 3 to m0: 6+3=9 worse;
        # move 4: ... makespan 7, swap 1<->4: {5,4}=9; keep simple: assert
        # no regression and feasibility on a tight instance
        inst = identical_instance(generators.empty_graph(4), [5, 1, 4, 3], 2)
        start = Schedule(inst, [0, 0, 1, 1])
        result = improve_schedule(start)
        assert result.schedule.makespan <= start.makespan
        assert result.schedule.is_feasible()

    def test_respects_conflicts(self):
        # jobs 0 and 1 conflict; both idle machines would love job 1
        graph = BipartiteGraph(3, [(0, 1)])
        inst = identical_instance(graph, [3, 3, 3], 2)
        start = Schedule(inst, [0, 1, 0])
        result = improve_schedule(start)
        assert result.schedule.is_feasible()

    def test_respects_forbidden_pairs(self):
        graph = generators.empty_graph(3)
        inst = UnrelatedInstance(graph, [[2, 2, 2], [None, 1, 1]])
        start = Schedule(inst, [0, 0, 0])
        result = improve_schedule(start)
        assert result.schedule.is_feasible()
        # job 0 must stay on machine 0
        assert result.schedule.assignment[0] == 0

    def test_improves_two_machine_split(self):
        """The trivial split leaves machines 3.. idle; polishing uses them."""
        graph = gnnp(8, 0.15, seed=3)
        inst = unit_uniform_instance(graph, [F(2), F(1), F(1), F(1)])
        start = two_machine_split(inst)
        result = improve_schedule(start)
        assert result.schedule.makespan <= start.makespan
        assert result.improvement >= 0

    def test_reaches_optimum_on_plateau(self):
        """Two machines at the peak: the count tiebreak drains them."""
        inst = identical_instance(generators.empty_graph(4), [2, 2, 2, 2], 4)
        start = Schedule(inst, [0, 0, 1, 1])
        result = improve_schedule(start)
        assert result.schedule.makespan == 2  # one job per machine

    def test_round_cap_respected(self):
        inst = identical_instance(generators.empty_graph(10), [1] * 10, 5)
        start = Schedule(inst, [0] * 10)
        result = improve_schedule(start, max_rounds=2)
        assert result.rounds <= 2


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 10),
    m=st.integers(1, 4),
    seed=st.integers(0, 2000),
)
def test_property_never_regresses_and_stays_feasible(n, m, seed):
    rng = np.random.default_rng(seed)
    graph = gnnp(max(1, n // 2), 0.3, seed=rng)
    p = [int(x) for x in rng.integers(1, 9, size=graph.n)]
    speeds = sorted((F(int(x)) for x in rng.integers(1, 4, size=m)), reverse=True)
    inst = UniformInstance(graph, p, speeds)
    if m == 1 and graph.edge_count > 0:
        return  # no feasible start exists
    start = two_machine_split(inst) if m >= 2 else Schedule(inst, [0] * graph.n)
    result = improve_schedule(start)
    assert result.schedule.is_feasible()
    assert result.schedule.makespan <= start.makespan
    assert result.schedule.makespan >= brute_force_makespan(inst)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_often_closes_in_on_optimum(seed):
    """Polished trivial splits land within 2x of optimal on small inputs
    (not a theorem — a regression guard on search effectiveness)."""
    rng = np.random.default_rng(seed)
    graph = gnnp(4, 0.25, seed=rng)
    inst = unit_uniform_instance(graph, [F(2), F(1), F(1)])
    start = two_machine_split(inst)
    result = improve_schedule(start)
    assert result.schedule.makespan <= 2 * brute_force_makespan(inst)
