"""Per-rule fixtures for :mod:`repro.staticcheck`.

Every production rule gets at least one passing and one failing
snippet, linted via :func:`lint_source` with a synthetic module path so
the fixture lands inside (or outside) the rule's scope.  Waiver
semantics — honoured, missing-reason, unknown-id, unused — are covered
at the end.
"""

from __future__ import annotations

import pytest

from repro.staticcheck import get_rules, lint_source

IN_EXACT_SCOPE = "repro/certify/fixture.py"
OUT_OF_SCOPE = "repro/analysis/fixture.py"


def rule_ids(report, *, waived=False):
    return sorted(
        {f.rule_id for f in report.findings if f.waived == waived}
    )


def lint(source, module=OUT_OF_SCOPE, rules=None):
    selected = get_rules(tuple(rules)) if rules is not None else None
    return lint_source(source, module=module, rules=selected)


# ---------------------------------------------------------------- RS001


class TestExactPurity:
    def test_fraction_arithmetic_passes(self):
        src = (
            "from fractions import Fraction\n"
            "import math\n"
            "def bound(a, b):\n"
            "    g = math.gcd(a, b)\n"
            "    return Fraction(a, b) + Fraction(g)\n"
        )
        assert lint(src, module=IN_EXACT_SCOPE).ok

    def test_float_literal_fails(self):
        report = lint("RATIO = 1.5\n", module=IN_EXACT_SCOPE)
        assert rule_ids(report) == ["RS001"]

    def test_float_conversion_fails(self):
        report = lint(
            "def f(x):\n    return float(x)\n", module=IN_EXACT_SCOPE
        )
        assert rule_ids(report) == ["RS001"]

    def test_float_domain_math_fails(self):
        report = lint(
            "import math\n"
            "def f(x):\n"
            "    return math.sqrt(x)\n",
            module=IN_EXACT_SCOPE,
        )
        assert rule_ids(report) == ["RS001"]

    def test_out_of_scope_floats_allowed(self):
        report = lint("RATIO = 1.5\n", module=OUT_OF_SCOPE)
        assert "RS001" not in rule_ids(report)


# ---------------------------------------------------------------- RS002


class TestRegistryContract:
    GOOD = (
        "spec = AlgorithmSpec(\n"
        "    name='alg2',\n"
        "    capability=Capability(machine_kind='uniform'),\n"
        "    auto_rank=10,\n"
        ")\n"
        "other = AlgorithmSpec(\n"
        "    name='alg5',\n"
        "    capability=Capability(machine_kind='unrelated'),\n"
        "    auto_rank=20,\n"
        ")\n"
    )

    def test_full_capability_unique_ranks_pass(self):
        assert lint(self.GOOD).ok

    def test_missing_capability_fails(self):
        report = lint("spec = AlgorithmSpec(name='alg2', auto_rank=10)\n")
        assert rule_ids(report) == ["RS002"]

    def test_capability_none_fails(self):
        report = lint(
            "spec = AlgorithmSpec(name='alg2', capability=None, auto_rank=1)\n"
        )
        assert rule_ids(report) == ["RS002"]

    def test_duplicate_auto_rank_fails(self):
        src = self.GOOD.replace("auto_rank=20", "auto_rank=10")
        report = lint(src)
        assert rule_ids(report) == ["RS002"]
        (finding,) = report.active()
        assert "duplicate auto_rank 10" in finding.message

    def test_non_literal_rank_fails(self):
        report = lint(
            "spec = AlgorithmSpec(\n"
            "    name='x', capability=Capability(), auto_rank=compute()\n"
            ")\n"
        )
        assert rule_ids(report) == ["RS002"]


# ---------------------------------------------------------------- RS003


class TestAsyncSafety:
    def test_asyncio_sleep_passes(self):
        src = (
            "import asyncio\n"
            "async def tick():\n"
            "    await asyncio.sleep(0.1)\n"
        )
        assert lint(src).ok

    def test_time_sleep_fails(self):
        src = (
            "import time\n"
            "async def tick():\n"
            "    time.sleep(0.1)\n"
        )
        assert rule_ids(lint(src)) == ["RS003"]

    def test_from_import_sleep_alias_fails(self):
        src = (
            "from time import sleep as snooze\n"
            "async def tick():\n"
            "    snooze(1)\n"
        )
        assert rule_ids(lint(src)) == ["RS003"]

    def test_open_in_coroutine_fails(self):
        src = (
            "async def load(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        )
        assert rule_ids(lint(src)) == ["RS003"]

    def test_runner_run_fails(self):
        src = (
            "async def solve_all(runner, tasks):\n"
            "    return runner.run(tasks)\n"
        )
        assert rule_ids(lint(src)) == ["RS003"]

    def test_nested_sync_def_exempt(self):
        # executor targets / call_soon_threadsafe callbacks run off-loop
        src = (
            "import time\n"
            "async def dispatch(loop):\n"
            "    def worker():\n"
            "        time.sleep(1)\n"
            "        with open('x') as fh:\n"
            "            return fh.read()\n"
            "    return await loop.run_in_executor(None, worker)\n"
        )
        assert lint(src).ok

    def test_sync_code_not_flagged(self):
        src = "import time\ndef tick():\n    time.sleep(0.1)\n"
        assert lint(src).ok


# ---------------------------------------------------------------- RS004


class TestExceptionPolicy:
    def test_typed_raise_passes(self):
        src = (
            "from repro.exceptions import InvalidInstanceError\n"
            "def check(n):\n"
            "    if n < 0:\n"
            "        raise InvalidInstanceError('negative n')\n"
        )
        assert lint(src).ok

    def test_bare_assert_fails(self):
        report = lint("def check(n):\n    assert n >= 0\n")
        assert rule_ids(report) == ["RS004"]

    def test_waivered_invariant_passes(self):
        src = (
            "def reconstruct(state):\n"
            "    assert state == 0  "
            "# repro: allow[RS004] reason=DP invariant\n"
        )
        report = lint(src)
        assert report.ok
        assert rule_ids(report, waived=True) == ["RS004"]


# ---------------------------------------------------------------- RS005


class TestImportGuards:
    def test_guarded_import_passes(self):
        src = (
            "try:\n"
            "    from ortools.sat.python import cp_model\n"
            "    HAS_ORTOOLS = True\n"
            "except ImportError:\n"
            "    HAS_ORTOOLS = False\n"
        )
        assert lint(src).ok

    def test_unguarded_import_fails(self):
        report = lint("import ortools\n")
        assert rule_ids(report) == ["RS005"]

    def test_unguarded_from_import_fails(self):
        report = lint("from pulp import LpProblem\n")
        assert rule_ids(report) == ["RS005"]

    def test_guard_must_catch_import_error(self):
        src = (
            "try:\n"
            "    import ortools\n"
            "except ValueError:\n"
            "    pass\n"
        )
        assert rule_ids(lint(src)) == ["RS005"]

    def test_function_level_guarded_import_passes(self):
        src = (
            "def backend():\n"
            "    try:\n"
            "        import pulp\n"
            "    except ModuleNotFoundError:\n"
            "        return None\n"
            "    return pulp\n"
        )
        assert lint(src).ok

    def test_numpy_is_exempt(self):
        assert lint("import numpy as np\n").ok


# ------------------------------------------------------------ waivers


class TestWaiverSemantics:
    def test_own_line_waiver_covers_next_line(self):
        src = (
            "# repro: allow[RS001] reason=reporting-only\n"
            "RATIO = 1.5\n"
        )
        report = lint(src, module=IN_EXACT_SCOPE)
        assert report.ok
        assert rule_ids(report, waived=True) == ["RS001"]

    def test_waiver_without_reason_does_not_suppress(self):
        src = "RATIO = 1.5  # repro: allow[RS001]\n"
        report = lint(src, module=IN_EXACT_SCOPE)
        assert not report.ok
        ids = rule_ids(report)
        assert "RS001" in ids  # still fails
        assert "RS000" in ids  # and the waiver itself is reported

    def test_unused_waiver_reported(self):
        src = (
            "# repro: allow[RS001] reason=left behind after a fix\n"
            "RATIO = 2\n"
        )
        report = lint(src, module=IN_EXACT_SCOPE)
        assert not report.ok
        (finding,) = report.active()
        assert finding.rule_id == "RS000"
        assert "unused waiver" in finding.message

    def test_unused_waiver_not_reported_for_unselected_rules(self):
        src = (
            "# repro: allow[RS004] reason=invariant kept\n"
            "x = 1\n"
        )
        report = lint(src, module=IN_EXACT_SCOPE, rules=("RS001",))
        assert report.ok

    def test_unknown_rule_id_in_waiver_reported(self):
        src = "x = 1  # repro: allow[RS999] reason=typo\n"
        report = lint(src)
        (finding,) = report.active()
        assert finding.rule_id == "RS000"
        assert "RS999" in finding.message

    def test_multi_rule_waiver(self):
        src = (
            "# repro: allow[RS001,RS004] reason=fixture exercising both\n"
            "assert float(1) > 0.5\n"
        )
        report = lint(src, module=IN_EXACT_SCOPE)
        assert report.ok
        assert rule_ids(report, waived=True) == ["RS001", "RS004"]

    def test_waiver_inside_string_ignored(self):
        src = 's = "# repro: allow[RS001] reason=not a comment"\nRATIO = 1.5\n'
        report = lint(src, module=IN_EXACT_SCOPE)
        assert not report.ok

    def test_syntax_error_reported_as_rs000(self):
        report = lint("def broken(:\n")
        (finding,) = report.active()
        assert finding.rule_id == "RS000"
        assert "does not parse" in finding.message

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError, match="RS999"):
            get_rules(("RS999",))
