"""Tests for :mod:`repro.solvers` — registry and auto dispatch."""

import sys
import warnings
from fractions import Fraction

import pytest

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    identical_instance,
    unit_uniform_instance,
)
from repro.engine import ALGORITHMS, available_algorithms, solve

F = Fraction


class TestDeprecatedShim:
    def test_import_emits_deprecation_warning(self):
        sys.modules.pop("repro.solvers", None)
        with pytest.warns(DeprecationWarning, match="repro.engine"):
            import repro.solvers  # noqa: F401

    def test_shim_names_are_the_engine_names(self):
        sys.modules.pop("repro.solvers", None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.solvers as shim
        assert shim.solve is solve
        assert shim.ALGORITHMS is ALGORITHMS
        assert shim._auto_choice is shim.auto_choice


class TestRegistry:
    def test_every_spec_has_fields(self):
        for spec in ALGORITHMS.values():
            assert spec.name and spec.guarantee and spec.anchor
            assert callable(spec.applies) and callable(spec.run)

    def test_paper_algorithms_registered(self):
        for name in (
            "sqrt_approx",
            "q2_unit_exact",
            "random_graph",
            "r2_two_approx",
            "r2_fptas",
            "complete_multipartite",
            "brute_force",
        ):
            assert name in ALGORITHMS

    def test_available_without_instance_lists_all(self):
        assert len(available_algorithms()) == len(ALGORITHMS)

    def test_available_filters_by_instance(self):
        inst = unit_uniform_instance(generators.crown(3), [F(2), F(1)])
        names = {s.name for s in available_algorithms(inst)}
        assert "sqrt_approx" in names
        assert "r2_fptas" not in names  # unrelated-only

    def test_unknown_algorithm_rejected(self):
        inst = unit_uniform_instance(generators.empty_graph(2), [F(1)])
        with pytest.raises(InvalidInstanceError, match="unknown algorithm"):
            solve(inst, algorithm="quantum_annealing")

    def test_inapplicable_algorithm_rejected(self):
        inst = unit_uniform_instance(generators.crown(3), [F(2), F(1)])
        with pytest.raises(InvalidInstanceError, match="does not apply"):
            solve(inst, algorithm="r2_fptas")


class TestAutoDispatchUniform:
    def test_complete_bipartite_unit_is_exact(self):
        inst = unit_uniform_instance(
            generators.complete_bipartite(3, 2), [F(2), F(1), F(1)]
        )
        schedule = solve(inst)
        assert schedule.makespan == brute_force_makespan(inst)

    def test_q2_unit_is_exact(self):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        schedule = solve(inst)
        assert schedule.makespan == brute_force_makespan(inst)

    def test_empty_identical_uses_ptas(self):
        inst = identical_instance(generators.empty_graph(8), [5, 4, 3, 3, 2, 2, 1, 1], 3)
        schedule = solve(inst)
        opt = brute_force_makespan(inst)
        assert schedule.makespan <= (1 + F(1, 3)) * opt

    def test_empty_uniform_uses_lpt(self):
        inst = UniformInstance(
            generators.empty_graph(6), [4, 3, 3, 2, 2, 1], [F(2), F(1)]
        )
        schedule = solve(inst)
        assert schedule.is_feasible()
        assert schedule.makespan <= 2 * brute_force_makespan(inst)

    def test_general_bipartite_uses_sqrt_approx(self):
        inst = UniformInstance(
            generators.crown(4), [3, 1, 4, 1, 5, 9, 2, 6], [F(3), F(2), F(1)]
        )
        schedule = solve(inst)
        assert schedule.is_feasible()

    def test_one_machine_with_conflicts_raises(self):
        inst = unit_uniform_instance(BipartiteGraph(2, [(0, 1)]), [F(1)])
        with pytest.raises(InfeasibleInstanceError):
            solve(inst)

    def test_one_machine_general_graph_raises(self):
        # a crown is not complete bipartite, so the dispatcher itself
        # reports infeasibility (not the multipartite solver)
        inst = unit_uniform_instance(generators.crown(3), [F(1)])
        with pytest.raises(InfeasibleInstanceError):
            solve(inst)


class TestAutoDispatchUnrelated:
    def test_r2_uses_fptas(self):
        graph = BipartiteGraph(3, [(0, 1)])
        inst = UnrelatedInstance(graph, [[2, 3, 4], [5, 1, 2]])
        schedule = solve(inst)
        opt = brute_force_makespan(inst)
        assert schedule.makespan <= (1 + F(1, 10)) * opt

    def test_empty_r3_uses_lst(self):
        graph = generators.empty_graph(5)
        inst = UnrelatedInstance(
            graph, [[3, 5, 2, 6, 4], [4, 2, 5, 3, 6], [6, 4, 3, 2, 5]]
        )
        schedule = solve(inst)
        assert schedule.is_feasible()  # empty graph: LST result is feasible
        assert schedule.makespan <= 2 * brute_force_makespan(inst)

    def test_r3_with_conflicts_uses_color_split(self):
        graph = generators.complete_bipartite(2, 2)
        inst = UnrelatedInstance(
            graph, [[1, 1, 9, 9], [9, 9, 1, 1], [5, 5, 5, 5]]
        )
        schedule = solve(inst)
        assert schedule.is_feasible()

    def test_r1_with_conflicts_raises(self):
        graph = BipartiteGraph(2, [(0, 1)])
        inst = UnrelatedInstance(graph, [[1, 1]])
        with pytest.raises(InfeasibleInstanceError):
            solve(inst)


class TestExplicitChoices:
    def test_brute_force_by_name(self):
        inst = unit_uniform_instance(generators.crown(3), [F(2), F(1)])
        schedule = solve(inst, algorithm="brute_force")
        assert schedule.makespan == brute_force_makespan(inst)

    def test_bjw_by_name(self):
        inst = identical_instance(generators.crown(3), [1] * 6, 3)
        schedule = solve(inst, algorithm="bjw")
        assert schedule.is_feasible()

    def test_greedy_by_name(self):
        inst = unit_uniform_instance(generators.matching_graph(3), [F(2), F(1)])
        schedule = solve(inst, algorithm="greedy")
        assert schedule.is_feasible()

    def test_greedy_failure_raises(self):
        # K_{2,2} on one machine: greedy cannot place conflicting jobs
        inst = unit_uniform_instance(generators.complete_bipartite(2, 2), [F(1)])
        with pytest.raises(InvalidInstanceError, match="greedy"):
            solve(inst, algorithm="greedy")

    def test_random_graph_algorithm_by_name(self):
        from repro.random_graphs.gilbert import gnnp

        graph = gnnp(10, 0.1, seed=3)
        inst = unit_uniform_instance(graph, [F(3), F(2), F(1)])
        schedule = solve(inst, algorithm="random_graph")
        assert schedule.is_feasible()

    def test_every_applicable_algorithm_runs(self):
        """Smoke: run each applicable method on a benign instance."""
        inst = unit_uniform_instance(
            generators.matching_graph(3), [F(2), F(1), F(1)]
        )
        for spec in available_algorithms(inst):
            if spec.name == "lpt":
                continue  # graph-blind: returns check=False schedules
            schedule = solve(inst, algorithm=spec.name)
            assert schedule.makespan > 0

    def test_two_machine_split_requires_two_machines(self):
        """Regression: the *two-machine* split must not claim m = 1
        edgeless instances — its name and Algorithm-1-fallback shape
        promise two machines."""
        one_machine = UniformInstance(generators.empty_graph(3), [1, 2, 3], [F(1)])
        spec = ALGORITHMS["two_machine_split"]
        assert not spec.applies(one_machine)
        with pytest.raises(InvalidInstanceError, match="two_machine_split"):
            solve(one_machine, algorithm="two_machine_split")
        two_machines = UniformInstance(
            generators.empty_graph(3), [1, 2, 3], [F(2), F(1)]
        )
        assert spec.applies(two_machines)
        assert solve(two_machines, algorithm="two_machine_split").is_feasible()
