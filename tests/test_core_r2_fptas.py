"""Tests for Algorithm 5 (Theorem 22: FPTAS for R2|G=bipartite|Cmax)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.r2_fptas import r2_fptas
from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import matching_graph, path_graph
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UnrelatedInstance

from tests.conftest import random_r2


class TestGuarantee:
    @pytest.mark.parametrize("eps", [1, Fraction(1, 2), Fraction(1, 5), Fraction(1, 25)])
    def test_one_plus_eps(self, eps):
        rng = np.random.default_rng(int(100 / Fraction(eps)))
        for _ in range(15):
            inst = random_r2(rng, max_side=4)
            s = r2_fptas(inst, eps=eps)
            assert s.is_feasible()
            opt = brute_force_makespan(inst)
            assert s.makespan <= (1 + Fraction(eps)) * opt

    def test_small_eps_is_practically_exact(self):
        rng = np.random.default_rng(80)
        exact_hits = 0
        for _ in range(15):
            inst = random_r2(rng, max_side=4, max_time=10)
            s = r2_fptas(inst, eps=Fraction(1, 1000))
            opt = brute_force_makespan(inst)
            exact_hits += s.makespan == opt
        assert exact_hits == 15  # at this eps the grid never merges states

    def test_monotone_quality_in_eps(self):
        rng = np.random.default_rng(81)
        inst = random_r2(rng, max_side=5)
        spans = [
            r2_fptas(inst, eps=e).makespan
            for e in (2, 1, Fraction(1, 4), Fraction(1, 64))
        ]
        # not strictly monotone in general, but the guarantee envelope is
        opt = brute_force_makespan(inst)
        for e, span in zip((2, 1, Fraction(1, 4), Fraction(1, 64)), spans):
            assert span <= (1 + Fraction(e)) * opt


class TestSentinelFidelity:
    def test_sentinel_matches_forbidden_mode(self):
        """The paper's 2T sentinel and native pinning agree (eps < 1)."""
        rng = np.random.default_rng(82)
        for _ in range(15):
            inst = random_r2(rng, max_side=4)
            a = r2_fptas(inst, eps=Fraction(1, 3), use_sentinel_times=False)
            b = r2_fptas(inst, eps=Fraction(1, 3), use_sentinel_times=True)
            opt = brute_force_makespan(inst)
            assert a.makespan <= Fraction(4, 3) * opt
            assert b.makespan <= Fraction(4, 3) * opt


class TestEdgeCases:
    def test_empty_instance(self):
        inst = UnrelatedInstance(BipartiteGraph(0, []), [[], []])
        assert r2_fptas(inst).makespan == 0

    def test_single_job(self):
        inst = UnrelatedInstance(BipartiteGraph(1, []), [[5], [3]])
        s = r2_fptas(inst, eps=Fraction(1, 10))
        assert s.makespan == 3

    def test_bad_eps(self):
        inst = UnrelatedInstance(BipartiteGraph(1, []), [[1], [1]])
        with pytest.raises(InvalidInstanceError):
            r2_fptas(inst, eps=0)

    def test_connected_graph_two_choices_only(self):
        # a path forces per-side assignment; FPTAS must pick the better side
        g = path_graph(4)
        inst = UnrelatedInstance(g, [[1, 8, 1, 8], [8, 1, 8, 1]])
        s = r2_fptas(inst, eps=Fraction(1, 10))
        assert s.makespan == 2  # evens on M1, odds on M2

    def test_rational_times(self):
        g = matching_graph(1)
        inst = UnrelatedInstance(
            g, [[Fraction(1, 3), Fraction(5, 2)], [Fraction(5, 2), Fraction(1, 3)]]
        )
        s = r2_fptas(inst, eps=Fraction(1, 10))
        assert s.makespan == Fraction(1, 3)


class TestTheorem4Usage:
    def test_split_detection_instance(self):
        """The prepared instances of Theorem 4: FPTAS distinguishes exact
        splits, the property the O(n^3) algorithm relies on."""
        g = path_graph(4)  # parts {0,2} and {1,3}
        n = 4
        for n1 in range(1, n):
            n2 = n - n1
            times = [[n2] * n, [n1] * n]
            inst = UnrelatedInstance(g, times)
            s = r2_fptas(inst, eps=Fraction(1, n + 1))
            achieved = s.makespan == n1 * n2
            assert achieved == (n1 == 2)  # the path only splits 2-2
