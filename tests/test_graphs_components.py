"""Tests for connected-component decomposition."""

from hypothesis import given, strategies as st

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_subgraphs, connected_components
from repro.graphs.generators import matching_graph, path_graph


class TestConnectedComponents:
    def test_empty_graph(self):
        assert connected_components(BipartiteGraph(0, [])) == []

    def test_isolated_vertices_are_singletons(self):
        comps = connected_components(BipartiteGraph(3, []))
        assert comps == [[0], [1], [2]]

    def test_path_is_one_component(self):
        comps = connected_components(path_graph(6))
        assert comps == [[0, 1, 2, 3, 4, 5]]

    def test_matching_has_k_components(self):
        comps = connected_components(matching_graph(4))
        assert len(comps) == 4
        assert all(len(c) == 2 for c in comps)

    def test_deterministic_ordering(self):
        g = BipartiteGraph(6, [(4, 5), (0, 1)])
        comps = connected_components(g)
        assert comps == [[0, 1], [2], [3], [4, 5]]


class TestComponentSubgraphs:
    def test_subgraphs_partition_vertices(self):
        g = BipartiteGraph(7, [(0, 1), (2, 3), (3, 4)])
        parts = component_subgraphs(g)
        seen = sorted(v for _, ids in parts for v in ids)
        assert seen == list(range(7))

    def test_subgraph_edges_match(self):
        g = BipartiteGraph(5, [(0, 1), (1, 2), (3, 4)])
        parts = component_subgraphs(g)
        assert [sub.edge_count for sub, _ in parts] == [2, 1]


@given(st.integers(0, 12), st.data())
def test_components_partition_property(n, data):
    edges = []
    if n >= 2:
        edges = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda e: e[0] != e[1]
                ),
                max_size=15,
            )
        )
    # force bipartiteness: connect only even-odd pairs
    edges = [(u, v) for u, v in edges if (u + v) % 2 == 1]
    g = BipartiteGraph(n, edges)
    comps = connected_components(g)
    flat = sorted(v for c in comps for v in c)
    assert flat == list(range(n))
    # every edge stays within one component
    comp_of = {}
    for idx, comp in enumerate(comps):
        for v in comp:
            comp_of[v] = idx
    for u, v in g.edges():
        assert comp_of[u] == comp_of[v]
