"""Tests for the deterministic and random graph families."""

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators as gen
from repro.graphs.components import connected_components


class TestDeterministicFamilies:
    def test_empty_graph(self):
        g = gen.empty_graph(5)
        assert g.n == 5 and g.edge_count == 0

    def test_complete_bipartite(self):
        g = gen.complete_bipartite(3, 4)
        assert g.n == 7 and g.edge_count == 12
        assert all(g.degree(v) == 4 for v in range(3))

    def test_crown(self):
        g = gen.crown(4)
        assert g.n == 8 and g.edge_count == 12
        assert all(g.degree(v) == 3 for v in range(8))

    def test_crown_size_one_is_two_isolated(self):
        g = gen.crown(1)
        assert g.n == 2 and g.edge_count == 0

    def test_crown_rejects_zero(self):
        with pytest.raises(InvalidInstanceError):
            gen.crown(0)

    def test_path(self):
        g = gen.path_graph(6)
        assert g.edge_count == 5
        assert g.degree(0) == 1 and g.degree(3) == 2

    def test_even_cycle(self):
        g = gen.even_cycle(6)
        assert g.edge_count == 6
        assert all(g.degree(v) == 2 for v in range(6))

    @pytest.mark.parametrize("bad", [3, 5, 2, 0])
    def test_odd_or_small_cycle_rejected(self, bad):
        with pytest.raises(InvalidInstanceError):
            gen.even_cycle(bad)

    def test_star(self):
        g = gen.star(5)
        assert g.degree(0) == 5
        assert g.n == 6

    def test_star_zero_leaves(self):
        assert gen.star(0).n == 1

    def test_double_star(self):
        g = gen.double_star(3, 2)
        assert g.n == 7
        assert g.degree(0) == 4 and g.degree(1) == 3

    def test_caterpillar(self):
        g = gen.caterpillar(3, 2)
        assert g.n == 9
        assert g.edge_count == 8  # a tree
        assert len(connected_components(g)) == 1

    def test_matching_graph(self):
        g = gen.matching_graph(3)
        assert g.n == 6 and g.edge_count == 3
        assert all(g.degree(v) == 1 for v in range(6))


class TestRandomTree:
    def test_tree_properties(self):
        for seed in range(15):
            n = 3 + seed
            g = gen.random_tree(n, seed=seed)
            assert g.n == n
            assert g.edge_count == n - 1
            assert len(connected_components(g)) == 1

    def test_tiny_trees(self):
        assert gen.random_tree(1).n == 1
        assert gen.random_tree(2).edge_count == 1

    def test_reproducible(self):
        a = gen.random_tree(20, seed=5)
        b = gen.random_tree(20, seed=5)
        assert a == b

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            gen.random_tree(0)

    def test_distribution_not_degenerate(self):
        # different seeds should give different trees essentially always
        trees = {gen.random_tree(10, seed=s) for s in range(10)}
        assert len(trees) > 5


class TestRandomForest:
    def test_forest_properties(self):
        g = gen.random_forest(20, 4, seed=1)
        assert g.n == 20
        assert g.edge_count == 16  # n - #trees
        assert len(connected_components(g)) == 4

    def test_single_tree(self):
        g = gen.random_forest(10, 1, seed=2)
        assert len(connected_components(g)) == 1

    def test_all_singletons(self):
        g = gen.random_forest(5, 5, seed=3)
        assert g.edge_count == 0

    def test_rejects_bad_counts(self):
        with pytest.raises(InvalidInstanceError):
            gen.random_forest(3, 4)
        with pytest.raises(InvalidInstanceError):
            gen.random_forest(3, 0)


class TestDegreeBounded:
    def test_degree_bound_respected(self):
        for d in (1, 2, 3, 4):
            g = gen.random_bipartite_degree_bounded(8, 8, d, seed=d)
            assert g.max_degree() <= d

    def test_greedy_is_maximal(self):
        # greedy yields a *maximal* degree-bounded subgraph: every absent
        # cross edge is blocked by a saturated endpoint
        g = gen.random_bipartite_degree_bounded(6, 6, 3, seed=1)
        left = [v for v in range(g.n) if g.side[v] == 0]
        right = [v for v in range(g.n) if g.side[v] == 1]
        for u in left:
            for w in right:
                if not g.has_edge(u, w):
                    assert g.degree(u) == 3 or g.degree(w) == 3

    def test_reproducible(self):
        a = gen.random_bipartite_degree_bounded(5, 7, 2, seed=9)
        b = gen.random_bipartite_degree_bounded(5, 7, 2, seed=9)
        assert a == b


class TestRandomSubgraph:
    def test_keep_all(self):
        g = gen.complete_bipartite(3, 3)
        assert gen.random_subgraph(g, 1.0, seed=0) == g

    def test_keep_none(self):
        g = gen.complete_bipartite(3, 3)
        assert gen.random_subgraph(g, 0.0, seed=0).edge_count == 0

    def test_bad_probability(self):
        with pytest.raises(InvalidInstanceError):
            gen.random_subgraph(gen.star(2), 1.5)

    def test_vertex_count_preserved(self):
        g = gen.crown(5)
        sub = gen.random_subgraph(g, 0.5, seed=1)
        assert sub.n == g.n
