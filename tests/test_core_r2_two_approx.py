"""Tests for Algorithm 4 (Theorem 21: 2-approximation for R2)."""

from fractions import Fraction

import numpy as np

from repro.core.r2_reduction import reduce_r2
from repro.core.r2_two_approx import r2_two_approx
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite, matching_graph
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UnrelatedInstance

from tests.conftest import random_r2


class TestFeasibility:
    def test_always_feasible(self):
        rng = np.random.default_rng(70)
        for _ in range(30):
            s = r2_two_approx(random_r2(rng))
            assert s.is_feasible()

    def test_empty_instance(self):
        inst = UnrelatedInstance(BipartiteGraph(0, []), [[], []])
        assert r2_two_approx(inst).makespan == 0


class TestApproximationGuarantee:
    def test_within_two_of_optimum(self):
        rng = np.random.default_rng(71)
        for _ in range(40):
            inst = random_r2(rng, max_side=4)
            s = r2_two_approx(inst)
            opt = brute_force_makespan(inst)
            assert s.makespan <= 2 * opt, (s.makespan, opt)

    def test_proof_inequality(self):
        """Cmax <= max(T1, T2) + T_extra, the bound inside Theorem 21."""
        rng = np.random.default_rng(72)
        for _ in range(20):
            inst = random_r2(rng)
            red = reduce_r2(inst)
            s = r2_two_approx(inst)
            t1, t2 = red.private_load_m1, red.private_load_m2
            t_extra = sum(
                (min(rec.dummy_times) for rec in red.components), Fraction(0)
            )
            assert s.makespan <= max(t1, t2) + t_extra

    def test_tightish_example(self):
        """A case where Algorithm 4 is a full factor ~2 away: two choice
        components whose cheap sides pile onto the same machine."""
        g = BipartiteGraph(2, [])  # two isolated jobs
        inst = UnrelatedInstance(g, [[10, 10], [11, 11]])
        s = r2_two_approx(inst)
        # both jobs prefer machine 1 -> makespan 20; optimum splits -> 11
        assert s.makespan == 20
        assert brute_force_makespan(inst) == 11


class TestDeterminism:
    def test_ties_to_machine_one(self):
        g = BipartiteGraph(1, [])
        inst = UnrelatedInstance(g, [[5], [5]])
        s = r2_two_approx(inst)
        assert s.assignment == (0,)

    def test_repeatable(self):
        rng = np.random.default_rng(73)
        inst = random_r2(rng)
        assert r2_two_approx(inst).assignment == r2_two_approx(inst).assignment


class TestStructuredComponents:
    def test_biclique_orientation(self):
        # K_{2,2}: machine 0 much faster for part 1, machine 1 for part 2
        g = complete_bipartite(2, 2)
        inst = UnrelatedInstance(g, [[1, 1, 50, 50], [50, 50, 1, 1]])
        s = r2_two_approx(inst)
        assert s.makespan == 2
        assert s.jobs_on(0) == [0, 1]

    def test_matching_components_independent_choices(self):
        g = matching_graph(2)
        # component 0 prefers straight, component 1 prefers flipped
        inst = UnrelatedInstance(
            g, [[1, 9, 9, 1], [9, 1, 1, 9]]
        )
        s = r2_two_approx(inst)
        assert s.makespan == 2
