"""Tests for Algorithm 3 (component reduction on two unrelated machines)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.r2_reduction import ComponentCase, reduce_r2
from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite, matching_graph, path_graph
from repro.scheduling.instance import UnrelatedInstance

from tests.conftest import random_r2


class TestCaseAnalysis:
    def test_straight_dominates(self):
        # one edge; straight loads (1, 1), flipped (9, 9)
        g = matching_graph(1)
        inst = UnrelatedInstance(g, [[1, 9], [9, 1]])
        red = reduce_r2(inst)
        (rec,) = red.components
        assert rec.case is ComponentCase.STRAIGHT_DOMINATES
        assert rec.dummy_times == (0, 0)
        assert rec.base_loads == (1, 1)

    def test_flipped_dominates(self):
        g = matching_graph(1)
        inst = UnrelatedInstance(g, [[9, 1], [1, 9]])
        red = reduce_r2(inst)
        (rec,) = red.components
        assert rec.case is ComponentCase.FLIPPED_DOMINATES
        assert rec.base_loads == (1, 1)

    def test_choice_case_differences(self):
        # straight loads (5, 1), flipped (2, 4): neither dominates
        g = matching_graph(1)
        inst = UnrelatedInstance(g, [[5, 2], [4, 1]])
        red = reduce_r2(inst)
        (rec,) = red.components
        assert rec.case is ComponentCase.CHOICE
        assert rec.dummy_times == (3, 3)
        assert rec.base_loads == (2, 1)

    def test_singleton_component_is_free_choice(self):
        g = BipartiteGraph(1, [])
        inst = UnrelatedInstance(g, [[4], [7]])
        red = reduce_r2(inst)
        (rec,) = red.components
        assert rec.case is ComponentCase.CHOICE
        assert rec.dummy_times == (4, 7)
        assert rec.base_loads == (0, 0)

    def test_equal_loads_collapse_to_dominated(self):
        g = matching_graph(1)
        inst = UnrelatedInstance(g, [[3, 3], [3, 3]])
        red = reduce_r2(inst)
        (rec,) = red.components
        assert rec.case is not ComponentCase.CHOICE
        assert rec.dummy_times == (0, 0)


class TestReductionInvariants:
    def test_private_loads_sum_of_minima(self):
        rng = np.random.default_rng(60)
        for _ in range(20):
            inst = random_r2(rng)
            red = reduce_r2(inst)
            assert red.private_load_m1 == sum(
                (c.base_loads[0] for c in red.components), Fraction(0)
            )

    def test_orientation_expansion_feasible(self):
        rng = np.random.default_rng(61)
        for _ in range(20):
            inst = random_r2(rng)
            red = reduce_r2(inst)
            c = len(red.components)
            for trial in range(4):
                orientations = [int(x) for x in rng.integers(0, 2, c)]
                s = red.schedule_from_orientations(orientations)
                assert s.is_feasible()

    def test_expansion_makespan_matches_reduced_loads(self):
        """Loads of the expanded schedule = private loads + chosen extras."""
        rng = np.random.default_rng(62)
        for _ in range(15):
            inst = random_r2(rng)
            red = reduce_r2(inst)
            orientations = [int(x) for x in rng.integers(0, 2, len(red.components))]
            s = red.schedule_from_orientations(orientations)
            expected = [Fraction(0), Fraction(0)]
            for rec, orient in zip(red.components, orientations):
                loads = rec.loads[orient]
                expected[0] += loads[0]
                expected[1] += loads[1]
            assert s.completion_times() == tuple(expected)

    def test_dummy_assignment_reproduces_orientation_loads(self):
        """In the choice case, dummy on machine i gives machine i its max load."""
        rng = np.random.default_rng(63)
        for _ in range(20):
            inst = random_r2(rng)
            red = reduce_r2(inst)
            for rec in red.components:
                if rec.case is not ComponentCase.CHOICE:
                    continue
                for machine in (0, 1):
                    orient = rec.orientation_for_dummy(machine)
                    loads = rec.loads[orient]
                    # machine `machine` carries base + dummy
                    assert (
                        loads[machine]
                        == rec.base_loads[machine] + rec.dummy_times[machine]
                    )
                    assert loads[1 - machine] == rec.base_loads[1 - machine]

    def test_wrong_orientation_count_rejected(self):
        inst = UnrelatedInstance(matching_graph(2), [[1, 1, 1, 1], [1, 1, 1, 1]])
        red = reduce_r2(inst)
        with pytest.raises(InvalidInstanceError):
            red.schedule_from_orientations([0])

    def test_bad_orientation_value_rejected(self):
        inst = UnrelatedInstance(matching_graph(1), [[1, 1], [1, 1]])
        red = reduce_r2(inst)
        with pytest.raises(InvalidInstanceError):
            red.schedule_from_orientations([2])


class TestPreconditions:
    def test_requires_two_machines(self):
        g = matching_graph(1)
        inst = UnrelatedInstance(g, [[1, 1], [1, 1], [1, 1]])
        with pytest.raises(InvalidInstanceError):
            reduce_r2(inst)

    def test_rejects_forbidden_times(self):
        g = BipartiteGraph(2, [])
        inst = UnrelatedInstance(g, [[1, None], [1, 1]])
        with pytest.raises(InvalidInstanceError):
            reduce_r2(inst)

    def test_component_count(self):
        inst = UnrelatedInstance(path_graph(6), [[1] * 6, [1] * 6])
        assert len(reduce_r2(inst).components) == 1
        inst2 = UnrelatedInstance(matching_graph(3), [[1] * 6, [1] * 6])
        assert len(reduce_r2(inst2).components) == 3


class TestExactnessOfReduction:
    def test_best_orientation_equals_bruteforce_optimum(self):
        """Min over orientations == true optimum (schedules are per-part)."""
        from repro.scheduling.brute_force import brute_force_makespan

        rng = np.random.default_rng(64)
        for _ in range(12):
            inst = random_r2(rng, max_side=4)
            red = reduce_r2(inst)
            c = len(red.components)
            best = None
            import itertools

            for orient in itertools.product((0, 1), repeat=c):
                span = red.schedule_from_orientations(list(orient)).makespan
                best = span if best is None or span < best else best
            assert best == brute_force_makespan(inst)
