"""Tests for :func:`repro.scheduling.baselines.r_color_split`."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.exceptions import InfeasibleInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.baselines import r_color_split
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UnrelatedInstance

F = Fraction


class TestRColorSplit:
    def test_zero_jobs(self):
        inst = UnrelatedInstance(generators.empty_graph(0), [[], []])
        assert r_color_split(inst).makespan == 0

    def test_picks_best_pair(self):
        # machine 0 fast for class 1, machine 2 fast for class 2
        graph = generators.complete_bipartite(2, 2)
        inst = UnrelatedInstance(
            graph,
            [[1, 1, 50, 50], [20, 20, 20, 20], [50, 50, 1, 1]],
        )
        schedule = r_color_split(inst)
        assert schedule.is_feasible()
        assert schedule.makespan == 2

    def test_single_class_on_best_machine(self):
        graph = generators.empty_graph(3)
        inst = UnrelatedInstance(graph, [[5, 5, 5], [1, 1, 1]])
        schedule = r_color_split(inst)
        assert schedule.makespan == 3  # all three on machine 1

    def test_respects_forbidden(self):
        graph = generators.complete_bipartite(1, 1)
        inst = UnrelatedInstance(graph, [[None, 2], [3, None]])
        schedule = r_color_split(inst)
        assert schedule.is_feasible()
        assert schedule.assignment == (1, 0)

    def test_infeasible_when_everything_forbidden(self):
        graph = generators.complete_bipartite(1, 1)
        # class 1 = job 0 only allowed on machine 0; class 2 = job 1 only
        # allowed on machine 0 too -> no pair works
        inst = UnrelatedInstance(graph, [[1, 1], [None, None]])
        with pytest.raises(InfeasibleInstanceError):
            r_color_split(inst)

    def test_three_machines_all_usable(self):
        graph = generators.matching_graph(3)
        rng = np.random.default_rng(5)
        times = rng.integers(1, 9, size=(3, 6)).tolist()
        schedule = r_color_split(UnrelatedInstance(graph, times))
        assert schedule.is_feasible()


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(1, 3),
    m=st.integers(2, 4),
    seed=st.integers(0, 5000),
)
def test_property_feasible_and_bounded(k, m, seed):
    """The split is always feasible and never worse than putting each
    class on the single overall-best machine pair found by brute force."""
    graph = generators.matching_graph(k)
    rng = np.random.default_rng(seed)
    times = rng.integers(1, 10, size=(m, 2 * k)).tolist()
    inst = UnrelatedInstance(graph, times)
    schedule = r_color_split(inst)
    assert schedule.is_feasible()
    assert schedule.makespan >= brute_force_makespan(inst)
