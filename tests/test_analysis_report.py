"""Tests for :mod:`repro.analysis.report` and the CLI ``report`` command."""

from pathlib import Path

from repro.analysis.report import collect_tables, render_report
from repro.cli import main


def _write_tables(directory: Path) -> None:
    (directory / "E2_families.txt").write_text("E2 table\na  b\n1  2\n")
    (directory / "E10_scaling.txt").write_text("E10 table\nrows\n")
    (directory / "E2_exact.txt").write_text("E2 exact\nrows\n")
    (directory / "notes.txt").write_text("stray file\n")


class TestCollect:
    def test_groups_and_orders(self, tmp_path):
        _write_tables(tmp_path)
        tables = collect_tables(tmp_path)
        assert [t.experiment for t in tables] == ["E2", "E2", "E10", "misc"]
        assert tables[0].name == "E2_exact"  # name tiebreak inside E2

    def test_numeric_ordering_not_lexicographic(self, tmp_path):
        (tmp_path / "E10_x.txt").write_text("x\n")
        (tmp_path / "E9_y.txt").write_text("y\n")
        tables = collect_tables(tmp_path)
        assert [t.experiment for t in tables] == ["E9", "E10"]

    def test_empty_dir(self, tmp_path):
        assert collect_tables(tmp_path) == []


class TestRender:
    def test_contains_sections_and_content(self, tmp_path):
        _write_tables(tmp_path)
        text = render_report(collect_tables(tmp_path))
        assert "## E2" in text and "## E10" in text and "## misc" in text
        assert "E2 table" in text and "stray file" in text
        assert text.index("## E2") < text.index("## E10") < text.index("## misc")

    def test_empty_report_hints_at_benchmarks(self):
        text = render_report([])
        assert "pytest benchmarks/" in text

    def test_custom_title(self, tmp_path):
        _write_tables(tmp_path)
        text = render_report(collect_tables(tmp_path), title="My Title")
        assert text.startswith("# My Title")


class TestCli:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        # the repo's real benchmarks/out exists and has tables from runs
        assert "#" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "REPORT.md"
        assert main(["report", "--out", str(target)]) == 0
        assert target.exists()
        assert "written to" in capsys.readouterr().out
