"""Tests for the Gilbert G(n,n,p) sampler."""

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.random_graphs.gilbert import gnnp, gnnp_edge_count_distribution


class TestSampler:
    def test_shape(self):
        g = gnnp(5, 0.5, seed=0)
        assert g.n == 10
        assert g.vertices_on_side(0) == list(range(5))
        assert g.vertices_on_side(1) == list(range(5, 10))

    def test_p_zero_empty(self):
        assert gnnp(6, 0.0, seed=1).edge_count == 0

    def test_p_one_complete(self):
        g = gnnp(4, 1.0, seed=2)
        assert g.edge_count == 16

    def test_n_zero(self):
        assert gnnp(0, 0.5).n == 0

    def test_reproducible(self):
        assert gnnp(8, 0.3, seed=7) == gnnp(8, 0.3, seed=7)

    def test_different_seeds_differ(self):
        assert gnnp(8, 0.3, seed=7) != gnnp(8, 0.3, seed=8)

    def test_bad_probability(self):
        with pytest.raises(InvalidInstanceError):
            gnnp(3, 1.5)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            gnnp(-1, 0.5)

    def test_edge_count_concentrates(self):
        """Empirical mean edge count within 5 sigma of n^2 p."""
        n, p, samples = 20, 0.25, 40
        mean, var = gnnp_edge_count_distribution(n, p)
        rng = np.random.default_rng(3)
        counts = [gnnp(n, p, rng).edge_count for _ in range(samples)]
        observed = sum(counts) / samples
        tolerance = 5 * (var / samples) ** 0.5
        assert abs(observed - mean) <= tolerance


class TestDistributionFormulas:
    def test_mean_var(self):
        mean, var = gnnp_edge_count_distribution(10, 0.5)
        assert mean == 50.0
        assert var == 25.0

    def test_extremes(self):
        assert gnnp_edge_count_distribution(10, 0.0) == (0.0, 0.0)
        mean, var = gnnp_edge_count_distribution(10, 1.0)
        assert mean == 100.0 and var == 0.0
