"""The batch engine's opt-in certify mode and batch-spec v2 ``certify``."""

import json

import pytest

from repro.certify import CertificateReport
from repro.exceptions import InvalidInstanceError
from repro.graphs.generators import matching_graph, path_graph
from repro.io import instance_to_dict
from repro.runtime import BatchRunner, BatchTask, expand_specs
from repro.scheduling.instance import identical_instance


def _items(k=3):
    return [
        (f"p{n}", identical_instance(path_graph(n), [1] * n, 2))
        for n in range(2, 2 + k)
    ]


class TestRunnerCertifyMode:
    def test_records_carry_certificates(self):
        runner = BatchRunner(certify=True)
        results = runner.run_to_list(_items())
        assert results
        for rec in results:
            assert rec.certificate is not None
            report = CertificateReport.from_dict(rec.certificate)
            assert report.ok
            assert report.algorithm == rec.chosen

    def test_default_mode_has_no_certificates(self):
        results = BatchRunner().run_to_list(_items())
        assert all(rec.certificate is None for rec in results)

    def test_per_task_flag(self):
        inst = identical_instance(path_graph(3), [1, 1, 1], 2)
        payload = instance_to_dict(inst)
        tasks = [
            BatchTask("plain", payload, None, False),
            BatchTask("audited", payload, None, True),
        ]
        results = BatchRunner().run_to_list(tasks)
        by_name = {r.name: r for r in results}
        assert by_name["plain"].certificate is None
        assert by_name["audited"].certificate is not None
        # same instance+algorithm, but certify hashes apart: both fresh
        assert by_name["plain"].key != by_name["audited"].key

    def test_certify_results_round_trip_jsonl(self, tmp_path):
        out = tmp_path / "results.jsonl"
        BatchRunner(certify=True).run_to_jsonl(_items(), out)
        lines = [json.loads(ln) for ln in out.read_text().splitlines()]
        assert lines
        for data in lines:
            assert data["certificate"]["ok"] is True

    def test_certified_cache_replay(self, tmp_path):
        cache = tmp_path / "cache.jsonl"
        first = BatchRunner(certify=True, cache=cache).run_to_list(_items())
        runner = BatchRunner(certify=True, cache=cache)
        second = runner.run_to_list(_items())
        assert runner.stats.solved == 0
        assert [r.certificate for r in first] == [
            r.certificate for r in second
        ]

    def test_errored_solve_has_no_certificate(self):
        # one machine + an edge: auto dispatch reports infeasibility
        inst = identical_instance(matching_graph(1), [1, 1], 1)
        (rec,) = BatchRunner(certify=True).run_to_list([("bad", inst)])
        assert rec.error is not None
        assert rec.certificate is None


class TestSpecCertify:
    def _spec(self, fmt, **extra):
        entry = {"family": "path", "n": 4, "count": 2, **extra}
        return {"format": fmt, "instances": [entry]}

    def test_v2_family_certify(self):
        tasks = expand_specs(
            self._spec("repro/batch-spec/v2", certify=True)
        )
        assert len(tasks) == 2 and all(t.certify for t in tasks)

    def test_v2_defaults_certify(self):
        spec = self._spec("repro/batch-spec/v2")
        spec["defaults"] = {"certify": True}
        assert all(t.certify for t in expand_specs(spec))

    def test_v2_default_off(self):
        tasks = expand_specs(self._spec("repro/batch-spec/v2"))
        assert all(not t.certify for t in tasks)

    def test_v1_rejects_certify(self):
        with pytest.raises(InvalidInstanceError, match="certify"):
            expand_specs(self._spec("repro/batch-spec/v1", certify=True))

    def test_v1_rejects_certify_even_when_false(self):
        # like 'machines', the key's presence is a v2 feature
        with pytest.raises(InvalidInstanceError, match="certify"):
            expand_specs(self._spec("repro/batch-spec/v1", certify=False))

    def test_non_bool_rejected(self):
        with pytest.raises(InvalidInstanceError, match="true or false"):
            expand_specs(self._spec("repro/batch-spec/v2", certify="yes"))

    def test_v2_inline_certify(self):
        inst = identical_instance(path_graph(3), [1, 1, 1], 2)
        spec = {
            "format": "repro/batch-spec/v2",
            "instances": [
                {"name": "x", "instance": instance_to_dict(inst), "certify": True}
            ],
        }
        (task,) = expand_specs(spec)
        assert task.certify

    def test_spec_to_certified_run(self):
        spec = self._spec("repro/batch-spec/v2", certify=True)
        tasks = expand_specs(spec)
        results = BatchRunner().run_to_list(tasks)
        assert all(
            r.certificate is not None and r.certificate["ok"] for r in results
        )
