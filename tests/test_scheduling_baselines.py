"""Tests for the literature baselines."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite, empty_graph, matching_graph
from repro.scheduling.baselines import (
    bjw_identical_approx,
    two_machine_split,
    unconstrained_lpt,
)
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, identical_instance

from tests.conftest import random_bipartite


class TestBjwApprox:
    def test_requires_identical(self):
        inst = UniformInstance(matching_graph(1), [1, 1], [2, 1, 1])
        with pytest.raises(InvalidInstanceError):
            bjw_identical_approx(inst)

    def test_requires_three_machines(self):
        inst = identical_instance(matching_graph(1), [1, 1], 2)
        with pytest.raises(InvalidInstanceError):
            bjw_identical_approx(inst)

    def test_feasible_output(self):
        rng = np.random.default_rng(50)
        for _ in range(20):
            g = random_bipartite(rng)
            p = [int(x) for x in rng.integers(1, 10, g.n)]
            m = int(rng.integers(3, 6))
            inst = identical_instance(g, p, m)
            s = bjw_identical_approx(inst)
            assert s.is_feasible()

    def test_two_approximation_bound(self):
        """[3]: factor 2 for P|G=bipartite|Cmax with m >= 3 — verified
        against brute force on small instances."""
        rng = np.random.default_rng(51)
        for _ in range(15):
            g = random_bipartite(rng, max_side=4)
            p = [int(x) for x in rng.integers(1, 8, g.n)]
            inst = identical_instance(g, p, 3)
            s = bjw_identical_approx(inst)
            opt = brute_force_makespan(inst)
            assert s.makespan <= 2 * opt

    def test_empty_graph_degrades_to_lpt(self):
        inst = identical_instance(empty_graph(6), [5, 4, 3, 3, 2, 1], 3)
        s = bjw_identical_approx(inst)
        assert s.is_feasible()
        assert s.makespan <= 2 * brute_force_makespan(inst)


class TestTwoMachineSplit:
    def test_feasible_everywhere(self):
        rng = np.random.default_rng(52)
        for _ in range(20):
            g = random_bipartite(rng)
            p = [int(x) for x in rng.integers(1, 10, g.n)]
            m = int(rng.integers(2, 5))
            speeds = sorted(
                (Fraction(int(x)) for x in rng.integers(1, 6, m)), reverse=True
            )
            inst = UniformInstance(g, p, speeds)
            s = two_machine_split(inst)
            assert s.is_feasible()
            assert all(i in (0, 1) for i in s.assignment)

    def test_heavier_class_on_fast_machine(self):
        g = complete_bipartite(1, 3)
        inst = UniformInstance(g, [1, 5, 5, 5], [10, 1])
        s = two_machine_split(inst)
        assert s.jobs_on(0) == [1, 2, 3]

    def test_single_machine_no_edges(self):
        inst = UniformInstance(empty_graph(3), [1, 2, 3], [2])
        s = two_machine_split(inst)
        assert s.makespan == Fraction(6, 2)

    def test_single_machine_with_edges_rejected(self):
        inst = UniformInstance(matching_graph(1), [1, 1], [1])
        with pytest.raises(InvalidInstanceError):
            two_machine_split(inst)


class TestUnconstrainedLpt:
    def test_ignores_graph(self):
        g = complete_bipartite(2, 2)
        inst = UniformInstance(g, [1, 1, 1, 1], [1, 1])
        s = unconstrained_lpt(inst)
        assert s.makespan == 2  # two unit jobs per machine
        # greedy pairs {0,2} / {1,3}, both of which cross the biclique
        assert not s.is_feasible()

    def test_one_job_per_machine_is_feasible(self):
        g = complete_bipartite(2, 2)
        inst = UniformInstance(g, [1, 1, 1, 1], [1, 1, 1, 1])
        s = unconstrained_lpt(inst)
        assert s.makespan == 1
        assert s.is_feasible()  # singletons are always independent

    def test_tracks_graph_free_optimum(self):
        inst = UniformInstance(empty_graph(5), [4, 3, 3, 2, 2], [1, 1])
        s = unconstrained_lpt(inst)
        # LPT lands at 8 here (optimum is 7 = {4,3} vs {3,2,2}), within the
        # classical 7/6 factor for two identical machines
        assert s.makespan == 8
        assert s.makespan <= Fraction(7, 6) * 7
