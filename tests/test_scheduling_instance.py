"""Tests for instance containers (Q / P / R environments)."""

from fractions import Fraction

import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import matching_graph, path_graph
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    identical_instance,
    make_uniform_instance,
    unit_uniform_instance,
)


class TestUniformInstance:
    def test_basic_properties(self):
        g = path_graph(3)
        inst = UniformInstance(g, [2, 3, 4], [Fraction(3), Fraction(1)])
        assert inst.n == 3 and inst.m == 2
        assert inst.total_p == 9 and inst.pmax == 4
        assert not inst.is_identical and not inst.has_unit_jobs

    def test_processing_time(self):
        g = path_graph(2)
        inst = UniformInstance(g, [6, 3], [3, 2])
        assert inst.processing_time(0, 0) == Fraction(2)
        assert inst.processing_time(1, 1) == Fraction(3, 2)

    def test_machine_completion(self):
        g = BipartiteGraph(3, [])
        inst = UniformInstance(g, [4, 2, 6], [2])
        assert inst.machine_completion(0, [0, 2]) == Fraction(5)

    def test_speed_order_enforced(self):
        g = path_graph(2)
        with pytest.raises(InvalidInstanceError):
            UniformInstance(g, [1, 1], [1, 2])

    def test_make_uniform_sorts(self):
        g = path_graph(2)
        inst = make_uniform_instance(g, [1, 1], [1, 5, 3])
        assert inst.speeds == (Fraction(5), Fraction(3), Fraction(1))

    def test_positive_speeds_required(self):
        g = path_graph(2)
        with pytest.raises(InvalidInstanceError):
            UniformInstance(g, [1, 1], [1, 0])

    def test_p_length_checked(self):
        g = path_graph(3)
        with pytest.raises(InvalidInstanceError):
            UniformInstance(g, [1, 1], [1])

    def test_p_positive_ints(self):
        g = path_graph(2)
        with pytest.raises(InvalidInstanceError):
            UniformInstance(g, [1, 0], [1])
        with pytest.raises(InvalidInstanceError):
            UniformInstance(g, [1, 1.5], [1])  # type: ignore[list-item]

    def test_no_machines_rejected(self):
        g = path_graph(2)
        with pytest.raises(InvalidInstanceError):
            UniformInstance(g, [1, 1], [])

    def test_identical_helper(self):
        inst = identical_instance(path_graph(3), [1, 2, 3], 4)
        assert inst.is_identical and inst.m == 4

    def test_unit_helper(self):
        inst = unit_uniform_instance(path_graph(3), [2, 1])
        assert inst.has_unit_jobs and inst.total_p == 3

    def test_float_speed_means_decimal(self):
        inst = unit_uniform_instance(path_graph(2), [1, 0.5])
        assert inst.speeds[1] == Fraction(1, 2)


class TestToUnrelated:
    def test_full_conversion(self):
        g = path_graph(2)
        inst = UniformInstance(g, [6, 4], [3, 2])
        r = inst.to_unrelated()
        assert r.m == 2
        assert r.times[0][0] == Fraction(2)
        assert r.times[1][1] == Fraction(2)

    def test_machine_subset(self):
        g = path_graph(2)
        inst = UniformInstance(g, [6, 4], [6, 3, 1])
        r = inst.to_unrelated([0, 1])
        assert r.m == 2
        assert r.times[1][0] == Fraction(2)


class TestUnrelatedInstance:
    def test_basic(self):
        g = matching_graph(1)
        inst = UnrelatedInstance(g, [[1, 2], [3, 4]])
        assert inst.m == 2
        assert inst.processing_time(1, 0) == Fraction(3)
        assert inst.allows(0, 0)

    def test_forbidden_pairs(self):
        g = BipartiteGraph(2, [])
        inst = UnrelatedInstance(g, [[1, None], [None, 1]])
        assert not inst.allows(0, 1)
        assert inst.allows(0, 0)

    def test_job_forbidden_everywhere_rejected(self):
        g = BipartiteGraph(2, [])
        with pytest.raises(InvalidInstanceError):
            UnrelatedInstance(g, [[1, None], [1, None]])

    def test_negative_time_rejected(self):
        g = BipartiteGraph(1, [])
        with pytest.raises(InvalidInstanceError):
            UnrelatedInstance(g, [[-1]])

    def test_ragged_matrix_rejected(self):
        g = BipartiteGraph(2, [])
        with pytest.raises(InvalidInstanceError):
            UnrelatedInstance(g, [[1], [1, 2]])

    def test_completion_raises_on_forbidden(self):
        g = BipartiteGraph(2, [])
        inst = UnrelatedInstance(g, [[1, None], [1, 1]])
        with pytest.raises(InvalidInstanceError):
            inst.machine_completion(0, [1])

    def test_completion_sums(self):
        g = BipartiteGraph(3, [])
        inst = UnrelatedInstance(g, [[1, 2, 3], [4, 5, 6]])
        assert inst.machine_completion(1, [0, 2]) == Fraction(10)
