"""Tests for :mod:`repro.machines.profiles` — speed-profile generators."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError
from repro.machines.profiles import (
    geometric_speeds,
    identical_speeds,
    power_law_speeds,
    random_integer_speeds,
    theorem8_speeds,
    two_fast_speeds,
)

F = Fraction

ALL_PROFILES = [
    lambda m: identical_speeds(m),
    lambda m: geometric_speeds(m),
    lambda m: power_law_speeds(m),
    lambda m: random_integer_speeds(m, seed=0),
]


class TestInvariants:
    @pytest.mark.parametrize("profile", ALL_PROFILES + [lambda m: two_fast_speeds(m)])
    @pytest.mark.parametrize("m", [2, 5, 9])
    def test_non_increasing_positive_fractions(self, profile, m):
        speeds = profile(m)
        assert len(speeds) == m
        assert all(isinstance(s, Fraction) and s > 0 for s in speeds)
        assert all(speeds[i] >= speeds[i + 1] for i in range(m - 1))

    @pytest.mark.parametrize("profile", ALL_PROFILES)
    def test_single_machine_supported(self, profile):
        assert len(profile(1)) == 1

    def test_two_fast_needs_two_machines(self):
        with pytest.raises(InvalidInstanceError):
            two_fast_speeds(1)

    @pytest.mark.parametrize("profile", ALL_PROFILES)
    def test_zero_machines_rejected(self, profile):
        with pytest.raises(InvalidInstanceError):
            profile(0)


class TestSpecifics:
    def test_identical_all_one(self):
        assert identical_speeds(4) == (F(1),) * 4

    def test_geometric_ratio(self):
        speeds = geometric_speeds(4, ratio=3)
        assert speeds == (F(27), F(9), F(3), F(1))

    def test_geometric_ratio_must_exceed_one(self):
        with pytest.raises(InvalidInstanceError):
            geometric_speeds(3, ratio=1)

    def test_power_law_shape(self):
        speeds = power_law_speeds(4, exponent=2)
        # s_i = (m - i)^exponent / 1: 16, 9, 4, 1
        assert speeds[0] > speeds[1] > speeds[2] > speeds[3] == min(speeds)

    def test_two_fast(self):
        speeds = two_fast_speeds(5, fast=4)
        assert speeds[0] == speeds[1] == F(4)
        assert all(s == F(1) for s in speeds[2:])

    def test_random_integer_bounds(self):
        speeds = random_integer_speeds(20, low=2, high=5, seed=1)
        assert all(F(2) <= s <= F(5) for s in speeds)

    def test_random_integer_bad_range(self):
        with pytest.raises(InvalidInstanceError):
            random_integer_speeds(3, low=5, high=2)

    def test_random_integer_reproducible(self):
        assert random_integer_speeds(6, seed=42) == random_integer_speeds(6, seed=42)


class TestTheorem8Speeds:
    def test_paper_values(self):
        k, n = 2, 10
        speeds = theorem8_speeds(k, n, m=5)
        assert speeds[0] == F(49 * k * k)
        assert speeds[1] == F(5 * k)
        assert speeds[2] == F(1)
        assert speeds[3] == speeds[4] == F(1, k * n)

    def test_minimum_three_machines(self):
        speeds = theorem8_speeds(1, 4, m=3)
        assert len(speeds) == 3

    def test_sorted(self):
        speeds = theorem8_speeds(3, 7, m=6)
        assert all(speeds[i] >= speeds[i + 1] for i in range(len(speeds) - 1))


@settings(max_examples=30, deadline=None)
@given(m=st.integers(1, 12), seed=st.integers(0, 1000))
def test_property_random_profile_valid(m, seed):
    speeds = random_integer_speeds(m, seed=seed)
    assert len(speeds) == m
    assert all(s >= 1 for s in speeds)
    assert list(speeds) == sorted(speeds, reverse=True)
