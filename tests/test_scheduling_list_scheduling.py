"""Tests for list scheduling primitives."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite, matching_graph, path_graph
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.scheduling.list_scheduling import (
    assign_group_greedy,
    graph_aware_greedy,
    lpt_order,
    schedule_job_classes,
)

from tests.conftest import random_uniform_instance


class TestLptOrder:
    def test_descending_with_id_ties(self):
        inst = UniformInstance(BipartiteGraph(4, []), [2, 5, 2, 9], [1])
        assert lpt_order(inst, range(4)) == [3, 1, 0, 2]


class TestAssignGroupGreedy:
    def test_balances_identical_machines(self):
        inst = UniformInstance(BipartiteGraph(4, []), [4, 3, 3, 2], [1, 1])
        placed = assign_group_greedy(inst, [0, 1, 2, 3], [0, 1])
        loads = [0, 0]
        for j, i in placed.items():
            loads[i] += inst.p[j]
        assert sorted(loads) == [6, 6]

    def test_prefers_fast_machine(self):
        inst = UniformInstance(BipartiteGraph(1, []), [10], [5, 1])
        placed = assign_group_greedy(inst, [0], [0, 1])
        assert placed[0] == 0

    def test_machine_subset_respected(self):
        inst = UniformInstance(BipartiteGraph(3, []), [1, 1, 1], [9, 1, 1])
        placed = assign_group_greedy(inst, [0, 1, 2], [1, 2])
        assert set(placed.values()) <= {1, 2}

    def test_empty_jobs_ok(self):
        inst = UniformInstance(BipartiteGraph(1, []), [1], [1])
        assert assign_group_greedy(inst, [], []) == {}

    def test_jobs_without_machines_rejected(self):
        inst = UniformInstance(BipartiteGraph(1, []), [1], [1])
        with pytest.raises(InvalidInstanceError):
            assign_group_greedy(inst, [0], [])

    def test_classic_lpt_quality(self):
        """LPT on identical machines stays within 4/3 of the area bound."""
        rng = np.random.default_rng(21)
        for _ in range(10):
            n = int(rng.integers(4, 15))
            p = [int(x) for x in rng.integers(1, 20, n)]
            inst = UniformInstance(BipartiteGraph(n, []), p, [1, 1, 1])
            placed = assign_group_greedy(inst, list(range(n)), [0, 1, 2])
            loads = [0, 0, 0]
            for j, i in placed.items():
                loads[i] += p[j]
            opt_lb = max(max(p), (sum(p) + 2) // 3)
            assert max(loads) <= Fraction(4, 3) * opt_lb + max(p) // 3 + 1


class TestScheduleJobClasses:
    def test_classes_to_disjoint_groups(self):
        g = complete_bipartite(2, 2)
        inst = UniformInstance(g, [1, 1, 1, 1], [1, 1])
        s = schedule_job_classes(inst, [([0, 1], [0]), ([2, 3], [1])])
        assert s.is_feasible()
        assert s.jobs_on(0) == [0, 1]

    def test_overlapping_classes_rejected(self):
        inst = UniformInstance(BipartiteGraph(2, []), [1, 1], [1, 1])
        with pytest.raises(InvalidInstanceError, match="two classes"):
            schedule_job_classes(inst, [([0, 1], [0]), ([1], [1])])

    def test_missing_jobs_rejected(self):
        inst = UniformInstance(BipartiteGraph(2, []), [1, 1], [1, 1])
        with pytest.raises(InvalidInstanceError, match="missing"):
            schedule_job_classes(inst, [([0], [0])])


class TestGraphAwareGreedy:
    def test_respects_conflicts(self):
        g = matching_graph(3)
        inst = UniformInstance(g, [1] * 6, [1, 1])
        s = graph_aware_greedy(inst)
        assert s is not None and s.is_feasible()

    def test_single_machine_with_edge_fails(self):
        g = matching_graph(1)
        inst = UniformInstance(g, [1, 1], [1])
        assert graph_aware_greedy(inst) is None

    def test_can_fail_on_two_machines(self):
        # path 0-1-2-3 with a fast first machine: LPT order (0, 3, 1, 2)
        # greedily stacks the non-adjacent 0 and 3 on the fast machine,
        # after which job 2 conflicts everywhere — a dead end.  A feasible
        # schedule exists (sides to machines), so this documents greedy's
        # known incompleteness, not infeasibility.
        g = path_graph(4)
        inst = UniformInstance(g, [3, 1, 1, 2], [10, 1])
        assert graph_aware_greedy(inst) is None
        from repro.scheduling.baselines import two_machine_split

        assert two_machine_split(inst).is_feasible()

    def test_custom_order_can_rescue(self):
        g = path_graph(4)
        inst = UniformInstance(g, [3, 1, 1, 2], [10, 1])
        s = graph_aware_greedy(inst, order=[0, 1, 2, 3])
        assert s is not None and s.is_feasible()

    def test_unrelated_instances_supported(self):
        g = matching_graph(2)
        inst = UnrelatedInstance(g, [[1, 9, 1, 9], [9, 1, 9, 1]])
        s = graph_aware_greedy(inst)
        assert s is not None
        assert s.makespan == 2

    def test_feasible_on_random_suite(self):
        rng = np.random.default_rng(22)
        produced = 0
        for _ in range(20):
            inst = random_uniform_instance(rng)
            s = graph_aware_greedy(inst)
            if s is not None:
                produced += 1
                assert s.is_feasible()
        assert produced >= 15  # greedy succeeds most of the time
