"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests execute each
one in a subprocess and assert a clean exit plus a non-empty, sensible
stdout.  Slow examples are trimmed via environment-free defaults — if
one grows past the timeout, that is a regression worth failing on.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout) > 50, "examples should narrate what they do"


def test_examples_inventory():
    """The deliverable requires a quickstart plus domain scenarios."""
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
