"""Tests for :mod:`repro.runtime` — the batch execution engine."""

from fractions import Fraction

import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators
from repro.io import instance_to_dict, read_jsonl, save_instance
from repro.runtime import (
    BatchResult,
    BatchRunner,
    BatchTask,
    ResultCache,
    build_family_graph,
    expand_specs,
    load_spec_file,
    task_key,
)
from repro.scheduling.instance import (
    UnrelatedInstance,
    identical_instance,
    unit_uniform_instance,
)
from repro.engine import auto_choice, solve


def small_instances(count=6):
    """A deterministic mixed bag of small instances."""
    out = []
    for i in range(count):
        graph = generators.matching_graph(2 + i % 3)
        out.append(
            (f"match-{i}", unit_uniform_instance(graph, [Fraction(2), Fraction(1)]))
        )
    return out


class TestTaskKey:
    def test_same_content_same_key(self):
        inst = identical_instance(generators.path_graph(4), [1, 2, 3, 1], 2)
        a = task_key(instance_to_dict(inst), "auto")
        b = task_key(instance_to_dict(inst), "auto")
        assert a == b

    def test_algorithm_changes_key(self):
        inst = identical_instance(generators.path_graph(4), [1, 2, 3, 1], 2)
        payload = instance_to_dict(inst)
        assert task_key(payload, "auto") != task_key(payload, "sqrt_approx")

    def test_instance_changes_key(self):
        a = identical_instance(generators.path_graph(4), [1, 2, 3, 1], 2)
        b = identical_instance(generators.path_graph(4), [1, 2, 3, 2], 2)
        assert task_key(instance_to_dict(a), "auto") != task_key(
            instance_to_dict(b), "auto"
        )


class TestResultCache:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("k1", {"key": "k1", "makespan": "3/2"})
        reloaded = ResultCache(path)
        assert "k1" in reloaded
        assert reloaded.record("k1")["makespan"] == "3/2"

    def test_tolerates_corrupt_lines(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("k1", {"key": "k1", "makespan": "2"})
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "k2", "trunc')  # killed mid-append
        reloaded = ResultCache(path)
        assert "k1" in reloaded and "k2" not in reloaded

    def test_membership_and_record(self):
        cache = ResultCache()
        assert "nope" not in cache
        with pytest.raises(KeyError):
            cache.record("nope")
        cache.put("k", {"key": "k"})
        assert "k" in cache and len(cache) == 1
        assert cache.record("k") == {"key": "k"}

    def test_key_includes_package_version(self, monkeypatch):
        import repro

        inst = identical_instance(generators.path_graph(4), [1, 2, 3, 1], 2)
        payload = instance_to_dict(inst)
        before = task_key(payload, "auto")
        monkeypatch.setattr(repro, "__version__", "0.0.0-other")
        assert task_key(payload, "auto") != before


class TestBatchRunner:
    def test_results_in_input_order_with_names(self):
        items = small_instances()
        results = BatchRunner().run_to_list(items)
        assert [r.index for r in results] == list(range(len(items)))
        assert [r.name for r in results] == [name for name, _ in items]

    def test_matches_direct_solve(self):
        items = small_instances()
        results = BatchRunner().run_to_list(items)
        for (_, inst), rec in zip(items, results):
            assert rec.chosen == auto_choice(inst)
            assert rec.makespan == solve(inst).makespan
            assert rec.feasible

    def test_intra_batch_dedup(self):
        name, inst = small_instances(1)[0]
        runner = BatchRunner()
        results = runner.run_to_list([(name, inst)] * 5)
        assert runner.stats.solved == 1
        assert runner.stats.cached == 4
        assert [r.cached for r in results] == [False, True, True, True, True]
        assert len({r.makespan for r in results}) == 1

    def test_worker_count_invariance(self):
        items = small_instances(8)
        sequential = BatchRunner(workers=1).run_to_list(items)
        parallel = BatchRunner(workers=2).run_to_list(items)
        key = lambda r: (r.index, r.name, r.key, r.chosen, r.makespan,
                         r.lower_bound, r.ratio, r.feasible, r.error)
        assert [key(r) for r in sequential] == [key(r) for r in parallel]

    def test_cached_rerun_is_deterministic(self, tmp_path):
        items = small_instances(6)
        cache_path = tmp_path / "cache.jsonl"
        first = BatchRunner(cache=cache_path).run_to_list(items)
        runner = BatchRunner(cache=cache_path)
        second = runner.run_to_list(items)
        assert runner.stats.solved == 0
        assert all(r.cached for r in second)
        assert all(r.wall_time_s == 0.0 for r in second)
        assert [(r.makespan, r.chosen, r.ratio) for r in first] == [
            (r.makespan, r.chosen, r.ratio) for r in second
        ]

    def test_mixed_item_forms(self):
        name, inst = small_instances(1)[0]
        payload = instance_to_dict(inst)
        results = BatchRunner().run_to_list(
            [inst, (name, inst), (name, payload, "sqrt_approx"),
             BatchTask(name, payload), payload]
        )
        assert len(results) == 5
        assert results[2].chosen == "sqrt_approx"
        assert results[0].makespan == results[3].makespan

    def test_inapplicable_algorithm_becomes_error_record(self):
        _, inst = small_instances(1)[0]
        ok_name, ok_inst = small_instances(2)[1]
        runner = BatchRunner()
        results = runner.run_to_list(
            [("bad", inst, "r2_fptas"), (ok_name, ok_inst)]
        )
        assert results[0].error is not None
        assert results[0].makespan is None
        assert results[1].error is None
        assert runner.stats.errors == 1

    def test_unrelated_instances_get_bounds(self):
        graph = generators.matching_graph(2)
        inst = UnrelatedInstance(graph, [[3, 1, 4, 1], [2, 7, 1, 8]])
        (rec,) = BatchRunner().run_to_list([inst])
        assert rec.lower_bound is not None
        assert rec.ratio is not None and rec.ratio >= 1.0

    def test_rejects_bad_item(self):
        with pytest.raises(InvalidInstanceError):
            BatchRunner().run_to_list([42])

    def test_rejects_bad_config(self):
        with pytest.raises(InvalidInstanceError):
            BatchRunner(workers=0)
        with pytest.raises(InvalidInstanceError):
            BatchRunner(chunk_jobs=0)


class TestJsonlRoundTrip:
    def test_run_to_jsonl(self, tmp_path):
        items = small_instances(4)
        out = tmp_path / "results.jsonl"
        runner = BatchRunner()
        stats = runner.run_to_jsonl(items, out)
        assert stats.total == 4
        records = read_jsonl(out)
        assert len(records) == 4
        parsed = [BatchResult.from_dict(r) for r in records]
        direct = BatchRunner().run_to_list(items)
        assert [(p.name, p.makespan, p.ratio) for p in parsed] == [
            (d.name, d.makespan, d.ratio) for d in direct
        ]

    def test_result_dict_roundtrip(self):
        (rec,) = BatchRunner().run_to_list(small_instances(1))
        assert BatchResult.from_dict(rec.to_dict()) == rec

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(InvalidInstanceError):
            BatchResult.from_dict({"kind": "schedule"})


class TestSpecs:
    def test_count_replication_varies_seed(self):
        tasks = expand_specs(
            {
                "format": "repro/batch-spec/v1",
                "instances": [
                    {"family": "gnnp", "n": 6, "p": 0.3, "seed": 1,
                     "count": 3, "speeds": "2,1"}
                ],
            }
        )
        assert [t.name for t in tasks] == ["gnnp-n6-s1", "gnnp-n6-s2", "gnnp-n6-s3"]
        keys = {task_key(t.payload, "auto") for t in tasks}
        assert len(keys) == 3  # different seeds give different graphs

    def test_defaults_merge_and_entry_override(self):
        tasks = expand_specs(
            {
                "defaults": {"algorithm": "lpt", "speeds": "3,1"},
                "instances": [
                    {"family": "empty", "n": 4},
                    {"family": "empty", "n": 4, "algorithm": "sqrt_approx"},
                ],
            }
        )
        assert tasks[0].algorithm == "lpt"
        assert tasks[1].algorithm == "sqrt_approx"

    def test_inline_and_path_entries(self, tmp_path):
        inst = unit_uniform_instance(generators.crown(3), [Fraction(2), Fraction(1)])
        disk = tmp_path / "inst.json"
        save_instance(inst, disk)
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"format": "repro/batch-spec/v1", "instances": ['
            '{"name": "inline", "instance": %s},'
            '{"path": "inst.json"}]}'
            % __import__("json").dumps(instance_to_dict(inst)),
            encoding="utf-8",
        )
        tasks = load_spec_file(spec)
        assert [t.name for t in tasks] == ["inline", "inst"]
        results = BatchRunner().run_to_list(tasks)
        assert results[0].makespan == results[1].makespan
        assert results[1].cached  # identical payloads deduplicate

    def test_jobs_profiles(self):
        for jobs in ("unit", "uniform", "heavy_tailed", "one_giant"):
            tasks = expand_specs(
                {"instances": [{"family": "empty", "n": 5, "jobs": jobs,
                                "speeds": "1,1"}]}
            )
            assert len(tasks[0].payload["p"]) == 5

    def test_bad_specs_raise(self):
        with pytest.raises(InvalidInstanceError):
            expand_specs({"format": "other/v9", "instances": [{}]})
        with pytest.raises(InvalidInstanceError):
            expand_specs({"instances": []})
        with pytest.raises(InvalidInstanceError):
            expand_specs({"instances": [{"family": "nope", "n": 3}]})
        with pytest.raises(InvalidInstanceError):
            expand_specs({"instances": [{"name": "no-source"}]})
        with pytest.raises(InvalidInstanceError):
            expand_specs({"instances": [{"family": "empty", "n": 3, "bogus": 1}]})

    def test_build_family_graph_matches_generators(self):
        assert build_family_graph("crown", 4).edge_count == generators.crown(
            4
        ).edge_count
        with pytest.raises(InvalidInstanceError):
            build_family_graph("nope", 4)


class TestSummarize:
    def test_groups_by_chosen_algorithm(self):
        from repro.analysis.suites import batch_summary_table, summarize_batch

        results = BatchRunner().run_to_list(small_instances(4))
        rows = summarize_batch(results)
        assert len(rows) == 1
        algorithm, count, cached, errors, mean_ratio, worst, _ = rows[0]
        assert algorithm == results[0].chosen
        assert count == 4 and errors == 0
        assert worst >= mean_ratio >= 1.0
        table = batch_summary_table(results, title="t")
        assert algorithm in table and "worst ratio" in table

    def test_accepts_raw_dicts(self):
        from repro.analysis.suites import summarize_batch

        results = BatchRunner().run_to_list(small_instances(2))
        assert summarize_batch([r.to_dict() for r in results]) == summarize_batch(
            results
        )
