"""Tests for the closed-form bounds of Section 4.1."""

import math

import pytest

from repro.random_graphs.theory import (
    matching_fraction_lower_bound,
    ratio_bound_lemma14,
    ratio_limit_constant,
    smaller_class_fraction_bound,
    zito_min_maximal_matching_bound,
)


class TestLemma12Bound:
    def test_limit_form(self):
        # 1 - (1 - a/n)^n -> 1 - e^-a
        for a in (0.5, 1.0, 3.0):
            val = smaller_class_fraction_bound(10**6, a)
            assert val == pytest.approx(1.0 - math.exp(-a), abs=1e-4)

    def test_monotone_in_a(self):
        vals = [smaller_class_fraction_bound(1000, a) for a in (0.1, 1, 2, 5)]
        assert vals == sorted(vals)

    def test_bounds(self):
        assert 0.0 <= smaller_class_fraction_bound(100, 0) == 0.0
        assert smaller_class_fraction_bound(100, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            smaller_class_fraction_bound(0, 1)
        with pytest.raises(ValueError):
            smaller_class_fraction_bound(10, 11)


class TestLemma13Bound:
    def test_zero_a(self):
        assert matching_fraction_lower_bound(0) == 0.0

    def test_monotone(self):
        vals = [matching_fraction_lower_bound(a) for a in (0.5, 1, 2, 4, 8)]
        assert vals == sorted(vals)

    def test_limit_is_one(self):
        assert matching_fraction_lower_bound(50) == pytest.approx(
            1.0 - math.exp(-1.0), abs=1e-6
        )
        # NB the bound saturates at 1 - e^{e^{-a}-1} -> 1 - e^{-1}, not 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            matching_fraction_lower_bound(-1)


class TestLemma14Ratio:
    def test_monotone_increasing(self):
        vals = [ratio_bound_lemma14(a) for a in (0.1, 0.5, 1, 2, 5, 20)]
        assert vals == sorted(vals)

    def test_below_limit(self):
        for a in (0.1, 1.0, 5.0):
            assert ratio_bound_lemma14(a) < ratio_limit_constant()
        # for large a the bound saturates to the limit in float precision
        assert ratio_bound_lemma14(100.0) <= ratio_limit_constant()

    def test_approaches_limit(self):
        assert ratio_bound_lemma14(40) == pytest.approx(
            ratio_limit_constant(), rel=1e-6
        )

    def test_paper_constant(self):
        # the paper states the limit e/(e-1) < 1.6
        assert ratio_limit_constant() == pytest.approx(1.5819767, abs=1e-6)
        assert ratio_limit_constant() < 1.6

    def test_small_a_near_one(self):
        # as a -> 0 both numerator and denominator -> a, ratio -> 1
        assert ratio_bound_lemma14(1e-6) == pytest.approx(1.0, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ratio_bound_lemma14(0)


class TestZitoBound:
    def test_close_to_n_for_dense(self):
        # p = 0.5, n = 1000: deficiency 2 log(np)/log 2 is tiny vs n
        bound = zito_min_maximal_matching_bound(1000, 0.5)
        assert 970 < bound < 1000

    def test_fraction_tends_to_one(self):
        fracs = [
            zito_min_maximal_matching_bound(n, math.log(n) ** 2 / n) / n
            for n in (100, 1000, 10000, 100000)
        ]
        assert fracs == sorted(fracs)
        assert fracs[-1] > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            zito_min_maximal_matching_bound(0, 0.5)
        with pytest.raises(ValueError):
            zito_min_maximal_matching_bound(10, 0.0)
        with pytest.raises(ValueError):
            zito_min_maximal_matching_bound(10, 0.05)  # np <= 1
