"""Tests for batch-spec v3: ``graph`` entries and machine eligibility."""

import pytest

from repro.exceptions import InvalidInstanceError
from repro.runtime import (
    SPEC_FORMAT,
    SPEC_FORMAT_V2,
    SPEC_FORMAT_V3,
    BatchRunner,
    build_conflict_graph,
    expand_specs,
)


def v3_spec(instances, defaults=None):
    data = {"format": SPEC_FORMAT_V3, "instances": instances}
    if defaults is not None:
        data["defaults"] = defaults
    return data


class TestBuildConflictGraph:
    def test_multipartite_from_sizes(self):
        g = build_conflict_graph(
            {"family": "complete_multipartite", "sizes": [2, 2, 3], "free": 1}
        )
        assert g.family == "complete_multipartite"
        assert g.n == 8
        assert [len(p) for p in g.parts()] == [2, 2, 3]

    def test_multipartite_random_split(self):
        g = build_conflict_graph(
            {"family": "complete_multipartite", "n": 9, "parts": 3}, seed=5
        )
        assert g.n == 9 and len(g.parts()) == 3
        again = build_conflict_graph(
            {"family": "complete_multipartite", "n": 9, "parts": 3}, seed=5
        )
        assert g == again  # seeded determinism

    def test_block_chain_and_random(self):
        g = build_conflict_graph({"family": "block", "chain": [3, 2, 4]})
        assert g.family == "block" and g.n == 7
        r = build_conflict_graph(
            {"family": "block", "n": 12, "max_block": 3}, seed=0
        )
        assert r.n == 12
        assert all(len(b) <= 3 for b in r.blocks())

    def test_bipartite_families_still_available(self):
        g = build_conflict_graph({"family": "crown", "n": 4})
        assert g.family == "bipartite" and g.n == 8

    def test_errors_are_diagnostics(self):
        with pytest.raises(InvalidInstanceError, match="unknown graph family"):
            build_conflict_graph({"family": "hypercube"})
        with pytest.raises(InvalidInstanceError, match="sizes"):
            build_conflict_graph({"family": "complete_multipartite"})
        with pytest.raises(InvalidInstanceError, match="seed"):
            build_conflict_graph({"family": "block", "n": 8, "seed": 3})
        with pytest.raises(InvalidInstanceError, match="malformed"):
            build_conflict_graph(
                {"family": "complete_multipartite", "sizes": "two"}
            )


class TestGraphEntries:
    def test_graph_entry_expands(self):
        tasks = expand_specs(
            v3_spec(
                [
                    {"graph": {"family": "complete_multipartite",
                               "sizes": [2, 2, 3], "free": 1},
                     "speeds": "3,2,1"},
                    {"graph": {"family": "block", "n": 12, "max_block": 4},
                     "count": 2, "seed": 5, "speeds": "2,1,1,1"},
                ]
            )
        )
        assert [t.name for t in tasks] == [
            "complete_multipartite-n8", "block-n12-s5", "block-n12-s6"
        ]
        assert tasks[0].payload["graph"]["graph_kind"] == "complete_multipartite"
        assert tasks[1].payload["graph"]["graph_kind"] == "block"

    def test_graph_entry_with_machines_block(self):
        (task,) = expand_specs(
            v3_spec(
                [{"graph": {"family": "block", "chain": [3, 2]},
                  "machines": {"kind": "uniform", "profile": "geometric",
                               "m": 4}}]
            )
        )
        assert task.name == "geometric/block-n4"
        assert task.payload["kind"] == "uniform_instance"
        assert len(task.payload["speeds"]) == 4

    def test_graph_entries_gated_to_v3(self):
        for fmt in (SPEC_FORMAT, SPEC_FORMAT_V2):
            with pytest.raises(InvalidInstanceError, match="v3"):
                expand_specs(
                    {"format": fmt,
                     "instances": [{"graph": {"family": "block",
                                              "chain": [2, 2]}}]}
                )

    def test_unknown_entry_keys_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown"):
            expand_specs(
                v3_spec([{"graph": {"family": "block", "chain": [2]},
                          "flavor": "spicy"}])
            )

    def test_v2_features_still_work_in_v3(self):
        (task,) = expand_specs(
            v3_spec(
                [{"family": "crown", "n": 3,
                  "machines": {"kind": "unrelated", "model": "correlated",
                               "m": 2}}]
            )
        )
        assert task.name == "correlated/crown-n3"
        assert task.payload["kind"] == "unrelated_instance"


class TestEligibility:
    def test_random_masks_from_choices(self):
        (task,) = expand_specs(
            v3_spec(
                [{"family": "matching", "n": 3,
                  "machines": {"kind": "uniform", "profile": "geometric",
                               "m": 4,
                               "eligibility": {"choices": 2, "seed": 9}}}]
            )
        )
        eligible = task.payload["eligible"]
        assert len(eligible) == 6
        assert all(mask is None or len(mask) == 2 for mask in eligible)

    def test_explicit_masks(self):
        (task,) = expand_specs(
            v3_spec(
                [{"family": "matching", "n": 1,
                  "machines": {"kind": "uniform", "speeds": "2,1",
                               "eligibility": [[0], None]}}]
            )
        )
        assert task.payload["eligible"] == [[0], None]

    def test_eligibility_gated_to_v3(self):
        with pytest.raises(InvalidInstanceError, match="v3"):
            expand_specs(
                {"format": SPEC_FORMAT_V2,
                 "instances": [
                     {"family": "matching", "n": 2,
                      "machines": {"kind": "uniform", "speeds": "2,1",
                                   "eligibility": [[0], None, None, [1]]}}
                 ]}
            )

    def test_eligibility_rejected_for_unrelated(self):
        with pytest.raises(InvalidInstanceError, match="forbidden times"):
            expand_specs(
                v3_spec(
                    [{"family": "matching", "n": 2,
                      "machines": {"kind": "unrelated", "m": 2,
                                   "eligibility": {"choices": 1}}}]
                )
            )

    def test_malformed_eligibility_rejected(self):
        with pytest.raises(InvalidInstanceError):
            expand_specs(
                v3_spec(
                    [{"family": "matching", "n": 2,
                      "machines": {"kind": "uniform", "speeds": "2,1",
                                   "eligibility": "everyone"}}]
                )
            )


class TestV3EndToEnd:
    def test_batch_runs_conflict_families(self):
        tasks = expand_specs(
            v3_spec(
                [
                    {"graph": {"family": "complete_multipartite",
                               "sizes": [2, 2, 1], "free": 1},
                     "speeds": "3,2,1"},
                    {"graph": {"family": "block", "chain": [3, 2]},
                     "speeds": "2,1,1"},
                    {"family": "matching", "n": 2,
                     "machines": {"kind": "uniform", "speeds": "2,1,1",
                                  "eligibility": {"choices": 2, "seed": 0}}},
                ]
            )
        )
        results = BatchRunner().run_to_list(tasks)
        assert len(results) == 3
        for r in results:
            assert r.error is None, (r.name, r.error)
            assert r.feasible, r.name
        by_name = {r.name: r for r in results}
        # three classes: only the k-class exact unary algorithm applies
        assert by_name["complete_multipartite-n6"].chosen == (
            "complete_multipartite_min_time"
        )
        assert by_name["block-n4"].chosen == "conflict_color_split"
