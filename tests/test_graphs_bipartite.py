"""Tests for the BipartiteGraph container."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import InvalidInstanceError, NotBipartiteError
from repro.graphs.bipartite import BipartiteGraph


class TestConstruction:
    def test_empty_graph(self):
        g = BipartiteGraph(0, [])
        assert g.n == 0 and g.edge_count == 0

    def test_basic_edges(self):
        g = BipartiteGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.edge_count == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_parallel_edges_collapse(self):
        g = BipartiteGraph(2, [(0, 1), (1, 0), (0, 1)])
        assert g.edge_count == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph(2, [(0, 2)])

    def test_odd_cycle_rejected(self):
        with pytest.raises(NotBipartiteError):
            BipartiteGraph(3, [(0, 1), (1, 2), (2, 0)])

    def test_even_cycle_accepted(self):
        g = BipartiteGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.edge_count == 4

    def test_declared_side_validated(self):
        with pytest.raises(NotBipartiteError):
            BipartiteGraph(2, [(0, 1)], side=[0, 0])

    def test_declared_side_length_checked(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph(2, [(0, 1)], side=[0])

    def test_declared_side_values_checked(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph(2, [(0, 1)], side=[0, 2])

    def test_inferred_side_crosses_every_edge(self):
        g = BipartiteGraph(6, [(0, 1), (1, 2), (3, 4)])
        for u, v in g.edges():
            assert g.side[u] != g.side[v]

    def test_from_parts(self):
        g = BipartiteGraph.from_parts(2, 3, [(0, 0), (1, 2)])
        assert g.n == 5
        assert g.side == (0, 0, 1, 1, 1)
        assert g.has_edge(0, 2) and g.has_edge(1, 4)

    def test_from_parts_range_check(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph.from_parts(2, 2, [(0, 2)])

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph(-1, [])


class TestAccessors:
    def test_neighbors_and_degree(self):
        g = BipartiteGraph(4, [(0, 1), (0, 3)])
        assert g.neighbors(0) == {1, 3}
        assert g.degree(0) == 2 and g.degree(2) == 0
        assert g.max_degree() == 2

    def test_isolated_vertices(self):
        g = BipartiteGraph(4, [(0, 1)])
        assert g.isolated_vertices() == [2, 3]

    def test_edges_ordered(self):
        g = BipartiteGraph(4, [(3, 2), (1, 0)])
        assert sorted(g.edges()) == [(0, 1), (2, 3)]

    def test_vertices_on_side_partition(self):
        g = BipartiteGraph.from_parts(2, 2, [(0, 0)])
        assert g.vertices_on_side(0) == [0, 1]
        assert g.vertices_on_side(1) == [2, 3]


class TestIndependence:
    def test_independent_set_detection(self):
        g = BipartiteGraph(4, [(0, 1), (2, 3)])
        assert g.is_independent_set([0, 2])
        assert g.is_independent_set([])
        assert not g.is_independent_set([0, 1])

    def test_closed_neighborhood(self):
        g = BipartiteGraph(5, [(0, 1), (1, 2), (3, 4)])
        assert g.closed_neighborhood([1]) == {0, 1, 2}
        assert g.closed_neighborhood([0, 3]) == {0, 1, 3, 4}


class TestStructuralOps:
    def test_induced_subgraph(self):
        g = BipartiteGraph(5, [(0, 1), (1, 2), (3, 4)])
        sub, ids = g.induced_subgraph([1, 2, 4])
        assert ids == [1, 2, 4]
        assert sub.n == 3
        assert sub.edge_count == 1  # only (1,2) survives
        assert sub.has_edge(0, 1)

    def test_induced_subgraph_inherits_sides(self):
        g = BipartiteGraph.from_parts(2, 2, [(0, 0), (1, 1)])
        sub, ids = g.induced_subgraph([0, 3])
        assert [g.side[v] for v in ids] == list(sub.side)

    def test_disjoint_union(self):
        a = BipartiteGraph(2, [(0, 1)])
        b = BipartiteGraph(3, [(0, 2)])
        u = a.disjoint_union(b)
        assert u.n == 5
        assert u.has_edge(0, 1) and u.has_edge(2, 4)
        assert u.edge_count == 2

    def test_with_edges(self):
        g = BipartiteGraph(4, [(0, 1)])
        g2 = g.with_edges([(2, 3)])
        assert g2.edge_count == 2 and g.edge_count == 1

    def test_relabeled_permutation(self):
        g = BipartiteGraph(3, [(0, 1)])
        r = g.relabeled([2, 0, 1])
        assert r.has_edge(2, 0)
        assert not r.has_edge(0, 1)

    def test_relabeled_rejects_non_permutation(self):
        g = BipartiteGraph(3, [(0, 1)])
        with pytest.raises(InvalidInstanceError):
            g.relabeled([0, 0, 1])


class TestDunder:
    def test_equality_by_structure(self):
        a = BipartiteGraph(3, [(0, 1)])
        b = BipartiteGraph(3, [(1, 0)])
        c = BipartiteGraph(3, [(1, 2)])
        assert a == b and a != c
        assert hash(a) == hash(b)

    def test_to_networkx_roundtrip(self):
        g = BipartiteGraph(4, [(0, 1), (2, 3)])
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 2


@given(st.integers(1, 8), st.integers(1, 8), st.data())
def test_from_parts_always_bipartite_property(a, b, data):
    """Every cross-edge set yields a valid graph whose witness matches parts."""
    edges = data.draw(
        st.lists(
            st.tuples(st.integers(0, a - 1), st.integers(0, b - 1)),
            max_size=20,
        )
    )
    g = BipartiteGraph.from_parts(a, b, edges)
    assert g.n == a + b
    for u, v in g.edges():
        assert g.side[u] != g.side[v]
