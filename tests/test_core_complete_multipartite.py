"""Tests for :mod:`repro.core.complete_multipartite` — the exact unary
algorithm for unit jobs with complete (multi)partite conflicts ([20]/[24])."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complete_multipartite import (
    _capacities,
    _feasible_groups,
    complete_multipartite_min_time,
    schedule_complete_bipartite_unit,
)
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, unit_uniform_instance

F = Fraction


def _mk_speeds(values):
    return [F(v) for v in values]


class TestMinTimeBasics:
    def test_no_jobs(self):
        sol = complete_multipartite_min_time([], _mk_speeds([2, 1]))
        assert sol.makespan == 0
        assert sol.machine_part == (None, None)

    def test_zero_parts_dropped(self):
        sol = complete_multipartite_min_time([0, 3, 0], _mk_speeds([1, 1]))
        # a single real part may split across both machines: 2 + 1 jobs
        assert sol.makespan == 2

    def test_single_part_uses_all_machines(self):
        sol = complete_multipartite_min_time([4], _mk_speeds([1, 1]))
        assert sol.makespan == 2
        assert sum(sol.part_counts) == 4

    def test_two_parts_two_unit_machines(self):
        sol = complete_multipartite_min_time([3, 2], _mk_speeds([1, 1]))
        # each part is pinned to its own machine
        assert sol.makespan == 3

    def test_speed_helps_bigger_part(self):
        sol = complete_multipartite_min_time([6, 2], _mk_speeds([3, 1]))
        # fast machine takes the big part: max(6/3, 2/1) = 2
        assert sol.makespan == 2

    def test_free_jobs_consume_capacity(self):
        no_free = complete_multipartite_min_time([2, 2], _mk_speeds([1, 1]))
        with_free = complete_multipartite_min_time(
            [2, 2], _mk_speeds([1, 1]), free_jobs=4
        )
        assert no_free.makespan == 2
        assert with_free.makespan == 4
        assert sum(with_free.free_counts) == 4

    def test_free_jobs_only(self):
        sol = complete_multipartite_min_time([], _mk_speeds([2, 1]), free_jobs=6)
        assert sol.makespan == 2  # capacities floor(2t) + floor(t) >= 6 at t=2
        assert sum(sol.free_counts) == 6

    def test_three_parts_three_machines(self):
        sol = complete_multipartite_min_time([5, 3, 1], _mk_speeds([5, 3, 1]))
        assert sol.makespan == 1

    def test_three_parts_uneven(self):
        # parts 4,4,4 on speeds 2,1,1: fast machine finishes its part in 2,
        # slow ones need 4
        sol = complete_multipartite_min_time([4, 4, 4], _mk_speeds([2, 1, 1]))
        assert sol.makespan == 4

    def test_part_can_be_split_between_machines(self):
        # one part of 10 jobs, two machines: split 5/5
        sol = complete_multipartite_min_time([10], _mk_speeds([1, 1]))
        assert sol.makespan == 5

    def test_two_parts_with_splitting(self):
        # part sizes 8 and 2 on three unit machines: 8 splits over two
        # machines (4 each), 2 on the third
        sol = complete_multipartite_min_time([8, 2], _mk_speeds([1, 1, 1]))
        assert sol.makespan == 4

    def test_fractional_speed(self):
        sol = complete_multipartite_min_time([1, 1], _mk_speeds(["1/2", "1/2"]))
        assert sol.makespan == 2  # each machine needs time 2 per unit job


class TestMinTimeValidation:
    def test_more_parts_than_machines(self):
        with pytest.raises(InfeasibleInstanceError):
            complete_multipartite_min_time([1, 1, 1], _mk_speeds([1, 1]))

    def test_negative_part(self):
        with pytest.raises(InvalidInstanceError):
            complete_multipartite_min_time([-1, 2], _mk_speeds([1, 1]))

    def test_negative_free(self):
        with pytest.raises(InvalidInstanceError):
            complete_multipartite_min_time([1], _mk_speeds([1]), free_jobs=-2)

    def test_no_machines_with_jobs(self):
        with pytest.raises(InvalidInstanceError):
            complete_multipartite_min_time([1], [])

    def test_no_machines_no_jobs(self):
        sol = complete_multipartite_min_time([], [])
        assert sol.makespan == 0


class TestPlanConsistency:
    def test_counts_respect_capacities(self):
        speeds = _mk_speeds([3, 2, 1])
        sol = complete_multipartite_min_time([7, 5], speeds, free_jobs=3)
        for i, s in enumerate(speeds):
            cap = (s * sol.makespan).__floor__()
            assert sol.part_counts[i] + sol.free_counts[i] <= cap

    def test_machines_serve_single_part(self):
        sol = complete_multipartite_min_time([6, 6], _mk_speeds([2, 2, 1]))
        for i, part in enumerate(sol.machine_part):
            if sol.part_counts[i] > 0:
                assert part is not None

    def test_all_jobs_placed(self):
        sol = complete_multipartite_min_time([9, 4, 2], _mk_speeds([4, 2, 1, 1]), 5)
        assert sum(sol.part_counts) == 15
        assert sum(sol.free_counts) == 5


class TestAgainstBruteForce:
    """The unary algorithm must equal the exhaustive optimum."""

    @pytest.mark.parametrize(
        "a,b,speeds",
        [
            (2, 2, [1, 1]),
            (3, 2, [2, 1]),
            (4, 1, [2, 1, 1]),
            (3, 3, [3, 2, 1]),
            (5, 2, ["5/2", 1]),
            (2, 2, [1, 1, 1, 1]),
        ],
    )
    def test_complete_bipartite_matches_brute_force(self, a, b, speeds):
        graph = generators.complete_bipartite(a, b)
        inst = unit_uniform_instance(graph, _mk_speeds(speeds))
        schedule = schedule_complete_bipartite_unit(inst)
        assert schedule.makespan == brute_force_makespan(inst)

    @pytest.mark.parametrize(
        "a,b,iso,speeds",
        [(2, 2, 2, [2, 1]), (1, 3, 1, [1, 1]), (2, 1, 3, [3, 1, 1])],
    )
    def test_with_isolated_matches_brute_force(self, a, b, iso, speeds):
        graph = generators.complete_bipartite(a, b).disjoint_union(
            BipartiteGraph(iso)
        )
        inst = unit_uniform_instance(graph, _mk_speeds(speeds))
        schedule = schedule_complete_bipartite_unit(inst)
        assert schedule.makespan == brute_force_makespan(inst)


class TestScheduleAdapter:
    def test_schedule_is_feasible(self):
        graph = generators.complete_bipartite(4, 3)
        inst = unit_uniform_instance(graph, _mk_speeds([3, 2, 1]))
        schedule = schedule_complete_bipartite_unit(inst)
        assert schedule.is_feasible()

    def test_rejects_non_unit_jobs(self):
        graph = generators.complete_bipartite(2, 2)
        inst = UniformInstance(graph, [2, 1, 1, 1], _mk_speeds([1, 1]))
        with pytest.raises(InvalidInstanceError):
            schedule_complete_bipartite_unit(inst)

    def test_rejects_general_bipartite(self):
        inst = unit_uniform_instance(generators.crown(3), _mk_speeds([1, 1]))
        with pytest.raises(InvalidInstanceError):
            schedule_complete_bipartite_unit(inst)

    def test_edgeless_graph_schedules_everywhere(self):
        inst = unit_uniform_instance(generators.empty_graph(6), _mk_speeds([2, 1]))
        schedule = schedule_complete_bipartite_unit(inst)
        assert schedule.makespan == brute_force_makespan(inst)

    def test_single_edge(self):
        inst = unit_uniform_instance(BipartiteGraph(2, [(0, 1)]), _mk_speeds([1, 1]))
        schedule = schedule_complete_bipartite_unit(inst)
        assert schedule.makespan == 1


@settings(max_examples=50, deadline=None)
@given(
    a=st.integers(1, 3),
    b=st.integers(1, 3),
    iso=st.integers(0, 2),
    speed_ints=st.lists(st.integers(1, 4), min_size=2, max_size=3),
)
def test_property_exact_vs_brute_force(a, b, iso, speed_ints):
    """Random small instances: the unary algorithm equals brute force."""
    graph = generators.complete_bipartite(a, b)
    if iso:
        graph = graph.disjoint_union(BipartiteGraph(iso))
    speeds = sorted((F(s) for s in speed_ints), reverse=True)
    inst = unit_uniform_instance(graph, speeds)
    schedule = schedule_complete_bipartite_unit(inst)
    assert schedule.is_feasible()
    assert schedule.makespan == brute_force_makespan(inst)


@settings(max_examples=40, deadline=None)
@given(
    parts=st.lists(st.integers(1, 12), min_size=1, max_size=3),
    speed_ints=st.lists(st.integers(1, 5), min_size=3, max_size=5),
    free=st.integers(0, 6),
)
def test_property_plan_is_internally_consistent(parts, speed_ints, free):
    """Plans always place every job within capacity at the claimed time."""
    speeds = [F(s) for s in speed_ints]
    sol = complete_multipartite_min_time(parts, speeds, free_jobs=free)
    assert sum(sol.part_counts) == sum(parts)
    assert sum(sol.free_counts) == free
    for i, s in enumerate(speeds):
        cap = (s * sol.makespan).__floor__()
        assert sol.part_counts[i] + sol.free_counts[i] <= cap
    # machines serving a part are consistent with the group labels
    covered = [0] * len(parts)
    for i, part in enumerate(sol.machine_part):
        if sol.part_counts[i]:
            covered[part] += sol.part_counts[i]
    assert covered == list(parts)


@settings(max_examples=30, deadline=None)
@given(
    parts=st.lists(st.integers(1, 8), min_size=2, max_size=2),
    speed_ints=st.lists(st.integers(1, 4), min_size=2, max_size=4),
)
def test_property_makespan_is_minimal_step(parts, speed_ints):
    """No feasible plan exists strictly below the returned makespan.

    Checked by re-running feasibility at the largest candidate time below
    the optimum (one capacity step down on the fastest machine).
    """
    speeds = [F(s) for s in speed_ints]
    sol = complete_multipartite_min_time(parts, speeds)
    smaller = sol.makespan * F(99, 100)
    caps = _capacities(speeds, smaller, sum(parts))
    assert _feasible_groups(caps, parts, sum(parts)) is None
