"""Tests for Hopcroft-Karp maximum matching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import (
    complete_bipartite,
    crown,
    matching_graph,
    path_graph,
    star,
)
from repro.graphs.matching import hopcroft_karp, is_matching, maximum_matching_size

from tests.conftest import random_bipartite


class TestKnownValues:
    def test_empty(self):
        assert maximum_matching_size(BipartiteGraph(5, [])) == 0

    def test_single_edge(self):
        assert maximum_matching_size(BipartiteGraph(2, [(0, 1)])) == 1

    def test_complete_bipartite(self):
        assert maximum_matching_size(complete_bipartite(3, 5)) == 3

    def test_perfect_matching_graph(self):
        assert maximum_matching_size(matching_graph(6)) == 6

    def test_path(self):
        # P_n has matching floor(n/2)
        for n in range(2, 10):
            assert maximum_matching_size(path_graph(n)) == n // 2

    def test_star(self):
        assert maximum_matching_size(star(7)) == 1

    def test_crown_has_perfect_matching(self):
        # K_{k,k} minus a perfect matching still has one for k >= 2
        assert maximum_matching_size(crown(4)) == 4


class TestMateArray:
    def test_mate_is_valid_matching(self):
        rng = np.random.default_rng(2)
        for _ in range(30):
            g = random_bipartite(rng)
            mate = hopcroft_karp(g)
            assert is_matching(g, mate)

    def test_is_matching_rejects_asymmetry(self):
        g = BipartiteGraph(2, [(0, 1)])
        assert not is_matching(g, [1, -1])

    def test_is_matching_rejects_non_edges(self):
        g = BipartiteGraph(4, [(0, 1)])
        assert not is_matching(g, [1, 0, 3, 2])

    def test_is_matching_rejects_wrong_length(self):
        g = BipartiteGraph(2, [(0, 1)])
        assert not is_matching(g, [-1])


class TestAgainstNetworkx:
    def test_random_graphs_match_oracle(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(4)
        for _ in range(40):
            g = random_bipartite(rng, max_side=12)
            ours = maximum_matching_size(g)
            top = [v for v in range(g.n) if g.side[v] == 0]
            theirs = len(nx.algorithms.bipartite.maximum_matching(g.to_networkx(), top_nodes=top)) // 2
            assert ours == theirs


@settings(max_examples=60)
@given(st.integers(1, 7), st.integers(1, 7), st.data())
def test_matching_bounds_property(a, b, data):
    edges = data.draw(
        st.lists(st.tuples(st.integers(0, a - 1), st.integers(0, b - 1)), max_size=30)
    )
    g = BipartiteGraph.from_parts(a, b, edges)
    mu = maximum_matching_size(g)
    assert 0 <= mu <= min(a, b)
    if g.edge_count > 0:
        assert mu >= 1
    # König: matching size equals vertex cover size, never exceeds edges
    assert mu <= g.edge_count


def test_deep_path_no_recursion_blowup():
    """Long alternating paths must not hit the recursion limit."""
    n = 4000
    g = path_graph(n)
    assert maximum_matching_size(g) == n // 2
