"""Tests for Algorithm 2 (Theorem 19: a.a.s. 2-approx on G(n,n,p))."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.random_graph_scheduler import random_graph_schedule
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite, empty_graph, matching_graph
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, unit_uniform_instance


def random_speeds(rng, m):
    return tuple(
        sorted((Fraction(int(x)) for x in rng.integers(1, 8, m)), reverse=True)
    )


class TestPreconditions:
    def test_unit_jobs_required(self):
        inst = UniformInstance(empty_graph(2), [2, 1], [1, 1])
        with pytest.raises(InvalidInstanceError):
            random_graph_schedule(inst)

    def test_single_machine_with_edge(self):
        inst = unit_uniform_instance(matching_graph(1), [1])
        with pytest.raises(InfeasibleInstanceError):
            random_graph_schedule(inst)

    def test_single_machine_no_edges(self):
        inst = unit_uniform_instance(empty_graph(4), [2])
        assert random_graph_schedule(inst).makespan == 2

    def test_empty(self):
        inst = unit_uniform_instance(BipartiteGraph(0, []), [1])
        assert random_graph_schedule(inst).makespan == 0


class TestFeasibilityAndQuality:
    def test_always_feasible_on_gilbert(self):
        rng = np.random.default_rng(110)
        for _ in range(25):
            n = int(rng.integers(2, 25))
            p = float(rng.random() * 3 / n)
            g = gnnp(n, min(1.0, p), seed=rng)
            m = int(rng.integers(2, 6))
            inst = unit_uniform_instance(g, random_speeds(rng, m))
            s = random_graph_schedule(inst)
            assert s.is_feasible()

    def test_two_approx_vs_bruteforce_small(self):
        rng = np.random.default_rng(111)
        for _ in range(15):
            n = int(rng.integers(2, 6))
            g = gnnp(n, 2.0 / n, seed=rng)
            m = int(rng.integers(2, 4))
            inst = unit_uniform_instance(g, random_speeds(rng, m))
            s = random_graph_schedule(inst)
            opt = brute_force_makespan(inst)
            # Theorem 19 is asymptotic; finite instances can exceed 2 but
            # never the trivial |V'2| blowup — check the 2x bound holds on
            # these benign sizes
            assert s.makespan <= 2 * opt + Fraction(2, min(inst.speeds))

    def test_capacity_bound_relation(self):
        """Schedule never beats C**: sanity that C** is a lower bound."""
        rng = np.random.default_rng(112)
        for _ in range(15):
            n = int(rng.integers(2, 20))
            g = gnnp(n, 1.5 / n, seed=rng)
            m = int(rng.integers(2, 5))
            inst = unit_uniform_instance(g, random_speeds(rng, m))
            s = random_graph_schedule(inst)
            cstar2 = min_cover_time(inst.speeds, inst.n)
            assert s.makespan >= cstar2

    def test_ratio_approaches_two_asymptotically(self):
        """Monte-Carlo version of Theorem 19: ratio vs C** at growing n
        stays below 2 (+ vanishing slack) in the critical regime."""
        rng = np.random.default_rng(113)
        for n in (60, 120):
            ratios = []
            for _ in range(5):
                g = gnnp(n, 2.0 / n, seed=rng)
                inst = unit_uniform_instance(g, (4, 2, 1, 1))
                s = random_graph_schedule(inst)
                cstar2 = min_cover_time(inst.speeds, inst.n)
                ratios.append(float(s.makespan / cstar2))
            assert max(ratios) <= 2.5


class TestStructure:
    def test_machine_one_gets_larger_class(self):
        g = complete_bipartite(2, 6)
        inst = unit_uniform_instance(g, [4, 1, 1])
        s = random_graph_schedule(inst)
        jobs_m1 = set(s.jobs_on(0))
        # larger side (6 vertices) must sit on machine 1 (+ slow spillover)
        assert jobs_m1 <= set(range(2, 8))
        assert len(jobs_m1) >= 1

    def test_smaller_class_on_second_machine_block(self):
        g = complete_bipartite(3, 5)
        inst = unit_uniform_instance(g, [2, 2, 1, 1])
        s = random_graph_schedule(inst)
        small_side = {0, 1, 2}
        used_by_small = {s.assignment[v] for v in small_side}
        assert 0 not in used_by_small
