"""Tests for the Monte-Carlo estimators vs the Section 4.1 bounds."""

import numpy as np
import pytest

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite
from repro.random_graphs.gilbert import gnnp
from repro.random_graphs.statistics import (
    GraphStatistics,
    graph_statistics,
    sample_statistics,
)
from repro.random_graphs.theory import (
    matching_fraction_lower_bound,
    ratio_limit_constant,
    smaller_class_fraction_bound,
)


class TestGraphStatistics:
    def test_complete_bipartite(self):
        g = complete_bipartite(4, 4)
        stats = graph_statistics(g, 4)
        assert stats.matching_size == 4
        assert stats.independence_number == 4
        assert stats.smaller_class == 4 and stats.larger_class == 4
        assert stats.isolated_side2 == 0

    def test_empty_graph(self):
        g = BipartiteGraph.from_parts(3, 3, [])
        stats = graph_statistics(g, 3)
        assert stats.matching_size == 0
        assert stats.smaller_class == 0
        assert stats.lemma14_ratio is None
        assert stats.isolated_side2 == 3

    def test_fractions(self):
        g = complete_bipartite(5, 5)
        stats = graph_statistics(g, 5)
        assert stats.matching_fraction == 1.0
        assert stats.smaller_class_fraction == 1.0

    def test_lemma14_ratio_definition(self):
        g = complete_bipartite(2, 3)
        stats = graph_statistics(g, 3)
        # |V'_2| = 2, mu = 2
        assert stats.lemma14_ratio == pytest.approx(1.0)


class TestSampling:
    def test_sample_count_and_determinism(self):
        a = sample_statistics(10, 0.2, samples=5, seed=3)
        b = sample_statistics(10, 0.2, samples=5, seed=3)
        assert len(a) == 5
        assert a == b

    def test_lemma12_bound_holds_empirically(self):
        """E[|V'_2|/n] below the Lemma 12 curve (plus slack) at a = 2."""
        n, a = 80, 2.0
        stats = sample_statistics(n, a / n, samples=12, seed=5)
        bound = smaller_class_fraction_bound(n, a)
        mean_frac = np.mean([s.smaller_class_fraction for s in stats])
        assert mean_frac <= bound + 0.05

    def test_lemma13_bound_holds_empirically(self):
        """mu/n above the Mastin-Jaillet lower bound at a = 2."""
        n, a = 80, 2.0
        stats = sample_statistics(n, a / n, samples=12, seed=6)
        bound = matching_fraction_lower_bound(a)
        mean_frac = np.mean([s.matching_fraction for s in stats])
        assert mean_frac >= bound - 0.05

    def test_lemma14_ratio_below_constant(self):
        """|V'_2| / mu below e/(e-1) (+ slack) across the a sweep."""
        n = 60
        for a in (0.5, 1.0, 2.0, 4.0):
            stats = sample_statistics(n, a / n, samples=10, seed=int(10 * a))
            ratios = [s.lemma14_ratio for s in stats if s.lemma14_ratio is not None]
            assert ratios, "graphs at this density should have edges"
            assert np.mean(ratios) <= ratio_limit_constant() + 0.1

    def test_supercritical_matching_near_perfect(self):
        n = 100
        p = np.log(n) ** 2 / n
        stats = sample_statistics(n, p, samples=5, seed=8)
        assert np.mean([s.matching_fraction for s in stats]) > 0.9

    def test_subcritical_smaller_class_vanishes(self):
        """|V'_2|/n shrinks along the subcritical representative.

        At p = 1/(n log n) the expected fraction decays like 1/log n —
        slow, so the assertion tracks the rate instead of a fixed epsilon.
        """
        means = []
        for n in (100, 400, 1600):
            p = 1.0 / (n * np.log(n))
            stats = sample_statistics(n, p, samples=5, seed=9)
            for s in stats:
                # structural fact behind Corollary 11's estimate: every
                # class-2 vertex is non-isolated, so |V'_2| <= |E|
                assert s.smaller_class <= s.edge_count
            means.append(np.mean([s.smaller_class_fraction for s in stats]))
        assert means[-1] < means[0]
        assert means[-1] < 2.0 / np.log(1600)
