"""Tests for :mod:`repro.engine.aserve` — the concurrent asyncio tier."""

import asyncio
import json
import threading
import time
from fractions import Fraction

import pytest

from repro.engine import (
    AlgorithmSpec,
    AsyncEngineService,
    Capability,
    SERVE_FORMAT_V2,
    register_algorithm,
    serve_async,
    unregister_algorithm,
)
from repro.exceptions import ReproError
from repro.graphs import generators
from repro.io import instance_to_dict
from repro.scheduling.instance import unit_uniform_instance

F = Fraction


def _payload(half=4):
    inst = unit_uniform_instance(generators.crown(half), [F(3), F(1)])
    return instance_to_dict(inst)


def _solve_request(request_id=1, half=4, **extra):
    return {"op": "solve", "id": request_id, "instance": _payload(half), **extra}


@pytest.fixture
def gate_algorithm():
    """A registered algorithm that blocks until the test opens the gate.

    Holding the gate keeps a solve deterministically in flight, which is
    what the coalescing and overload tests rendezvous on.
    """
    gate = threading.Event()

    def gated(instance):
        from repro.engine.dispatch import solve

        assert gate.wait(timeout=30), "test gate never opened"
        return solve(instance, algorithm="sqrt_approx")

    def gated_fail(instance):
        assert gate.wait(timeout=30), "test gate never opened"
        raise ReproError("gated solver failed deliberately")

    register_algorithm(
        AlgorithmSpec(
            name="gate_slow",
            guarantee="test fixture",
            anchor="test",
            run=gated,
            capability=Capability(machine_kind="uniform", unit_jobs=True),
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="gate_fail",
            guarantee="test fixture",
            anchor="test",
            run=gated_fail,
            capability=Capability(machine_kind="uniform", unit_jobs=True),
        )
    )
    try:
        yield gate
    finally:
        gate.set()  # never leave a worker thread stuck on teardown
        unregister_algorithm("gate_slow")
        unregister_algorithm("gate_fail")


async def _spin_until(predicate, timeout_s=10.0, interval_s=0.005):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never reached"
        await asyncio.sleep(interval_s)


class TestHandler:
    def test_round_trip_v2_and_cached_repeat(self):
        async def run():
            service = AsyncEngineService()
            try:
                first = await service.handle_request(_solve_request(request_id=1))
                assert first["format"] == SERVE_FORMAT_V2
                assert first["ok"] and first["id"] == 1
                assert first["cached"] is False and first["coalesced"] is False
                assert first["chosen"] == "q2_unit_exact"
                assert len(first["assignment"]) == 8
                second = await service.handle_request(_solve_request(request_id=2))
                assert second["cached"] is True and second["id"] == 2
                assert second["makespan"] == first["makespan"]
                assert service.stats.solved == 1 and service.stats.cached == 1
            finally:
                service.close()

        asyncio.run(run())

    def test_ping_stats_and_gauges(self):
        async def run():
            service = AsyncEngineService(max_inflight=3, max_queue=5)
            try:
                ping = await service.handle_request({"op": "ping", "id": 0})
                assert ping["ok"] is True and ping["format"] == SERVE_FORMAT_V2
                await service.handle_request(_solve_request())
                stats = await service.handle_request({"op": "stats", "id": 9})
                block = stats["stats"]
                assert block["requests"] == 3
                assert block["solved"] == 1
                assert block["qps"] > 0
                assert block["latency"]["count"] == 2  # before this stats op
                assert block["latency"]["p50_ms"] is not None
                server = stats["server"]
                assert server["max_inflight"] == 3 and server["max_queue"] == 5
                assert server["inflight"] == 0 and server["workers"] == 1
            finally:
                service.close()

        asyncio.run(run())

    def test_errors_are_v2_shaped_and_counted(self):
        async def run():
            service = AsyncEngineService()
            try:
                missing = await service.handle_request({"op": "solve", "id": 4})
                assert missing["ok"] is False and "instance" in missing["error"]
                bad_k = await service.handle_request(
                    _solve_request(portfolio="three")
                )
                assert bad_k["ok"] is False and "ValueError" in bad_k["error"]
                unknown = await service.handle_request({"op": "dance"})
                assert unknown["ok"] is False and "unknown op" in unknown["error"]
                assert service.stats.errors == 3
                # and the loop still answers afterwards
                assert (await service.handle_request(_solve_request()))["ok"]
            finally:
                service.close()

        asyncio.run(run())

    def test_explain_answered_fresh_and_cached(self):
        async def run():
            service = AsyncEngineService()
            try:
                fresh = await service.handle_request(_solve_request(explain=True))
                assert fresh["explain"]["chosen"] == "q2_unit_exact"
                cached = await service.handle_request(
                    _solve_request(request_id=2, explain=True)
                )
                assert cached["cached"] is True
                assert cached["explain"]["chosen"] == "q2_unit_exact"
            finally:
                service.close()

        asyncio.run(run())

    def test_constructor_rejects_bad_limits(self):
        for kwargs in (
            {"workers": 0},
            {"max_inflight": 0},
            {"max_queue": -1},
        ):
            with pytest.raises(ReproError):
                AsyncEngineService(**kwargs)


class TestCoalescing:
    def test_identical_requests_share_one_solve(self, gate_algorithm):
        """Satellite: M identical + K distinct concurrent requests →
        K + 1 solves, M - 1 coalesced, correct answers for everyone."""
        M, K = 5, 3

        async def run():
            service = AsyncEngineService(max_inflight=K + 1)
            try:
                tasks = [
                    asyncio.create_task(
                        service.handle_request(
                            _solve_request(request_id=i, algorithm="gate_slow")
                        )
                    )
                    for i in range(M)
                ]
                tasks += [
                    asyncio.create_task(
                        service.handle_request(
                            _solve_request(
                                request_id=100 + i,
                                half=5 + i,
                                algorithm="gate_slow",
                            )
                        )
                    )
                    for i in range(K)
                ]
                # wait until every follower has attached to the leader,
                # then let the solves finish
                await _spin_until(lambda: service.stats.coalesced == M - 1)
                gate_algorithm.set()
                results = await asyncio.wait_for(asyncio.gather(*tasks), 30)
                assert all(r["ok"] for r in results)
                assert service.stats.solved == K + 1
                assert service.stats.coalesced == M - 1
                assert sum(1 for r in results if r["coalesced"]) == M - 1
                identical = results[:M]
                assert len({r["makespan"] for r in identical}) == 1
                assert len({tuple(r["assignment"]) for r in identical}) == 1
                assert {r["id"] for r in identical} == set(range(M))
                for r in results[M:]:
                    assert r["makespan"] and r["assignment"]
            finally:
                service.close()

        asyncio.run(run())

    def test_follower_of_failed_solve_gets_the_error(self, gate_algorithm):
        async def run():
            service = AsyncEngineService()
            try:
                request = _solve_request(
                    request_id=1, half=3, algorithm="gate_fail"
                )
                leader = asyncio.create_task(service.handle_request(request))
                follower = asyncio.create_task(
                    service.handle_request(dict(request, id=2))
                )
                await _spin_until(lambda: service.stats.coalesced == 1)
                gate_algorithm.set()
                first, second = await asyncio.wait_for(
                    asyncio.gather(leader, follower), 30
                )
                assert first["ok"] is False and second["ok"] is False
                assert second["coalesced"] is True
                # errors are never cached: a retry re-evaluates
                assert service.stats.cached == 0
            finally:
                service.close()

        asyncio.run(run())


class TestBackpressure:
    def test_overload_rejects_promptly_and_server_stays_live(
        self, gate_algorithm
    ):
        """Satellite: with max_inflight=2 and slow solves, excess
        requests are rejected as 'overloaded' immediately — no
        timeouts — and the service keeps answering."""

        async def run():
            service = AsyncEngineService(max_inflight=2, max_queue=0)
            try:
                tasks = [
                    asyncio.create_task(
                        service.handle_request(
                            _solve_request(
                                request_id=i, half=4 + i, algorithm="gate_slow"
                            )
                        )
                    )
                    for i in range(5)
                ]
                started = time.monotonic()
                await _spin_until(lambda: service.stats.rejected == 3)
                rejection_latency = time.monotonic() - started
                assert rejection_latency < 2.0, rejection_latency
                # control ops still answered while solves are stuck
                ping = await service.handle_request({"op": "ping"})
                assert ping["ok"] is True
                stats = await service.handle_request({"op": "stats"})
                assert stats["stats"]["rejected"] == 3
                assert stats["server"]["inflight"] == 2
                gate_algorithm.set()
                results = await asyncio.wait_for(asyncio.gather(*tasks), 30)
                rejected = [r for r in results if not r["ok"]]
                assert len(rejected) == 3
                assert all(r["error"] == "overloaded" for r in rejected)
                assert all("retry" in r["detail"] for r in rejected)
                assert sum(1 for r in results if r["ok"]) == 2
                # rejections are not protocol errors
                assert service.stats.errors == 0
                # and fresh capacity serves again afterwards
                again = await service.handle_request(
                    _solve_request(request_id=9, half=4, algorithm="gate_slow")
                )
                assert again["ok"] is True
            finally:
                service.close()

        asyncio.run(run())

    def test_cache_hits_bypass_admission_control(self, gate_algorithm):
        async def run():
            service = AsyncEngineService(max_inflight=1, max_queue=0)
            try:
                warm = await service.handle_request(_solve_request(request_id=1))
                assert warm["ok"]
                # saturate the single slot with a gated solve
                stuck = asyncio.create_task(
                    service.handle_request(
                        _solve_request(request_id=2, half=6, algorithm="gate_slow")
                    )
                )
                await _spin_until(lambda: service.gauges()["inflight"] == 1)
                # an identical-to-warm request is a cache hit: answered
                # despite zero admission capacity
                hit = await service.handle_request(_solve_request(request_id=3))
                assert hit["ok"] and hit["cached"] is True
                assert service.stats.rejected == 0
                gate_algorithm.set()
                assert (await asyncio.wait_for(stuck, 30))["ok"]
            finally:
                service.close()

        asyncio.run(run())


class TestWorkerPool:
    def test_multiprocess_dispatch_round_trip(self):
        async def run():
            service = AsyncEngineService(workers=2)
            try:
                response = await service.handle_request(_solve_request())
                assert response["ok"] and response["chosen"] == "q2_unit_exact"
                # worker-side failures come back as error responses
                bad = await service.handle_request(
                    _solve_request(request_id=2, algorithm="quantum_annealing")
                )
                assert bad["ok"] is False
                assert "unknown algorithm" in bad["error"]
            finally:
                service.close()

        asyncio.run(run())


class TestTcpServer:
    @staticmethod
    async def _start(service, **kwargs):
        address = []
        bound = asyncio.Event()

        def ready(addr):
            address.append(addr)
            bound.set()

        task = asyncio.create_task(serve_async(service, port=0, ready=ready, **kwargs))
        await asyncio.wait_for(bound.wait(), 10)
        return task, address[0]

    def test_concurrent_connections_and_shutdown(self):
        async def run():
            service = AsyncEngineService()
            try:
                task, (host, port) = await self._start(service, max_requests=4)

                async def client(request_id):
                    reader, writer = await asyncio.open_connection(host, port)
                    line = json.dumps(_solve_request(request_id=request_id))
                    writer.write((line + "\n").encode())
                    await writer.drain()
                    response = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    return response

                responses = await asyncio.wait_for(
                    asyncio.gather(*(client(i) for i in range(4))), 30
                )
                served = await asyncio.wait_for(task, 10)
                assert served == 4
                assert all(r["ok"] for r in responses)
                assert {r["id"] for r in responses} == {0, 1, 2, 3}
                assert service.stats.connections == 4
                # one fresh solve; the rest cached or coalesced
                assert service.stats.solved == 1
                assert service.stats.cached + service.stats.coalesced == 3
            finally:
                service.close()

        asyncio.run(run())

    def test_invalid_utf8_and_junk_bytes_get_error_lines(self):
        async def run():
            service = AsyncEngineService()
            try:
                task, (host, port) = await self._start(service, max_requests=3)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"\xff\xfe{not json\n")
                writer.write(b'{"op": "ping", "id": 1}\n')
                writer.write(b"[[[[[\n")
                await writer.drain()
                junk = json.loads(await reader.readline())
                ping = json.loads(await reader.readline())
                more = json.loads(await reader.readline())
                writer.close()
                await asyncio.wait_for(task, 10)
                assert junk["ok"] is False and "malformed" in junk["error"]
                assert ping["ok"] is True
                assert more["ok"] is False
            finally:
                service.close()

        asyncio.run(run())

    def test_oversized_line_is_answered_then_dropped(self):
        from repro.engine.aserve import LINE_LIMIT

        async def run():
            service = AsyncEngineService()
            try:
                task, (host, port) = await self._start(service, max_requests=1)
                reader, writer = await asyncio.open_connection(
                    host, port, limit=LINE_LIMIT * 2
                )
                writer.write(b'{"pad": "' + b"x" * (LINE_LIMIT + 1024) + b'"}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert "bytes" in response["error"]
                # the connection is closed after the error line
                assert await reader.read(1) == b""
                writer.close()
                # the server is still up for the next client
                reader2, writer2 = await asyncio.open_connection(host, port)
                writer2.write(b'{"op": "ping"}\n')
                await writer2.drain()
                assert json.loads(await reader2.readline())["ok"] is True
                writer2.close()
                await asyncio.wait_for(task, 10)
            finally:
                service.close()

        asyncio.run(run())

    def test_stats_interval_logs_metrics_lines(self):
        import io

        from repro.engine.aserve import format_stats_line

        async def run():
            sink = io.StringIO()
            service = AsyncEngineService()
            try:
                task, (host, port) = await self._start(
                    service,
                    max_requests=1,
                    stats_interval=0.05,
                    stats_sink=sink,
                )
                await asyncio.sleep(0.18)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                await reader.readline()
                writer.close()
                await asyncio.wait_for(task, 10)
            finally:
                service.close()
            lines = sink.getvalue().splitlines()
            assert len(lines) >= 2
            assert all(line.startswith("serve[stats]") for line in lines)
            assert "qps=" in lines[0] and "p50=" in lines[0]
            # the formatter itself exposes every headline counter
            one = format_stats_line(service)
            for token in ("coalesced=", "rejected=", "connections="):
                assert token in one

        asyncio.run(run())
