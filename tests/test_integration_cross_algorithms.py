"""Integration: every registered algorithm audited on a shared corpus.

For each small instance in the corpus and each applicable registry
entry, the produced schedule must be feasible (unless the method is
documented graph-blind), and methods with stated guarantees must meet
them against the brute-force optimum.  This is the cross-module safety
net: registry metadata, dispatch, the algorithms, serialisation and the
renderers all get exercised together.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.gantt import render_gantt, render_schedule_summary
from repro.exceptions import ReproError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.io import instance_from_dict, instance_to_dict, schedule_from_dict, schedule_to_dict
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    identical_instance,
    unit_uniform_instance,
)
from repro.engine import available_algorithms, solve

F = Fraction

# methods that deliberately ignore the incompatibility graph
GRAPH_BLIND = {"lpt", "lst"}
# guarantee factor vs optimum (None = no bound / not checked here)
GUARANTEES = {
    "brute_force": 1,
    "q2_unit_exact": 1,
    "complete_multipartite": 1,
    "dual_approx": F(4, 3),
    "r2_two_approx": 2,
    "r2_fptas": F(11, 10),
    "q2_fptas": F(11, 10),
    "bjw": 2,
}


def _corpus():
    rng = np.random.default_rng(99)
    out = []
    out.append(("empty-P", identical_instance(generators.empty_graph(6), [4, 3, 3, 2, 2, 1], 3)))
    out.append(("matching-Q", unit_uniform_instance(generators.matching_graph(3), [F(2), F(1), F(1)])))
    out.append(("K23-Q", unit_uniform_instance(generators.complete_bipartite(2, 3), [F(3), F(1), F(1)])))
    out.append(("crown-Q2", unit_uniform_instance(generators.crown(3), [F(2), F(1)])))
    out.append(("path-P", identical_instance(generators.path_graph(6), [3, 1, 4, 1, 5, 2], 3)))
    gil = gnnp(4, 0.3, seed=4)
    out.append(("gilbert-Q", UniformInstance(gil, [int(x) for x in rng.integers(1, 6, size=gil.n)], [F(3), F(2), F(1)])))
    g2 = generators.matching_graph(3)
    out.append(("matching-R2", UnrelatedInstance(g2, rng.integers(1, 12, size=(2, g2.n)).tolist())))
    g3 = generators.empty_graph(5)
    out.append(("empty-R3", UnrelatedInstance(g3, rng.integers(1, 12, size=(3, g3.n)).tolist())))
    return out


CORPUS = _corpus()


@pytest.mark.parametrize("name,inst", CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_all_applicable_algorithms(name, inst):
    opt = brute_force_makespan(inst)
    for spec in available_algorithms(inst):
        try:
            schedule = solve(inst, algorithm=spec.name)
        except ReproError:
            # methods without completeness (greedy, color splits) may
            # legitimately fail on some corpus members
            assert spec.name in {"greedy", "r_color_split", "two_machine_split"}
            continue
        if spec.name not in GRAPH_BLIND:
            assert schedule.is_feasible(), f"{spec.name} on {name}"
            assert schedule.makespan >= opt - 0  # optimum is a true lower bound
        factor = GUARANTEES.get(spec.name)
        if factor is not None and spec.name not in GRAPH_BLIND:
            assert (
                schedule.makespan <= factor * opt
            ), f"{spec.name} exceeded its {factor}x guarantee on {name}"


@pytest.mark.parametrize("name,inst", CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_auto_dispatch_feasible(name, inst):
    schedule = solve(inst)
    assert schedule.is_feasible()
    # auto never does worse than 2x on this corpus (its methods are the
    # exact ones, the FPTAS, LPT-on-edgeless, or LST-on-edgeless)
    assert schedule.makespan <= 2 * brute_force_makespan(inst)


@pytest.mark.parametrize("name,inst", CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_serialisation_round_trip(name, inst):
    restored = instance_from_dict(instance_to_dict(inst))
    assert restored.n == inst.n and restored.m == inst.m
    # schedules survive the round trip with identical makespans
    schedule = solve(inst)
    data = schedule_to_dict(schedule)
    back = schedule_from_dict(data)
    assert back.makespan == schedule.makespan
    assert back.assignment == schedule.assignment


@pytest.mark.parametrize("name,inst", CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_renderers_accept_every_schedule(name, inst):
    schedule = solve(inst)
    gantt = render_gantt(schedule)
    summary = render_schedule_summary(schedule)
    assert "Cmax" in gantt and "machine" in summary
    # one bar per machine
    assert sum(1 for line in gantt.split("\n") if line.startswith("M")) == inst.m


def test_corpus_exact_methods_agree():
    """Where multiple exact methods apply, they agree with brute force."""
    inst = unit_uniform_instance(generators.complete_bipartite(2, 2), [F(2), F(1)])
    opt = brute_force_makespan(inst)
    assert solve(inst, algorithm="q2_unit_exact").makespan == opt
    assert solve(inst, algorithm="complete_multipartite").makespan == opt
    assert solve(inst).makespan == opt
