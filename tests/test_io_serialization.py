"""Tests for :mod:`repro.io` — lossless JSON round trips."""

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
    save_json,
    load_json,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.scheduling.schedule import Schedule

F = Fraction


class TestGraphRoundTrip:
    def test_simple(self):
        g = BipartiteGraph(4, [(0, 1), (2, 3)])
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_empty(self):
        g = generators.empty_graph(3)
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_zero_vertices(self):
        g = BipartiteGraph(0)
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_side_witness_preserved(self):
        g = BipartiteGraph.from_parts(2, 2, [(0, 0)])
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.side == g.side

    def test_json_serialisable(self):
        g = gnnp(10, 0.2, seed=1)
        text = json.dumps(graph_to_dict(g))
        assert graph_from_dict(json.loads(text)) == g

    def test_rejects_wrong_kind(self):
        data = graph_to_dict(BipartiteGraph(1))
        data["kind"] = "schedule"
        with pytest.raises(InvalidInstanceError):
            graph_from_dict(data)

    def test_rejects_future_format(self):
        data = graph_to_dict(BipartiteGraph(1))
        data["format"] = "repro/v99"
        with pytest.raises(InvalidInstanceError):
            graph_from_dict(data)


class TestInstanceRoundTrip:
    def test_uniform(self):
        g = generators.crown(3)
        inst = UniformInstance(g, [3, 1, 4, 1, 5, 9], [F(3), F(3, 2), F(1)])
        restored = instance_from_dict(instance_to_dict(inst))
        assert isinstance(restored, UniformInstance)
        assert restored.p == inst.p
        assert restored.speeds == inst.speeds
        assert restored.graph == inst.graph

    def test_uniform_exact_fractions(self):
        g = generators.empty_graph(1)
        inst = UniformInstance(g, [1], [F(1, 1_000_000_007)])
        restored = instance_from_dict(instance_to_dict(inst))
        assert restored.speeds == (F(1, 1_000_000_007),)

    def test_unrelated_with_forbidden(self):
        g = BipartiteGraph(2, [(0, 1)])
        inst = UnrelatedInstance(g, [[F(1, 3), None], [None, F(7, 2)]])
        restored = instance_from_dict(instance_to_dict(inst))
        assert isinstance(restored, UnrelatedInstance)
        assert restored.times == inst.times

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"kind": "mystery"})

    def test_non_dict_rejected(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict("not a dict")


class TestScheduleRoundTrip:
    def test_feasible_schedule(self):
        g = BipartiteGraph(2, [(0, 1)])
        inst = UniformInstance(g, [2, 3], [F(2), F(1)])
        schedule = Schedule(inst, [0, 1])
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored.assignment == schedule.assignment
        assert restored.makespan == schedule.makespan

    def test_infeasible_schedule_survives(self):
        g = BipartiteGraph(2, [(0, 1)])
        inst = UniformInstance(g, [2, 3], [F(2), F(1)])
        bad = Schedule(inst, [0, 0], check=False)
        data = schedule_to_dict(bad)
        assert data["feasible"] is False
        restored = schedule_from_dict(data)
        assert not restored.is_feasible()

    def test_check_flag_enforces(self):
        g = BipartiteGraph(2, [(0, 1)])
        inst = UniformInstance(g, [2, 3], [F(2), F(1)])
        data = schedule_to_dict(Schedule(inst, [0, 0], check=False))
        from repro.exceptions import InvalidScheduleError

        with pytest.raises(InvalidScheduleError):
            schedule_from_dict(data, check=True)


class TestFileHelpers:
    def test_save_and_load_instance(self, tmp_path):
        g = gnnp(6, 0.3, seed=7)
        inst = UniformInstance(g, [1] * g.n, [F(2), F(1)])
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        restored = load_instance(path)
        assert restored.graph == inst.graph
        assert restored.speeds == inst.speeds

    def test_save_json_returns_path(self, tmp_path):
        p = save_json({"format": "repro/v1", "kind": "graph", "n": 0,
                       "side": [], "edges": []}, tmp_path / "g.json")
        assert p.exists()
        assert load_json(p)["kind"] == "graph"


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(0, 15),
    p=st.floats(0.0, 1.0),
    seed=st.integers(0, 999),
)
def test_property_graph_round_trip(n, p, seed):
    g = gnnp(max(n, 1), p, seed=seed)
    assert graph_from_dict(json.loads(json.dumps(graph_to_dict(g)))) == g


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 9), min_size=1, max_size=8),
    num=st.integers(1, 50),
    den=st.integers(1, 50),
)
def test_property_uniform_round_trip(sizes, num, den):
    g = generators.empty_graph(len(sizes))
    inst = UniformInstance(g, sizes, [F(num, den)])
    restored = instance_from_dict(instance_to_dict(inst))
    assert restored.p == tuple(sizes)
    assert restored.speeds == (F(num, den),)
