"""Exhaustive verification of the Figure 1 forcing components (Lemmas 5-7).

For every proper coloring of a small gadget (plus anchor) we check the
lemma's disjunction *as stated in the paper*: counting, across the whole
component, how many vertices avoid the respective color sets.
"""

import itertools

import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.coloring import is_proper_coloring
from repro.hardness.gadgets import (
    attach_gadget,
    cheap_gadget_coloring,
    enumerate_proper_colorings,
    h1,
    h2,
    h3,
)


def count_avoiding(coloring, forbidden: set[int]) -> int:
    """Vertices whose color is outside ``forbidden``."""
    return sum(1 for c in coloring if c not in forbidden)


class TestConstruction:
    def test_h1_shape(self):
        g = h1(4)
        assert g.size == 4 and g.edges == ()
        assert g.anchor_links == (0, 1, 2, 3)

    def test_h2_shape(self):
        g = h2(2, 3)
        assert g.size == 5
        assert len(g.edges) == 6  # complete join C(2) x D(3)
        assert set(g.anchor_links) == set(g.layers["C"])

    def test_h3_shape(self):
        g = h3(1, 2, 3)
        assert g.size == 3 + 1 + 2 + 3
        # joins: A(3)xB(1) + B(1)xC(2) + C(2)xD(3) = 3 + 2 + 6
        assert len(g.edges) == 11
        assert set(g.anchor_links) == set(g.layers["B"])

    def test_sizes_validated(self):
        with pytest.raises(InvalidInstanceError):
            h1(0)
        with pytest.raises(InvalidInstanceError):
            h2(0, 1)
        with pytest.raises(InvalidInstanceError):
            h3(1, 0, 1)

    def test_gadgets_are_bipartite(self):
        for g in (h1(3), h2(2, 3), h3(2, 2, 2)):
            graph = g.as_graph_with_anchor()  # raises if an odd cycle existed
            assert graph.n == g.size + 1

    def test_vertex_accounting_theorem8(self):
        """n' = n + 48k^2n + 4kn + 2 for the paper's six components."""
        for k in (1, 2):
            for n in (3, 7):
                x, xp, xpp = 6 * k * k * n, k * n, 1
                total = 2 * h1(x).size + 2 * h2(xp, x).size + 2 * h3(xpp, xp, x).size
                assert total == 48 * k * k * n + 4 * k * n + 2


class TestLemma5:
    @pytest.mark.parametrize("x", [1, 2, 3])
    @pytest.mark.parametrize("colors", [2, 3])
    def test_all_colorings(self, x, colors):
        gadget = h1(x)
        graph = gadget.as_graph_with_anchor()
        anchor = gadget.size
        for coloring in enumerate_proper_colorings(graph, colors, {anchor: 0}):
            # v colored c1: at least x vertices avoid c1
            assert count_avoiding(coloring, {0}) >= x

    def test_lemma_not_vacuous(self):
        """With the anchor NOT colored c1 a cheap (all-c1) coloring exists."""
        gadget = h1(3)
        graph = gadget.as_graph_with_anchor()
        anchor = gadget.size
        found_cheap = any(
            count_avoiding(c, {0}) == 1  # only the anchor itself avoids c1
            for c in enumerate_proper_colorings(graph, 3, {anchor: 1})
        )
        assert found_cheap


class TestLemma6:
    @pytest.mark.parametrize("x_prime,x", [(1, 1), (1, 2), (2, 2), (2, 3)])
    @pytest.mark.parametrize("colors", [3, 4])
    def test_all_colorings(self, x_prime, x, colors):
        gadget = h2(x_prime, x)
        graph = gadget.as_graph_with_anchor()
        anchor = gadget.size
        for coloring in enumerate_proper_colorings(graph, colors, {anchor: 1}):
            case_b = count_avoiding(coloring, {0, 1}) >= x_prime
            case_c = count_avoiding(coloring, {0}) >= x
            assert case_b or case_c, coloring

    def test_cheap_coloring_when_anchor_c1(self):
        gadget = h2(2, 3)
        graph = gadget.as_graph_with_anchor()
        anchor = gadget.size
        # off-c1 cost can be as low as x' (only the C layer leaves c1:
        # the anchor itself holds c1 and D returns to c1)
        best = min(
            count_avoiding(c, {0})
            for c in enumerate_proper_colorings(graph, 3, {anchor: 0})
        )
        assert best == 2


class TestLemma7:
    @pytest.mark.parametrize(
        "sizes", [(1, 1, 1), (1, 2, 2), (2, 1, 2), (1, 1, 3), (2, 2, 2)]
    )
    @pytest.mark.parametrize("colors", [3, 4])
    def test_all_colorings(self, sizes, colors):
        x_dprime, x_prime, x = sizes
        gadget = h3(x_dprime, x_prime, x)
        graph = gadget.as_graph_with_anchor()
        anchor = gadget.size
        for coloring in enumerate_proper_colorings(graph, colors, {anchor: 2}):
            case_a = count_avoiding(coloring, {0, 1, 2}) >= x_dprime
            case_b = count_avoiding(coloring, {0, 1}) >= x_prime
            case_c = count_avoiding(coloring, {0}) >= x
            assert case_a or case_b or case_c, coloring

    @pytest.mark.parametrize("anchor_color", [0, 1])
    def test_cheap_coloring_other_anchor_colors(self, anchor_color):
        """When the anchor avoids c3 the gadget colors with only the C layer
        off {c1} beyond B and the anchor itself — the YES-case economy."""
        gadget = h3(1, 2, 2)
        graph = gadget.as_graph_with_anchor()
        anchor = gadget.size
        best = min(
            count_avoiding(c, {0})
            for c in enumerate_proper_colorings(graph, 3, {anchor: anchor_color})
        )
        # B(1) + C(2) leave c1 (plus the anchor itself when it isn't c1);
        # both size-x layers A and D stay on c1 — the YES-case economy
        anchor_off = 1 if anchor_color != 0 else 0
        assert best == anchor_off + 1 + 2


class TestAttachGadget:
    def test_attach_extends_graph(self):
        base = BipartiteGraph(3, [(0, 1)])
        extended, layers = attach_gadget(base, 2, h1(3))
        assert extended.n == 6
        assert all(extended.has_edge(2, v) for v in layers["layer"])

    def test_layers_translated(self):
        base = BipartiteGraph(2, [])
        extended, layers = attach_gadget(base, 0, h2(1, 2))
        assert min(v for verts in layers.values() for v in verts) == 2

    def test_anchor_range_checked(self):
        with pytest.raises(InvalidInstanceError):
            attach_gadget(BipartiteGraph(2, []), 5, h1(1))


class TestCheapColorings:
    def test_h1_valid(self):
        base = BipartiteGraph(1, [])
        extended, layers = attach_gadget(base, 0, h1(3))
        cheap = cheap_gadget_coloring("H1", layers, anchor_color=1)
        full = [1] + [cheap[v] for v in range(1, 4)]
        assert is_proper_coloring(extended, full)

    @pytest.mark.parametrize("anchor_color", [0, 2])
    def test_h2_valid(self, anchor_color):
        base = BipartiteGraph(1, [])
        extended, layers = attach_gadget(base, 0, h2(2, 3))
        cheap = cheap_gadget_coloring("H2", layers, anchor_color)
        full = [anchor_color] + [cheap[v] for v in range(1, extended.n)]
        assert is_proper_coloring(extended, full)

    @pytest.mark.parametrize("anchor_color", [0, 1])
    def test_h3_valid(self, anchor_color):
        base = BipartiteGraph(1, [])
        extended, layers = attach_gadget(base, 0, h3(1, 2, 3))
        cheap = cheap_gadget_coloring("H3", layers, anchor_color)
        full = [anchor_color] + [cheap[v] for v in range(1, extended.n)]
        assert is_proper_coloring(extended, full)

    def test_punished_color_raises(self):
        _, layers1 = attach_gadget(BipartiteGraph(1, []), 0, h1(2))
        with pytest.raises(InvalidInstanceError):
            cheap_gadget_coloring("H1", layers1, 0)
        _, layers2 = attach_gadget(BipartiteGraph(1, []), 0, h2(1, 1))
        with pytest.raises(InvalidInstanceError):
            cheap_gadget_coloring("H2", layers2, 1)
        _, layers3 = attach_gadget(BipartiteGraph(1, []), 0, h3(1, 1, 1))
        with pytest.raises(InvalidInstanceError):
            cheap_gadget_coloring("H3", layers3, 2)

    def test_unknown_kind(self):
        with pytest.raises(InvalidInstanceError):
            cheap_gadget_coloring("H9", {}, 0)


class TestEnumerator:
    def test_counts_path_colorings(self):
        g = BipartiteGraph(3, [(0, 1), (1, 2)])
        # 3 colors on P3: 3 * 2 * 2 = 12
        assert sum(1 for _ in enumerate_proper_colorings(g, 3)) == 12

    def test_fixed_respected(self):
        g = BipartiteGraph(2, [(0, 1)])
        cols = list(enumerate_proper_colorings(g, 2, {0: 1}))
        assert cols == [(1, 0)]

    def test_infeasible_fixed_yields_nothing(self):
        g = BipartiteGraph(2, [(0, 1)])
        assert list(enumerate_proper_colorings(g, 2, {0: 0, 1: 0})) == []

    def test_bad_fixed_rejected(self):
        g = BipartiteGraph(2, [])
        with pytest.raises(InvalidInstanceError):
            list(enumerate_proper_colorings(g, 2, {5: 0}))
