"""End-to-end coverage of the non-bipartite conflict-graph families.

One file walks the whole pipeline the refactor opened up: serialise a
complete-multipartite / block / eligibility-masked instance as a
``repro/v2`` payload, reload it, auto-dispatch through the engine
(explain mode included), race it through the portfolio, and audit the
result with :mod:`repro.certify` — plus the hardening tests that pin
malformed payloads to :exc:`~repro.exceptions.InvalidInstanceError`.
"""

from fractions import Fraction

import pytest

from repro.certify import audit_instance
from repro.engine import auto_choice, explain_dispatch, solve
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs import generators
from repro.graphs.conflict import BlockGraph, CompleteMultipartiteGraph
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    unit_uniform_instance,
)

F = Fraction


def _cmp_instance():
    graph = CompleteMultipartiteGraph.from_sizes([2, 2, 3], free=1)
    return unit_uniform_instance(graph, [F(3), F(2), F(1)])


def _block_instance():
    graph = BlockGraph.chain([3, 2, 3])
    return UniformInstance(graph, [2, 1, 3, 1, 2, 4], [F(2), F(1), F(1)])


def _masked_instance():
    graph = generators.matching_graph(2)
    return UniformInstance(
        graph,
        [2, 3, 1, 2],
        [F(2), F(1), F(1)],
        eligible=[[0, 1], None, [1, 2], None],
    )


class TestV2Serialization:
    def test_multipartite_roundtrip(self, tmp_path):
        inst = _cmp_instance()
        payload = instance_to_dict(inst)
        assert payload["format"] == "repro/v2"
        assert payload["graph"]["graph_kind"] == "complete_multipartite"
        path = save_instance(inst, tmp_path / "cmp.json")
        loaded = load_instance(path)
        assert isinstance(loaded.graph, CompleteMultipartiteGraph)
        assert loaded.graph == inst.graph
        assert loaded.p == inst.p and loaded.speeds == inst.speeds

    def test_block_roundtrip(self, tmp_path):
        inst = _block_instance()
        payload = instance_to_dict(inst)
        assert payload["graph"]["graph_kind"] == "block"
        loaded = load_instance(save_instance(inst, tmp_path / "blk.json"))
        assert isinstance(loaded.graph, BlockGraph)
        assert loaded.graph.blocks() == inst.graph.blocks()

    def test_eligibility_roundtrip(self):
        inst = _masked_instance()
        payload = instance_to_dict(inst)
        # bipartite graph but masks force the v2 envelope
        assert payload["format"] == "repro/v2"
        assert payload["graph"]["format"] == "repro/v1"
        assert payload["eligible"] == [[0, 1], None, [1, 2], None]
        loaded = instance_from_dict(payload)
        assert loaded.eligible == inst.eligible

    def test_full_eligibility_mask_normalises_away(self):
        inst = UniformInstance(
            generators.matching_graph(1),
            [1, 1],
            [F(1), F(1)],
            eligible=[[0, 1], None],
        )
        assert not inst.has_eligibility
        assert instance_to_dict(inst)["format"] == "repro/v1"

    def test_unrelated_on_block_graph(self):
        inst = UnrelatedInstance(
            BlockGraph(3, [[0, 1, 2]]), [[1, 2, 3], [3, 2, 1], [2, 2, 2]]
        )
        payload = instance_to_dict(inst)
        assert payload["format"] == "repro/v2"
        loaded = instance_from_dict(payload)
        assert loaded.times == inst.times

    def test_schedule_roundtrip_through_v2(self):
        inst = _block_instance()
        schedule = solve(inst)
        payload = schedule_to_dict(schedule)
        assert payload["format"] == "repro/v2"
        loaded = schedule_from_dict(payload, check=True)
        assert loaded.makespan == schedule.makespan

    def test_graph_roundtrip_preserves_parts(self):
        g = CompleteMultipartiteGraph(5, [[0, 4], [1, 3]])
        again = graph_from_dict(graph_to_dict(g))
        assert again.parts() == ((0, 4), (1, 3))
        assert again.free_vertices() == [2]


class TestMalformedPayloads:
    def test_unknown_graph_kind(self):
        with pytest.raises(InvalidInstanceError, match="unknown graph_kind"):
            graph_from_dict(
                {"format": "repro/v2", "kind": "graph",
                 "graph_kind": "hypercube", "n": 4}
            )

    def test_missing_parts_is_diagnostic(self):
        with pytest.raises(InvalidInstanceError, match="malformed"):
            graph_from_dict(
                {"format": "repro/v2", "kind": "graph",
                 "graph_kind": "complete_multipartite", "n": 4}
            )

    def test_non_numeric_blocks_is_diagnostic(self):
        with pytest.raises(InvalidInstanceError, match="malformed"):
            graph_from_dict(
                {"format": "repro/v2", "kind": "graph",
                 "graph_kind": "block", "n": 4, "blocks": [["a", "b"]]}
            )

    def test_invalid_parts_keep_their_own_diagnostic(self):
        with pytest.raises(InvalidInstanceError, match="appears in parts"):
            graph_from_dict(
                {"format": "repro/v2", "kind": "graph",
                 "graph_kind": "complete_multipartite", "n": 3,
                 "parts": [[0, 1], [1, 2]]}
            )

    def test_malformed_instance_payloads(self):
        base = instance_to_dict(_cmp_instance())
        broken = dict(base)
        del broken["p"]
        with pytest.raises(InvalidInstanceError, match="malformed"):
            instance_from_dict(broken)
        with pytest.raises(InvalidInstanceError, match="unknown instance kind"):
            instance_from_dict({"kind": "quantum_instance"})
        with pytest.raises(InvalidInstanceError, match="JSON object"):
            instance_from_dict([1, 2, 3])

    def test_malformed_eligible_payloads(self):
        base = instance_to_dict(_masked_instance())
        broken = dict(base)
        broken["eligible"] = "everyone"
        with pytest.raises(InvalidInstanceError, match="eligible"):
            instance_from_dict(broken)
        broken["eligible"] = [[0], None]  # wrong length
        with pytest.raises(InvalidInstanceError, match="masks"):
            instance_from_dict(broken)


class TestEngineEndToEnd:
    def test_multipartite_unit_dispatches_to_exact(self):
        inst = _cmp_instance()
        assert auto_choice(inst) == "complete_multipartite_min_time"
        schedule = solve(inst)
        assert schedule.is_feasible()

    def test_block_dispatches_to_color_split(self):
        inst = _block_instance()
        assert auto_choice(inst) == "conflict_color_split"
        assert solve(inst).is_feasible()

    def test_masked_dispatches_to_color_split(self):
        inst = _masked_instance()
        assert auto_choice(inst) == "conflict_color_split"
        schedule = solve(inst)
        assert schedule.is_feasible()
        for j, machine in enumerate(schedule.assignment):
            assert machine in inst.eligible_machines(j)

    def test_explain_mode_covers_new_families(self):
        report = explain_dispatch(_block_instance())
        assert report.chosen == "conflict_color_split"
        by_name = {e.name: e for e in report.entries}
        assert by_name["conflict_color_split"].chosen
        assert not by_name["sqrt_approx"].applicable
        assert "bipartite" in by_name["sqrt_approx"].why

    def test_explain_reports_infeasible_families(self):
        # one machine, conflicting jobs: dispatch itself is infeasible
        graph = BlockGraph.chain([3, 2])
        inst = unit_uniform_instance(graph, [F(1)])
        report = explain_dispatch(inst)
        assert report.chosen is None and report.error is not None

    def test_portfolio_races_new_families(self):
        from repro.engine import portfolio_solve

        result = portfolio_solve(_block_instance())
        assert result.schedule.is_feasible()
        assert result.chosen in {e.algorithm for e in result.entries}

    def test_infeasible_multipartite_raises(self):
        graph = CompleteMultipartiteGraph.from_sizes([1, 1, 1])
        inst = unit_uniform_instance(graph, [F(1), F(1)])
        with pytest.raises(InfeasibleInstanceError):
            solve(inst)

    def test_coloring_infeasibility_detected_at_run_time(self):
        # K_4 on two machines: the color split applies (m >= 2) but its
        # optimal coloring proves infeasibility when run
        graph = BlockGraph.chain([4, 3])
        inst = unit_uniform_instance(graph, [F(1), F(1)])
        with pytest.raises(InfeasibleInstanceError, match="4 machines"):
            solve(inst)


class TestCertifyEndToEnd:
    """A clean audit = no row with a violation status (violated /
    infeasible_output / crash); ``no_guarantee`` and declared heuristic
    give-ups (``error``) are reportable, not defects."""

    @staticmethod
    def _assert_clean(rows):
        from repro.certify import VIOLATION_STATUSES

        assert rows
        bad = [
            (row.algorithm, row.status, row.detail)
            for row in rows
            if row.status in VIOLATION_STATUSES
        ]
        assert not bad, bad

    def test_audit_multipartite_instance(self):
        rows = audit_instance("cmp", _cmp_instance(), oracle_max_n=8)
        self._assert_clean(rows)
        by_algorithm = {row.algorithm: row for row in rows}
        # the exact algorithm must be audited and hit the oracle exactly
        exact = by_algorithm["complete_multipartite_min_time"]
        assert exact.status == "ok" and exact.ratio == 1.0

    def test_audit_block_instance(self):
        rows = audit_instance("blk", _block_instance(), oracle_max_n=6)
        self._assert_clean(rows)
        by_algorithm = {row.algorithm: row for row in rows}
        split = by_algorithm["conflict_color_split"]
        assert split.status in ("ok", "ok_vs_bound", "no_guarantee")
        assert split.makespan is not None  # it did produce a schedule

    def test_audit_masked_instance(self):
        rows = audit_instance("masked", _masked_instance(), oracle_max_n=6)
        self._assert_clean(rows)
        assert "conflict_color_split" in {row.algorithm for row in rows}
