"""Tests for :mod:`repro.cli` — the ``python -m repro`` interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import load_instance


class TestInfo:
    def test_exit_code(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "sqrt_approx" in out
        assert "Algorithm 1" in out


class TestGenerate:
    def test_gnnp(self, tmp_path, capsys):
        out_path = tmp_path / "inst.json"
        code = main(
            [
                "generate", "--family", "gnnp", "--n", "8", "--p", "0.2",
                "--seed", "3", "--speeds", "2,1", "--out", str(out_path),
            ]
        )
        assert code == 0
        inst = load_instance(out_path)
        assert inst.n == 16  # gnnp(n, ...) has n vertices per side
        assert inst.m == 2

    def test_complete_bipartite_with_jobs(self, tmp_path):
        out_path = tmp_path / "kab.json"
        code = main(
            [
                "generate", "--family", "complete_bipartite", "--n", "2",
                "--b", "3", "--jobs", "5,4,3,2,1", "--speeds", "3,3/2,1",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        inst = load_instance(out_path)
        assert inst.n == 5
        assert inst.p == (5, 4, 3, 2, 1)
        from fractions import Fraction

        assert inst.speeds == (Fraction(3), Fraction(3, 2), Fraction(1))

    @pytest.mark.parametrize(
        "family,n",
        [("path", 6), ("crown", 3), ("matching", 4), ("tree", 9),
         ("empty", 5), ("star", 4), ("cycle", 6)],
    )
    def test_all_simple_families(self, tmp_path, family, n):
        out_path = tmp_path / f"{family}.json"
        assert main(
            ["generate", "--family", family, "--n", str(n), "--out", str(out_path)]
        ) == 0
        assert out_path.exists()

    def test_forest_and_degree_bounded(self, tmp_path):
        for extra, family in (
            (["--trees", "2"], "forest"),
            (["--b", "6", "--max-degree", "3"], "degree_bounded"),
        ):
            out_path = tmp_path / f"{family}.json"
            assert main(
                ["generate", "--family", family, "--n", "6", "--out", str(out_path)]
                + extra
            ) == 0

    def test_complete_multipartite_family(self, tmp_path):
        from repro.graphs.conflict import CompleteMultipartiteGraph

        out_path = tmp_path / "cmp.json"
        assert main(
            ["generate", "--family", "complete_multipartite",
             "--parts", "2,2,3", "--free", "1", "--speeds", "3,2,1",
             "--out", str(out_path)]
        ) == 0
        inst = load_instance(out_path)
        assert isinstance(inst.graph, CompleteMultipartiteGraph)
        assert inst.n == 8
        assert [len(p) for p in inst.graph.parts()] == [2, 2, 3]

    def test_block_family_chain_and_random(self, tmp_path):
        from repro.graphs.conflict import BlockGraph

        chained = tmp_path / "chain.json"
        assert main(
            ["generate", "--family", "block", "--blocks", "3,2,4",
             "--speeds", "2,1,1,1", "--out", str(chained)]
        ) == 0
        inst = load_instance(chained)
        assert isinstance(inst.graph, BlockGraph)
        assert inst.graph.blocks() == ((0, 1, 2), (2, 3), (3, 4, 5, 6))
        randomized = tmp_path / "rand.json"
        assert main(
            ["generate", "--family", "block", "--n", "10",
             "--max-block", "3", "--seed", "2", "--speeds", "2,1,1",
             "--out", str(randomized)]
        ) == 0
        inst = load_instance(randomized)
        assert inst.n == 10
        assert all(len(b) <= 3 for b in inst.graph.blocks())

    def test_eligibility_flag(self, tmp_path):
        out_path = tmp_path / "masked.json"
        assert main(
            ["generate", "--family", "matching", "--n", "3",
             "--speeds", "3,2,1,1", "--eligible-choices", "2",
             "--seed", "0", "--out", str(out_path)]
        ) == 0
        inst = load_instance(out_path)
        assert inst.has_eligibility
        assert all(
            mask is None or len(mask) == 2 for mask in inst.eligible
        )

    def test_eligibility_rejected_for_unrelated(self, tmp_path, capsys):
        code = main(
            ["generate", "--family", "matching", "--n", "3",
             "--kind", "unrelated", "--m", "2", "--eligible-choices", "2",
             "--out", str(tmp_path / "x.json")]
        )
        assert code != 0
        assert "eligib" in capsys.readouterr().err.lower()

    def test_unrelated_kind_with_model(self, tmp_path):
        from repro.scheduling.instance import UnrelatedInstance

        out_path = tmp_path / "r.json"
        code = main(
            [
                "generate", "--family", "crown", "--n", "3",
                "--kind", "unrelated", "--model", "two_value", "--m", "3",
                "--seed", "5", "--out", str(out_path),
            ]
        )
        assert code == 0
        inst = load_instance(out_path)
        assert isinstance(inst, UnrelatedInstance)
        assert inst.m == 3 and inst.n == 6

    def test_single_job_value_without_comma(self, tmp_path):
        """Regression: '--jobs 7' (no comma) must parse as a one-element
        integer list, not be rejected as an unknown profile."""
        out_path = tmp_path / "one.json"
        assert main(
            ["generate", "--family", "empty", "--n", "1", "--jobs", "7",
             "--out", str(out_path)]
        ) == 0
        assert load_instance(out_path).p == (7,)

    def test_named_jobs_profile(self, tmp_path):
        out_path = tmp_path / "heavy.json"
        assert main(
            ["generate", "--family", "empty", "--n", "5", "--jobs",
             "heavy_tailed", "--seed", "2", "--out", str(out_path)]
        ) == 0
        inst = load_instance(out_path)
        assert len(inst.p) == 5

    def test_malformed_speeds_is_a_diagnostic(self, tmp_path, capsys):
        """Regression: bad --speeds used to escape as a raw ValueError
        traceback instead of an 'error:' line and exit code 2."""
        code = main(
            ["generate", "--family", "path", "--n", "4", "--speeds", "fast,1",
             "--out", str(tmp_path / "x.json")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestSolve:
    @pytest.fixture
    def instance_path(self, tmp_path):
        out_path = tmp_path / "inst.json"
        main(
            [
                "generate", "--family", "matching", "--n", "3",
                "--speeds", "2,1", "--out", str(out_path),
            ]
        )
        return out_path

    def test_auto(self, instance_path, capsys):
        assert main(["solve", str(instance_path)]) == 0
        out = capsys.readouterr().out
        assert "Cmax" in out and "feasible=True" in out

    def test_explicit_algorithm(self, instance_path, capsys):
        assert main(["solve", str(instance_path), "--algorithm", "sqrt_approx"]) == 0

    def test_gantt_flag(self, instance_path, capsys):
        assert main(["solve", str(instance_path), "--gantt"]) == 0
        assert "Gantt chart" in capsys.readouterr().out

    def test_polish_flag(self, instance_path, capsys):
        assert main(
            ["solve", str(instance_path), "--algorithm", "two_machine_split",
             "--polish"]
        ) == 0
        out = capsys.readouterr().out
        assert "feasible=True" in out

    def test_schedule_output(self, instance_path, tmp_path, capsys):
        sched_path = tmp_path / "schedule.json"
        assert main(["solve", str(instance_path), "--out", str(sched_path)]) == 0
        data = json.loads(sched_path.read_text())
        assert data["kind"] == "schedule"
        assert data["feasible"] is True

    def test_unknown_algorithm_is_an_error(self, instance_path, capsys):
        assert main(["solve", str(instance_path), "--algorithm", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["solve", str(tmp_path / "missing.json")]) == 2


class TestStructure:
    def test_describes_complete_bipartite(self, tmp_path, capsys):
        out_path = tmp_path / "kab.json"
        main(
            [
                "generate", "--family", "complete_bipartite", "--n", "2",
                "--b", "2", "--out", str(out_path),
            ]
        )
        assert main(["structure", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "K_{2,2}" in out
        assert "uniform (Q)" in out
        assert "complete_multipartite" in out


class TestBatch:
    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro/batch-spec/v1",
                    "defaults": {"speeds": "2,1"},
                    "instances": [
                        {"family": "crown", "n": 4, "count": 3},
                        {"family": "gnnp", "n": 5, "p": 0.2, "seed": 9, "count": 2},
                    ],
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_runs_spec_and_writes_jsonl(self, spec_path, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(["batch", str(spec_path), "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "5 instances" in stdout
        assert "per-algorithm summary" in stdout
        from repro.io import read_jsonl

        records = read_jsonl(out)
        assert len(records) == 5
        assert all(r["kind"] == "batch_result" for r in records)
        # crown replicas are identical graphs: deduplicated, not re-solved
        assert sum(1 for r in records if r["cached"]) == 2

    def test_warm_cache_rerun_solves_nothing(self, spec_path, tmp_path, capsys):
        cache = tmp_path / "cache.jsonl"
        args = ["batch", str(spec_path), "--cache", str(cache), "--no-summary"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "(0 solved, 5 cached" in capsys.readouterr().out

    def test_workers_flag(self, spec_path, capsys):
        assert main(["batch", str(spec_path), "--workers", "2",
                     "--no-summary"]) == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_missing_spec_is_an_error(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_spec_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"instances": []}', encoding="utf-8")
        assert main(["batch", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_spec_json_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "trunc.json"
        bad.write_text('{"instances": [', encoding="utf-8")
        assert main(["batch", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_certify_flag_stores_certificates(self, spec_path, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        code = main(
            ["batch", str(spec_path), "--certify", "--no-summary",
             "--out", str(out)]
        )
        assert code == 0
        from repro.io import read_jsonl

        records = read_jsonl(out)
        assert records and all(
            r["certificate"] is not None and r["certificate"]["ok"]
            for r in records
        )


class TestCertify:
    def test_small_sweep_is_clean(self, capsys):
        code = main(
            ["certify", "--n", "4", "--seeds", "1", "--oracle-max-n", "8",
             "--algorithms", "sqrt_approx,r2_fptas,brute_force"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out
        assert "certification sweep clean" in out

    def test_unknown_algorithm_is_an_error_not_a_clean_sweep(self, capsys):
        code = main(["certify", "--n", "4", "--algorithms", "sqrtapprox_typo"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown algorithm" in err

    def test_single_instance_audit(self, tmp_path, capsys):
        """``certify --instance`` audits one saved instance — including
        the non-bipartite conflict families."""
        inst_path = tmp_path / "blk.json"
        assert main(
            ["generate", "--family", "block", "--blocks", "3,2",
             "--speeds", "2,1,1", "--out", str(inst_path)]
        ) == 0
        code = main(
            ["certify", "--instance", str(inst_path), "--oracle-max-n", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_writes_audit_jsonl(self, tmp_path, capsys):
        out = tmp_path / "audits.jsonl"
        code = main(
            ["certify", "--n", "4", "--seeds", "1", "--oracle-max-n", "8",
             "--algorithms", "sqrt_approx", "--out", str(out)]
        )
        assert code == 0
        from repro.io import read_jsonl

        rows = read_jsonl(out)
        assert rows and all(r["kind"] == "audit_row" for r in rows)
        assert all(r["algorithm"] == "sqrt_approx" for r in rows)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--family", "path"])

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "E999"]) == 1
        assert "no benchmark" in capsys.readouterr().out


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_version_matches_pyproject(self):
        """The importlib.metadata fallback must track pyproject.toml."""
        import re
        from pathlib import Path

        from repro import __version__

        pyproject = (
            Path(__file__).resolve().parents[1] / "pyproject.toml"
        ).read_text(encoding="utf-8")
        declared = re.search(r'^version = "([^"]+)"', pyproject, re.M).group(1)
        assert __version__ == declared


class TestSolveEngineFlags:
    @pytest.fixture()
    def instance_path(self, tmp_path):
        path = tmp_path / "crown.json"
        assert main(
            ["generate", "--family", "crown", "--n", "4", "--speeds", "3,1",
             "--out", str(path)]
        ) == 0
        return path

    def test_explain_prints_reasons(self, instance_path, capsys):
        capsys.readouterr()
        assert main(["solve", str(instance_path), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "dispatch: chose 'q2_unit_exact'" in out
        assert "requires unrelated machines" in out  # a rejection reason
        assert "Cmax" in out  # still solves after explaining

    def test_explain_infeasible_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "one_machine.json"
        assert main(
            ["generate", "--family", "crown", "--n", "3", "--speeds", "1",
             "--out", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["solve", str(path), "--explain"]) == 2
        captured = capsys.readouterr()
        assert "dispatch failed" in captured.out
        assert "two machines" in captured.err

    def test_portfolio_solves(self, instance_path, capsys):
        capsys.readouterr()
        assert main(["solve", str(instance_path), "--portfolio", "3"]) == 0
        out = capsys.readouterr().out
        assert "portfolio:" in out and "wins with" in out
        assert "feasible=True" in out

    def test_portfolio_rejects_named_algorithm(self, instance_path, capsys):
        """--portfolio must not silently drop an explicit --algorithm."""
        capsys.readouterr()
        code = main(
            ["solve", str(instance_path), "--algorithm", "greedy",
             "--portfolio", "3"]
        )
        assert code == 2
        assert "cannot honour --algorithm" in capsys.readouterr().err


class TestServe:
    def _request_line(self, request_id=1, **extra):
        import json

        from repro.graphs import generators
        from repro.io import instance_to_dict
        from repro.scheduling.instance import unit_uniform_instance
        from fractions import Fraction

        inst = unit_uniform_instance(
            generators.crown(4), [Fraction(3), Fraction(1)]
        )
        return json.dumps(
            {"op": "solve", "id": request_id, "instance": instance_to_dict(inst),
             **extra}
        )

    def test_stdin_one_shot(self, tmp_path, capsys, monkeypatch):
        import io
        import json

        lines = self._request_line(1) + "\n" + self._request_line(2) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        code = main(["serve", "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["cached"] for r in responses] == [False, True]
        assert responses[0]["makespan"] == responses[1]["makespan"]
        assert "1 solved, 1 cached" in captured.err

    def test_max_requests_limits_the_stream(self, capsys, monkeypatch):
        import io
        import json

        lines = "\n".join(self._request_line(i) for i in range(5)) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve", "--max-requests", "2"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 2
        assert json.loads(captured.out.splitlines()[1])["cached"] is True

    def test_request_errors_set_the_exit_code(self, capsys, monkeypatch):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO("garbage\n"))
        assert main(["serve"]) == 1
        captured = capsys.readouterr()
        assert json.loads(captured.out)["ok"] is False
        assert "1 errors" in captured.err

    def test_max_requests_counts_requests_not_lines(self, capsys, monkeypatch):
        import io

        # blank lines are skipped without answering and must not eat
        # request slots (the TCP path counts answered requests too)
        lines = "\n\n" + self._request_line(1) + "\n\n" + self._request_line(2) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve", "--max-requests", "2"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 2

    def test_summary_reports_serving_counters(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(self._request_line() + "\n"))
        assert main(["serve"]) == 0
        err = capsys.readouterr().err
        assert "0 coalesced, 0 rejected" in err

    def _serve_tcp_one_shot(self, argv, requests):
        """Run `repro serve` in a thread, drive it over TCP, return responses."""
        import io
        import json
        import re
        import socket
        import sys
        import threading
        import time

        stderr = io.StringIO()
        codes = []

        def run():
            real = sys.stderr
            sys.stderr = stderr
            try:
                codes.append(main(argv))
            finally:
                sys.stderr = real

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        match = None
        while match is None:
            assert time.monotonic() < deadline, stderr.getvalue()
            time.sleep(0.02)
            match = re.search(r"serving on ([\d.]+):(\d+)", stderr.getvalue())
        host, port = match.group(1), int(match.group(2))
        responses = []
        with socket.create_connection((host, port), timeout=30) as conn:
            with conn.makefile("rw", encoding="utf-8") as stream:
                for line in requests:
                    stream.write(line + "\n")
                    stream.flush()
                    responses.append(json.loads(stream.readline()))
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert codes == [0], stderr.getvalue()
        return responses, stderr.getvalue()

    def test_tcp_default_is_the_async_tier(self):
        requests = [self._request_line(1), self._request_line(2)]
        responses, err = self._serve_tcp_one_shot(
            ["serve", "--port", "0", "--max-requests", "2",
             "--max-inflight", "4", "--max-queue", "8"],
            requests,
        )
        assert [r["format"] for r in responses] == ["repro/serve/v2"] * 2
        assert responses[0]["cached"] is False
        assert responses[1]["cached"] is True
        assert "1 solved, 1 cached" in err

    def test_tcp_sync_flag_keeps_the_sequential_tier(self):
        responses, err = self._serve_tcp_one_shot(
            ["serve", "--port", "0", "--max-requests", "1", "--sync"],
            [self._request_line(1)],
        )
        assert responses[0]["format"] == "repro/serve/v1"
        assert responses[0]["ok"] is True
        assert "1 solved" in err

    def test_stats_interval_flag_logs_metrics(self):
        import io
        import json
        import re
        import socket
        import sys
        import threading
        import time

        stderr = io.StringIO()
        codes = []

        def run():
            real = sys.stderr
            sys.stderr = stderr
            try:
                codes.append(
                    main(["serve", "--port", "0", "--max-requests", "2",
                          "--stats-interval", "0.05"])
                )
            finally:
                sys.stderr = real

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        match = None
        while match is None:
            assert time.monotonic() < deadline, stderr.getvalue()
            time.sleep(0.02)
            match = re.search(r"serving on ([\d.]+):(\d+)", stderr.getvalue())
        host, port = match.group(1), int(match.group(2))
        with socket.create_connection((host, port), timeout=30) as conn:
            with conn.makefile("rw", encoding="utf-8") as stream:
                stream.write(self._request_line(1) + "\n")
                stream.flush()
                first = json.loads(stream.readline())
                time.sleep(0.25)  # let a few stats intervals fire
                stream.write('{"op": "ping"}\n')
                stream.flush()
                second = json.loads(stream.readline())
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert codes == [0]
        assert first["ok"] and second["ok"]
        err = stderr.getvalue()
        assert "serve[stats]" in err and "qps=" in err and "p50=" in err
