"""Tests for :mod:`repro.analysis.speed_probe` (Section 6 open problem)."""

from fractions import Fraction

import pytest

from repro.analysis.speed_probe import (
    worst_ratio_exhaustive,
    worst_ratio_sampled,
)
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.exceptions import InvalidInstanceError
from repro.scheduling.brute_force import brute_force_optimal
from repro.engine import solve

F = Fraction


def _alg1(instance):
    return sqrt_approx_schedule(instance, s1_solver="two_approx").schedule


class TestExhaustiveProbe:
    def test_brute_force_has_ratio_one(self):
        result = worst_ratio_exhaustive(
            [F(2), F(1)], left=2, right=2, algorithm=brute_force_optimal
        )
        assert result.ratio == 1
        assert result.instances_tried == 2 ** 4

    def test_algorithm1_ratio_at_least_one(self):
        result = worst_ratio_exhaustive(
            [F(2), F(1), F(1)], left=2, right=2, algorithm=_alg1
        )
        assert result.ratio >= 1
        assert result.witness is not None
        assert result.witness_makespan >= result.witness_optimum

    def test_witness_reproduces_ratio(self):
        result = worst_ratio_exhaustive(
            [F(3), F(1)], left=2, right=2, algorithm=_alg1
        )
        again = _alg1(result.witness)
        assert again.makespan / result.witness_optimum == result.ratio

    def test_too_large_rejected(self):
        with pytest.raises(InvalidInstanceError):
            worst_ratio_exhaustive([F(1)], left=5, right=5, algorithm=_alg1)

    def test_identical_speeds_ratio_below_two(self):
        """[3]: equal speeds admit ratio exactly 2; at this tiny size the
        probe must stay at or below that envelope for the dispatcher."""
        result = worst_ratio_exhaustive(
            [F(1), F(1), F(1)], left=2, right=2, algorithm=solve
        )
        assert result.ratio <= 2


class TestSampledProbe:
    def test_reproducible(self):
        kwargs = dict(
            speeds=[F(2), F(1)], n_side=4, algorithm=_alg1, samples=10, seed=11
        )
        a = worst_ratio_sampled(**kwargs)
        b = worst_ratio_sampled(**kwargs)
        assert a.ratio == b.ratio
        assert a.instances_tried == b.instances_tried

    def test_fixed_probability(self):
        result = worst_ratio_sampled(
            [F(2), F(1), F(1)],
            n_side=4,
            algorithm=_alg1,
            samples=8,
            edge_probability=0.3,
            seed=3,
        )
        assert result.ratio >= 1
        assert result.instances_tried == 8

    def test_weighted_jobs(self):
        result = worst_ratio_sampled(
            [F(2), F(1)], n_side=3, algorithm=_alg1, samples=8, max_p=5, seed=7
        )
        assert result.ratio >= 1
        assert result.witness is not None
        assert max(result.witness.p) <= 5

    def test_dispatcher_is_probeable(self):
        result = worst_ratio_sampled(
            [F(3), F(2), F(1)], n_side=4, algorithm=solve, samples=10, seed=5
        )
        # auto dispatch picks exact methods for many of these unit
        # instances, so the measured worst case stays modest
        assert 1 <= result.ratio <= 2
