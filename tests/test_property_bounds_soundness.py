"""Cross-module property tests: every lower bound is a true lower bound.

The experiment tables divide measured makespans by ``C**max`` and
friends; those ratios are only meaningful if the bounds never exceed
the real optimum.  These properties pin that soundness on random
instances, against the brute-force oracle.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.bounds import (
    area_lower_bound,
    min_cover_time,
    pmax_lower_bound,
    uniform_capacity_lower_bound,
    unrelated_lower_bound,
)
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.graphs.matching import maximum_matching_size

F = Fraction


def _uniform_instance(n_half, m, seed, p_edge=0.3, p_max=6):
    rng = np.random.default_rng(seed)
    graph = gnnp(n_half, p_edge, seed=rng)
    p = [int(x) for x in rng.integers(1, p_max + 1, size=graph.n)]
    speeds = sorted((F(int(x)) for x in rng.integers(1, 5, size=m)), reverse=True)
    return UniformInstance(graph, p, speeds)


@settings(max_examples=40, deadline=None)
@given(n_half=st.integers(1, 4), m=st.integers(2, 4), seed=st.integers(0, 5000))
def test_capacity_bound_below_optimum(n_half, m, seed):
    inst = _uniform_instance(n_half, m, seed)
    opt = brute_force_makespan(inst)
    assert uniform_capacity_lower_bound(inst) <= opt
    assert area_lower_bound(inst) <= opt
    assert pmax_lower_bound(inst) <= opt


@settings(max_examples=40, deadline=None)
@given(n_half=st.integers(1, 4), m=st.integers(2, 4), seed=st.integers(0, 5000))
def test_capacity_bound_with_matching_demand(n_half, m, seed):
    """Algorithm 1's second condition: at least mu(G) jobs must leave
    machine 1 in any schedule (one machine holds an independent set, and
    alpha = n - mu), so C** with that off-machine demand stays sound."""
    inst = _uniform_instance(n_half, m, seed)
    mu = maximum_matching_size(inst.graph)
    if mu == 0:
        return
    # the weight that must leave M1 is at least the mu lightest jobs
    lightest = sorted(inst.p)[:mu]
    bound = uniform_capacity_lower_bound(inst, sum(lightest))
    assert bound <= brute_force_makespan(inst)


@settings(max_examples=50, deadline=None)
@given(
    demand=st.integers(0, 60),
    speed_ints=st.lists(st.integers(1, 9), min_size=1, max_size=5),
)
def test_min_cover_time_is_exact_threshold(demand, speed_ints):
    """min_cover_time returns the *least* T with capacity(T) >= demand:
    capacity holds at T and fails just below it."""
    speeds = [F(s) for s in speed_ints]
    t = min_cover_time(speeds, demand)
    capacity = sum((s * t).__floor__() for s in speeds)
    assert capacity >= demand
    if t > 0:
        just_below = t * F(999, 1000)
        capacity_below = sum((s * just_below).__floor__() for s in speeds)
        assert capacity_below < demand


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 7), m=st.integers(1, 3), seed=st.integers(0, 5000))
def test_unrelated_bound_below_optimum(n, m, seed):
    rng = np.random.default_rng(seed)
    graph = generators.empty_graph(n)
    times = rng.integers(1, 15, size=(m, n)).tolist()
    inst = UnrelatedInstance(graph, times)
    assert unrelated_lower_bound(inst) <= brute_force_makespan(inst)


@settings(max_examples=30, deadline=None)
@given(
    demand=st.integers(1, 40),
    extra=st.integers(1, 20),
    speed_ints=st.lists(st.integers(1, 6), min_size=1, max_size=4),
)
def test_min_cover_time_is_monotone_in_demand(demand, extra, speed_ints):
    speeds = [F(s) for s in speed_ints]
    assert min_cover_time(speeds, demand) <= min_cover_time(speeds, demand + extra)
