"""Tests for the branch-and-bound exact solver."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import BoundExcludedError, InfeasibleInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite, matching_graph, path_graph
from repro.scheduling.brute_force import brute_force_makespan, brute_force_optimal
from repro.scheduling.instance import UniformInstance, UnrelatedInstance

from tests.conftest import random_uniform_instance


def exhaustive_makespan(instance) -> Fraction | None:
    """Plain enumeration ground truth (no pruning)."""
    import itertools

    best = None
    for assign in itertools.product(range(instance.m), repeat=instance.n):
        groups = {}
        ok = True
        for j, i in enumerate(assign):
            if instance.processing_time(i, j) is None:
                ok = False
                break
            groups.setdefault(i, []).append(j)
        if not ok:
            continue
        for i, jobs in groups.items():
            if not instance.graph.is_independent_set(jobs):
                ok = False
                break
        if not ok:
            continue
        span = max(
            (instance.machine_completion(i, jobs) for i, jobs in groups.items()),
            default=Fraction(0),
        )
        if best is None or span < best:
            best = span
    return best


class TestKnownOptima:
    def test_two_incompatible_jobs(self):
        inst = UniformInstance(matching_graph(1), [4, 4], [1, 1])
        assert brute_force_makespan(inst) == 4

    def test_speed_matters(self):
        inst = UniformInstance(matching_graph(1), [4, 4], [4, 1])
        # best: big job... both size 4; fast machine does one in 1, slow in 4
        assert brute_force_makespan(inst) == 4

    def test_k22_on_two_machines(self):
        inst = UniformInstance(complete_bipartite(2, 2), [1, 1, 1, 1], [1, 1])
        assert brute_force_makespan(inst) == 2

    def test_empty_instance(self):
        inst = UniformInstance(BipartiteGraph(0, []), [], [1])
        assert brute_force_makespan(inst) == 0

    def test_infeasible_raises(self):
        inst = UniformInstance(matching_graph(1), [1, 1], [1])
        with pytest.raises(InfeasibleInstanceError):
            brute_force_optimal(inst)

    def test_unrelated_with_forbidden(self):
        g = BipartiteGraph(2, [])
        inst = UnrelatedInstance(g, [[1, None], [5, 2]])
        assert brute_force_makespan(inst) == 2


class TestAgainstExhaustive:
    def test_uniform_instances(self):
        rng = np.random.default_rng(30)
        for _ in range(15):
            inst = random_uniform_instance(rng, max_jobs=6, max_machines=3)
            assert brute_force_makespan(inst) == exhaustive_makespan(inst)

    def test_unrelated_instances(self):
        rng = np.random.default_rng(31)
        for _ in range(10):
            n = int(rng.integers(1, 6))
            half = max(1, n // 2)
            edges = [
                (i, j)
                for i in range(half)
                for j in range(n - half)
                if rng.random() < 0.4
            ] if n - half > 0 else []
            g = BipartiteGraph.from_parts(half, n - half, edges) if n - half > 0 else BipartiteGraph(half, [])
            m = int(rng.integers(2, 4))
            times = [[int(x) for x in rng.integers(1, 10, g.n)] for _ in range(m)]
            inst = UnrelatedInstance(g, times)
            assert brute_force_makespan(inst) == exhaustive_makespan(inst)


class TestUpperBoundSeeding:
    def test_tight_bound_prunes_everything(self):
        inst = UniformInstance(matching_graph(1), [4, 4], [1, 1])
        with pytest.raises(InfeasibleInstanceError):
            brute_force_optimal(inst, upper_bound=Fraction(4))  # optimum not < 4

    def test_bound_excluded_is_distinguishable(self):
        """A seeded bound that excludes everything must NOT read as
        'instance infeasible' — the feasible optimum merely failed to
        beat the seed."""
        inst = UniformInstance(matching_graph(1), [4, 4], [1, 1])
        with pytest.raises(BoundExcludedError):
            brute_force_optimal(inst, upper_bound=Fraction(4))
        # a genuinely infeasible instance raises the plain error, never
        # the bound-excluded subclass
        single = UniformInstance(matching_graph(1), [4, 4], [1])
        with pytest.raises(InfeasibleInstanceError) as excinfo:
            brute_force_optimal(single)
        assert not isinstance(excinfo.value, BoundExcludedError)

    def test_loose_bound_keeps_optimum(self):
        inst = UniformInstance(matching_graph(1), [4, 4], [1, 1])
        s = brute_force_optimal(inst, upper_bound=Fraction(100))
        assert s.makespan == 4

    def test_symmetry_pruning_consistent(self):
        # many identical machines: symmetry dedup must not change the result
        inst = UniformInstance(path_graph(4), [3, 1, 4, 1], [1] * 4)
        assert brute_force_makespan(inst) == exhaustive_makespan(inst)
