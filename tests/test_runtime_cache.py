"""Persistence edge cases for :class:`repro.runtime.cache.ResultCache`
and the certify-aware task keys."""

import json

import pytest

from repro.exceptions import CacheCollisionError
from repro.graphs.generators import path_graph
from repro.io import instance_to_dict
from repro.runtime.cache import ResultCache, task_key
from repro.scheduling.instance import identical_instance


def _payload():
    return instance_to_dict(identical_instance(path_graph(4), [1, 2, 3, 1], 2))


class TestCollisionDetection:
    def test_identical_re_put_is_noop(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        record = {"key": "k1", "makespan": "3/2"}
        cache.put("k1", record)
        cache.put("k1", {"key": "k1", "makespan": "3/2"})
        assert len(cache) == 1
        # the file must not grow a duplicate line either
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len([ln for ln in lines if ln.strip()]) == 1

    def test_differing_record_raises(self):
        cache = ResultCache()
        cache.put("k1", {"key": "k1", "makespan": "3/2"})
        with pytest.raises(CacheCollisionError):
            cache.put("k1", {"key": "k1", "makespan": "2"})
        # the original record survives
        assert cache.record("k1")["makespan"] == "3/2"


class TestPersistenceRecovery:
    def test_truncated_tail_recovers_prior_records(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("k1", {"key": "k1", "makespan": "2"})
        cache.put("k2", {"key": "k2", "makespan": "5"})
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "k3", "makespan": "7')  # killed mid-append
        reloaded = ResultCache(path)
        assert "k1" in reloaded and "k2" in reloaded
        assert "k3" not in reloaded
        # the recovered cache keeps appending cleanly after the bad tail
        reloaded.put("k4", {"key": "k4", "makespan": "9"})
        again = ResultCache(path)
        assert "k4" in again

    def test_binary_garbage_tail(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put("k1", {"key": "k1"})
        with path.open("ab") as fh:
            fh.write(b"\x00\xff\x00 not json at all\n")
        reloaded = ResultCache(path)
        assert "k1" in reloaded and len(reloaded) == 1

    def test_duplicate_keys_across_file_last_wins(self, tmp_path):
        # a file produced by two appending runs may repeat a key; the
        # loader must deterministically keep the newest record
        path = tmp_path / "cache.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"key": "k1", "makespan": "2"}) + "\n")
            fh.write(json.dumps({"key": "k1", "makespan": "3"}) + "\n")
        cache = ResultCache(path)
        assert len(cache) == 1
        assert cache.record("k1")["makespan"] == "3"

    def test_non_dict_and_keyless_lines_skipped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            fh.write('["a", "list"]\n')
            fh.write('{"no_key_field": 1}\n')
            fh.write('{"key": 42}\n')  # non-string key
            fh.write(json.dumps({"key": "good", "makespan": "1"}) + "\n")
        cache = ResultCache(path)
        assert len(cache) == 1 and "good" in cache


class TestVersionIsolation:
    def test_version_mismatch_never_answers_across_releases(
        self, monkeypatch, tmp_path
    ):
        """A cache written by release A must miss under release B."""
        import repro

        payload = _payload()
        path = tmp_path / "cache.jsonl"
        key_a = task_key(payload, "auto")
        cache = ResultCache(path)
        cache.put(key_a, {"key": key_a, "makespan": "4"})

        monkeypatch.setattr(repro, "__version__", "999.0.0")
        key_b = task_key(payload, "auto")
        assert key_b != key_a
        reloaded = ResultCache(path)
        # the old record is still *stored* but unreachable via fresh keys
        assert key_a in reloaded and key_b not in reloaded


class TestCertifyKeys:
    def test_certify_changes_the_key(self):
        payload = _payload()
        assert task_key(payload, "auto") != task_key(
            payload, "auto", certify=True
        )

    def test_non_certify_key_is_stable_against_flag_default(self):
        payload = _payload()
        assert task_key(payload, "auto") == task_key(
            payload, "auto", certify=False
        )
