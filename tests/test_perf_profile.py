"""cProfile top-N extraction as structured data."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidInstanceError
from repro.perf import profile_top


def _workload():
    return sum(i * i for i in range(5000))


def test_profile_top_returns_structured_hotspots():
    report = profile_top(_workload, top=5)
    assert report.value == _workload()
    assert report.label == "_workload"
    assert 1 <= len(report.lines) <= 5
    assert report.total_time_s >= 0.0
    # the profiled workload itself must appear among the hotspots
    assert any("_workload" in line.function for line in report.lines)
    # sorted by cumulative time, descending
    cums = [line.cumtime_s for line in report.lines]
    assert cums == sorted(cums, reverse=True)


def test_profile_top_forwards_arguments():
    report = profile_top(sorted, [3, 1, 2], top=3, label="sort3")
    assert report.value == [1, 2, 3]
    assert report.label == "sort3"


def test_profile_top_table_renders():
    report = profile_top(_workload, top=3)
    text = report.table()
    assert "cumtime (ms)" in text
    assert "_workload" in text


def test_profile_top_rejects_bad_top():
    with pytest.raises(InvalidInstanceError):
        profile_top(_workload, top=0)
