"""Perf-trajectory aggregation over BENCH artifacts."""

from __future__ import annotations

import pytest

from repro.analysis.perf_trend import (
    load_bench_records,
    perf_trend_rows,
    perf_trend_table,
    phase_table,
)
from repro.exceptions import BenchSchemaError
from repro.io import save_json
from repro.perf import BenchPhase, BenchRecord, write_bench_record


def _record(experiment: str, wall: float) -> BenchRecord:
    return BenchRecord.build(
        experiment,
        ["case", "time (ms)"],
        [["a", wall * 1e3]],
        phases=[
            BenchPhase("solve", wall, repeat=3, size={"n": 8}),
            BenchPhase("audit", wall / 2, repeat=3),
        ],
        git_rev="abc1234",
        timestamp="2026-07-28T00:00:00Z",
    )


def test_load_bench_records_validates_and_orders(tmp_path):
    write_bench_record(_record("E2_x", 0.5), tmp_path)
    write_bench_record(_record("E10_y", 0.25), tmp_path)
    records = load_bench_records(tmp_path)
    assert [r["experiment_id"] for r in records] == ["E10_y", "E2_x"]  # filename order


def test_load_bench_records_trajectory_keeps_every_run(tmp_path):
    write_bench_record(_record("E2_x", 0.5), tmp_path)
    write_bench_record(_record("E2_x", 0.4), tmp_path)  # same id, newer run
    assert len(load_bench_records(tmp_path)) == 1
    assert len(load_bench_records(tmp_path, trajectory=True)) == 2
    assert load_bench_records(tmp_path / "missing", trajectory=True) == []


def test_load_bench_records_rejects_invalid_artifact(tmp_path):
    save_json({"format": "wrong"}, tmp_path / "BENCH_bad.json")
    with pytest.raises(BenchSchemaError):
        load_bench_records(tmp_path)


def test_perf_trend_rows_summarise_phases():
    rows = perf_trend_rows([_record("E2_x", 0.5).to_dict()])
    assert rows == [
        ["E2_x", "abc1234", "2026-07-28T00:00:00Z", 1, 2, pytest.approx(750.0)]
    ]


def test_perf_trend_rows_without_phases_is_nan():
    record = BenchRecord.build(
        "E3_none", ["a"], [[1]], git_rev="r", timestamp="t"
    )
    (row,) = perf_trend_rows([record.to_dict()])
    assert row[4] == 0
    assert row[5] != row[5]  # NaN


def test_tables_render(tmp_path):
    records = [_record("E2_x", 0.5).to_dict(), _record("E10_y", 0.25).to_dict()]
    trend = perf_trend_table(records)
    assert "perf trajectory" in trend and "E10_y" in trend
    phases = phase_table(records)
    assert "solve" in phases and "n=8" in phases and "E2_x" in phases
