"""Tests for :mod:`repro.graphs.conflict` — the generalized graph model.

Covers the :class:`ConflictGraph` adjacency API, the
:class:`CompleteMultipartiteGraph` and :class:`BlockGraph`
representations, biconnected components, and (via Hypothesis) the
structural classification of :mod:`repro.graphs.structure`:
each family is recognised from adjacency alone, and the verdict is
stable under vertex relabeling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.conflict import (
    BlockGraph,
    CompleteMultipartiteGraph,
    ConflictGraph,
    biconnected_components,
)
from repro.graphs.structure import (
    analyze_structure,
    classify_conflict_graph,
    is_bipartite_structure,
    is_block_structure,
    multipartite_decomposition,
)


class TestConflictGraphBase:
    def test_bipartite_is_a_conflict_graph(self):
        graph = generators.crown(3)
        assert isinstance(graph, ConflictGraph)
        assert graph.family == "bipartite"

    def test_generic_adjacency_api(self):
        g = CompleteMultipartiteGraph.from_sizes([2, 2])
        assert g.conflicts(0, 2) and g.has_edge(2, 0)
        assert not g.conflicts(0, 1)  # same class
        assert g.degree(0) == 2 and g.max_degree() == 2
        assert g.edge_count == 4
        assert sorted(g.edges()) == [(0, 2), (0, 3), (1, 2), (1, 3)]
        assert g.is_independent_set([0, 1])
        assert not g.is_independent_set([0, 2])
        assert g.closed_neighborhood([0]) == {0, 2, 3}

    def test_equality_is_adjacency_not_representation(self):
        """K_{2,2} stored bipartite and multipartite compare equal."""
        as_bipartite = generators.complete_bipartite(2, 2)
        as_multipartite = CompleteMultipartiteGraph.from_sizes([2, 2])
        assert as_bipartite == as_multipartite
        assert hash(as_bipartite) == hash(as_multipartite)
        assert as_multipartite != CompleteMultipartiteGraph.from_sizes([2, 2], free=1)


class TestCompleteMultipartiteGraph:
    def test_from_sizes_layout(self):
        g = CompleteMultipartiteGraph.from_sizes([2, 3], free=1)
        assert g.n == 6
        assert g.parts() == ((0, 1), (2, 3, 4))
        assert g.free_vertices() == [5]
        assert g.isolated_vertices() == [5]
        assert g.neighbors(5) == frozenset()
        assert g.neighbors(0) == frozenset({2, 3, 4})

    def test_explicit_parts_need_not_be_contiguous(self):
        g = CompleteMultipartiteGraph(4, [[0, 3], [1, 2]])
        assert g.conflicts(0, 1) and g.conflicts(3, 2)
        assert not g.conflicts(0, 3) and not g.conflicts(1, 2)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError, match="out of range"):
            CompleteMultipartiteGraph(3, [[0, 5]])
        with pytest.raises(InvalidInstanceError, match="empty"):
            CompleteMultipartiteGraph(3, [[0], []])
        with pytest.raises(InvalidInstanceError, match="repeats"):
            CompleteMultipartiteGraph(3, [[0, 0]])
        with pytest.raises(InvalidInstanceError, match="appears in parts"):
            CompleteMultipartiteGraph(3, [[0, 1], [1, 2]])
        with pytest.raises(InvalidInstanceError, match="positive"):
            CompleteMultipartiteGraph.from_sizes([2, 0])

    def test_relabeled_preserves_adjacency(self):
        g = CompleteMultipartiteGraph.from_sizes([1, 2], free=1)
        perm = [3, 0, 2, 1]
        h = g.relabeled(perm)
        for u in range(g.n):
            for v in range(g.n):
                assert g.conflicts(u, v) == h.conflicts(perm[u], perm[v])
        with pytest.raises(InvalidInstanceError, match="permutation"):
            g.relabeled([0, 0, 1, 2])


class TestBlockGraph:
    def test_chain_shares_cut_vertices(self):
        g = BlockGraph.chain([3, 2, 4])
        # K_3 on 0..2, edge 2-3, K_4 on 3..6
        assert g.n == 7
        assert g.blocks() == ((0, 1, 2), (2, 3), (3, 4, 5, 6))
        assert g.conflicts(0, 1) and g.conflicts(2, 3) and g.conflicts(4, 6)
        assert not g.conflicts(0, 3)
        assert g.edge_count == 3 + 1 + 6

    def test_disjoint_cliques_and_isolated_vertices(self):
        g = BlockGraph(5, [[0, 1, 2], [3]])
        assert g.neighbors(3) == frozenset()
        assert g.isolated_vertices() == [3, 4]
        assert is_block_structure(g)

    def test_overlapping_cliques_rejected(self):
        # two triangles sharing an edge form a non-clique diamond block
        with pytest.raises(InvalidInstanceError, match="cut"):
            BlockGraph(4, [[0, 1, 2], [1, 2, 3]])

    def test_relabeled_preserves_adjacency(self):
        g = BlockGraph.chain([3, 3])
        perm = [4, 2, 0, 1, 3]
        h = g.relabeled(perm)
        for u in range(g.n):
            for v in range(g.n):
                assert g.conflicts(u, v) == h.conflicts(perm[u], perm[v])


class TestBiconnectedComponents:
    def test_chain_blocks_recovered(self):
        g = BlockGraph.chain([3, 2, 4])
        assert biconnected_components(g) == [
            [0, 1, 2], [2, 3], [3, 4, 5, 6],
        ]

    def test_isolated_vertices_are_singleton_blocks(self):
        g = BlockGraph(3, [[0, 1]])
        assert biconnected_components(g) == [[0, 1], [2]]

    def test_cycle_is_one_block(self):
        # C_4 as a bipartite graph: one biconnected component, no clique
        c4 = BipartiteGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert biconnected_components(c4) == [[0, 1, 2, 3]]
        assert not is_block_structure(c4)


class TestClassification:
    def test_precedence_most_specific_first(self):
        assert classify_conflict_graph(generators.empty_graph(4)) == "edgeless"
        assert (
            classify_conflict_graph(generators.complete_bipartite(2, 3))
            == "complete_bipartite"
        )
        # a triangle is both complete multipartite and a block graph;
        # multipartite wins
        triangle = BlockGraph(3, [[0, 1, 2]])
        assert classify_conflict_graph(triangle) == "complete_multipartite"
        assert classify_conflict_graph(generators.crown(3)) == "bipartite"
        assert classify_conflict_graph(BlockGraph.chain([3, 3])) == "block"

    def test_c5_is_general(self):
        class Cycle(ConflictGraph):
            @property
            def n(self):
                return 5

            def neighbors(self, v):
                return frozenset({(v - 1) % 5, (v + 1) % 5})

        assert classify_conflict_graph(Cycle()) == "general"

    def test_analyze_structure_carries_conflict_fields(self):
        g = CompleteMultipartiteGraph.from_sizes([2, 2, 1], free=1)
        info = analyze_structure(g)
        assert info.graph_family == "complete_multipartite"
        assert info.conflict_class == "complete_multipartite"
        assert info.multipartite == (((0, 1), (2, 3), (4,)), (5,))
        assert "complete multipartite K_{2,2,1}" in info.describe()
        assert "+ 1 isolated" in info.describe()
        blocky = analyze_structure(BlockGraph.chain([3, 2, 3]))
        assert blocky.block and blocky.conflict_class == "block"
        assert "block graph" in blocky.describe()

    def test_bipartite_fingerprint_fields_unchanged(self):
        info = analyze_structure(generators.complete_bipartite(2, 2))
        assert info.graph_family == "bipartite"
        assert info.conflict_class == "complete_bipartite"
        assert info.complete_bipartite == ((0, 1), (2, 3))


@st.composite
def multipartite_shapes(draw):
    sizes = draw(st.lists(st.integers(1, 4), min_size=1, max_size=4))
    free = draw(st.integers(0, 3))
    return sizes, free


class TestClassificationProperties:
    """Hypothesis: recognition is structural and relabeling-stable."""

    @settings(max_examples=60, deadline=None)
    @given(multipartite_shapes(), st.data())
    def test_multipartite_family_recognized(self, shape, data):
        sizes, free = shape
        g = CompleteMultipartiteGraph.from_sizes(sizes, free=free)
        expected = (
            "edgeless"
            if len(sizes) == 1
            else "complete_bipartite"
            if len(sizes) == 2
            else "complete_multipartite"
        )
        assert classify_conflict_graph(g) == expected
        mp = multipartite_decomposition(g)
        assert mp is not None
        classes, free_out = mp
        if len(sizes) == 1:
            # a single class has no edges: every vertex decomposes as free
            assert classes == [] and len(free_out) == sizes[0] + free
        else:
            assert sorted(len(c) for c in classes) == sorted(sizes)
            assert len(free_out) == free
        perm = data.draw(st.permutations(range(g.n)))
        assert classify_conflict_graph(g.relabeled(list(perm))) == expected

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(3, 5), min_size=2, max_size=4),
        st.data(),
    )
    def test_block_chains_recognized(self, sizes, data):
        g = BlockGraph.chain(sizes)
        # >= 2 blocks of >= 3 vertices: triangles rule out bipartite, the
        # cut vertex rules out complete multipartite
        assert classify_conflict_graph(g) == "block"
        assert is_block_structure(g)
        perm = data.draw(st.permutations(range(g.n)))
        relabeled = g.relabeled(list(perm))
        assert classify_conflict_graph(relabeled) == "block"
        assert is_block_structure(relabeled)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 8),
        st.floats(0.0, 1.0),
        st.integers(0, 10_000),
        st.data(),
    )
    def test_bipartite_family_recognized(self, n, p, seed, data):
        from repro.random_graphs.gilbert import gnnp

        g = gnnp(n, p, seed=seed)
        assert is_bipartite_structure(g)
        # bipartite graphs can never classify as k >= 3 multipartite or
        # non-bipartite block
        assert classify_conflict_graph(g) in (
            "edgeless",
            "complete_bipartite",
            "bipartite",
        )
        perm = list(data.draw(st.permutations(range(g.n))))
        inverse_side = [0] * g.n
        for v in range(g.n):
            inverse_side[perm[v]] = g.side[v]
        relabeled = BipartiteGraph(
            g.n,
            [(perm[u], perm[v]) for u, v in g.edges()],
            side=inverse_side,
        )
        assert classify_conflict_graph(relabeled) == classify_conflict_graph(g)
