"""Tests for :mod:`repro.engine.registry` — capabilities and plugins."""

from fractions import Fraction

import pytest

from repro.engine import (
    ALGORITHMS,
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    Capability,
    available_algorithms,
    register_algorithm,
    solve,
    unregister_algorithm,
)
from repro.exceptions import InvalidInstanceError
from repro.graphs import generators
from repro.scheduling.instance import (
    UnrelatedInstance,
    unit_uniform_instance,
)
from repro.scheduling.schedule import Schedule

F = Fraction


def _q2_unit():
    return unit_uniform_instance(generators.crown(3), [F(2), F(1)])


def _r2():
    return UnrelatedInstance(generators.matching_graph(1), [[2, 3], [5, 1]])


class TestCapability:
    def test_default_matches_everything(self):
        cap = Capability()
        for inst in (_q2_unit(), _r2()):
            ok, reasons = cap.evaluate(inst)
            assert ok and reasons == ()

    def test_machine_kind(self):
        cap = Capability(machine_kind="unrelated")
        assert cap.check(_r2())
        ok, reasons = cap.evaluate(_q2_unit())
        assert not ok
        assert any("unrelated" in r for r in reasons)

    def test_machine_count_bounds(self):
        cap = Capability(min_machines=3)
        ok, reasons = cap.evaluate(_q2_unit())
        assert not ok and any("m >= 3" in r for r in reasons)
        cap = Capability(max_machines=1)
        ok, reasons = cap.evaluate(_q2_unit())
        assert not ok and any("m <= 1" in r for r in reasons)

    def test_unit_jobs_and_identical(self):
        unit = unit_uniform_instance(generators.crown(3), [F(2), F(1)])
        cap = Capability(machine_kind="uniform", unit_jobs=True)
        assert cap.check(unit)  # unit jobs by construction
        from repro.scheduling.instance import UniformInstance

        heavy = UniformInstance(generators.crown(3), [2, 1, 1, 1, 1, 1], [F(2), F(1)])
        assert not cap.check(heavy)
        cap = Capability(identical=True)
        assert not cap.check(heavy)  # speeds 2,1 differ

    def test_unit_jobs_requires_uniform_kind(self):
        """unit_jobs without machine_kind='uniform' would match nothing
        ever; it must be rejected at construction, not dispatch time."""
        with pytest.raises(InvalidInstanceError, match="unit_jobs"):
            Capability(unit_jobs=True)
        with pytest.raises(InvalidInstanceError, match="unit_jobs"):
            Capability(machine_kind="unrelated", unit_jobs=True)

    def test_graph_classes(self):
        edged = _q2_unit()
        empty = unit_uniform_instance(generators.empty_graph(4), [F(1), F(1)])
        kab = unit_uniform_instance(
            generators.complete_bipartite(2, 2), [F(1), F(1)]
        )
        assert not Capability(graph="edgeless").check(edged)
        assert Capability(graph="edgeless").check(empty)
        assert Capability(graph="complete_bipartite").check(kab)
        # edgeless graphs are K_{a,b}-free-plus-isolated-vertices too
        assert Capability(graph="complete_bipartite").check(empty)
        assert not Capability(graph="complete_bipartite").check(edged)

    def test_all_failed_requirements_reported(self):
        cap = Capability(machine_kind="unrelated", min_machines=3)
        ok, reasons = cap.evaluate(_q2_unit())
        assert not ok and len(reasons) == 2

    def test_invalid_fields_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Capability(machine_kind="quantum")
        with pytest.raises(InvalidInstanceError):
            Capability(graph="hypercube")
        with pytest.raises(InvalidInstanceError):
            Capability(min_machines=0)
        with pytest.raises(InvalidInstanceError):
            Capability(min_machines=3, max_machines=2)

    def test_requirements_human_readable(self):
        cap = Capability(
            machine_kind="uniform", unit_jobs=True, min_machines=2, max_machines=2
        )
        text = " / ".join(cap.requirements())
        assert "uniform" in text and "unit jobs" in text and "m = 2" in text


class TestAlgorithmSpec:
    def test_applies_derived_from_capability(self):
        spec = AlgorithmSpec(
            name="toy",
            guarantee="none",
            anchor="test",
            run=lambda inst: None,
            capability=Capability(machine_kind="unrelated"),
        )
        assert spec.applies(_r2())
        assert not spec.applies(_q2_unit())

    def test_run_required(self):
        with pytest.raises(InvalidInstanceError, match="run callable"):
            AlgorithmSpec(name="broken", guarantee="none", anchor="test")

    def test_legacy_predicate_still_works(self):
        spec = AlgorithmSpec(
            name="legacy",
            guarantee="none",
            anchor="test",
            applies=lambda inst: inst.m == 2,
            run=lambda inst: None,
        )
        assert spec.applies(_q2_unit())
        ok, reasons = spec.matches(_q2_unit())
        assert ok and reasons == ()

    def test_every_builtin_spec_is_capability_backed(self):
        for spec in ALGORITHMS.values():
            assert spec.capability is not None, spec.name
            assert callable(spec.applies) and callable(spec.run)


class TestRegistry:
    def test_algorithms_is_the_live_registry(self):
        assert ALGORITHMS is REGISTRY
        assert len(ALGORITHMS) == len(available_algorithms())
        assert "sqrt_approx" in ALGORITHMS
        assert ALGORITHMS["sqrt_approx"].name == "sqrt_approx"

    def test_duplicate_registration_rejected(self):
        spec = ALGORITHMS["greedy"]
        with pytest.raises(InvalidInstanceError, match="already registered"):
            REGISTRY.register(spec)
        # replace=True round-trips to the same spec
        assert REGISTRY.register(spec, replace=True) is spec

    def test_unknown_unregister_rejected(self):
        with pytest.raises(InvalidInstanceError, match="not registered"):
            unregister_algorithm("no_such_algorithm")

    def test_plugin_lifecycle(self):
        """A registered plugin is dispatchable, listable, and solvable
        through every public route (including the repro.solvers shim)."""

        def run_toy(instance):
            return Schedule(instance, [j % instance.m for j in range(instance.n)])

        spec = AlgorithmSpec(
            name="toy_round_robin",
            guarantee="none (test plugin)",
            anchor="test fixture",
            run=run_toy,
            capability=Capability(machine_kind="uniform", graph="edgeless"),
        )
        register_algorithm(spec)
        try:
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                from repro.solvers import ALGORITHMS as shim_algorithms

            assert "toy_round_robin" in shim_algorithms
            inst = unit_uniform_instance(
                generators.empty_graph(4), [F(1), F(1)]
            )
            assert "toy_round_robin" in {
                s.name for s in available_algorithms(inst)
            }
            schedule = solve(inst, algorithm="toy_round_robin")
            assert schedule.is_feasible()
            # preconditions still enforced for plugins
            edged = _q2_unit()
            with pytest.raises(InvalidInstanceError, match="does not apply"):
                solve(edged, algorithm="toy_round_robin")
        finally:
            unregister_algorithm("toy_round_robin")
        assert "toy_round_robin" not in ALGORITHMS

    def test_isolated_registry_does_not_touch_global(self):
        registry = AlgorithmRegistry()
        registry.register(
            AlgorithmSpec(
                name="only_here",
                guarantee="none",
                anchor="test",
                run=lambda inst: None,
            )
        )
        assert "only_here" in registry
        assert "only_here" not in ALGORITHMS


class TestGraphRepresentationCoercion:
    """Bipartite-gated algorithms must run on *structurally* bipartite
    graphs stored in other representations (the gate is
    :func:`is_bipartite_structure`, the implementations need a concrete
    :class:`BipartiteGraph` side witness)."""

    def _forest_block_instance(self):
        from repro.graphs.conflict import BlockGraph
        from repro.scheduling.instance import UniformInstance

        # a path 0-1-2 plus an edge 3-4 plus isolated 5,6: a forest, so
        # 2-colorable, but stored as a BlockGraph (edges are the blocks)
        graph = BlockGraph(7, [(0, 1), (1, 2), (3, 4)])
        return UniformInstance(
            graph, [3, 1, 4, 1, 5, 2, 6], sorted([F(2), F(1), F(1)], reverse=True)
        )

    def test_sqrt_approx_runs_on_block_graph(self):
        inst = self._forest_block_instance()
        schedule = solve(inst, algorithm="sqrt_approx")
        assert schedule.instance is inst
        assert schedule.is_feasible()

    def test_execute_matches_native_bipartite_run(self):
        from repro.graphs.structure import as_bipartite_graph

        inst = self._forest_block_instance()
        native = inst.with_graph(as_bipartite_graph(inst.graph))
        coerced = solve(inst, algorithm="sqrt_approx")
        direct = solve(native, algorithm="sqrt_approx")
        assert coerced.assignment == direct.assignment

    def test_as_bipartite_graph_preserves_structure(self):
        from repro.graphs.bipartite import BipartiteGraph
        from repro.graphs.conflict import BlockGraph
        from repro.graphs.structure import as_bipartite_graph

        graph = BlockGraph(5, [(0, 1), (1, 2)])
        bip = as_bipartite_graph(graph)
        assert isinstance(bip, BipartiteGraph)
        assert bip.n == graph.n
        assert {frozenset(e) for e in bip.edges()} == {
            frozenset(e) for e in graph.edges()
        }
        assert bip.side[0] != bip.side[1]
        assert bip.side[1] != bip.side[2]
        # BipartiteGraph inputs pass through unchanged
        assert as_bipartite_graph(bip) is bip

    def test_as_bipartite_graph_rejects_odd_cycle(self):
        from repro.exceptions import NotBipartiteError
        from repro.graphs.conflict import BlockGraph
        from repro.graphs.structure import as_bipartite_graph

        triangle = BlockGraph(3, [(0, 1, 2)])
        with pytest.raises(NotBipartiteError):
            as_bipartite_graph(triangle)
