"""Tests for :mod:`repro.engine.dispatch` — ranked auto selection,
behaviour-identity with the pre-engine policy, and explain mode."""

import warnings
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

with warnings.catch_warnings():
    # this module deliberately exercises the deprecated shim
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro import solvers
from repro.engine import (
    ALGORITHMS,
    auto_choice,
    available_algorithms,
    explain_dispatch,
    solve,
)
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs import generators
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    identical_instance,
    unit_uniform_instance,
)

F = Fraction

#: sentinel for corpus entries where dispatch must raise
INFEASIBLE = "!infeasible"


def _corpus():
    """The frozen dispatch corpus (instances built deterministically)."""
    yield "Kab_unit_q3", unit_uniform_instance(
        generators.complete_bipartite(3, 2), [F(2), F(1), F(1)]
    )
    yield "Kab_unit_q1", unit_uniform_instance(
        generators.complete_bipartite(2, 2), [F(1)]
    )
    yield "crown_unit_q2", unit_uniform_instance(generators.crown(4), [F(3), F(1)])
    yield "empty_unit_q1", unit_uniform_instance(generators.empty_graph(5), [F(2)])
    yield "empty_unit_q3", unit_uniform_instance(
        generators.empty_graph(5), [F(2), F(1), F(1)]
    )
    yield "crown_unit_q3", unit_uniform_instance(
        generators.crown(3), [F(2), F(1), F(1)]
    )
    yield "path_unit_q2", unit_uniform_instance(generators.path_graph(6), [F(2), F(1)])
    yield "gnnp_unit_q3", unit_uniform_instance(
        gnnp(5, 0.3, seed=1), [F(3), F(2), F(1)]
    )
    yield "empty_ident_p3", identical_instance(
        generators.empty_graph(6), [5, 4, 3, 3, 2, 1], 3
    )
    yield "empty_q2", UniformInstance(
        generators.empty_graph(6), [4, 3, 3, 2, 2, 1], [F(2), F(1)]
    )
    yield "empty_q1_weighted", UniformInstance(
        generators.empty_graph(3), [4, 2, 1], [F(2)]
    )
    yield "crown_q2_weighted", UniformInstance(
        generators.crown(3), [3, 1, 4, 1, 5, 9], [F(2), F(1)]
    )
    yield "crown_q3_weighted", UniformInstance(
        generators.crown(4), [3, 1, 4, 1, 5, 9, 2, 6], [F(3), F(2), F(1)]
    )
    yield "matching_ident_m2", identical_instance(
        generators.matching_graph(3), [2, 1, 3, 1, 2, 2], 2
    )
    yield "matching_ident_m4", identical_instance(
        generators.matching_graph(3), [2, 1, 3, 1, 2, 2], 4
    )
    yield "star_q2_weighted", UniformInstance(
        generators.star(5), [2, 1, 1, 1, 1, 1], [F(3), F(1)]
    )
    yield "edge_r2", UnrelatedInstance(generators.matching_graph(1), [[2, 3], [5, 1]])
    yield "empty_r2", UnrelatedInstance(
        generators.empty_graph(4), [[2, 3, 1, 4], [5, 1, 2, 2]]
    )
    yield "empty_r3", UnrelatedInstance(
        generators.empty_graph(4), [[2, 3, 1, 4], [5, 1, 2, 2], [3, 3, 3, 3]]
    )
    yield "K22_r3", UnrelatedInstance(
        generators.complete_bipartite(2, 2), [[1, 1, 9, 9], [9, 9, 1, 1], [5, 5, 5, 5]]
    )
    yield "path_r4", UnrelatedInstance(
        generators.path_graph(5),
        [[1 + ((i * j) % 4) for j in range(5)] for i in range(4)],
    )
    yield "edge_r1", UnrelatedInstance(generators.matching_graph(1), [[1, 1]])
    yield "crown_unit_q1_infeasible", unit_uniform_instance(
        generators.crown(3), [F(1)]
    )


#: recorded from the pre-engine ``repro.solvers.auto_choice`` (the
#: 464-line monolith) immediately before the PR-5 refactor — the engine
#: must reproduce these answers exactly
FROZEN_CHOICES = {
    "Kab_unit_q3": "complete_multipartite",
    "Kab_unit_q1": "complete_multipartite",
    "crown_unit_q2": "q2_unit_exact",
    "empty_unit_q1": "complete_multipartite",
    "empty_unit_q3": "complete_multipartite",
    "crown_unit_q3": "sqrt_approx",
    "path_unit_q2": "q2_unit_exact",
    "gnnp_unit_q3": "sqrt_approx",
    "empty_ident_p3": "dual_approx",
    "empty_q2": "q2_fptas",
    "empty_q1_weighted": "dual_approx",
    "crown_q2_weighted": "q2_fptas",
    "crown_q3_weighted": "sqrt_approx",
    "matching_ident_m2": "q2_fptas",
    "matching_ident_m4": "sqrt_approx",
    "star_q2_weighted": "q2_fptas",
    "edge_r2": "r2_fptas",
    "empty_r2": "r2_fptas",
    "empty_r3": "lst",
    "K22_r3": "r_color_split",
    "path_r4": "r_color_split",
    "edge_r1": INFEASIBLE,
    "crown_unit_q1_infeasible": INFEASIBLE,
}

#: applicable-algorithm sets recorded from the pre-engine registry on a
#: sample of the corpus (capability parity, not just auto parity).  The
#: conflict-graph generalization added two registry members that apply on
#: bipartite instances too — ``complete_multipartite_min_time`` (K_{a,b}
#: is complete multipartite; unit uniform only) and
#: ``conflict_color_split`` (any graph, m >= 2) — so those names appear
#: here; every pre-refactor name is unchanged, and FROZEN_CHOICES above
#: pins that the *auto policy* is untouched
FROZEN_APPLICABILITY = {
    "Kab_unit_q3": {
        "complete_multipartite", "complete_multipartite_min_time", "lpt",
        "sqrt_approx", "random_graph", "random_graph_balanced",
        "two_machine_split", "conflict_color_split", "greedy", "brute_force",
    },
    "empty_unit_q1": {
        "complete_multipartite", "complete_multipartite_min_time",
        "dual_approx", "lpt", "random_graph", "random_graph_balanced",
        "greedy", "brute_force",
    },
    "empty_ident_p3": {
        "dual_approx", "lpt", "sqrt_approx", "bjw", "two_machine_split",
        "conflict_color_split", "greedy", "brute_force",
    },
    "matching_ident_m4": {
        "lpt", "sqrt_approx", "bjw", "two_machine_split",
        "conflict_color_split", "greedy", "brute_force",
    },
    "edge_r2": {
        "r2_two_approx", "r2_fptas", "lst", "r_color_split",
        "conflict_color_split", "greedy", "brute_force",
    },
    "empty_r3": {
        "lst", "r_color_split", "conflict_color_split", "greedy",
        "brute_force",
    },
}


def _choice_or_sentinel(instance) -> str:
    try:
        return auto_choice(instance)
    except InfeasibleInstanceError:
        return INFEASIBLE


class TestFrozenCorpus:
    def test_corpus_covers_every_expectation(self):
        assert {name for name, _ in _corpus()} == set(FROZEN_CHOICES)

    @pytest.mark.parametrize("name,instance", list(_corpus()))
    def test_engine_matches_pre_refactor_policy(self, name, instance):
        assert _choice_or_sentinel(instance) == FROZEN_CHOICES[name]

    @pytest.mark.parametrize("name,instance", list(_corpus()))
    def test_shim_gives_identical_answers(self, name, instance):
        """The repro.solvers back-compat shim is behaviour-identical."""
        try:
            shim = solvers.auto_choice(instance)
        except InfeasibleInstanceError:
            shim = INFEASIBLE
        assert shim == FROZEN_CHOICES[name]

    def test_applicability_sets_frozen(self):
        instances = dict(_corpus())
        for name, expected in FROZEN_APPLICABILITY.items():
            got = {s.name for s in available_algorithms(instances[name])}
            assert got == expected, name


def _instances():
    """Hypothesis strategy: structurally diverse scheduling instances."""
    graphs = st.sampled_from(["empty", "matching", "path", "crown", "kab", "star"])

    @st.composite
    def build(draw):
        family = draw(graphs)
        size = draw(st.integers(min_value=1, max_value=5))
        if family == "empty":
            graph = generators.empty_graph(size + 1)
        elif family == "matching":
            graph = generators.matching_graph(size)
        elif family == "path":
            graph = generators.path_graph(size + 1)
        elif family == "crown":
            graph = generators.crown(max(2, size))
        elif family == "star":
            graph = generators.star(size)
        else:
            graph = generators.complete_bipartite(size, draw(st.integers(1, 4)))
        m = draw(st.integers(min_value=1, max_value=4))
        kind = draw(st.sampled_from(["uniform", "unrelated"]))
        if kind == "uniform":
            unit = draw(st.booleans())
            identical = draw(st.booleans())
            if identical:
                speeds = [F(2)] * m
            else:
                speeds = sorted(
                    (
                        F(draw(st.integers(1, 5)), draw(st.integers(1, 2)))
                        for _ in range(m)
                    ),
                    reverse=True,
                )
            if unit:
                p = [1] * graph.n
            else:
                p = [draw(st.integers(1, 9)) for _ in range(graph.n)]
            return UniformInstance(graph, p, speeds)
        times = [
            [draw(st.integers(1, 9)) for _ in range(graph.n)] for _ in range(m)
        ]
        return UnrelatedInstance(graph, times)

    return build()


class TestDispatchProperties:
    @settings(max_examples=60, deadline=None)
    @given(instance=_instances())
    def test_auto_choice_always_applicable(self, instance):
        """Whatever auto picks must satisfy its own declared capability,
        and infeasibility is raised exactly on edged one-machine
        instances (tie-breaking/fallback ordering can never select an
        inapplicable method)."""
        try:
            name = auto_choice(instance)
        except InfeasibleInstanceError:
            assert instance.m == 1 and instance.graph.edge_count > 0
            return
        spec = ALGORITHMS[name]
        assert spec.applies(instance)
        assert spec.auto_rank is not None
        # and the shim agrees on every drawn instance
        assert solvers.auto_choice(instance) == name

    @settings(max_examples=20, deadline=None)
    @given(instance=_instances())
    def test_chosen_is_lowest_eligible_rank(self, instance):
        try:
            name = auto_choice(instance)
        except InfeasibleInstanceError:
            return
        chosen_rank = ALGORITHMS[name].auto_rank
        for spec in ALGORITHMS.values():
            if spec.auto_rank is None or spec.auto_rank >= chosen_rank:
                continue
            eligible = spec.applies(instance) and (
                spec.auto_when is None or spec.auto_when.check(instance)
            )
            assert not eligible, (name, spec.name)


class TestExplain:
    def test_chosen_entry_marked(self):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        report = explain_dispatch(inst)
        assert report.chosen == "q2_unit_exact"
        chosen = [e for e in report.entries if e.chosen]
        assert [e.name for e in chosen] == ["q2_unit_exact"]
        assert "selected" in report.why_chosen()
        assert len(report.entries) == len(ALGORITHMS)

    def test_rejections_carry_reasons(self):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        rejected = explain_dispatch(inst).why_rejected()
        assert "requires unrelated machines" in rejected["r2_fptas"]
        assert "loses to" in rejected["q2_fptas"]
        assert "edgeless" in rejected["lpt"]  # auto_when constraint

    def test_infeasible_instance_reports_error(self):
        inst = unit_uniform_instance(generators.crown(3), [F(1)])
        report = explain_dispatch(inst)
        assert report.chosen is None
        assert "two machines" in report.error
        assert "dispatch failed" in report.table()

    def test_named_algorithm_explain(self):
        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        report = explain_dispatch(inst, algorithm="sqrt_approx")
        assert report.chosen == "sqrt_approx"
        assert "requested" in report.why_chosen()
        report = explain_dispatch(inst, algorithm="r2_fptas")
        assert report.chosen is None and "does not apply" in report.error
        report = explain_dispatch(inst, algorithm="nonsense")
        assert report.chosen is None and "unknown algorithm" in report.error

    def test_report_round_trips_to_json(self):
        import json

        inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
        data = json.loads(json.dumps(explain_dispatch(inst).to_dict()))
        assert data["chosen"] == "q2_unit_exact"
        assert len(data["entries"]) == len(ALGORITHMS)


class TestSolveErrors:
    def test_unknown_algorithm_rejected(self):
        inst = unit_uniform_instance(generators.empty_graph(2), [F(1)])
        with pytest.raises(InvalidInstanceError, match="unknown algorithm"):
            solve(inst, algorithm="quantum_annealing")

    def test_inapplicable_algorithm_rejected(self):
        inst = unit_uniform_instance(generators.crown(3), [F(2), F(1)])
        with pytest.raises(InvalidInstanceError, match="does not apply"):
            solve(inst, algorithm="r2_fptas")

    def test_unknown_instance_type_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown instance type"):
            auto_choice(object())
