"""Tests for :mod:`repro.scheduling.dual_approx` — the [11] PTAS substrate."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.dual_approx import (
    _pack_big_jobs,
    dual_approx_identical,
    dual_feasibility_test,
)
from repro.scheduling.instance import UniformInstance, identical_instance

F = Fraction


def _inst(p, m):
    return identical_instance(generators.empty_graph(len(p)), p, m)


class TestPackBigJobs:
    def test_empty(self):
        assert _pack_big_jobs([], 5) == []

    def test_oversized_item(self):
        assert _pack_big_jobs([6], 5) is None

    def test_single_bin(self):
        bins = _pack_big_jobs([2, 3], 5)
        assert len(bins) == 1
        assert sorted(bins[0]) == [0, 1]

    def test_pairs_do_not_fit(self):
        # 3 + 3 > 5, so every item needs its own bin
        bins = _pack_big_jobs([3, 3, 3], 5)
        assert len(bins) == 3

    def test_two_bins_needed(self):
        bins = _pack_big_jobs([3, 3, 2, 2], 5)
        assert len(bins) == 2

    def test_perfect_fit(self):
        bins = _pack_big_jobs([4, 4, 2, 2], 6)
        assert len(bins) == 2

    def test_classic_ffd_trap(self):
        # sizes where greedy first-fit-decreasing uses 3 bins but 2 suffice
        bins = _pack_big_jobs([4, 3, 3, 2, 2, 2], 8)
        assert len(bins) == 2

    def test_bins_respect_capacity(self):
        units = [5, 4, 3, 3, 2, 2, 1]
        bins = _pack_big_jobs(units, 7)
        for b in bins:
            assert sum(units[i] for i in b) <= 7

    def test_all_items_packed_once(self):
        units = [3, 3, 2, 2, 1]
        bins = _pack_big_jobs(units, 4)
        flat = sorted(i for b in bins for i in b)
        assert flat == list(range(len(units)))


class TestDualFeasibilityTest:
    def test_accepts_generous_deadline(self):
        inst = _inst([5, 4, 3, 2], 2)
        schedule = dual_feasibility_test(inst, F(14), F(1, 3))
        assert schedule is not None
        assert schedule.makespan <= F(14) * F(4, 3)

    def test_rejects_impossible_deadline(self):
        inst = _inst([5, 5, 5], 1)
        assert dual_feasibility_test(inst, F(14), F(1, 3)) is None

    def test_rejects_below_pmax(self):
        inst = _inst([10, 1], 2)
        assert dual_feasibility_test(inst, F(9), F(1, 3)) is None

    def test_rejects_below_average(self):
        inst = _inst([4, 4, 4, 4], 2)
        assert dual_feasibility_test(inst, F(7), F(1, 3)) is None

    def test_zero_jobs(self):
        inst = identical_instance(generators.empty_graph(0), [], 2)
        schedule = dual_feasibility_test(inst, F(1), F(1, 2))
        assert schedule is not None and schedule.makespan == 0

    def test_graph_with_edges_rejected(self):
        inst = identical_instance(BipartiteGraph(2, [(0, 1)]), [1, 1], 2)
        with pytest.raises(InvalidInstanceError):
            dual_feasibility_test(inst, F(2), F(1, 2))

    def test_uniform_speeds_rejected(self):
        inst = UniformInstance(generators.empty_graph(2), [1, 1], [F(2), F(1)])
        with pytest.raises(InvalidInstanceError):
            dual_feasibility_test(inst, F(2), F(1, 2))

    def test_bad_eps_rejected(self):
        inst = _inst([1], 1)
        with pytest.raises(InvalidInstanceError):
            dual_feasibility_test(inst, F(1), F(0))

    def test_monotone_in_deadline(self):
        inst = _inst([7, 6, 5, 4, 3, 2], 3)
        opt = brute_force_makespan(inst)
        assert dual_feasibility_test(inst, opt, F(1, 4)) is not None
        # any deadline below the area bound must be rejected
        below = F(sum(inst.p), inst.m) - F(1, 100)
        assert dual_feasibility_test(inst, below, F(1, 4)) is None


class TestDualApproxIdentical:
    @pytest.mark.parametrize(
        "p,m",
        [
            ([5, 4, 3, 2, 1], 2),
            ([7, 7, 7, 7], 2),
            ([10, 1, 1, 1, 1, 1], 3),
            ([6, 5, 4, 3, 2, 1], 3),
            ([9], 4),
        ],
    )
    def test_within_guarantee(self, p, m):
        inst = _inst(p, m)
        opt = brute_force_makespan(inst)
        for eps in (F(1), F(1, 2), F(1, 4)):
            result = dual_approx_identical(inst, eps)
            assert result.schedule.makespan <= (1 + eps) * opt
            assert result.schedule.is_feasible()

    def test_tighter_eps_never_worse_by_much(self):
        inst = _inst([13, 11, 7, 7, 5, 3, 2, 2], 3)
        opt = brute_force_makespan(inst)
        loose = dual_approx_identical(inst, F(1))
        tight = dual_approx_identical(inst, F(1, 5))
        assert tight.schedule.makespan <= (1 + F(1, 5)) * opt
        assert loose.schedule.makespan <= 2 * opt

    def test_zero_jobs(self):
        inst = identical_instance(generators.empty_graph(0), [], 3)
        result = dual_approx_identical(inst)
        assert result.schedule.makespan == 0 and result.tests_run == 0

    def test_single_machine_exact(self):
        inst = _inst([3, 2, 1], 1)
        result = dual_approx_identical(inst, F(1, 4))
        assert result.schedule.makespan == 6

    def test_reports_test_count(self):
        inst = _inst([5, 4, 3], 2)
        result = dual_approx_identical(inst, F(1, 2))
        assert result.tests_run >= 1

    def test_eps_accepts_float_and_str(self):
        inst = _inst([4, 3, 2, 1], 2)
        opt = brute_force_makespan(inst)
        for eps in (0.5, "1/2"):
            result = dual_approx_identical(inst, eps)
            assert result.schedule.makespan <= F(3, 2) * opt


@settings(max_examples=30, deadline=None)
@given(
    p=st.lists(st.integers(1, 15), min_size=1, max_size=9),
    m=st.integers(1, 4),
    eps_den=st.integers(1, 4),
)
def test_property_dual_approx_guarantee(p, m, eps_den):
    """Random instances: makespan <= (1 + eps) * OPT, schedule feasible."""
    inst = _inst(p, m)
    eps = F(1, eps_den)
    opt = brute_force_makespan(inst)
    result = dual_approx_identical(inst, eps)
    assert result.schedule.is_feasible()
    assert result.schedule.makespan <= (1 + eps) * opt
    # the accepted deadline is never below the trivial lower bounds
    assert result.deadline >= max(F(max(p)), F(sum(p), m)) or result.deadline >= opt


class TestNonUnitIdenticalSpeeds:
    """Regression: identical machines of common speed s != 1 used to crash
    the bisection (deadlines are time units, job sizes were compared in
    p-units) — found by the certification auditor."""

    def test_common_speed_five(self):
        g = generators.empty_graph(3)
        inst = UniformInstance(g, [6, 6, 1], [5, 5])
        result = dual_approx_identical(inst, F(1, 3))
        opt = brute_force_makespan(inst)
        assert result.schedule.is_feasible()
        assert result.schedule.makespan <= (1 + F(1, 3)) * opt

    def test_speed_scaling_is_exact(self):
        """Speeding all machines up by s divides the PTAS makespan by s."""
        g = generators.empty_graph(4)
        slow = UniformInstance(g, [5, 4, 2, 5], [1, 1])
        fast = UniformInstance(g, [5, 4, 2, 5], [6, 6])
        r_slow = dual_approx_identical(slow, F(1, 3))
        r_fast = dual_approx_identical(fast, F(1, 3))
        assert r_fast.schedule.makespan == r_slow.schedule.makespan / 6

    def test_dual_test_accepts_lpt_deadline_any_speed(self):
        from repro.scheduling.baselines import unconstrained_lpt

        for speed in (1, 2, 5, F(7, 2)):
            inst = UniformInstance(
                generators.empty_graph(3), [3, 7, 2], [speed] * 2
            )
            upper = unconstrained_lpt(inst).makespan
            assert dual_feasibility_test(inst, upper, F(1, 12)) is not None
