"""Tests for Algorithm 1 (Theorem 9: sqrt(sum p_j)-approximation)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.sqrt_approx import (
    satisfies_sqrt_guarantee,
    sqrt_approx_schedule,
)
from repro.exceptions import InfeasibleInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import (
    complete_bipartite,
    empty_graph,
    matching_graph,
    path_graph,
    star,
)
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, unit_uniform_instance

from tests.conftest import random_uniform_instance


class TestFeasibility:
    def test_random_instances(self):
        rng = np.random.default_rng(100)
        for _ in range(30):
            inst = random_uniform_instance(rng)
            res = sqrt_approx_schedule(inst)
            assert res.schedule.is_feasible()

    def test_two_approx_solver_variant(self):
        rng = np.random.default_rng(101)
        for _ in range(15):
            inst = random_uniform_instance(rng)
            res = sqrt_approx_schedule(inst, s1_solver="two_approx")
            assert res.schedule.is_feasible()

    def test_empty_instance(self):
        inst = UniformInstance(BipartiteGraph(0, []), [], [1, 1])
        assert sqrt_approx_schedule(inst).schedule.makespan == 0

    def test_single_machine_no_edges(self):
        inst = UniformInstance(empty_graph(3), [1, 2, 3], [2])
        res = sqrt_approx_schedule(inst)
        assert res.schedule.makespan == 3

    def test_single_machine_with_edges_raises(self):
        inst = UniformInstance(matching_graph(1), [1, 1], [1])
        with pytest.raises(InfeasibleInstanceError):
            sqrt_approx_schedule(inst)


class TestGuarantee:
    def test_theorem9_vs_bruteforce(self):
        rng = np.random.default_rng(102)
        for _ in range(30):
            inst = random_uniform_instance(rng, max_jobs=8, max_machines=4)
            res = sqrt_approx_schedule(inst)
            opt = brute_force_makespan(inst)
            assert satisfies_sqrt_guarantee(res, opt, inst.total_p)

    def test_capacity_bound_is_valid_lower_bound(self):
        rng = np.random.default_rng(103)
        checked = 0
        for _ in range(30):
            inst = random_uniform_instance(rng, max_jobs=8, max_machines=4)
            res = sqrt_approx_schedule(inst)
            if res.capacity_bound is None:
                continue
            checked += 1
            opt = brute_force_makespan(inst)
            assert res.capacity_bound <= opt
        assert checked >= 5

    def test_brute_force_branch_is_exact(self):
        # sum p <= 4 goes through step 1
        inst = UniformInstance(matching_graph(1), [2, 2], [2, 1])
        res = sqrt_approx_schedule(inst)
        assert res.chosen == "brute_force"
        assert res.schedule.makespan == brute_force_makespan(inst)


class TestStructure:
    def test_s2_built_when_independent_set_exists(self):
        # star: heavy centre + light leaves, m >= 3; sum p > 16 so the
        # algorithm takes the approximation path rather than step 1
        g = star(6)
        inst = UniformInstance(g, [19, 1, 1, 1, 1, 1, 1], [4, 2, 1])
        res = sqrt_approx_schedule(inst)
        assert res.s2 is not None
        assert res.independent_set is not None
        assert res.capacity_bound is not None

    def test_s2_skipped_on_two_machines(self):
        g = path_graph(4)
        inst = UniformInstance(g, [5, 5, 5, 5], [2, 1])
        res = sqrt_approx_schedule(inst)
        assert res.s2 is None
        assert res.chosen == "s1"

    def test_no_independent_set_when_heavy_conflict(self):
        # two adjacent heavy jobs: I cannot exist
        g = BipartiteGraph(4, [(0, 1)])
        inst = UniformInstance(g, [10, 10, 1, 1], [2, 1, 1])
        res = sqrt_approx_schedule(inst)
        assert res.independent_set is None
        assert res.s2 is None

    def test_independent_set_contains_heavy_jobs(self):
        g = BipartiteGraph(5, [(0, 2), (1, 2)])
        p = [8, 8, 1, 1, 1]  # sum = 19, heavy: p^2 >= 19 -> jobs 0, 1
        inst = UniformInstance(g, p, [3, 2, 1])
        res = sqrt_approx_schedule(inst)
        assert res.independent_set is not None
        assert {0, 1} <= res.independent_set

    def test_takes_better_candidate(self):
        rng = np.random.default_rng(104)
        for _ in range(20):
            inst = random_uniform_instance(rng)
            res = sqrt_approx_schedule(inst)
            assert res.schedule.makespan == min(
                (s.makespan for s in (res.s1, res.s2) if s is not None)
            )

    def test_s2_can_win_with_many_machines(self):
        """With many machines and a spread-out graph, the capacity schedule
        must beat the two-machine fallback at least sometimes."""
        rng = np.random.default_rng(105)
        wins = 0
        for _ in range(20):
            g = matching_graph(6)
            p = [int(x) for x in rng.integers(1, 6, 12)]
            inst = UniformInstance(g, p, [2, 1, 1, 1, 1, 1])
            res = sqrt_approx_schedule(inst)
            if res.chosen == "s2":
                wins += 1
        assert wins > 0


class TestExactSquaredComparison:
    def test_guarantee_checker(self):
        g = matching_graph(1)
        inst = UniformInstance(g, [3, 3], [1, 1])
        res = sqrt_approx_schedule(inst)
        # makespan 3, opt 3, sum p = 6: 9 <= 6 * 9 holds
        assert satisfies_sqrt_guarantee(res, Fraction(3), 6)
        # an impossible claim fails: 9 <= 6 * (1/4) is false
        assert not satisfies_sqrt_guarantee(res, Fraction(1, 2), 6)
