"""Tests for :mod:`repro.certify.validators` — end-to-end schedule audits."""

from fractions import Fraction

from repro.certify import CertificateReport, certify_schedule, instance_lower_bound
from repro.graphs.generators import matching_graph, path_graph
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.scheduling.schedule import Schedule
from repro.engine import solve

F = Fraction


class TestCleanCertificates:
    def test_feasible_schedule_certifies_ok(self):
        inst = UniformInstance(path_graph(4), [3, 1, 4, 1], [2, 1])
        report = certify_schedule(solve(inst), algorithm="auto")
        assert report.ok
        assert report.conflict_violations == ()
        assert report.eligibility_violations == ()
        assert report.makespan_consistent
        assert report.lower_bound_respected
        assert report.recomputed_makespan is not None
        assert report.lower_bound == instance_lower_bound(inst)

    def test_empty_instance(self):
        from repro.graphs.generators import empty_graph

        inst = UniformInstance(empty_graph(0), [], [1])
        report = certify_schedule(Schedule(inst, []))
        assert report.ok
        assert report.recomputed_makespan == 0

    def test_unrelated_ok(self):
        inst = UnrelatedInstance(matching_graph(2), [[1, 2, 3, 4], [4, 3, 2, 1]])
        report = certify_schedule(solve(inst))
        assert report.ok and report.m == 2


class TestViolationDetection:
    def test_conflict_edge_caught(self):
        # jobs 0-1 conflict; cram both onto machine 0
        inst = UniformInstance(matching_graph(1), [2, 2], [1, 1])
        bad = Schedule(inst, [0, 0], check=False)
        report = certify_schedule(bad)
        assert not report.ok
        assert report.conflict_violations == ((0, 1, 0),)

    def test_every_conflict_listed(self):
        inst = UniformInstance(path_graph(3), [1, 1, 1], [1, 1])
        bad = Schedule(inst, [0, 0, 0], check=False)
        report = certify_schedule(bad)
        assert len(report.conflict_violations) == 2  # edges (0,1) and (1,2)

    def test_eligibility_caught(self):
        inst = UnrelatedInstance(matching_graph(1), [[1, None], [None, 1]])
        bad = Schedule(inst, [0, 0], check=False)
        report = certify_schedule(bad)
        assert not report.ok
        assert (1, 0) in report.eligibility_violations
        # makespan cannot be recomputed over a forbidden pair
        assert report.recomputed_makespan is None
        assert not report.makespan_consistent

    def test_lying_claimed_makespan_caught(self):
        inst = UniformInstance(path_graph(2), [3, 5], [1, 1])
        good = Schedule(inst, [0, 1])
        report = certify_schedule(good, claimed_makespan=F(1))
        assert not report.ok
        assert not report.makespan_consistent
        assert report.recomputed_makespan == 5
        assert report.claimed_makespan == 1
        assert "makespan mismatch" in report.describe()


class TestSerialization:
    def test_round_trip(self):
        inst = UniformInstance(path_graph(4), [3, 1, 4, 1], [2, 1])
        report = certify_schedule(solve(inst), algorithm="sqrt_approx")
        data = report.to_dict()
        back = CertificateReport.from_dict(data)
        assert back == report

    def test_round_trip_with_violations(self):
        inst = UniformInstance(matching_graph(1), [2, 2], [1, 1])
        report = certify_schedule(Schedule(inst, [0, 0], check=False))
        back = CertificateReport.from_dict(report.to_dict())
        assert back == report
        assert not back.ok

    def test_dict_is_json_safe(self):
        import json

        inst = UniformInstance(path_graph(2), [1, 1], [1, 1])
        report = certify_schedule(solve(inst))
        json.dumps(report.to_dict())  # must not raise
