"""Tests for Theorem 8's reduction (1-PrExt -> Qm unit jobs)."""

from fractions import Fraction

import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs.precoloring import (
    PrExtInstance,
    claw_no_instance,
    planted_yes_instance,
    solve_prext,
)
from repro.hardness.q_reduction import (
    theorem8_gadget_sizes,
    theorem8_reduction,
)
from repro.scheduling.brute_force import brute_force_makespan

TINY = (2, 1, 1)  # (x, x', x'') for exhaustively checkable instances


class TestConstruction:
    def test_faithful_vertex_count(self):
        prext = planted_yes_instance(5, seed=0)
        k = 2
        q = theorem8_reduction(prext, k=k)
        n = prext.graph.n
        assert q.instance.n == n + 48 * k * k * n + 4 * k * n + 2

    def test_faithful_speeds(self):
        prext = planted_yes_instance(4, seed=1)
        q = theorem8_reduction(prext, k=3, m=5)
        n = prext.graph.n
        assert q.instance.speeds[:3] == (Fraction(49 * 9), Fraction(15), Fraction(1))
        assert q.instance.speeds[3] == Fraction(1, 3 * n)

    def test_gadget_sizes_formula(self):
        assert theorem8_gadget_sizes(2, 5) == (120, 10, 1)

    def test_six_gadgets(self):
        q = theorem8_reduction(planted_yes_instance(4, seed=2), k=1, gadget_sizes=TINY)
        assert len(q.gadgets) == 6
        kinds = sorted(g.kind for g in q.gadgets)
        assert kinds == ["H1", "H1", "H2", "H2", "H3", "H3"]

    def test_unit_jobs(self):
        q = theorem8_reduction(planted_yes_instance(4, seed=3), k=1, gadget_sizes=TINY)
        assert q.instance.has_unit_jobs

    def test_preconditions(self):
        prext = planted_yes_instance(4, seed=4)
        with pytest.raises(InvalidInstanceError):
            theorem8_reduction(prext, k=0)
        with pytest.raises(InvalidInstanceError):
            theorem8_reduction(prext, k=1, m=2)


class TestYesSide:
    @pytest.mark.parametrize("seed", range(5))
    def test_extension_schedule_feasible_and_within_bound(self, seed):
        prext = planted_yes_instance(6, seed=seed)
        coloring = solve_prext(prext)
        assert coloring is not None
        q = theorem8_reduction(prext, k=1, gadget_sizes=TINY)
        s = q.schedule_from_extension(coloring)
        assert s.is_feasible()
        assert s.makespan <= q.yes_makespan_bound

    def test_faithful_scale_yes_schedule(self):
        """Full paper-sized gadgets: schedule construction stays exact."""
        prext = planted_yes_instance(5, seed=7)
        coloring = solve_prext(prext)
        q = theorem8_reduction(prext, k=2)
        s = q.schedule_from_extension(coloring)
        assert s.is_feasible()
        assert s.makespan <= q.yes_makespan_bound
        # the paper's nominal claim: makespan close to n (here <= n + 2)
        assert s.makespan <= prext.graph.n + 2

    def test_rejects_non_extension(self):
        prext = planted_yes_instance(5, seed=8)
        q = theorem8_reduction(prext, k=1, gadget_sizes=TINY)
        bad = [0] * prext.graph.n  # ignores the precoloring
        with pytest.raises(InvalidInstanceError):
            q.schedule_from_extension(bad)

    def test_rejects_wrong_length(self):
        prext = planted_yes_instance(5, seed=9)
        q = theorem8_reduction(prext, k=1, gadget_sizes=TINY)
        with pytest.raises(InvalidInstanceError):
            q.schedule_from_extension([0, 1, 2])


class TestNoSide:
    def test_no_instance_optimum_respects_lower_bound(self):
        """Exhaustive check: NO seeds force makespan >= no_bound."""
        no = claw_no_instance()
        assert solve_prext(no) is None
        q = theorem8_reduction(no, k=1, gadget_sizes=TINY)
        opt = brute_force_makespan(q.instance)
        assert opt >= q.no_makespan_lower_bound

    def test_yes_instance_beats_no_bound_scaled(self):
        """On faithful sizes the YES schedule sits far below the NO bound."""
        prext = planted_yes_instance(5, seed=10)
        coloring = solve_prext(prext)
        q = theorem8_reduction(prext, k=3)
        s = q.schedule_from_extension(coloring)
        assert s.makespan < q.no_makespan_lower_bound
        assert q.gap > 2  # the separation grows with k

    def test_gap_grows_with_k(self):
        prext = planted_yes_instance(5, seed=11)
        gaps = [theorem8_reduction(prext, k=k).gap for k in (1, 2, 4)]
        assert gaps[0] < gaps[1] < gaps[2]

    def test_no_bound_for_m3_is_kn(self):
        prext = planted_yes_instance(6, seed=12)
        n = prext.graph.n
        for k in (1, 2, 3):
            q = theorem8_reduction(prext, k=k, m=3)
            assert q.no_makespan_lower_bound == k * n
