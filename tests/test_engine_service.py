"""Tests for :mod:`repro.engine.service` — the persistent serving layer."""

import io
import json
import threading
from fractions import Fraction

from repro.engine import EngineService, SERVE_FORMAT, serve_tcp
from repro.graphs import generators
from repro.io import instance_to_dict
from repro.runtime import ShardedResultCache
from repro.scheduling.instance import UnrelatedInstance, unit_uniform_instance

F = Fraction


def _payload():
    inst = unit_uniform_instance(generators.crown(4), [F(3), F(1)])
    return instance_to_dict(inst)


def _solve_request(request_id=1, **extra):
    return {"op": "solve", "id": request_id, "instance": _payload(), **extra}


class TestSolveRequests:
    def test_fresh_solve(self):
        service = EngineService()
        response = service.handle_request(_solve_request())
        assert response["format"] == SERVE_FORMAT
        assert response["ok"] and response["id"] == 1
        assert response["chosen"] == "q2_unit_exact"
        assert response["cached"] is False
        assert Fraction(response["makespan"]) > 0
        assert len(response["assignment"]) == 8
        assert service.stats.solved == 1

    def test_repeat_served_from_cache_without_resolving(self, monkeypatch):
        """The acceptance criterion: an identical repeated instance is
        answered from the cache and no solver runs."""
        import repro.engine.service as service_module

        service = EngineService()
        first = service.handle_request(_solve_request(request_id=1))
        calls = []

        def exploding_solve(*args, **kwargs):  # pragma: no cover
            calls.append(args)
            raise AssertionError("cache miss: solver was invoked again")

        monkeypatch.setattr(service_module, "solve", exploding_solve)
        monkeypatch.setattr(service_module, "auto_choice", exploding_solve)
        second = service.handle_request(_solve_request(request_id=2))
        assert calls == []
        assert second["cached"] is True and second["id"] == 2
        assert second["makespan"] == first["makespan"]
        assert second["assignment"] == first["assignment"]
        assert service.stats.cached == 1

    def test_cache_persists_across_service_instances(self, tmp_path, monkeypatch):
        import repro.engine.service as service_module

        cache_dir = tmp_path / "serve-cache"
        EngineService(cache=cache_dir).handle_request(_solve_request())
        assert ShardedResultCache(cache_dir).shard_files()

        reborn = EngineService(cache=cache_dir)
        monkeypatch.setattr(
            service_module,
            "solve",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("re-solved")),
        )
        response = reborn.handle_request(_solve_request(request_id=9))
        assert response["cached"] is True
        # laziness: exactly one shard was parsed for this key
        assert len(reborn.cache.loaded_shards) == 1

    def test_named_algorithm_and_distinct_cache_keys(self):
        service = EngineService()
        auto = service.handle_request(_solve_request(request_id=1))
        named = service.handle_request(
            _solve_request(request_id=2, algorithm="sqrt_approx")
        )
        assert named["chosen"] == "sqrt_approx"
        assert named["key"] != auto["key"]
        assert service.stats.solved == 2

    def test_explain_and_portfolio_requests(self):
        service = EngineService()
        explained = service.handle_request(_solve_request(explain=True))
        assert explained["explain"]["chosen"] == "q2_unit_exact"
        assert any(
            not entry["applicable"] for entry in explained["explain"]["entries"]
        )
        raced = service.handle_request(_solve_request(request_id=2, portfolio=3))
        assert raced["ok"] and raced["algorithm"] == "portfolio:3"
        # the portfolio result caches under its own key
        repeat = service.handle_request(_solve_request(request_id=3, portfolio=3))
        assert repeat["cached"] is True

    def test_portfolio_zero_and_named_algorithm_rejected(self):
        """portfolio: 0 must error like every other k < 1, and a named
        algorithm alongside portfolio is refused (as on the CLI), never
        silently dropped."""
        service = EngineService()
        zero = service.handle_request(_solve_request(portfolio=0))
        assert zero["ok"] is False and ">= 1" in zero["error"]
        named = service.handle_request(
            _solve_request(portfolio=2, algorithm="greedy")
        )
        assert named["ok"] is False and "cannot honour" in named["error"]
        assert service.stats.errors == 2

    def test_explain_still_answered_on_cache_hits(self):
        service = EngineService()
        service.handle_request(_solve_request(request_id=1))
        cached = service.handle_request(_solve_request(request_id=2, explain=True))
        assert cached["cached"] is True
        assert cached["explain"]["chosen"] == "q2_unit_exact"


class TestErrors:
    def test_malformed_line(self):
        service = EngineService()
        response = json.loads(service.handle_line("{not json"))
        assert response["ok"] is False and "malformed" in response["error"]
        assert service.stats.errors == 1

    def test_missing_instance(self):
        service = EngineService()
        response = service.handle_request({"op": "solve", "id": 4})
        assert response["ok"] is False and "instance" in response["error"]

    def test_unknown_algorithm_is_an_error_response(self):
        service = EngineService()
        response = service.handle_request(
            _solve_request(algorithm="quantum_annealing")
        )
        assert response["ok"] is False
        assert "unknown algorithm" in response["error"]
        assert service.stats.errors == 1

    def test_infeasible_instance_is_an_error_response(self):
        inst = unit_uniform_instance(generators.crown(3), [F(1)])
        service = EngineService()
        response = service.handle_request(
            {"op": "solve", "id": 5, "instance": instance_to_dict(inst)}
        )
        assert response["ok"] is False and "two machines" in response["error"]

    def test_foreign_cache_records_are_not_served(self):
        """A cache seeded with non-serve records under a serve key must
        not be echoed back as a response (schema safety)."""
        from repro.runtime import ResultCache
        from repro.runtime.cache import task_key

        cache = ResultCache(None)
        key = task_key(_payload(), "serve/auto")
        cache.put(key, {"kind": "batch_result", "key": key})
        service = EngineService(cache=cache)
        response = service.handle_request(_solve_request())
        # the poisoned slot surfaces loudly as a collision error before
        # any solve is attempted — never as a malformed "cached" response
        assert response["ok"] is False and "non-serve record" in response["error"]
        assert service.stats.cached == 0 and service.stats.solved == 0

    def test_malformed_payload_never_kills_the_server(self):
        """Non-ReproError defects (KeyError from a truncated payload,
        ValueError from a bad portfolio count) must come back as error
        responses, not crash the persistent loop."""
        service = EngineService()
        truncated = service.handle_request(
            {"op": "solve", "id": 7, "instance": {"kind": "uniform_instance"}}
        )
        assert truncated["ok"] is False and "graph" in truncated["error"]
        bad_k = service.handle_request(_solve_request(portfolio="three"))
        assert bad_k["ok"] is False and "ValueError" in bad_k["error"]
        assert service.stats.errors == 2
        # and the service still answers afterwards
        assert service.handle_request(_solve_request(request_id=8))["ok"]

    def test_unknown_op(self):
        service = EngineService()
        response = service.handle_request({"op": "dance", "id": 6})
        assert response["ok"] is False and "unknown op" in response["error"]

    def test_errors_never_kill_the_stream(self):
        service = EngineService()
        source = [
            "{broken",
            "",
            json.dumps(_solve_request(request_id=1)),
            json.dumps({"op": "stats", "id": 2}),
        ]
        sink = io.StringIO()
        stats = service.serve_stream(source, sink)
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert len(lines) == 3  # blank line skipped
        assert lines[0]["ok"] is False
        assert lines[1]["ok"] is True
        assert lines[2]["stats"]["errors"] == 1
        assert stats.requests == 3


class TestOps:
    def test_ping_and_stats(self):
        service = EngineService()
        assert service.handle_request({"op": "ping"})["ok"] is True
        stats = service.handle_request({"op": "stats", "id": 0})
        assert stats["stats"]["requests"] == 2

    def test_stats_surface_exposes_latency_and_serving_counters(self):
        service = EngineService()
        service.handle_request(_solve_request(request_id=1))
        service.handle_request(_solve_request(request_id=2))
        block = service.handle_request({"op": "stats"})["stats"]
        for key in ("coalesced", "rejected", "connections", "uptime_s", "qps"):
            assert key in block, key
        assert block["qps"] > 0
        latency = block["latency"]
        assert latency["count"] == 2  # the stats op itself is timed after
        assert latency["p50_ms"] is not None and latency["p50_ms"] >= 0
        assert latency["p99_ms"] >= latency["p50_ms"]
        assert latency["max_ms"] >= latency["p99_ms"]

    def test_latency_reservoir_percentiles_and_window(self):
        from repro.engine import LatencyReservoir

        reservoir = LatencyReservoir(window=4)
        for ms in (10, 20, 30, 40, 1000):  # 1000 pushes 10 out the window
            reservoir.observe(ms / 1000.0)
        assert reservoir.count == 5
        snap = reservoir.snapshot()
        assert snap["window"] == 4
        assert snap["p50_ms"] == 30.0
        assert snap["p99_ms"] == 1000.0
        assert snap["max_ms"] == 1000.0

    def test_unrelated_instance_served(self):
        inst = UnrelatedInstance(
            generators.matching_graph(2), [[2, 3, 1, 4], [5, 1, 2, 2]]
        )
        response = EngineService().handle_request(
            {"op": "solve", "id": 1, "instance": instance_to_dict(inst)}
        )
        assert response["ok"] and response["chosen"] == "r2_fptas"


class TestTcp:
    def test_one_shot_tcp_round_trip(self):
        import socket

        service = EngineService()
        address: list = []
        bound = threading.Event()

        def ready(addr):
            address.append(addr)
            bound.set()

        server = threading.Thread(
            target=serve_tcp,
            args=(service,),
            kwargs={"port": 0, "max_requests": 2, "ready": ready},
            daemon=True,
        )
        server.start()
        assert bound.wait(timeout=10)
        host, port = address[0]
        with socket.create_connection((host, port), timeout=10) as conn:
            with conn.makefile("rw", encoding="utf-8") as stream:
                stream.write(json.dumps(_solve_request(request_id=1)) + "\n")
                stream.flush()
                first = json.loads(stream.readline())
                stream.write(json.dumps(_solve_request(request_id=2)) + "\n")
                stream.flush()
                second = json.loads(stream.readline())
        server.join(timeout=10)
        assert not server.is_alive()
        assert first["ok"] and first["cached"] is False
        assert second["ok"] and second["cached"] is True

    def test_interleaved_connections_are_all_answered(self):
        """Regression for the listen(1) era: clients that connect while
        another connection is being served must queue in the raised
        backlog and eventually be answered — never dropped or wedged."""
        import socket

        service = EngineService()
        address: list = []
        bound = threading.Event()

        def ready(addr):
            address.append(addr)
            bound.set()

        clients = 3
        server = threading.Thread(
            target=serve_tcp,
            args=(service,),
            kwargs={"port": 0, "max_requests": clients, "ready": ready},
            daemon=True,
        )
        server.start()
        assert bound.wait(timeout=10)
        host, port = address[0]

        # open every connection up front — while the server is busy with
        # the first, the others sit in the kernel backlog
        connections = [
            socket.create_connection((host, port), timeout=10)
            for _ in range(clients)
        ]
        responses = []
        try:
            for i, conn in enumerate(connections):
                with conn.makefile("rw", encoding="utf-8") as stream:
                    stream.write(
                        json.dumps(_solve_request(request_id=i)) + "\n"
                    )
                    stream.flush()
                    responses.append(json.loads(stream.readline()))
                conn.close()
        finally:
            for conn in connections:
                conn.close()
        server.join(timeout=10)
        assert not server.is_alive()
        assert [r["id"] for r in responses] == list(range(clients))
        assert all(r["ok"] for r in responses)
        assert service.stats.solved == 1 and service.stats.cached == clients - 1
