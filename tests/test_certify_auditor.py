"""Tests for :mod:`repro.certify.auditor` — guarantee-violation sweeps."""

from fractions import Fraction

from repro.certify import (
    VIOLATION_STATUSES,
    audit_guarantees,
    audit_instance,
)
from repro.graphs.generators import matching_graph, path_graph
from repro.scheduling.instance import UniformInstance
from repro.scheduling.schedule import Schedule
from repro.engine import ALGORITHMS, AlgorithmSpec

F = Fraction


def _worst_split(instance):
    """Deliberately bad but feasible: proper 2-coloring split on 2 machines."""
    from repro.scheduling.baselines import two_machine_split

    return two_machine_split(instance)


class TestAuditInstance:
    def test_dispatched_algorithms_all_clean(self):
        inst = UniformInstance(path_graph(6), [2, 1, 3, 1, 2, 1], [2, 1, 1])
        rows = audit_instance("p6", inst)
        assert rows
        assert all(r.status not in VIOLATION_STATUSES for r in rows)
        # ground truth was available, so some row checked against OPT
        assert any(r.optimal is not None for r in rows)

    def test_algorithm_subset_filter(self):
        inst = UniformInstance(path_graph(4), [1, 1, 1, 1], [1, 1])
        rows = audit_instance("p4", inst, algorithms=("sqrt_approx",))
        assert [r.algorithm for r in rows] == ["sqrt_approx"]

    def test_oracle_cutoff_respected(self):
        inst = UniformInstance(path_graph(6), [1] * 6, [1, 1])
        rows = audit_instance("p6", inst, oracle_max_n=2)
        assert all(r.optimal is None for r in rows)

    def test_exact_methods_status_ok(self):
        inst = UniformInstance(path_graph(4), [2, 3, 1, 2], [2, 1])
        rows = audit_instance("p4", inst, algorithms=("brute_force",))
        (row,) = rows
        assert row.status in ("ok", "ok_vs_bound")
        assert row.makespan == row.optimal

    def test_graph_blind_on_edges_is_not_a_violation(self):
        inst = UniformInstance(matching_graph(2), [1, 1, 1, 1], [1, 1])
        rows = audit_instance("m2", inst, algorithms=("lpt",))
        (row,) = rows
        assert row.status == "no_guarantee"

    def test_rows_serialise(self):
        import json

        inst = UniformInstance(path_graph(4), [1, 1, 1, 1], [1, 1])
        for row in audit_instance("p4", inst):
            json.dumps(row.to_dict())


class TestLyingSpecCaught:
    """The auditor must convict a spec whose declared guarantee is false."""

    def _lying_specs(self):
        spec = AlgorithmSpec(
            name="liar",
            guarantee="claims exact, is not",
            anchor="test fixture",
            applies=lambda inst: isinstance(inst, UniformInstance)
            and inst.m == 2,
            run=_worst_split,
            ratio_bound=lambda inst: F(1),
        )
        return {"liar": spec}

    def test_violated_status(self):
        # two incompatible pairs, wildly uneven sizes: the color split is
        # far from optimal, so a claimed ratio of 1 must be convicted
        inst = UniformInstance(matching_graph(2), [9, 1, 9, 1], [1, 1])
        rows = audit_instance("trap", inst, specs=self._lying_specs())
        (row,) = rows
        assert row.status == "violated"
        assert "VIOLATED" in row.detail
        assert row.optimal is not None and row.makespan > row.optimal

    def test_honest_bound_passes(self):
        spec = AlgorithmSpec(
            name="honest",
            guarantee="2-approximate color split (true on this instance)",
            anchor="test fixture",
            applies=lambda inst: isinstance(inst, UniformInstance)
            and inst.m == 2,
            run=_worst_split,
            ratio_bound=lambda inst: F(100),
        )
        inst = UniformInstance(matching_graph(2), [9, 1, 9, 1], [1, 1])
        (row,) = audit_instance("ok", inst, specs={"honest": spec})
        assert row.status in ("ok", "ok_vs_bound")

    def test_infeasible_output_caught(self):
        def cram(instance):
            return Schedule(instance, [0] * instance.n, check=False)

        spec = AlgorithmSpec(
            name="crammer",
            guarantee="claims feasibility, ignores the graph",
            anchor="test fixture",
            applies=lambda inst: True,
            run=cram,
            ratio_bound=lambda inst: F(1),
        )
        inst = UniformInstance(matching_graph(1), [1, 1], [1, 1])
        (row,) = audit_instance("cram", inst, specs={"crammer": spec})
        assert row.status == "infeasible_output"
        assert row.certificate is not None
        assert row.certificate.conflict_violations

    def test_crashing_solver_is_a_violation(self):
        """Undeclared exceptions (the dual-approx AssertionError class of
        bug) must FAIL the sweep, not hide in a non-failing status."""

        def boom(instance):
            raise AssertionError("internal invariant broke")

        spec = AlgorithmSpec(
            name="boom",
            guarantee="none",
            anchor="test fixture",
            applies=lambda inst: True,
            run=boom,
        )
        inst = UniformInstance(path_graph(2), [1, 1], [1, 1])
        (row,) = audit_instance("boom", inst, specs={"boom": spec})
        assert row.status == "crash"
        assert row.status in VIOLATION_STATUSES
        assert "AssertionError" in row.detail

    def test_solver_built_infeasible_schedule_is_a_violation(self):
        """InvalidScheduleError from eager Schedule validation means the
        solver *produced* an infeasible schedule — that must fail the
        sweep, not hide as a benign 'error'."""

        def cram_checked(instance):
            return Schedule(instance, [0] * instance.n)  # check=True raises

        spec = AlgorithmSpec(
            name="cram_checked",
            guarantee="claims feasibility",
            anchor="test fixture",
            applies=lambda inst: True,
            run=cram_checked,
        )
        inst = UniformInstance(matching_graph(1), [1, 1], [1, 1])
        (row,) = audit_instance("cc", inst, specs={"cram_checked": spec})
        assert row.status == "infeasible_output"
        assert row.status in VIOLATION_STATUSES

    def test_declared_failure_is_error_not_crash(self):
        from repro.exceptions import InfeasibleInstanceError

        def give_up(instance):
            raise InfeasibleInstanceError("declared failure mode")

        spec = AlgorithmSpec(
            name="giver",
            guarantee="none",
            anchor="test fixture",
            applies=lambda inst: True,
            run=give_up,
        )
        inst = UniformInstance(path_graph(2), [1, 1], [1, 1])
        (row,) = audit_instance("gu", inst, specs={"giver": spec})
        assert row.status == "error"
        assert row.status not in VIOLATION_STATUSES

    def test_guarantee_check_predicate_convicts(self):
        """A spec-level guarantee_check (the Theorem 9 mechanism) is
        honoured for any algorithm, not a name-coupled special case."""

        spec = AlgorithmSpec(
            name="pred_liar",
            guarantee="claims Cmax^2 <= OPT^2 (i.e. exact)",
            anchor="test fixture",
            applies=lambda inst: isinstance(inst, UniformInstance)
            and inst.m == 2,
            run=_worst_split,
            guarantee_check=lambda inst, cmax, opt: cmax * cmax
            <= opt * opt,
        )
        inst = UniformInstance(matching_graph(2), [9, 1, 9, 1], [1, 1])
        (row,) = audit_instance("pl", inst, specs={"pred_liar": spec})
        assert row.status == "violated"

    def test_exponential_specs_skipped_above_cutoff(self):
        inst = UniformInstance(path_graph(6), [1] * 6, [1, 1])
        with_oracle = audit_instance(
            "p6", inst, algorithms=("brute_force",), oracle_max_n=10
        )
        assert [r.algorithm for r in with_oracle] == ["brute_force"]
        above = audit_instance(
            "p6", inst, algorithms=("brute_force",), oracle_max_n=4
        )
        assert above == []


class TestAuditGuarantees:
    def test_sweep_shape_and_cleanliness(self):
        suite = [
            ("a", UniformInstance(path_graph(4), [1, 1, 1, 1], [1, 1])),
            ("b", UniformInstance(matching_graph(2), [2, 1, 2, 1], [2, 1])),
        ]
        rows = audit_guarantees(suite, algorithms=("sqrt_approx", "q2_fptas"))
        assert {r.name for r in rows} == {"a", "b"}
        assert all(r.status not in VIOLATION_STATUSES for r in rows)

    def test_registry_is_default(self):
        inst = UniformInstance(path_graph(4), [1, 1, 1, 1], [1, 1])
        rows = audit_guarantees([("x", inst)])
        audited = {r.algorithm for r in rows}
        applicable = {
            s.name for s in ALGORITHMS.values() if s.applies(inst)
        }
        assert audited == applicable
