"""Fuzz tests for the serving protocol boundary (``handle_line``).

The contract both tiers must keep under arbitrary junk input — invalid
UTF-8 fragments, deeply nested JSON, huge integer literals, wrong-typed
``op``/``id``/``instance``/``portfolio`` fields:

* ``handle_line`` never raises;
* it returns exactly one parseable JSON line with a boolean ``ok``;
* ``stats.requests`` equals the number of lines fed.
"""

import asyncio
import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import AsyncEngineService, EngineService

# wrong-typed field values a confused client might send
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)
_requests = st.dictionaries(
    st.sampled_from(["op", "id", "instance", "algorithm", "portfolio", "explain"]),
    _json_values,
    max_size=6,
)
_junk_lines = st.one_of(
    st.text(max_size=200),  # includes surrogates and control characters
    st.binary(max_size=200).map(lambda b: b.decode("utf-8", errors="replace")),
    _requests.map(json.dumps),
    _json_values.map(json.dumps),
)

_fuzz_settings = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _check_response(raw: str) -> dict:
    assert isinstance(raw, str)
    assert "\n" not in raw  # exactly one line
    response = json.loads(raw)
    assert isinstance(response, dict)
    assert isinstance(response["ok"], bool)
    return response


class TestSyncBoundary:
    @given(line=_junk_lines)
    @_fuzz_settings
    def test_any_single_line_yields_one_json_reply(self, line):
        service = EngineService()
        _check_response(service.handle_line(line))
        assert service.stats.requests == 1

    @given(lines=st.lists(_junk_lines, max_size=8))
    @_fuzz_settings
    def test_requests_counts_lines_fed(self, lines):
        service = EngineService()
        for line in lines:
            _check_response(service.handle_line(line))
        assert service.stats.requests == len(lines)
        # only dispatched (parseable-object) requests are timed
        assert service.stats.latency.count <= len(lines)

    def test_deeply_nested_json_is_answered_not_raised(self):
        service = EngineService()
        response = _check_response(service.handle_line("[" * 3000 + "]" * 3000))
        assert response["ok"] is False and "malformed" in response["error"]

    def test_huge_integer_literal_is_answered_not_raised(self):
        # Python's int-conversion limit raises ValueError inside
        # json.loads, which a narrow JSONDecodeError handler would miss
        service = EngineService()
        response = _check_response(service.handle_line("9" * 5000))
        assert response["ok"] is False and "malformed" in response["error"]

    def test_invalid_utf8_replacement_text(self):
        service = EngineService()
        line = b"\xff\xfe{\x80".decode("utf-8", errors="replace")
        response = _check_response(service.handle_line(line))
        assert response["ok"] is False


class TestAsyncBoundary:
    @given(lines=st.lists(_junk_lines, max_size=6))
    @_fuzz_settings
    def test_async_tier_keeps_the_same_contract(self, lines):
        async def run():
            service = AsyncEngineService()
            try:
                for line in lines:
                    _check_response(await service.handle_line(line))
                assert service.stats.requests == len(lines)
            finally:
                service.close()

        asyncio.run(run())

    def test_async_exotic_parse_crashes_are_answered(self):
        async def run():
            service = AsyncEngineService()
            try:
                for line in ("[" * 3000 + "]" * 3000, "9" * 5000, "{broken"):
                    response = _check_response(await service.handle_line(line))
                    assert response["ok"] is False
                assert service.stats.requests == 3
            finally:
                service.close()

        asyncio.run(run())
