"""Tests for the Dinic max-flow / min-cut engine."""

import numpy as np
import pytest

from repro.graphs.flow import FlowNetwork, INF, max_flow_min_cut


class TestBasics:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 1) == 5

    def test_series_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5)
        net.add_edge(1, 2, 3)
        assert net.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(0, 2, 3)
        net.add_edge(2, 3, 3)
        assert net.max_flow(0, 3) == 5

    def test_disconnected_is_zero(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 7)
        net.add_edge(2, 3, 7)
        assert net.max_flow(0, 3) == 0

    def test_classic_augmenting_case(self):
        # diamond with cross edge: requires flow cancellation to be optimal
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1)
        net.add_edge(0, 2, 1)
        net.add_edge(1, 2, 1)
        net.add_edge(1, 3, 1)
        net.add_edge(2, 3, 1)
        assert net.max_flow(0, 3) == 2

    def test_zero_capacity_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 0)
        assert net.max_flow(0, 1) == 0

    def test_negative_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)

    def test_same_source_sink_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_out_of_range_edge_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1)

    def test_tiny_network_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork(1)


class TestMinCut:
    def test_cut_separates(self):
        value, source_side = max_flow_min_cut(
            3, [(0, 1, 4), (1, 2, 2)], 0, 2
        )
        assert value == 2
        assert 0 in source_side and 2 not in source_side

    def test_cut_capacity_equals_flow(self):
        # random networks: check max-flow == capacity across the returned cut
        rng = np.random.default_rng(5)
        for _ in range(25):
            n = int(rng.integers(4, 10))
            edges = []
            for _ in range(int(rng.integers(5, 25))):
                u, v = rng.integers(0, n, 2)
                if u != v:
                    edges.append((int(u), int(v), int(rng.integers(0, 12))))
            value, side = max_flow_min_cut(n, edges, 0, n - 1)
            cut_cap = sum(c for u, v, c in edges if u in side and v not in side)
            assert value == cut_cap

    def test_inf_edges_never_cut(self):
        value, side = max_flow_min_cut(
            4, [(0, 1, 3), (1, 2, INF), (2, 3, 4)], 0, 3
        )
        assert value == 3
        # the INF edge must not cross the cut
        assert not (1 in side and 2 not in side)


class TestAgainstNetworkx:
    def test_random_networks_match_oracle(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(17)
        for _ in range(20):
            n = int(rng.integers(4, 12))
            edges = {}
            for _ in range(int(rng.integers(5, 30))):
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u != v:
                    edges[(u, v)] = int(rng.integers(1, 15))
            net = FlowNetwork(n)
            g = nx.DiGraph()
            g.add_nodes_from(range(n))
            for (u, v), c in edges.items():
                net.add_edge(u, v, c)
                g.add_edge(u, v, capacity=c)
            ours = net.max_flow(0, n - 1)
            theirs = nx.maximum_flow_value(g, 0, n - 1)
            assert ours == theirs
