"""Optimized hot paths vs their preserved pre-optimization baselines.

Each optimization in this repo ships with the original implementation
(:mod:`repro.perf.baselines`); these tests prove the optimized code
computes the same results — the contract that makes the measured
speedups meaningful.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.certify.oracle import certified_optimal
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import empty_graph
from repro.graphs.matching import hopcroft_karp, is_matching
from repro.machines.profiles import geometric_speeds, power_law_speeds
from repro.perf.baselines import (
    assign_group_greedy_baseline,
    certified_optimal_baseline,
    hopcroft_karp_baseline,
)
from repro.runtime.batch import BatchRunner
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    unit_uniform_instance,
)
from repro.scheduling.list_scheduling import assign_group_greedy
from repro.random_graphs.gilbert import gnnp

from tests.conftest import random_bipartite


def _matching_size(mate: list[int]) -> int:
    return sum(1 for v in mate if v != -1) // 2


def test_hopcroft_karp_matches_baseline_size_on_random_graphs(rng):
    for _ in range(150):
        g = random_bipartite(rng, max_side=10)
        optimized = hopcroft_karp(g)
        baseline = hopcroft_karp_baseline(g)
        assert is_matching(g, optimized)
        assert _matching_size(optimized) == _matching_size(baseline)


def test_hopcroft_karp_deterministic_per_graph():
    g = gnnp(40, 0.1, seed=12)
    assert hopcroft_karp(g) == hopcroft_karp(g)


def test_hopcroft_karp_deep_path_needs_no_recursion_limit():
    # a single long path forces the longest possible augmenting chains;
    # the recursive baseline needed a recursion-limit raise here
    from repro.graphs.generators import path_graph

    g = path_graph(4001)
    mate = hopcroft_karp(g)
    assert is_matching(g, mate)
    assert _matching_size(mate) == 2000


def test_assign_group_greedy_identical_to_baseline(rng):
    for _ in range(80):
        n = int(rng.integers(1, 40))
        m = int(rng.integers(1, 12))
        p = [int(x) for x in rng.integers(1, 25, n)]
        speeds = sorted(
            (
                Fraction(int(rng.integers(1, 6)), int(rng.integers(1, 4)))
                for _ in range(m)
            ),
            reverse=True,
        )
        inst = UniformInstance(empty_graph(n), p, speeds)
        machines = [int(i) for i in rng.permutation(m)]
        jobs = list(range(n))
        assert assign_group_greedy(inst, jobs, machines) == (
            assign_group_greedy_baseline(inst, jobs, machines)
        )


def test_assign_group_greedy_repeated_speeds_identical_to_baseline():
    # repeated speeds exercise the per-group heap tie-breaking
    inst = UniformInstance(
        empty_graph(9), [4, 4, 3, 3, 2, 2, 1, 1, 1], [2, 2, 1, 1]
    )
    jobs = list(range(9))
    machines = [3, 1, 0, 2]
    assert assign_group_greedy(inst, jobs, machines) == (
        assign_group_greedy_baseline(inst, jobs, machines)
    )


def test_oracle_identical_search_to_baseline(rng):
    for _ in range(20):
        g = random_bipartite(rng, max_side=5)
        p = [int(x) for x in rng.integers(1, 8, g.n)]
        inst = UniformInstance(g, p, geometric_speeds(3, 2))
        a = certified_optimal(inst)
        b = certified_optimal_baseline(inst)
        assert (a.makespan, a.nodes, a.proof) == (b.makespan, b.nodes, b.proof)


def test_oracle_identical_search_to_baseline_unrelated(rng):
    for _ in range(12):
        g = random_bipartite(rng, max_side=4)
        times = [[int(x) for x in rng.integers(1, 15, g.n)] for _ in range(3)]
        inst = UnrelatedInstance(g, times)
        a = certified_optimal(inst)
        b = certified_optimal_baseline(inst)
        assert (a.makespan, a.nodes, a.proof) == (b.makespan, b.nodes, b.proof)


def _fanout_tasks(runs: int, per_run: int):
    return [
        [
            (
                f"run{s}-task{i}",
                unit_uniform_instance(
                    gnnp(5, 0.2, seed=10 * s + i), power_law_speeds(3)
                ),
            )
            for i in range(per_run)
        ]
        for s in range(runs)
    ]


@pytest.mark.parametrize("persistent", [True, False])
def test_batch_runner_results_invariant_under_pool_mode(persistent):
    reference = [
        [(r.name, r.makespan, r.chosen) for r in BatchRunner().run_to_list(ts)]
        for ts in _fanout_tasks(3, 3)
    ]
    with BatchRunner(workers=2, persistent_pool=persistent) as runner:
        streams = [
            [(r.name, r.makespan, r.chosen) for r in runner.run_to_list(ts)]
            for ts in _fanout_tasks(3, 3)
        ]
    assert streams == reference


def test_batch_runner_reuses_one_pool_across_runs():
    with BatchRunner(workers=2) as runner:
        assert runner._pool is None  # lazy: no pool before the first run
        runner.run_to_list(_fanout_tasks(1, 2)[0])
        pool = runner._pool
        assert pool is not None
        runner.run_to_list(_fanout_tasks(2, 2)[1])
        assert runner._pool is pool
    assert runner._pool is None  # context exit tears it down


def test_batch_runner_close_is_idempotent_and_runner_stays_usable():
    runner = BatchRunner(workers=2)
    tasks = _fanout_tasks(1, 2)[0]
    first = [r.makespan for r in runner.run_to_list(tasks)]
    runner.close()
    runner.close()  # no-op
    # the next run forks a fresh pool transparently
    runner.cache = type(runner.cache)()  # fresh cache: force real solves
    assert [r.makespan for r in runner.run_to_list(tasks)] == first
    runner.close()


def test_batch_runner_in_process_mode_has_no_pool():
    runner = BatchRunner(workers=1)
    runner.run_to_list(_fanout_tasks(1, 2)[0])
    assert runner._pool is None
    runner.close()  # accepted no-op
