"""The BENCH artifact schema: round trips, validation, trajectory."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import BenchSchemaError
from repro.io import iter_jsonl, load_json, save_json
from repro.perf import (
    BENCH_FORMAT,
    BenchPhase,
    BenchRecord,
    json_cell,
    validate_bench_record,
    write_bench_record,
)


def make_record() -> BenchRecord:
    return BenchRecord.build(
        "E99_test",
        ["case", "ratio", "time (ms)"],
        [
            ["crown", Fraction(3, 2), 1.25],
            ["gnnp", np.float64(1.5), np.int64(7)],
        ],
        phases=[
            BenchPhase("solve", 0.5, cpu_time_s=0.4, repeat=3, size={"n": 8}),
        ],
        notes="unit test",
        git_rev="abc1234",
        timestamp="2026-07-28T00:00:00Z",
    )


def test_json_cell_coercions():
    assert json_cell(Fraction(3, 2)) == "3/2"
    assert json_cell(np.int64(7)) == 7
    assert json_cell(np.float64(1.5)) == 1.5
    assert json_cell(None) is None
    assert json_cell(True) is True
    assert json_cell("x") == "x"
    assert json_cell((1, 2)) == "(1, 2)"  # unknown types degrade to str


def test_build_stamps_and_coerces():
    record = make_record()
    assert record.git_rev == "abc1234"
    assert record.rows[0] == ("crown", "3/2", 1.25)
    assert record.rows[1] == ("gnnp", 1.5, 7)


def test_round_trip_through_repro_io(tmp_path):
    record = make_record()
    path = save_json(record.to_dict(), tmp_path / "BENCH_E99_test.json")
    loaded = BenchRecord.from_dict(load_json(path))
    assert loaded == record


def test_validate_accepts_emitted_shape():
    validate_bench_record(make_record().to_dict())


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.update(format="repro/bench-record/v0"),
        lambda d: d.update(kind="something_else"),
        lambda d: d.update(experiment_id=""),
        lambda d: d.update(git_rev=None),
        lambda d: d.update(columns="case,ratio"),
        lambda d: d["rows"].append(["short"]),
        lambda d: d["rows"].append([["nested"], 1, 2]),
        lambda d: d["phases"].append({"wall_time_s": 1.0}),
        lambda d: d["phases"].append({"name": "x", "wall_time_s": -1.0}),
        lambda d: d["phases"].append({"name": "x", "wall_time_s": 1.0, "repeat": 0}),
        lambda d: d["phases"].append({"name": "x", "wall_time_s": 1.0, "cpu_time_s": "abc"}),
        lambda d: d["phases"].append({"name": "x", "wall_time_s": 1.0, "ratio": "zzz"}),
        lambda d: d.update(notes=7),
    ],
)
def test_validate_rejects_schema_violations(mutate):
    data = make_record().to_dict()
    mutate(data)
    with pytest.raises(BenchSchemaError):
        validate_bench_record(data)


def test_validate_rejects_non_object():
    with pytest.raises(BenchSchemaError):
        validate_bench_record(["not", "an", "object"])


def test_build_rejects_ragged_rows():
    with pytest.raises(BenchSchemaError):
        BenchRecord.build("E99", ["a", "b"], [[1]])


def test_write_bench_record_creates_parents_and_trajectory(tmp_path):
    record = make_record()
    out_dir = tmp_path / "deep" / "out"  # parents must be created
    path = write_bench_record(record, out_dir)
    assert path == out_dir / "BENCH_E99_test.json"
    assert BenchRecord.from_dict(load_json(path)) == record
    # append-only trajectory accumulates runs
    write_bench_record(record, out_dir)
    lines = list(iter_jsonl(out_dir / "BENCH_trajectory.jsonl"))
    assert len(lines) == 2
    assert all(line["format"] == BENCH_FORMAT for line in lines)


def test_write_bench_record_can_skip_trajectory(tmp_path):
    write_bench_record(make_record(), tmp_path, trajectory=False)
    assert not (tmp_path / "BENCH_trajectory.jsonl").exists()


class TestMeta:
    def test_meta_round_trips_and_coerces(self, tmp_path):
        record = BenchRecord.build(
            "E99_meta",
            ["a"],
            [[1]],
            meta={"speedup_qps": np.float64(5.25), "ratio": Fraction(3, 2)},
            git_rev="abc1234",
            timestamp="2026-08-07T00:00:00Z",
        )
        assert record.meta == {"speedup_qps": 5.25, "ratio": "3/2"}
        data = record.to_dict()
        assert data["meta"] == {"speedup_qps": 5.25, "ratio": "3/2"}
        path = save_json(data, tmp_path / "BENCH_E99_meta.json")
        assert BenchRecord.from_dict(load_json(path)) == record

    def test_absent_meta_keeps_the_v1_shape(self):
        # pre-meta records validate unchanged, and records built without
        # meta serialise without the key at all
        data = make_record().to_dict()
        assert "meta" not in data
        validate_bench_record(data)
        assert BenchRecord.from_dict(data).meta == {}

    @pytest.mark.parametrize(
        "meta",
        [
            "not a dict",
            {"nested": {"x": 1}},
            {"listy": [1, 2]},
        ],
    )
    def test_validate_rejects_bad_meta(self, meta):
        data = make_record().to_dict()
        data["meta"] = meta
        with pytest.raises(BenchSchemaError):
            validate_bench_record(data)
