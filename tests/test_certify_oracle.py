"""Tests for :mod:`repro.certify.oracle` — the pruned exact oracle."""

from fractions import Fraction

import numpy as np
import pytest

from repro.certify import certified_optimal, certified_optimal_makespan
from repro.exceptions import InfeasibleInstanceError
from repro.graphs.generators import (
    complete_bipartite,
    matching_graph,
    path_graph,
)
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import (
    UniformInstance,
    UnrelatedInstance,
    unit_uniform_instance,
)

from tests.conftest import random_r2, random_uniform_instance

F = Fraction


class TestKnownOptima:
    def test_two_incompatible_jobs(self):
        inst = UniformInstance(matching_graph(1), [4, 4], [1, 1])
        assert certified_optimal_makespan(inst) == 4

    def test_k22_on_two_machines(self):
        inst = UniformInstance(complete_bipartite(2, 2), [1, 1, 1, 1], [1, 1])
        assert certified_optimal_makespan(inst) == 2

    def test_empty_instance(self):
        from repro.graphs.generators import empty_graph

        inst = UniformInstance(empty_graph(0), [], [1])
        result = certified_optimal(inst)
        assert result.makespan == 0 and result.proof == "bound-tight"

    def test_infeasible_single_machine(self):
        inst = UniformInstance(matching_graph(1), [1, 1], [1])
        with pytest.raises(InfeasibleInstanceError):
            certified_optimal(inst)


class TestMatchesBruteForce:
    """Acceptance: the oracle provably matches brute force at small n."""

    def test_random_uniform_instances(self, rng):
        for _ in range(40):
            inst = random_uniform_instance(rng)
            assert inst.n <= 12
            assert certified_optimal_makespan(inst) == brute_force_makespan(inst)

    def test_random_unrelated_instances(self, rng):
        for _ in range(20):
            inst = random_r2(rng)
            assert certified_optimal_makespan(inst) == brute_force_makespan(inst)

    def test_unrelated_with_forbidden_pairs(self, rng):
        for _ in range(10):
            inst = random_r2(rng)
            times = [list(row) for row in inst.times]
            # forbid each job on one machine, alternating; this may make
            # the instance genuinely infeasible (forced co-location of
            # conflicting jobs) — both solvers must then agree on that
            for j in range(inst.n):
                times[j % 2][j] = None
            pinned = UnrelatedInstance(inst.graph, times)
            try:
                naive = brute_force_makespan(pinned)
            except InfeasibleInstanceError:
                with pytest.raises(InfeasibleInstanceError):
                    certified_optimal(pinned)
                continue
            assert certified_optimal_makespan(pinned) == naive


class TestProofMetadata:
    def test_bound_tight_fast_path(self):
        # unit jobs on a path: dispatch is exact here and meets the
        # capacity bound, so no nodes should be explored
        inst = unit_uniform_instance(path_graph(6), [1, 1, 1])
        result = certified_optimal(inst)
        assert result.proof == "bound-tight"
        assert result.nodes == 0
        assert result.seeded_from is not None
        assert result.makespan == result.lower_bound

    def test_search_proof_reports_nodes(self):
        inst = UniformInstance(matching_graph(2), [5, 3, 4, 2], [3, 1])
        result = certified_optimal(inst)
        assert result.proof in ("bound-tight", "search-exhausted")
        assert result.makespan == brute_force_makespan(inst)

    def test_optimal_alias(self):
        inst = UniformInstance(path_graph(3), [2, 1, 2], [1, 1])
        result = certified_optimal(inst)
        assert result.optimal == result.makespan


class TestScaleTarget:
    """Acceptance: n = 30 uniform unit-job bipartite in well under a minute."""

    @pytest.mark.parametrize("seed,p,speeds", [
        (3, 0.2, [3, 2, 2, 1]),
        (7, 0.35, [1, 1, 1, 1]),
        (11, 0.15, [5, 3, 1]),
    ])
    def test_n30_unit_bipartite(self, seed, p, speeds):
        import time

        graph = gnnp(15, p, seed=seed)  # 30 vertices
        inst = unit_uniform_instance(graph, speeds)
        start = time.perf_counter()
        result = certified_optimal(inst)
        elapsed = time.perf_counter() - start
        assert elapsed < 60.0
        assert result.schedule.is_feasible()
        assert result.lower_bound is not None
        assert result.makespan >= result.lower_bound
