"""Tests for :mod:`repro.core.ablations` — Algorithm 1 design-choice knobs."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.ablations import (
    ABLATION_VARIANTS,
    greedy_independent_set_containing,
    sqrt_approx_ablation,
)
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.independent_set import max_weight_independent_set_containing
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.instance import UniformInstance

F = Fraction


def _instance(seed=0, n_side=8, m=4):
    rng = np.random.default_rng(seed)
    graph = gnnp(n_side, 1.5 / n_side, seed=rng)
    p = [int(x) for x in rng.integers(1, 9, size=graph.n)]
    speeds = sorted(
        (F(int(x)) for x in rng.integers(1, 6, size=m)), reverse=True
    )
    return UniformInstance(graph, p, speeds)


class TestGreedyIndependentSet:
    def test_contains_required(self):
        g = generators.crown(3)
        out = greedy_independent_set_containing(g, [1] * 6, [0])
        assert 0 in out
        assert g.is_independent_set(out)

    def test_none_when_required_conflicts(self):
        g = generators.complete_bipartite(2, 2)
        assert greedy_independent_set_containing(g, [1] * 4, [0, 2]) is None

    def test_never_heavier_than_exact(self):
        for seed in range(8):
            g = gnnp(6, 0.3, seed=seed)
            weights = list(np.random.default_rng(seed).integers(1, 9, size=g.n))
            greedy = greedy_independent_set_containing(g, weights, [])
            exact = max_weight_independent_set_containing(g, weights, [])
            assert sum(weights[v] for v in greedy) <= sum(
                weights[v] for v in exact
            )

    def test_empty_required_on_empty_graph(self):
        g = generators.empty_graph(4)
        out = greedy_independent_set_containing(g, [2, 2, 2, 2], [])
        assert out == {0, 1, 2, 3}


class TestVariants:
    def test_unknown_variant_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown variant"):
            sqrt_approx_ablation(_instance(), "nonsense")

    def test_all_variants_feasible(self):
        inst = _instance(seed=1)
        for variant in ABLATION_VARIANTS:
            schedule = sqrt_approx_ablation(inst, variant)
            assert schedule.is_feasible(), variant

    def test_paper_variant_matches_algorithm1(self):
        for seed in range(5):
            inst = _instance(seed=seed)
            ablation = sqrt_approx_ablation(inst, "paper")
            reference = sqrt_approx_schedule(inst).schedule
            assert ablation.makespan == reference.makespan

    def test_s1_only_matches_s1(self):
        inst = _instance(seed=2)
        s1_only = sqrt_approx_ablation(inst, "s1_only")
        reference = sqrt_approx_schedule(inst)
        assert s1_only.makespan == reference.s1.makespan

    def test_min_never_worse_than_either_branch(self):
        for seed in range(5):
            inst = _instance(seed=seed)
            paper = sqrt_approx_ablation(inst, "paper")
            s1_only = sqrt_approx_ablation(inst, "s1_only")
            s2_pref = sqrt_approx_ablation(inst, "s2_preferred")
            assert paper.makespan <= s1_only.makespan
            assert paper.makespan <= s2_pref.makespan

    def test_single_machine_with_edges_raises(self):
        inst = UniformInstance(BipartiteGraph(2, [(0, 1)]), [3, 3], [F(1)])
        with pytest.raises(InfeasibleInstanceError):
            sqrt_approx_ablation(inst, "paper")

    def test_zero_jobs(self):
        inst = UniformInstance(generators.empty_graph(0), [], [F(1), F(1)])
        assert sqrt_approx_ablation(inst, "greedy_mis").makespan == 0

    def test_tiny_instances_exact_in_all_variants(self):
        inst = UniformInstance(BipartiteGraph(2, [(0, 1)]), [2, 2], [F(1), F(1)])
        for variant in ABLATION_VARIANTS:
            assert sqrt_approx_ablation(inst, variant).makespan == 2


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2000),
    n_side=st.integers(3, 10),
    m=st.integers(2, 5),
)
def test_property_every_variant_is_feasible(seed, n_side, m):
    inst = _instance(seed=seed, n_side=n_side, m=m)
    for variant in ABLATION_VARIANTS:
        schedule = sqrt_approx_ablation(inst, variant)
        assert schedule.is_feasible()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2000))
def test_property_paper_dominates_ablations_or_ties_often(seed):
    """The control never loses to s1_only (it takes a min including S1)."""
    inst = _instance(seed=seed, n_side=7, m=4)
    paper = sqrt_approx_ablation(inst, "paper")
    s1_only = sqrt_approx_ablation(inst, "s1_only")
    assert paper.makespan <= s1_only.makespan
