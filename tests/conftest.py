"""Shared fixtures and instance factories for the test suite."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.instance import UniformInstance, UnrelatedInstance


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


def random_bipartite(rng: np.random.Generator, max_side: int = 8, p: float | None = None) -> BipartiteGraph:
    """A random two-sided graph for oracle-based tests."""
    a = int(rng.integers(1, max_side + 1))
    b = int(rng.integers(1, max_side + 1))
    prob = float(rng.random() * 0.6) if p is None else p
    edges = [(i, j) for i in range(a) for j in range(b) if rng.random() < prob]
    return BipartiteGraph.from_parts(a, b, edges)


def random_uniform_instance(
    rng: np.random.Generator,
    max_jobs: int = 9,
    max_machines: int = 4,
    max_p: int = 8,
    max_speed: int = 6,
) -> UniformInstance:
    """A small random uniform instance for brute-force comparisons."""
    g = random_bipartite(rng, max_side=max(1, max_jobs // 2))
    p = [int(x) for x in rng.integers(1, max_p + 1, g.n)]
    m = int(rng.integers(2, max_machines + 1))
    speeds = sorted(
        (Fraction(int(rng.integers(1, max_speed + 1))) for _ in range(m)),
        reverse=True,
    )
    return UniformInstance(g, p, speeds)


def random_r2(rng: np.random.Generator, max_side: int = 5, max_time: int = 20) -> UnrelatedInstance:
    """A small random two-machine unrelated instance."""
    g = random_bipartite(rng, max_side=max_side)
    times = [[int(x) for x in rng.integers(1, max_time + 1, g.n)] for _ in range(2)]
    return UnrelatedInstance(g, times)
