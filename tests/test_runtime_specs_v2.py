"""Tests for batch-spec v2 (``machines`` blocks) and the spec bugfixes."""

import json

import pytest

from repro.cli import main
from repro.exceptions import InvalidInstanceError
from repro.io import read_jsonl
from repro.runtime import (
    SPEC_FORMAT,
    SPEC_FORMAT_V2,
    BatchRunner,
    expand_specs,
    load_spec_file,
)


def v2_spec(instances, defaults=None):
    data = {"format": SPEC_FORMAT_V2, "instances": instances}
    if defaults is not None:
        data["defaults"] = defaults
    return data


class TestV1Unchanged:
    V1 = {
        "format": SPEC_FORMAT,
        "defaults": {"speeds": "2,1", "jobs": "unit"},
        "instances": [
            {"family": "crown", "n": 3, "count": 2},
            {"family": "gnnp", "n": 4, "p": 0.2, "seed": 5},
        ],
    }

    def test_v1_expansion_is_pinned(self):
        """The exact v1 task list (names, kinds, machine data) a seed-era
        file produced must survive the v2 extension."""
        tasks = expand_specs(self.V1)
        assert [t.name for t in tasks] == [
            "crown-n3-s0", "crown-n3-s1", "gnnp-n4"
        ]
        assert all(t.payload["kind"] == "uniform_instance" for t in tasks)
        assert all(t.payload["speeds"] == ["2/1", "1/1"] for t in tasks)

    def test_v1_rejects_machines(self):
        with pytest.raises(InvalidInstanceError, match="machines"):
            expand_specs(
                {
                    "format": SPEC_FORMAT,
                    "instances": [
                        {"family": "path", "n": 4,
                         "machines": {"kind": "unrelated"}}
                    ],
                }
            )

    def test_unknown_format_still_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unsupported spec format"):
            expand_specs({"format": "repro/batch-spec/v9", "instances": [{}]})


class TestV2Machines:
    def test_unrelated_sweep_expands_to_unrelated_instances(self):
        tasks = expand_specs(
            v2_spec(
                [{"family": "gnnp", "n": 5, "p": 0.2, "seed": 0, "count": 3}],
                defaults={
                    "machines": {"kind": "unrelated", "model": "correlated",
                                 "m": 3}
                },
            )
        )
        assert len(tasks) == 3
        assert all(t.payload["kind"] == "unrelated_instance" for t in tasks)
        assert all(len(t.payload["times"]) == 3 for t in tasks)
        assert [t.name for t in tasks] == [
            "correlated/gnnp-n5-s0", "correlated/gnnp-n5-s1",
            "correlated/gnnp-n5-s2",
        ]

    def test_sweep_is_deterministic_and_seed_varied(self):
        spec = v2_spec(
            [{"family": "gnnp", "n": 5, "p": 0.3, "seed": 2, "count": 2,
              "machines": {"kind": "unrelated", "model": "uniform_pij"}}]
        )
        a, b = expand_specs(spec), expand_specs(spec)
        assert [t.payload for t in a] == [t.payload for t in b]
        assert a[0].payload != a[1].payload  # consecutive seeds differ

    def test_worker_count_invariance(self):
        tasks = expand_specs(
            v2_spec(
                [{"family": "gnnp", "n": 5, "p": 0.2, "seed": 0, "count": 4,
                  "machines": {"kind": "unrelated", "model": "two_value",
                               "m": 2}}]
            )
        )
        sequential = BatchRunner(workers=1).run_to_list(tasks)
        parallel = BatchRunner(workers=2).run_to_list(tasks)
        key = lambda r: (r.index, r.name, r.key, r.chosen, r.makespan,
                         r.lower_bound, r.ratio, r.feasible, r.error)
        assert [key(r) for r in sequential] == [key(r) for r in parallel]

    def test_uniform_profile_and_hardness_models(self):
        tasks = expand_specs(
            v2_spec(
                [
                    {"family": "crown", "n": 3,
                     "machines": {"kind": "uniform", "profile": "geometric",
                                  "m": 4}},
                    {"family": "path", "n": 6,
                     "machines": {"kind": "uniform", "model": "hardness_q",
                                  "k": 1}},
                    {"family": "path", "n": 6,
                     "machines": {"kind": "unrelated", "model": "hardness_r",
                                  "m": 3, "d": 30}},
                ]
            )
        )
        kinds = [t.payload["kind"] for t in tasks]
        assert kinds == ["uniform_instance", "uniform_instance",
                         "unrelated_instance"]
        assert [t.name for t in tasks] == [
            "geometric/crown-n3", "hardness_q/path-n6", "hardness_r/path-n6"
        ]

    def test_machines_rejected_on_inline_and_path_entries(self):
        inline = {"name": "x", "instance": {"kind": "uniform_instance"},
                  "machines": {"kind": "unrelated"}}
        with pytest.raises(InvalidInstanceError, match="family"):
            expand_specs(v2_spec([inline]))
        with pytest.raises(InvalidInstanceError, match="family"):
            expand_specs(v2_spec([{"path": "x.json",
                                   "machines": {"kind": "unrelated"}}]))

    def test_machines_plus_entry_speeds_is_an_error(self):
        with pytest.raises(InvalidInstanceError, match="speeds"):
            expand_specs(
                v2_spec(
                    [{"family": "path", "n": 4, "speeds": "2,1",
                      "machines": {"kind": "unrelated"}}]
                )
            )

    def test_default_model_is_labelled_uniform_pij(self):
        """Regression: an unrelated block without 'model' builds
        uniform_pij, so its task-name tag must say so (not 'unrelated')."""
        (task,) = expand_specs(
            v2_spec([{"family": "path", "n": 4,
                      "machines": {"kind": "unrelated", "m": 2}}])
        )
        assert task.name == "uniform_pij/path-n4"

    def test_omitted_jobs_keeps_seeded_base_draw(self):
        """Regression: entries without 'jobs' must pass p=None so models
        like correlated keep their documented seeded U{1..20} base draw
        instead of collapsing to all-ones job effects."""
        machines = {"kind": "unrelated", "model": "correlated", "m": 2,
                    "noise": 0}
        (drawn,) = expand_specs(
            v2_spec([{"family": "empty", "n": 6, "machines": machines}])
        )
        (unit,) = expand_specs(
            v2_spec([{"family": "empty", "n": 6, "jobs": "unit",
                      "machines": machines}])
        )
        # unit jobs: every row is constant (a_i * 1); the seeded draw is not
        assert all(len(set(row)) == 1 for row in unit.payload["times"])
        assert any(len(set(row)) > 1 for row in drawn.payload["times"])

    def test_entry_machines_overrides_defaults(self):
        tasks = expand_specs(
            v2_spec(
                [
                    {"family": "path", "n": 4},
                    {"family": "path", "n": 4,
                     "machines": {"kind": "uniform", "speeds": "5,1"}},
                ],
                defaults={"machines": {"kind": "unrelated", "m": 2}},
            )
        )
        assert tasks[0].payload["kind"] == "unrelated_instance"
        assert tasks[1].payload["kind"] == "uniform_instance"
        assert tasks[1].payload["speeds"] == ["5/1", "1/1"]


class TestSpecBugfixRegressions:
    def test_malformed_speeds_is_a_diagnostic(self):
        """Regression: a bad speed string in a spec raised a raw
        ValueError ('Invalid literal for Fraction') instead of an
        InvalidInstanceError diagnostic."""
        for bad in ("", "1,,2", "1/0"):
            with pytest.raises(InvalidInstanceError):
                expand_specs(
                    {"instances": [{"family": "path", "n": 3, "speeds": bad}]}
                )

    def test_malformed_jobs_is_a_diagnostic(self):
        with pytest.raises(InvalidInstanceError):
            expand_specs(
                {"instances": [{"family": "path", "n": 3, "jobs": ["x"]}]}
            )

    def test_overlapping_family_entries_get_unique_names(self):
        """Regression: two identical family entries emitted colliding
        task names, making JSONL result rows ambiguous."""
        entry = {"family": "path", "n": 4, "count": 2, "seed": 0}
        tasks = expand_specs({"instances": [dict(entry), dict(entry)]})
        names = [t.name for t in tasks]
        assert len(set(names)) == 4
        assert names == [
            "path-n4-s0-e0", "path-n4-s1-e0", "path-n4-s0-e1", "path-n4-s1-e1"
        ]

    def test_non_overlapping_names_stay_unsuffixed(self):
        tasks = expand_specs(
            {"instances": [
                {"family": "path", "n": 4},
                {"family": "crown", "n": 4},
            ]}
        )
        assert [t.name for t in tasks] == ["path-n4", "crown-n4"]

    def test_explicit_name_collision_disambiguated(self):
        tasks = expand_specs(
            {"instances": [
                {"family": "path", "n": 4, "name": "same"},
                {"family": "crown", "n": 4, "name": "same"},
            ]}
        )
        assert [t.name for t in tasks] == ["same-e0", "same-e1"]

    def test_shape_keys_in_defaults_rejected(self):
        """Regression: 'family' (or 'instance'/'path') in defaults silently
        shadowed every entry's own shape selection."""
        for shape in ({"family": "path"}, {"instance": {}}, {"path": "x.json"}):
            with pytest.raises(InvalidInstanceError, match="defaults"):
                expand_specs(
                    {"defaults": shape,
                     "instances": [{"family": "crown", "n": 4}]}
                )


class TestV2EndToEnd:
    @pytest.fixture
    def v2_spec_path(self, tmp_path):
        path = tmp_path / "spec_v2.json"
        path.write_text(
            json.dumps(
                v2_spec(
                    [
                        {"family": "gnnp", "n": 5, "p": 0.2, "seed": 0,
                         "count": 2},
                        # identical replica of seed 0 above: exercises dedup
                        {"family": "gnnp", "n": 5, "p": 0.2, "seed": 0},
                    ],
                    defaults={
                        "machines": {"kind": "unrelated",
                                     "model": "correlated", "m": 2}
                    },
                )
            ),
            encoding="utf-8",
        )
        return path

    def test_batch_cli_runs_v2_with_cache_and_dedup(
        self, v2_spec_path, tmp_path, capsys
    ):
        out = tmp_path / "results.jsonl"
        cache = tmp_path / "cache.jsonl"
        args = ["batch", str(v2_spec_path), "--out", str(out),
                "--cache", str(cache)]
        assert main(args) == 0
        stdout = capsys.readouterr().out
        assert "3 instances (2 solved, 1 cached" in stdout
        assert "per-algorithm summary" in stdout
        records = read_jsonl(out)
        assert len(records) == 3
        assert all(r["instance_kind"] == "unrelated_instance" for r in records)
        # warm rerun: the persistent cache serves everything
        assert main(["batch", str(v2_spec_path), "--cache", str(cache),
                     "--no-summary"]) == 0
        assert "(0 solved, 3 cached" in capsys.readouterr().out

    def test_per_model_aggregation_of_v2_results(self, v2_spec_path):
        from repro.analysis.suites import summarize_models

        results = BatchRunner().run_to_list(load_spec_file(v2_spec_path))
        rows = summarize_models(results)
        assert len(rows) == 1
        model, algorithm, count = rows[0][0], rows[0][1], rows[0][2]
        assert model == "correlated"
        assert algorithm == results[0].chosen
        assert count == 3
