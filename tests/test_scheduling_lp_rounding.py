"""Tests for :mod:`repro.scheduling.lp_rounding` — the [18] baseline."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UnrelatedInstance
from repro.scheduling.lp_rounding import (
    greedy_min_time_schedule,
    lst_two_approx,
)

F = Fraction


def _empty_instance(times):
    n = len(times[0])
    return UnrelatedInstance(generators.empty_graph(n), times)


def _random_instance(n, m, seed, high=20):
    rng = np.random.default_rng(seed)
    times = rng.integers(1, high, size=(m, n)).tolist()
    return _empty_instance(times)


class TestGreedyMinTime:
    def test_each_job_on_fastest_machine(self):
        inst = _empty_instance([[3, 1], [1, 5]])
        schedule = greedy_min_time_schedule(inst)
        assert schedule.assignment == (1, 0)

    def test_respects_forbidden_pairs(self):
        inst = _empty_instance([[None, 1], [4, 5]])
        schedule = greedy_min_time_schedule(inst)
        assert schedule.assignment == (1, 0)

    def test_upper_bounds_optimum_structure(self):
        inst = _random_instance(8, 3, seed=0)
        schedule = greedy_min_time_schedule(inst)
        assert schedule.makespan >= brute_force_makespan(inst)


class TestLstTwoApprox:
    def test_single_job(self):
        inst = _empty_instance([[4], [2]])
        result = lst_two_approx(inst)
        assert result.schedule.makespan == 2

    def test_zero_jobs(self):
        inst = UnrelatedInstance(generators.empty_graph(0), [[], []])
        result = lst_two_approx(inst)
        assert result.schedule.makespan == 0
        assert result.deadline == 0.0

    def test_two_jobs_two_machines(self):
        # each machine is fast for exactly one job
        inst = _empty_instance([[1, 10], [10, 1]])
        result = lst_two_approx(inst)
        assert result.schedule.makespan == 1

    def test_identical_split(self):
        # four unit jobs, two identical machines: optimum is 2; rounding
        # may add one extra unit job per machine (T + pmax bound)
        inst = _empty_instance([[1, 1, 1, 1], [1, 1, 1, 1]])
        result = lst_two_approx(inst)
        assert result.schedule.makespan <= 3

    @pytest.mark.parametrize("seed", range(6))
    def test_two_approximation_vs_brute_force(self, seed):
        inst = _random_instance(7, 3, seed=seed)
        opt = brute_force_makespan(inst)
        result = lst_two_approx(inst)
        assert result.schedule.makespan <= 2 * opt
        # the LP deadline lower-bounds the optimum (up to tolerance)
        assert result.deadline <= float(opt) * (1 + 1e-3)

    @pytest.mark.parametrize("seed", range(4))
    def test_certified_ratio_at_most_two(self, seed):
        inst = _random_instance(10, 4, seed=100 + seed)
        result = lst_two_approx(inst)
        assert result.certified_ratio <= 2 + 1e-6

    def test_forbidden_pairs_respected(self):
        inst = _empty_instance(
            [[None, 2, 3], [5, None, 4], [6, 7, None]]
        )
        result = lst_two_approx(inst)
        for j, i in enumerate(result.schedule.assignment):
            assert inst.times[i][j] is not None

    def test_graph_blindness_is_reported(self):
        # two incompatible jobs that LP wants on the same machine
        graph = generators.complete_bipartite(1, 1)
        inst = UnrelatedInstance(graph, [[1, 1], [100, 100]])
        result = lst_two_approx(inst)
        # the rounded schedule ignores the conflict...
        assert not result.schedule.is_feasible() or result.schedule.makespan >= 2
        # ...which is precisely what makes it a price-of-incompatibility probe

    def test_iteration_count_reported(self):
        inst = _random_instance(6, 2, seed=3)
        result = lst_two_approx(inst)
        assert result.lp_iterations >= 1


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(2, 8),
    m=st.integers(2, 3),
    seed=st.integers(0, 10_000),
)
def test_property_lst_within_twice_optimum(n, m, seed):
    inst = _random_instance(n, m, seed=seed, high=12)
    opt = brute_force_makespan(inst)
    result = lst_two_approx(inst)
    assert result.schedule.makespan <= 2 * opt
    assert all(0 <= i < m for i in result.schedule.assignment)
