"""Tests for Theorem 24's reduction (1-PrExt -> Rm)."""

from fractions import Fraction

import pytest

from repro.exceptions import InvalidInstanceError
from repro.graphs.precoloring import (
    claw_no_instance,
    planted_yes_instance,
    solve_prext,
)
from repro.hardness.r_reduction import theorem24_reduction
from repro.scheduling.brute_force import brute_force_makespan


class TestConstruction:
    def test_times_matrix_shape(self):
        prext = planted_yes_instance(5, seed=0)
        r = theorem24_reduction(prext, d=40, m=4)
        assert r.instance.m == 4
        assert r.instance.n == 5

    def test_precolored_jobs_cheap_only_on_their_machine(self):
        prext = planted_yes_instance(6, seed=1)
        r = theorem24_reduction(prext, d=40)
        for c, v in enumerate(prext.precolored):
            for i in range(3):
                expected = 1 if i == c else 40
                assert r.instance.times[i][v] == expected

    def test_other_jobs_unit_on_fast_machines(self):
        prext = planted_yes_instance(6, seed=2)
        r = theorem24_reduction(prext, d=40)
        others = set(range(6)) - set(prext.precolored)
        for v in others:
            assert all(r.instance.times[i][v] == 1 for i in range(3))

    def test_slow_machines_all_d(self):
        prext = planted_yes_instance(5, seed=3)
        r = theorem24_reduction(prext, d=17, m=5)
        for i in (3, 4):
            assert all(t == 17 for t in r.instance.times[i])

    def test_preconditions(self):
        prext = planted_yes_instance(5, seed=4)
        with pytest.raises(InvalidInstanceError):
            theorem24_reduction(prext, d=1)
        with pytest.raises(InvalidInstanceError):
            theorem24_reduction(prext, d=10, m=2)


class TestGap:
    @pytest.mark.parametrize("seed", range(4))
    def test_yes_side(self, seed):
        prext = planted_yes_instance(6, seed=seed)
        coloring = solve_prext(prext)
        assert coloring is not None
        r = theorem24_reduction(prext, d=100)
        s = r.schedule_from_extension(coloring)
        assert s.is_feasible()
        assert s.makespan <= r.yes_makespan_bound

    def test_no_side_exact(self):
        no = claw_no_instance()
        r = theorem24_reduction(no, d=25)
        opt = brute_force_makespan(r.instance)
        assert opt >= r.no_makespan_lower_bound == 25

    def test_yes_optimum_below_gap(self):
        prext = planted_yes_instance(7, seed=5)
        r = theorem24_reduction(prext, d=100)
        opt = brute_force_makespan(r.instance)
        assert opt <= r.yes_makespan_bound < r.no_makespan_lower_bound

    def test_gap_property(self):
        prext = planted_yes_instance(5, seed=6)
        r = theorem24_reduction(prext, d=60)
        assert r.gap == Fraction(60, 5)

    def test_extra_machines_never_help(self):
        """m > 3 only adds slow machines: the YES optimum is unchanged."""
        prext = planted_yes_instance(5, seed=7)
        a = brute_force_makespan(theorem24_reduction(prext, d=30, m=3).instance)
        b = brute_force_makespan(theorem24_reduction(prext, d=30, m=4).instance)
        assert a == b

    def test_rejects_non_extension(self):
        prext = planted_yes_instance(5, seed=8)
        r = theorem24_reduction(prext, d=30)
        with pytest.raises(InvalidInstanceError):
            r.schedule_from_extension([2, 1, 0, 0, 0])
