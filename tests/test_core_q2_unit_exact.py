"""Tests for Theorem 4 (exact algorithm for Q2 with unit jobs)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.q2_unit_exact import (
    feasible_first_machine_counts,
    q2_split_cost,
    q2_unit_exact,
)
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import (
    complete_bipartite,
    empty_graph,
    matching_graph,
    path_graph,
)
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, unit_uniform_instance

from tests.conftest import random_bipartite


class TestFeasibleCounts:
    def test_empty_graph_all_counts(self):
        counts = feasible_first_machine_counts(empty_graph(4))
        assert counts == {0, 1, 2, 3, 4}

    def test_complete_bipartite_only_sides(self):
        counts = feasible_first_machine_counts(complete_bipartite(2, 5))
        assert counts == {2, 5}

    def test_path_even(self):
        counts = feasible_first_machine_counts(path_graph(4))
        assert counts == {2}

    def test_matching_all_middle(self):
        # k disjoint edges: any n1 from choosing one endpoint each = exactly k
        counts = feasible_first_machine_counts(matching_graph(3))
        assert counts == {3}

    def test_mixed_components(self):
        # one edge (1 each way) + 2 isolated vertices (0..2 extra)
        g = BipartiteGraph(4, [(0, 1)])
        counts = feasible_first_machine_counts(g)
        assert counts == {1, 2, 3}

    def test_exhaustive_cross_check(self):
        rng = np.random.default_rng(90)
        for _ in range(15):
            g = random_bipartite(rng, max_side=4)
            counts = feasible_first_machine_counts(g)
            truth = set()
            for mask in range(1 << g.n):
                m1 = [v for v in range(g.n) if (mask >> v) & 1]
                m2 = [v for v in range(g.n) if not (mask >> v) & 1]
                if g.is_independent_set(m1) and g.is_independent_set(m2):
                    truth.add(len(m1))
            assert counts == truth


class TestSplitCost:
    def test_cost_formula(self):
        speeds = (Fraction(3), Fraction(1))
        assert q2_split_cost(6, 1, speeds) == Fraction(2)
        assert q2_split_cost(0, 4, speeds) == Fraction(4)


class TestExactAlgorithm:
    def test_preconditions(self):
        with pytest.raises(InvalidInstanceError):
            q2_unit_exact(unit_uniform_instance(path_graph(2), [1, 1, 1]))
        with pytest.raises(InvalidInstanceError):
            q2_unit_exact(UniformInstance(path_graph(2), [2, 1], [1, 1]))
        with pytest.raises(InvalidInstanceError):
            q2_unit_exact(
                unit_uniform_instance(path_graph(2), [1, 1]), method="nope"  # type: ignore[arg-type]
            )

    def test_empty(self):
        inst = unit_uniform_instance(BipartiteGraph(0, []), [1, 1])
        assert q2_unit_exact(inst).makespan == 0

    def test_matches_bruteforce_subset_sum(self):
        rng = np.random.default_rng(91)
        for _ in range(25):
            g = random_bipartite(rng, max_side=5)
            speeds = sorted(
                (Fraction(int(x)) for x in rng.integers(1, 7, 2)), reverse=True
            )
            inst = unit_uniform_instance(g, speeds)
            s = q2_unit_exact(inst, method="subset_sum")
            assert s.is_feasible()
            assert s.makespan == brute_force_makespan(inst)

    def test_paper_fptas_method_agrees(self):
        rng = np.random.default_rng(92)
        for _ in range(10):
            g = random_bipartite(rng, max_side=4)
            speeds = sorted(
                (Fraction(int(x)) for x in rng.integers(1, 7, 2)), reverse=True
            )
            inst = unit_uniform_instance(g, speeds)
            a = q2_unit_exact(inst, method="subset_sum")
            b = q2_unit_exact(inst, method="fptas")
            assert a.makespan == b.makespan

    def test_speeds_drive_split(self):
        # K_{3,3}: splits {3,3}; speeds decide nothing — but with a fast M1
        # the optimum puts either side there
        inst = unit_uniform_instance(complete_bipartite(3, 3), [3, 1])
        s = q2_unit_exact(inst)
        assert s.makespan == 3  # max(3/3, 3/1) = 3

    def test_isolated_vertices_balance(self):
        # one edge + 4 isolated: fast machine should take more
        g = BipartiteGraph(6, [(0, 1)])
        inst = unit_uniform_instance(g, [2, 1])
        s = q2_unit_exact(inst)
        assert s.makespan == 2  # 4 on fast (4/2=2), 2 on slow

    def test_infeasible_only_when_single_machine_equivalent(self):
        # Q2 with a bipartite graph is always feasible; check no raise
        rng = np.random.default_rng(93)
        for _ in range(10):
            g = random_bipartite(rng, max_side=4)
            inst = unit_uniform_instance(g, [1, 1])
            q2_unit_exact(inst)
