"""Pre-refactor artifacts must survive the conflict-graph generalization.

``tests/fixtures/`` holds instance JSON and batch-spec files captured
before ``repro.graphs`` grew beyond bipartite, together with the
behaviour recorded at capture time (``prerefactor_expected.json`` /
``prerefactor_spec_expected.json``).  These tests pin three guarantees:

* every old payload still **loads** (no schema break),
* bipartite payloads still **serialise byte-identically** (content-hash
  caches keyed on serialised bytes keep hitting),
* auto dispatch still makes the **same choice with the same makespan**.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.engine import auto_choice, solve
from repro.graphs.bipartite import BipartiteGraph
from repro.io import instance_to_dict, load_instance, load_json
from repro.runtime import load_spec_file

FIXTURES = Path(__file__).parent / "fixtures"
EXPECTED = json.loads((FIXTURES / "prerefactor_expected.json").read_text())
SPEC_EXPECTED = json.loads(
    (FIXTURES / "prerefactor_spec_expected.json").read_text()
)

INSTANCE_FILES = (
    "prerefactor_uniform_bipartite.json",
    "prerefactor_unrelated_bipartite.json",
    "prerefactor_unrelated_forbidden.json",
)


def _payload_sha256(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TestInstancePayloads:
    @pytest.mark.parametrize("filename", INSTANCE_FILES)
    def test_loads_and_serializes_byte_identically(self, filename):
        raw = load_json(FIXTURES / filename)
        instance = load_instance(FIXTURES / filename)
        assert isinstance(instance.graph, BipartiteGraph)
        roundtrip = instance_to_dict(instance)
        assert roundtrip == raw
        # byte identity, not just dict equality: key order and formatting
        # are part of the cache contract
        assert json.dumps(roundtrip, indent=2) == json.dumps(raw, indent=2)
        assert roundtrip["format"] == "repro/v1"

    def test_uniform_solves_identically(self):
        instance = load_instance(FIXTURES / "prerefactor_uniform_bipartite.json")
        expected = EXPECTED["uniform"]
        assert auto_choice(instance) == expected["auto_choice"]
        schedule = solve(instance)
        assert (
            f"{schedule.makespan.numerator}/{schedule.makespan.denominator}"
            == expected["makespan"]
        )
        assert schedule.is_feasible()

    def test_unrelated_solves_identically(self):
        instance = load_instance(
            FIXTURES / "prerefactor_unrelated_bipartite.json"
        )
        expected = EXPECTED["unrelated"]
        assert auto_choice(instance) == expected["auto_choice"]
        schedule = solve(instance)
        assert (
            f"{schedule.makespan.numerator}/{schedule.makespan.denominator}"
            == expected["makespan"]
        )
        assert schedule.is_feasible()

    def test_forbidden_pairs_still_load(self):
        instance = load_instance(
            FIXTURES / "prerefactor_unrelated_forbidden.json"
        )
        forbidden = [
            (i, j)
            for i in range(instance.m)
            for j in range(instance.n)
            if instance.processing_time(i, j) is None
        ]
        assert forbidden  # the fixture's point is the None entries


class TestSpecExpansion:
    @pytest.mark.parametrize(
        "spec_name", sorted(SPEC_EXPECTED), ids=lambda p: Path(p).stem
    )
    def test_expansion_matches_capture(self, spec_name):
        tasks = load_spec_file(FIXTURES / spec_name)
        got = [
            {
                "name": t.name,
                "algorithm": t.algorithm,
                "certify": t.certify,
                "payload_sha256": _payload_sha256(t.payload),
            }
            for t in tasks
        ]
        assert got == SPEC_EXPECTED[spec_name]
