"""Tests for schedules and feasibility validation."""

from fractions import Fraction

import pytest

from repro.exceptions import InvalidScheduleError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import matching_graph, path_graph
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.scheduling.schedule import Schedule, schedule_from_groups


def simple_instance(m: int = 2) -> UniformInstance:
    return UniformInstance(path_graph(4), [3, 1, 2, 4], [Fraction(2)] + [Fraction(1)] * (m - 1))


class TestScheduleBasics:
    def test_makespan_uniform(self):
        inst = simple_instance()
        s = Schedule(inst, [0, 1, 0, 1])
        # machine 0 (speed 2): p = 3 + 2 = 5 -> 5/2; machine 1: 1 + 4 = 5
        assert s.completion_times() == (Fraction(5, 2), Fraction(5))
        assert s.makespan == Fraction(5)

    def test_makespan_unrelated(self):
        g = BipartiteGraph(2, [])
        inst = UnrelatedInstance(g, [[5, 1], [2, 2]])
        s = Schedule(inst, [1, 0])
        assert s.makespan == Fraction(2)

    def test_empty_schedule(self):
        g = BipartiteGraph(0, [])
        inst = UniformInstance(g, [], [1])
        assert Schedule(inst, []).makespan == 0

    def test_jobs_on(self):
        inst = simple_instance()
        s = Schedule(inst, [0, 1, 0, 1])
        assert s.jobs_on(0) == [0, 2]
        assert s.machine_groups() == [[0, 2], [1, 3]]


class TestValidation:
    def test_conflict_detected(self):
        inst = simple_instance()
        with pytest.raises(InvalidScheduleError, match="incompatible"):
            Schedule(inst, [0, 0, 1, 1])  # jobs 0-1 adjacent on machine 0

    def test_check_false_defers(self):
        inst = simple_instance()
        s = Schedule(inst, [0, 0, 1, 1], check=False)
        assert not s.is_feasible()
        assert len(s.violations()) == 2  # (0,1) on M0 and (2,3) on M1

    def test_forbidden_pair_detected(self):
        g = BipartiteGraph(2, [])
        inst = UnrelatedInstance(g, [[1, None], [1, 1]])
        with pytest.raises(InvalidScheduleError, match="forbidden"):
            Schedule(inst, [0, 0])

    def test_machine_range_checked(self):
        inst = simple_instance()
        with pytest.raises(InvalidScheduleError):
            Schedule(inst, [0, 1, 0, 5])

    def test_length_checked(self):
        inst = simple_instance()
        with pytest.raises(InvalidScheduleError):
            Schedule(inst, [0, 1])

    def test_valid_schedule_passes(self):
        inst = simple_instance()
        s = Schedule(inst, [0, 1, 0, 1])
        assert s.is_feasible()
        assert s.violations() == []


class TestScheduleFromGroups:
    def test_roundtrip(self):
        inst = simple_instance()
        s = schedule_from_groups(inst, {0: [0, 2], 1: [1, 3]})
        assert s.assignment == (0, 1, 0, 1)

    def test_duplicate_assignment_rejected(self):
        inst = simple_instance()
        with pytest.raises(InvalidScheduleError, match="twice"):
            schedule_from_groups(inst, {0: [0, 1], 1: [1, 2, 3]})

    def test_missing_job_rejected(self):
        inst = simple_instance()
        with pytest.raises(InvalidScheduleError, match="not assigned"):
            schedule_from_groups(inst, {0: [0, 2]})


class TestEquality:
    def test_same_assignment_equal(self):
        inst = simple_instance()
        a = Schedule(inst, [0, 1, 0, 1])
        b = Schedule(inst, [0, 1, 0, 1])
        assert a == b and hash(a) == hash(b)

    def test_different_assignment_unequal(self):
        inst = UniformInstance(matching_graph(1), [1, 1], [1, 1])
        assert Schedule(inst, [0, 1]) != Schedule(inst, [1, 0])
