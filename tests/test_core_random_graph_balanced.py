"""Tests for the Section 6 balanced variant of Algorithm 2."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.random_graph_scheduler import (
    random_graph_schedule,
    random_graph_schedule_balanced,
)
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, unit_uniform_instance

F = Fraction


class TestBalancedVariant:
    def test_zero_jobs(self):
        inst = unit_uniform_instance(generators.empty_graph(0), [F(1), F(1)])
        assert random_graph_schedule_balanced(inst).makespan == 0

    def test_single_machine_edgeless(self):
        inst = unit_uniform_instance(generators.empty_graph(5), [F(2)])
        assert random_graph_schedule_balanced(inst).makespan == F(5, 2)

    def test_single_machine_with_edge_raises(self):
        inst = unit_uniform_instance(BipartiteGraph(2, [(0, 1)]), [F(1)])
        with pytest.raises(InfeasibleInstanceError):
            random_graph_schedule_balanced(inst)

    def test_non_unit_jobs_rejected(self):
        inst = UniformInstance(generators.empty_graph(2), [2, 1], [F(1), F(1)])
        with pytest.raises(InvalidInstanceError):
            random_graph_schedule_balanced(inst)

    def test_edgeless_graph_is_balanced_optimally(self):
        """All jobs isolated: the variant degrades to list scheduling,
        which is optimal for unit jobs on these speeds."""
        inst = unit_uniform_instance(generators.empty_graph(12), [F(3), F(2), F(1)])
        schedule = random_graph_schedule_balanced(inst)
        assert schedule.makespan == brute_force_makespan(inst)

    def test_plain_algorithm2_wastes_sparse_capacity(self):
        """The documented failure mode of plain Algorithm 2: with one
        conflict edge and many isolated jobs, M_2 idles; balancing fixes it."""
        graph = BipartiteGraph(20, [(0, 10)])
        inst = unit_uniform_instance(graph, [F(1), F(1)])
        plain = random_graph_schedule(inst)
        balanced = random_graph_schedule_balanced(inst)
        assert balanced.makespan <= plain.makespan
        assert balanced.makespan == 10  # perfect split of 20 unit jobs

    def test_feasible_on_random_graphs(self):
        for seed in range(6):
            graph = gnnp(15, 1.0 / 15, seed=seed)
            inst = unit_uniform_instance(graph, [F(3), F(2), F(1), F(1)])
            schedule = random_graph_schedule_balanced(inst)
            assert schedule.is_feasible()

    def test_never_worse_than_plain_on_sparse(self):
        worse = 0
        for seed in range(10):
            graph = gnnp(30, 0.2 / 30, seed=100 + seed)
            inst = unit_uniform_instance(graph, [F(4), F(2), F(1)])
            plain = random_graph_schedule(inst)
            balanced = random_graph_schedule_balanced(inst)
            if balanced.makespan > plain.makespan:
                worse += 1
        assert worse == 0


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 20),
    a=st.floats(0.0, 3.0),
    seed=st.integers(0, 3000),
    m=st.integers(2, 4),
)
def test_property_balanced_is_feasible_and_bounded(n, a, seed, m):
    graph = gnnp(n, min(1.0, a / n), seed=seed)
    speeds = [F(m - i) for i in range(m)]
    inst = unit_uniform_instance(graph, speeds)
    schedule = random_graph_schedule_balanced(inst)
    assert schedule.is_feasible()
    lower = min_cover_time(inst.speeds, inst.n)
    # sanity: never below the capacity bound, never absurdly above it
    assert schedule.makespan >= lower
    assert schedule.makespan <= inst.n  # one unit job per time step worst case
