"""Machine-speed and job-vector parsing shared by the CLI and spec files.

Both surfaces accept the same shorthand (``"3,3/2,1"`` speed strings,
``"unit"`` / named weight profiles / integer lists for jobs), and both
must turn malformed input into an
:exc:`~repro.exceptions.InvalidInstanceError` — the CLI maps those to a
one-line diagnostic and exit code 2, whereas a raw ``ValueError`` from
:class:`~fractions.Fraction` or ``int()`` would surface as a traceback.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Sequence

from repro.exceptions import InvalidInstanceError

__all__ = ["parse_speeds", "parse_jobs"]

JOB_PROFILES = ("uniform", "heavy_tailed", "one_giant")


def parse_speeds(value: str | Sequence[Any]) -> list[Fraction]:
    """Machine speeds from ``"3,3/2,1"`` or a JSON list, fastest first."""
    if isinstance(value, str):
        parts: Sequence[Any] = [part.strip() for part in value.split(",")]
    else:
        parts = list(value)
    try:
        speeds = sorted((Fraction(str(part)) for part in parts), reverse=True)
    except (ValueError, ZeroDivisionError) as exc:
        raise InvalidInstanceError(
            f"invalid machine speeds {value!r}: {exc}"
        ) from exc
    if not speeds:
        raise InvalidInstanceError("speeds must name at least one machine")
    return speeds


def parse_jobs(value: str | Sequence[Any], n: int, seed: int | None) -> list[int]:
    """Processing requirements for ``n`` jobs.

    ``"unit"`` (all ones), an explicit integer list, or one of the named
    weight profiles from :func:`repro.analysis.suites.job_weight_profile`
    (``"uniform"``, ``"heavy_tailed"``, ``"one_giant"``) drawn with the
    entry's seed.
    """
    if isinstance(value, str):
        if value == "unit":
            return [1] * n
        if value in JOB_PROFILES:
            from repro.analysis.suites import job_weight_profile

            return list(job_weight_profile(n, value, seed=seed))
        raise InvalidInstanceError(
            f"unknown jobs spec {value!r}; use 'unit', 'uniform', "
            "'heavy_tailed', 'one_giant', or an integer list"
        )
    try:
        return [int(x) for x in value]
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(
            f"invalid job list {value!r}: {exc}"
        ) from exc
