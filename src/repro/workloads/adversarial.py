"""Adversarial workload models lifted from the hardness reductions.

Theorems 8 and 24 are usually run one instance at a time through
:mod:`repro.hardness.pipeline`; these wrappers re-cut them as workload
models so batch sweeps can include adversarial geometry next to the
random ``p_ij`` families.  The incompatibility graph is the caller's
(any generated family); the three 1-PrExt precolored vertices are drawn
from the seed, so the same ``(graph, seed)`` always yields the same
instance.

The scheduling instances are real — what is *not* carried over is the
YES/NO answer bookkeeping of
:class:`~repro.hardness.q_reduction.QHardnessInstance`: a sweep only
needs the instance geometry (gadget-forced speeds for ``Q``, the
``1``-vs-``d`` time matrix for ``R``) that makes approximation ratios
blow up.
"""

from __future__ import annotations

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.precoloring import PrExtInstance
from repro.hardness.q_reduction import theorem8_reduction
from repro.hardness.r_reduction import theorem24_reduction
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.utils.rng import ensure_rng

__all__ = ["hardness_q", "hardness_r"]


def _seeded_prext(graph: BipartiteGraph, seed) -> PrExtInstance:
    """A 1-PrExt seed on ``graph``: three distinct vertices drawn from the
    seed take the three colors."""
    if graph.n < 3:
        raise InvalidInstanceError(
            f"hardness models need at least 3 vertices, got {graph.n}"
        )
    rng = ensure_rng(seed)
    verts = rng.choice(graph.n, size=3, replace=False)
    return PrExtInstance(graph, tuple(int(v) for v in verts))


def hardness_q(
    graph: BipartiteGraph,
    *,
    k: int = 2,
    m: int = 3,
    gadget_sizes: tuple[int, int, int] | None = (4, 2, 1),
    seed=None,
) -> UniformInstance:
    """A Theorem 8 instance: gadget-attached unit jobs on speeds
    ``49k^2, 5k, 1, 1/(kn), ...``.

    ``gadget_sizes = (x, x', x'')`` defaults to a small structurally
    faithful shape so sweeps stay tractable; pass ``None`` for the
    paper's ``(6k^2 n, kn, 1)`` sizes.  The job count grows by the
    attached gadget vertices (six gadgets, cf. Figure 1).
    """
    prext = _seeded_prext(graph, seed)
    return theorem8_reduction(prext, k, m=m, gadget_sizes=gadget_sizes).instance


def hardness_r(
    graph: BipartiteGraph,
    *,
    d: int | None = None,
    m: int = 3,
    seed=None,
) -> UnrelatedInstance:
    """A Theorem 24 instance: time 1 along a proper extension, ``d`` off it.

    ``d`` defaults to ``max(2, n^2)`` — big enough that any algorithm
    paying it once shows up clearly in ratio tables (the theorem's point:
    for ``m >= 3`` no reasonable guarantee exists).
    """
    prext = _seeded_prext(graph, seed)
    gap = max(2, graph.n * graph.n) if d is None else int(d)
    return theorem24_reduction(prext, gap, m=m).instance
