"""Generators for the non-bipartite conflict-graph families.

Batch-spec v3 ``"graph"`` blocks and the ``repro generate`` CLI build
their complete-multipartite and block-type instances here.  Everything
is deterministic per seed (``random.Random(seed)``), mirroring the
bipartite generators in :mod:`repro.graphs.generators`.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import InvalidInstanceError
from repro.graphs.conflict import BlockGraph, CompleteMultipartiteGraph

__all__ = [
    "complete_multipartite_graph",
    "random_complete_multipartite",
    "block_chain",
    "random_block_graph",
    "random_eligibility",
]


def complete_multipartite_graph(
    part_sizes: Sequence[int], free: int = 0
) -> CompleteMultipartiteGraph:
    """``K_{n1,n2,...}`` plus ``free`` isolated vertices.

    Classes occupy consecutive vertex ranges; free vertices come last.
    """
    return CompleteMultipartiteGraph.from_sizes(part_sizes, free=free)


def random_complete_multipartite(
    n: int,
    parts: int,
    *,
    free: int = 0,
    seed: int | None = None,
) -> CompleteMultipartiteGraph:
    """A random complete multipartite graph on ``n`` classified vertices.

    ``n`` vertices are split into ``parts`` non-empty classes with a
    seed-deterministic composition (every class gets at least one
    vertex; the rest are distributed uniformly), plus ``free`` isolated
    vertices appended after them.
    """
    n = int(n)
    parts = int(parts)
    if parts < 1:
        raise InvalidInstanceError("need at least one part")
    if n < parts:
        raise InvalidInstanceError(
            f"cannot split {n} vertices into {parts} non-empty parts"
        )
    rng = random.Random(seed)
    sizes = [1] * parts
    for _ in range(n - parts):
        sizes[rng.randrange(parts)] += 1
    return CompleteMultipartiteGraph.from_sizes(sizes, free=free)


def block_chain(block_sizes: Sequence[int]) -> BlockGraph:
    """Cliques chained at shared cut vertices (deterministic)."""
    return BlockGraph.chain(block_sizes)


def random_block_graph(
    n: int,
    *,
    max_block: int = 4,
    seed: int | None = None,
) -> BlockGraph:
    """A random block graph on ``n`` vertices.

    Grows a clique tree: starting from one vertex, repeatedly attaches a
    clique of random size (``2..max_block``, truncated to the remaining
    vertex budget) at a uniformly chosen existing vertex.  Every
    declared clique is a block, so the result is a valid block graph by
    construction; single leftover vertices attach as ``K_2`` blocks.
    """
    n = int(n)
    if n < 0:
        raise InvalidInstanceError("vertex count must be non-negative")
    max_block = int(max_block)
    if max_block < 2:
        raise InvalidInstanceError("max_block must be at least 2")
    if n == 0:
        return BlockGraph(0, [])
    rng = random.Random(seed)
    blocks: list[list[int]] = []
    used = 1  # vertex 0 exists even with no blocks
    while used < n:
        anchor = rng.randrange(used)
        budget = n - used
        size = min(rng.randint(2, max_block), budget + 1)
        fresh = list(range(used, used + size - 1))
        blocks.append([anchor] + fresh)
        used += size - 1
    return BlockGraph(n, blocks)


def random_eligibility(
    n: int,
    m: int,
    *,
    choices: int = 2,
    seed: int | None = None,
) -> list[list[int] | None]:
    """Seed-deterministic machine-eligibility masks for ``n`` jobs.

    Each job independently draws ``choices`` distinct eligible machines
    (capped at ``m``; ``choices >= m`` leaves the job unrestricted,
    encoded ``None``).  Every mask is non-empty, so no job is forbidden
    everywhere — feasibility then only depends on the conflict graph.
    """
    n = int(n)
    m = int(m)
    choices = int(choices)
    if m < 1:
        raise InvalidInstanceError("need at least one machine")
    if choices < 1:
        raise InvalidInstanceError("eligibility needs at least one choice")
    rng = random.Random(seed)
    masks: list[list[int] | None] = []
    for _ in range(n):
        if choices >= m:
            masks.append(None)
        else:
            masks.append(sorted(rng.sample(range(m), choices)))
    return masks
