"""Model registry and the spec-level ``machines`` block dispatcher.

Batch-spec v2 entries describe their machine environment declaratively::

    "machines": {"kind": "unrelated", "model": "correlated", "m": 3,
                 "noise": 2}
    "machines": {"kind": "uniform", "speeds": "3,3/2,1"}
    "machines": {"kind": "uniform", "profile": "geometric", "m": 4}
    "machines": {"kind": "uniform", "model": "hardness_q", "k": 2}

:func:`build_machines_instance` turns one such block plus a conflict
graph (and the entry's job vector / seed) into a concrete instance;
:func:`build_unrelated_instance` is the name-indexed entry point the CLI
and the suites use directly.  Unknown model parameters are reported as
:exc:`~repro.exceptions.InvalidInstanceError` diagnostics, never as raw
``TypeError`` tracebacks.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.exceptions import InvalidInstanceError
from repro.graphs.conflict import ConflictGraph
from repro.machines import profiles
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.workloads.adversarial import hardness_q, hardness_r
from repro.workloads.conflict_graphs import random_eligibility
from repro.workloads.parsing import parse_speeds
from repro.workloads.unrelated import (
    correlated,
    restricted_assignment,
    two_value,
    uniform_pij,
)

__all__ = [
    "UNRELATED_MODELS",
    "UNIFORM_PROFILES",
    "build_unrelated_instance",
    "build_machines_instance",
]


def _run_hardness_r(graph, m, *, p=None, seed=None, **params):
    # the reduction fixes the time matrix; the job vector does not apply
    return hardness_r(graph, m=m, seed=seed, **params)


UNRELATED_MODELS: dict[str, Callable[..., UnrelatedInstance]] = {
    "uniform_pij": uniform_pij,
    "correlated": correlated,
    "restricted_assignment": restricted_assignment,
    "two_value": two_value,
    "hardness_r": _run_hardness_r,
}

UNIFORM_PROFILES: dict[str, Callable[..., tuple]] = {
    "identical": profiles.identical_speeds,
    "geometric": profiles.geometric_speeds,
    "power_law": profiles.power_law_speeds,
    "random_int": profiles.random_integer_speeds,
    "two_fast": profiles.two_fast_speeds,
}

# profiles whose extra parameters include a seed
_SEEDED_PROFILES = frozenset({"random_int"})


def build_unrelated_instance(
    graph: ConflictGraph,
    model: str,
    m: int,
    *,
    p: Sequence[int] | None = None,
    seed=None,
    **params: Any,
) -> UnrelatedInstance:
    """Build one unrelated instance from a named ``p_ij`` model."""
    fn = UNRELATED_MODELS.get(model)
    if fn is None:
        known = ", ".join(sorted(UNRELATED_MODELS))
        raise InvalidInstanceError(
            f"unknown unrelated model {model!r}; known: {known}"
        )
    try:
        return fn(graph, m, p=p, seed=seed, **params)
    except TypeError as exc:
        raise InvalidInstanceError(
            f"bad parameters for unrelated model {model!r}: {exc}"
        ) from exc


def _uniform_speeds(machines: dict[str, Any], seed) -> tuple:
    """Speeds for a ``kind: uniform`` block: explicit or profiled."""
    if "speeds" in machines and "profile" in machines:
        raise InvalidInstanceError(
            "'machines' block: give 'speeds' or 'profile', not both"
        )
    if "speeds" in machines:
        return tuple(parse_speeds(machines["speeds"]))
    profile = machines.get("profile")
    if profile is None:
        raise InvalidInstanceError(
            "uniform 'machines' block needs 'speeds' or 'profile'"
        )
    fn = UNIFORM_PROFILES.get(profile)
    if fn is None:
        known = ", ".join(sorted(UNIFORM_PROFILES))
        raise InvalidInstanceError(
            f"unknown speed profile {profile!r}; known: {known}"
        )
    m = int(machines.get("m", 2))
    params = {
        k: v
        for k, v in machines.items()
        if k not in ("kind", "profile", "m", "eligibility")
    }
    if profile in _SEEDED_PROFILES:
        params.setdefault("seed", seed)
    try:
        return fn(m, **params)
    except TypeError as exc:
        raise InvalidInstanceError(
            f"bad parameters for speed profile {profile!r}: {exc}"
        ) from exc


def _uniform_eligibility(
    raw: Any, n: int, m: int, seed
) -> list[list[int] | None] | None:
    """Eligibility masks for a ``kind: uniform`` block.

    Two spellings: a generator config ``{"choices": 2, "seed": 7}``
    (seed falls back to the entry seed) drawing per-job machine subsets
    via :func:`~repro.workloads.conflict_graphs.random_eligibility`, or
    an explicit per-job list of masks (``null`` = any machine).
    """
    if raw is None:
        return None
    if isinstance(raw, dict):
        unknown = set(raw) - {"choices", "seed"}
        if unknown:
            raise InvalidInstanceError(
                f"'eligibility' block: unknown keys {sorted(unknown)}"
            )
        return random_eligibility(
            n,
            m,
            choices=int(raw.get("choices", 2)),
            seed=raw.get("seed", seed),
        )
    if isinstance(raw, list):
        return [
            None if mask is None else [int(i) for i in mask] for mask in raw
        ]
    raise InvalidInstanceError(
        "'eligibility' must be a JSON object (generator config) or a "
        "per-job list of machine-index lists"
    )


def build_machines_instance(
    graph: ConflictGraph,
    machines: dict[str, Any],
    *,
    p: Sequence[int] | None = None,
    seed=None,
) -> SchedulingInstance:
    """Instance for one spec-v2/v3 ``machines`` block on ``graph``.

    ``p`` is the entry's parsed job vector (``None`` means unit jobs for
    uniform kinds; unrelated models that key off a base requirement draw
    one from the seed instead).  A ``kind: uniform`` block may carry an
    ``eligibility`` sub-block (spec v3) restricting which machines each
    job may run on.
    """
    if not isinstance(machines, dict):
        raise InvalidInstanceError("'machines' must be a JSON object")
    kind = machines.get("kind")
    if kind != "uniform" and "eligibility" in machines:
        raise InvalidInstanceError(
            "'eligibility' only applies to 'kind': 'uniform' machines "
            "blocks (unrelated models express restrictions as forbidden "
            "times)"
        )
    if kind == "unrelated":
        model = machines.get("model", "uniform_pij")
        m = int(machines.get("m", 2))
        params = {
            k: v for k, v in machines.items() if k not in ("kind", "model", "m")
        }
        return build_unrelated_instance(
            graph, model, m, p=p, seed=seed, **params
        )
    if kind == "uniform":
        model = machines.get("model")
        if model == "hardness_q":
            if "eligibility" in machines:
                raise InvalidInstanceError(
                    "'eligibility' cannot combine with the 'hardness_q' "
                    "model (the reduction fixes its own machine structure)"
                )
            params = {
                k: v
                for k, v in machines.items()
                if k not in ("kind", "model", "m")
            }
            if "gadget_sizes" in params and params["gadget_sizes"] is not None:
                params["gadget_sizes"] = tuple(
                    int(x) for x in params["gadget_sizes"]
                )
            try:
                return hardness_q(
                    graph, m=int(machines.get("m", 3)), seed=seed, **params
                )
            except TypeError as exc:
                raise InvalidInstanceError(
                    f"bad parameters for uniform model 'hardness_q': {exc}"
                ) from exc
        if model is not None:
            raise InvalidInstanceError(
                f"unknown uniform model {model!r}; known: hardness_q "
                "(or use 'speeds' / 'profile')"
            )
        speeds = _uniform_speeds(machines, seed)
        jobs = [1] * graph.n if p is None else list(p)
        eligible = _uniform_eligibility(
            machines.get("eligibility"), graph.n, len(speeds), seed
        )
        return UniformInstance(graph, jobs, speeds, eligible=eligible)
    raise InvalidInstanceError(
        f"'machines' kind must be 'uniform' or 'unrelated', got {kind!r}"
    )
