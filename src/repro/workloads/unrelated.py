"""Named processing-time models for ``R|G = bipartite|Cmax`` sweeps.

Each model maps ``(graph, m, seed)`` to an ``m x n`` integer matrix
``p_ij`` and wraps it in an :class:`~repro.scheduling.instance.UnrelatedInstance`.
The families mirror the structured ``p_ij`` classes the experimental
literature sweeps (iid, machine-correlated, restricted-assignment,
two-point); all values stay integral so downstream ratios remain exact
rationals.

Models that key off a per-job base requirement (``correlated``,
``restricted_assignment``) accept the spec entry's job vector ``p``;
when absent they draw one from the seed, so every model is usable with
nothing but a graph.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.instance import UnrelatedInstance
from repro.utils.rng import ensure_rng

__all__ = ["uniform_pij", "correlated", "restricted_assignment", "two_value"]


def _check_m(m: int) -> None:
    if m < 1:
        raise InvalidInstanceError(f"machine count must be >= 1, got {m}")


def _base_jobs(
    p: Sequence[int] | None, n: int, rng: np.random.Generator, hi: int = 20
) -> list[int]:
    """The per-job base requirement: the caller's ``p`` or a seeded draw."""
    if p is None:
        return [int(x) for x in rng.integers(1, hi + 1, size=n)]
    if len(p) != n:
        raise InvalidInstanceError(f"{len(p)} job requirements for {n} jobs")
    if any(int(x) < 1 for x in p):
        raise InvalidInstanceError("job requirements must be positive")
    return [int(x) for x in p]


def uniform_pij(
    graph: BipartiteGraph,
    m: int,
    *,
    lo: int = 1,
    hi: int = 20,
    seed=None,
    p: Sequence[int] | None = None,  # accepted for interface uniformity
) -> UnrelatedInstance:
    """iid ``p_ij ~ U{lo..hi}`` — the fully unstructured baseline."""
    _check_m(m)
    if not (1 <= lo <= hi):
        raise InvalidInstanceError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
    rng = ensure_rng(seed)
    times = [[int(x) for x in rng.integers(lo, hi + 1, size=graph.n)] for _ in range(m)]
    return UnrelatedInstance(graph, times)


def correlated(
    graph: BipartiteGraph,
    m: int,
    *,
    p: Sequence[int] | None = None,
    machine_lo: int = 1,
    machine_hi: int = 5,
    noise: int = 3,
    seed=None,
) -> UnrelatedInstance:
    """``p_ij = a_i * b_j + e_ij``: machine effect x job effect plus jitter.

    ``a_i ~ U{machine_lo..machine_hi}`` (a slow machine is slow for every
    job), ``b_j`` is the caller's job vector (or a seeded ``U{1..20}``
    draw), ``e_ij ~ U{0..noise}``.  With ``noise = 0`` the instance is a
    uniform-machine instance in disguise — the regime where the graph-blind
    LST bound is tightest.
    """
    _check_m(m)
    if not (1 <= machine_lo <= machine_hi):
        raise InvalidInstanceError(
            f"need 1 <= machine_lo <= machine_hi, got [{machine_lo}, {machine_hi}]"
        )
    if noise < 0:
        raise InvalidInstanceError(f"noise must be >= 0, got {noise}")
    rng = ensure_rng(seed)
    base = _base_jobs(p, graph.n, rng)
    effects = [int(x) for x in rng.integers(machine_lo, machine_hi + 1, size=m)]
    times = [
        [
            a * b + int(e)
            for b, e in zip(base, rng.integers(0, noise + 1, size=graph.n))
        ]
        for a in effects
    ]
    return UnrelatedInstance(graph, times)


def restricted_assignment(
    graph: BipartiteGraph,
    m: int,
    *,
    p: Sequence[int] | None = None,
    allow_probability: float = 0.6,
    sentinel: int | None = None,
    seed=None,
) -> UnrelatedInstance:
    """``p_ij in {p_j, sentinel}`` — restricted assignment via a large sentinel.

    Machine ``i`` is *eligible* for job ``j`` with probability
    ``allow_probability`` (each job is forced eligible on at least one
    seeded machine); ineligible pairs cost ``sentinel`` (default
    ``m * sum(p) + 1``, dominating every eligible-only schedule) rather
    than ``None`` so that every registered R-algorithm — including the
    graph-blind LST rounding — still applies.
    """
    _check_m(m)
    if not (0.0 <= allow_probability <= 1.0):
        raise InvalidInstanceError(
            f"allow_probability must be in [0, 1], got {allow_probability}"
        )
    rng = ensure_rng(seed)
    base = _base_jobs(p, graph.n, rng)
    big = m * sum(base) + 1 if sentinel is None else int(sentinel)
    if big <= max(base):
        raise InvalidInstanceError(
            f"sentinel {big} must exceed every job requirement (max {max(base)})"
        )
    allowed = rng.random((m, graph.n)) < allow_probability
    for j, forced in enumerate(rng.integers(0, m, size=graph.n)):
        allowed[int(forced)][j] = True
    times = [
        [base[j] if allowed[i][j] else big for j in range(graph.n)]
        for i in range(m)
    ]
    return UnrelatedInstance(graph, times)


def two_value(
    graph: BipartiteGraph,
    m: int,
    *,
    low: int = 1,
    high: int = 4,
    high_probability: float = 0.3,
    seed=None,
    p: Sequence[int] | None = None,  # accepted for interface uniformity
) -> UnrelatedInstance:
    """``p_ij in {low, high}`` iid — the classical two-point hard case.

    Two-value matrices are where the LP rounding gap of [18] is attained;
    ``high_probability`` tunes how often the bad value appears.
    """
    _check_m(m)
    if not (1 <= low < high):
        raise InvalidInstanceError(f"need 1 <= low < high, got ({low}, {high})")
    if not (0.0 <= high_probability <= 1.0):
        raise InvalidInstanceError(
            f"high_probability must be in [0, 1], got {high_probability}"
        )
    rng = ensure_rng(seed)
    picks = rng.random((m, graph.n)) < high_probability
    times = [
        [high if picks[i][j] else low for j in range(graph.n)] for i in range(m)
    ]
    return UnrelatedInstance(graph, times)
