"""Scenario generation: named workload models for the batch engine.

The batch layer (:mod:`repro.runtime`) moves *streams* of instances
through the solver registry; this package is where those streams come
from.  It turns a conflict graph (any family from
:func:`repro.runtime.build_family_graph`) plus a declarative machine
description into a concrete :class:`~repro.scheduling.instance`:

* **unrelated models** (:mod:`repro.workloads.unrelated`) — named
  ``p_ij`` matrix families for ``R|G = bipartite|Cmax``: iid
  (``uniform_pij``), machine-effect x job-effect (``correlated``),
  ``p_ij in {p_j, sentinel}`` (``restricted_assignment``), and two-point
  (``two_value``) distributions;
* **adversarial models** (:mod:`repro.workloads.adversarial`) —
  ``hardness_q`` / ``hardness_r`` lift the Theorem 8 and Theorem 24
  reductions of :mod:`repro.hardness` into sweepable instances;
* **conflict-graph families** (:mod:`repro.workloads.conflict_graphs`) —
  generators for the non-bipartite families (complete multipartite,
  block graphs) plus seed-deterministic machine-eligibility masks,
  behind batch-spec v3 ``"graph"`` blocks and ``repro generate``;
* **builders** (:mod:`repro.workloads.builder`) — the model registry and
  the ``machines`` block dispatcher behind batch-spec v2
  (``{"kind": "uniform" | "unrelated", ...}``);
* **parsing** (:mod:`repro.workloads.parsing`) — speed / job-vector
  parsing shared by the CLI and the spec loader, with diagnostics
  (:exc:`~repro.exceptions.InvalidInstanceError`, never a raw
  ``ValueError``).

Every model is deterministic under an integer seed: the same
``(graph, model, params, seed)`` always yields the same instance, which
is what makes spec-driven sweeps cacheable across runs.
"""

from repro.workloads.adversarial import hardness_q, hardness_r
from repro.workloads.builder import (
    UNRELATED_MODELS,
    UNIFORM_PROFILES,
    build_machines_instance,
    build_unrelated_instance,
)
from repro.workloads.conflict_graphs import (
    block_chain,
    complete_multipartite_graph,
    random_block_graph,
    random_complete_multipartite,
    random_eligibility,
)
from repro.workloads.parsing import parse_jobs, parse_speeds
from repro.workloads.unrelated import (
    correlated,
    restricted_assignment,
    two_value,
    uniform_pij,
)

__all__ = [
    "UNRELATED_MODELS",
    "UNIFORM_PROFILES",
    "uniform_pij",
    "correlated",
    "restricted_assignment",
    "two_value",
    "hardness_q",
    "hardness_r",
    "build_unrelated_instance",
    "build_machines_instance",
    "complete_multipartite_graph",
    "random_complete_multipartite",
    "block_chain",
    "random_block_graph",
    "random_eligibility",
    "parse_speeds",
    "parse_jobs",
]
