"""Machine-environment substrate: speed profiles for uniform machines and
processing-time matrix builders for unrelated machines."""

from repro.machines.profiles import (
    identical_speeds,
    geometric_speeds,
    power_law_speeds,
    random_integer_speeds,
    two_fast_speeds,
    theorem8_speeds,
)

__all__ = [
    "identical_speeds",
    "geometric_speeds",
    "power_law_speeds",
    "random_integer_speeds",
    "two_fast_speeds",
    "theorem8_speeds",
]
