"""Speed-profile generators for uniform machines.

The paper assumes machines sorted by non-increasing speed
``s_1 >= ... >= s_m >= 1`` (its hardness construction additionally uses
speeds below 1, which we support: the model only needs positive rationals).
All profiles return tuples of :class:`fractions.Fraction`, non-increasing.
"""

from __future__ import annotations

from fractions import Fraction

from repro.exceptions import InvalidInstanceError
from repro.utils.rng import ensure_rng

__all__ = [
    "identical_speeds",
    "geometric_speeds",
    "power_law_speeds",
    "random_integer_speeds",
    "two_fast_speeds",
    "theorem8_speeds",
]


def _check_m(m: int) -> None:
    if m < 1:
        raise InvalidInstanceError(f"machine count must be >= 1, got {m}")


def identical_speeds(m: int) -> tuple[Fraction, ...]:
    """All machines at speed 1 — the identical-machine environment ``P``."""
    _check_m(m)
    return tuple(Fraction(1) for _ in range(m))


def geometric_speeds(m: int, ratio: int | Fraction = 2) -> tuple[Fraction, ...]:
    """Speeds ``ratio^(m-1), ..., ratio, 1`` (steeply heterogeneous)."""
    _check_m(m)
    r = Fraction(ratio)
    if r <= 1:
        raise InvalidInstanceError(f"ratio must exceed 1, got {ratio}")
    return tuple(r ** (m - 1 - i) for i in range(m))


def power_law_speeds(m: int, exponent: int = 1) -> tuple[Fraction, ...]:
    """Speeds ``m^e, (m-1)^e, ..., 1`` (moderately heterogeneous)."""
    _check_m(m)
    if exponent < 1:
        raise InvalidInstanceError(f"exponent must be >= 1, got {exponent}")
    return tuple(Fraction((m - i) ** exponent) for i in range(m))


def random_integer_speeds(
    m: int, low: int = 1, high: int = 10, seed=None
) -> tuple[Fraction, ...]:
    """``m`` integer speeds drawn uniformly from ``[low, high]``, sorted
    non-increasing."""
    _check_m(m)
    if not (1 <= low <= high):
        raise InvalidInstanceError(f"need 1 <= low <= high, got [{low}, {high}]")
    rng = ensure_rng(seed)
    vals = sorted((int(v) for v in rng.integers(low, high + 1, size=m)), reverse=True)
    return tuple(Fraction(v) for v in vals)


def two_fast_speeds(m: int, fast: int | Fraction = 4) -> tuple[Fraction, ...]:
    """Two fast machines of speed ``fast`` and ``m - 2`` unit machines.

    Stresses the regime where Algorithm 1's two-machine schedule ``S1``
    competes with its capacity-based schedule ``S2``.
    """
    if m < 2:
        raise InvalidInstanceError(f"need m >= 2, got {m}")
    f = Fraction(fast)
    if f < 1:
        raise InvalidInstanceError(f"fast speed must be >= 1, got {fast}")
    return (f, f) + tuple(Fraction(1) for _ in range(m - 2))


def theorem8_speeds(k: int, n: int, m: int) -> tuple[Fraction, ...]:
    """The speed sequence of Theorem 8's reduction.

    ``s_1 = 49 k^2``, ``s_2 = 5k``, ``s_3 = 1`` and ``s_4 = ... = s_m =
    1/(k n)`` — the geometry that forces a ``YES`` 1-PrExt instance to admit
    makespan ``n`` while every schedule of a ``NO`` instance needs ``>= kn``.
    """
    if m < 3:
        raise InvalidInstanceError(f"Theorem 8 needs m >= 3, got {m}")
    if k < 1 or n < 1:
        raise InvalidInstanceError(f"need k, n >= 1, got k={k}, n={n}")
    tail = tuple(Fraction(1, k * n) for _ in range(m - 3))
    return (Fraction(49 * k * k), Fraction(5 * k), Fraction(1)) + tail
