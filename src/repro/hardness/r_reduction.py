"""Theorem 24's reduction: 1-PrExt -> ``Rm|G = bipartite|Cmax``, ``m >= 3``.

Processing times for a 1-PrExt seed ``((V, E), (v_1, v_2, v_3))`` on ``n``
vertices and a gap parameter ``d``:

* precolored job ``v_c``: time 1 on machine ``c``, time ``d`` on the other
  two fast machines;
* every other job: time 1 on machines 1-3;
* every job: time ``d`` on machines 4..m.

YES -> schedule along the extension costs at most ``n``; NO -> every
schedule pays ``d`` somewhere (a schedule cheaper than ``d`` would place
every ``v_c`` on machine ``c`` and use only machines 1-3, reading off a
proper extension).  With ``d > c n^{b+1}`` raised to ``1/eps`` this kills
any ``O(n^b p_max^{1-eps})``-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.exceptions import InvalidInstanceError
from repro.graphs.precoloring import PrExtInstance
from repro.scheduling.instance import UnrelatedInstance
from repro.scheduling.schedule import Schedule

__all__ = ["RHardnessInstance", "theorem24_reduction"]


@dataclass(frozen=True)
class RHardnessInstance:
    """A Theorem 24 scheduling instance with its provenance and bounds."""

    instance: UnrelatedInstance
    prext: PrExtInstance
    d: int
    yes_makespan_bound: Fraction
    no_makespan_lower_bound: Fraction

    @property
    def gap(self) -> Fraction:
        """``no_bound / yes_bound``."""
        return self.no_makespan_lower_bound / self.yes_makespan_bound

    def schedule_from_extension(self, coloring: Sequence[int]) -> Schedule:
        """YES-case schedule: job ``v`` on machine ``coloring[v]``."""
        g = self.prext.graph
        if len(coloring) != g.n:
            raise InvalidInstanceError(
                f"coloring covers {len(coloring)} of {g.n} vertices"
            )
        for idx, v in enumerate(self.prext.precolored):
            if coloring[v] != idx:
                raise InvalidInstanceError(
                    f"coloring does not extend the precoloring at v_{idx + 1}"
                )
        return Schedule(self.instance, list(coloring))


def theorem24_reduction(
    prext: PrExtInstance, d: int, m: int = 3
) -> RHardnessInstance:
    """Build the Theorem 24 instance for a 1-PrExt seed and gap ``d``."""
    if prext.k != 3:
        raise InvalidInstanceError("Theorem 24 starts from 1-PrExt with k = 3")
    if d < 2:
        raise InvalidInstanceError(f"the gap parameter needs d >= 2, got {d}")
    if m < 3:
        raise InvalidInstanceError(f"Theorem 24 needs m >= 3, got {m}")
    n = prext.graph.n
    times: list[list[int]] = [[1] * n for _ in range(3)]
    for c, v in enumerate(prext.precolored):
        for i in range(3):
            times[i][v] = 1 if i == c else d
    for _ in range(3, m):
        times.append([d] * n)
    instance = UnrelatedInstance(prext.graph, times)
    return RHardnessInstance(
        instance=instance,
        prext=prext,
        d=d,
        yes_makespan_bound=Fraction(n),
        no_makespan_lower_bound=Fraction(d),
    )
