"""Executable hardness reductions.

``P != NP`` statements cannot be run; what *can* be reproduced is the
machinery inside them: the forcing components of Figure 1 (Lemmas 5-7),
Theorem 8's reduction from 1-PrExt to ``Qm|G=bipartite, p_j=1|Cmax`` with
its YES/NO makespan gap, and Theorem 24's reduction to
``Rm|G=bipartite|Cmax``.
"""

from repro.hardness.gadgets import (
    Gadget,
    h1,
    h2,
    h3,
    attach_gadget,
    cheap_gadget_coloring,
    enumerate_proper_colorings,
)
from repro.hardness.q_reduction import (
    QHardnessInstance,
    theorem8_reduction,
    theorem8_gadget_sizes,
)
from repro.hardness.r_reduction import RHardnessInstance, theorem24_reduction
from repro.hardness.pipeline import (
    PrExtDecision,
    decide_prext_via_q,
    decide_prext_via_r,
)

__all__ = [
    "Gadget",
    "h1",
    "h2",
    "h3",
    "attach_gadget",
    "cheap_gadget_coloring",
    "enumerate_proper_colorings",
    "QHardnessInstance",
    "theorem8_reduction",
    "theorem8_gadget_sizes",
    "RHardnessInstance",
    "theorem24_reduction",
    "PrExtDecision",
    "decide_prext_via_q",
    "decide_prext_via_r",
]
