"""Theorem 8's reduction: 1-PrExt -> ``Qm|G = bipartite, p_j = 1|Cmax``.

Given a bipartite 1-PrExt instance on ``n`` vertices and an integer
``k >= 1``, the reduction attaches to the three precolored vertices the six
forcing components

* ``v_1``: ``H2(kn, 6k^2 n)`` and ``H3(1, kn, 6k^2 n)`` (punish ``c2``/``c3``),
* ``v_2``: ``H1(6k^2 n)`` and ``H3(1, kn, 6k^2 n)`` (punish ``c1``/``c3``),
* ``v_3``: ``H1(6k^2 n)`` and ``H2(kn, 6k^2 n)`` (punish ``c1``/``c2``),

and schedules the resulting ``n' = n + 48 k^2 n + 4 k n + 2`` unit jobs on
machines of speeds ``49 k^2, 5k, 1, 1/(kn), ...``.

* YES instance -> a schedule of makespan ``<= n + 2`` exists (the paper
  rounds this to ``n``; the ``+2`` pays for the two ``x'' = 1`` vertices
  that must take color ``c3``) — :meth:`QHardnessInstance.schedule_from_extension`
  constructs it;
* NO instance -> every schedule has makespan at least
  :attr:`QHardnessInstance.no_makespan_lower_bound` (``= kn`` for ``m = 3``),
  because any cheaper schedule would read off a proper extension.

Choosing ``k ~ n^{1/(2 eps)}`` turns any hypothetical
``O(n^{1/2 - eps})``-approximation into a polynomial 1-PrExt decider —
the inapproximability bound.  ``gadget_sizes`` can be overridden to build
structurally identical but *small* instances the tests verify exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.exceptions import InvalidInstanceError
from repro.graphs.precoloring import PrExtInstance
from repro.hardness.gadgets import Gadget, attach_gadget, cheap_gadget_coloring, h1, h2, h3
from repro.machines.profiles import theorem8_speeds
from repro.scheduling.instance import UniformInstance, unit_uniform_instance
from repro.scheduling.schedule import Schedule

__all__ = ["QHardnessInstance", "theorem8_reduction", "theorem8_gadget_sizes"]


@dataclass(frozen=True)
class AttachedGadget:
    """Bookkeeping for one gadget after attachment (global vertex ids)."""

    kind: str
    anchor: int
    layers: dict[str, tuple[int, ...]]


@dataclass(frozen=True)
class QHardnessInstance:
    """A Theorem 8 scheduling instance with its provenance and bounds."""

    instance: UniformInstance
    prext: PrExtInstance
    k: int
    gadgets: tuple[AttachedGadget, ...]
    yes_makespan_bound: Fraction
    no_makespan_lower_bound: Fraction

    @property
    def gap(self) -> Fraction:
        """``no_bound / yes_bound`` — the separation the reduction certifies."""
        return self.no_makespan_lower_bound / self.yes_makespan_bound

    def schedule_from_extension(self, coloring: Sequence[int]) -> Schedule:
        """Build the YES-case schedule from a 1-PrExt solution.

        ``coloring`` colors the *original* graph (as returned by
        :func:`repro.graphs.precoloring.solve_prext`); gadget vertices get
        their cheap colorings; machine ``i`` receives color ``c_{i+1}``.
        """
        g = self.prext.graph
        if len(coloring) != g.n:
            raise InvalidInstanceError(
                f"coloring covers {len(coloring)} of {g.n} original vertices"
            )
        for idx, v in enumerate(self.prext.precolored):
            if coloring[v] != idx:
                raise InvalidInstanceError(
                    f"coloring does not extend the precoloring at v_{idx + 1}"
                )
        assignment = [-1] * self.instance.n
        for v in range(g.n):
            if not (0 <= coloring[v] < 3):
                raise InvalidInstanceError(f"vertex {v} uses color {coloring[v]} >= 3")
            assignment[v] = coloring[v]
        for att in self.gadgets:
            cheap = cheap_gadget_coloring(att.kind, att.layers, coloring[att.anchor])
            for v, c in cheap.items():
                assignment[v] = c
        return Schedule(self.instance, assignment)


def theorem8_gadget_sizes(k: int, n: int) -> tuple[int, int, int]:
    """The paper's sizes ``(x, x', x'') = (6 k^2 n, k n, 1)``."""
    return (6 * k * k * n, k * n, 1)


def theorem8_reduction(
    prext: PrExtInstance,
    k: int,
    m: int = 3,
    gadget_sizes: tuple[int, int, int] | None = None,
) -> QHardnessInstance:
    """Build the Theorem 8 instance for a 1-PrExt seed.

    ``gadget_sizes = (x, x', x'')`` overrides the faithful sizes for
    small-scale exhaustive verification; the makespan bounds are recomputed
    exactly from the actual sizes and speeds either way.
    """
    if prext.k != 3:
        raise InvalidInstanceError("Theorem 8 starts from 1-PrExt with k = 3")
    if k < 1:
        raise InvalidInstanceError(f"need k >= 1, got {k}")
    if m < 3:
        raise InvalidInstanceError(f"Theorem 8 needs m >= 3, got {m}")
    n = prext.graph.n
    x_big, x_mid, x_tiny = (
        theorem8_gadget_sizes(k, n) if gadget_sizes is None else gadget_sizes
    )
    v1, v2, v3 = prext.precolored

    plan: list[tuple[int, Gadget]] = [
        (v1, h2(x_mid, x_big)),
        (v1, h3(x_tiny, x_mid, x_big)),
        (v2, h1(x_big)),
        (v2, h3(x_tiny, x_mid, x_big)),
        (v3, h1(x_big)),
        (v3, h2(x_mid, x_big)),
    ]
    graph = prext.graph
    attached: list[AttachedGadget] = []
    for anchor, gadget in plan:
        graph, layers = attach_gadget(graph, anchor, gadget)
        attached.append(AttachedGadget(kind=gadget.kind, anchor=anchor, layers=layers))

    speeds = theorem8_speeds(k, n, m)
    instance = unit_uniform_instance(graph, speeds)

    # YES bound: machine loads under the cheap colorings.
    # c1 <- n originals (worst case) + all "big" layers; c2 <- originals +
    # all C layers; c3 <- originals + the two B layers of the H3 gadgets.
    big_total = 2 * x_big + 2 * x_big + 2 * (2 * x_big)  # H1 x2, H2 D x2, H3 A+D x2
    mid_total = 4 * x_mid                                 # H2 C x2, H3 C x2
    tiny_total = 2 * x_tiny                               # H3 B x2
    yes_bound = max(
        Fraction(n + big_total) / speeds[0],
        Fraction(n + mid_total) / speeds[1],
        Fraction(n + tiny_total) / speeds[2],
    )

    # NO bound: any schedule beating every case below yields an extension.
    cases = [
        Fraction(x_big) / sum(speeds[1:]),   # >= x jobs leave M1
        Fraction(x_mid) / sum(speeds[2:]),   # >= x' jobs leave M1, M2
    ]
    if m > 3:
        cases.append(Fraction(x_tiny) / sum(speeds[3:]))  # jobs leave M1-M3
    no_bound = min(cases)

    return QHardnessInstance(
        instance=instance,
        prext=prext,
        k=k,
        gadgets=tuple(attached),
        yes_makespan_bound=yes_bound,
        no_makespan_lower_bound=no_bound,
    )
