"""End-to-end hardness pipelines: a scheduler as a 1-PrExt decider.

Theorems 8 and 24 work by showing that a good scheduling algorithm
*would decide 1-PrExt*.  This module makes that argument executable in
both directions:

* :func:`decide_prext_via_q` / :func:`decide_prext_via_r` — reduce a
  1-PrExt instance, schedule the result, and read the answer off the
  makespan;
* :func:`decide_reduction` — the same decision rule applied to an
  already-built reduction instance (useful when the caller wants access
  to the gadget bookkeeping, e.g. to schedule from a known coloring);
* :class:`PrExtDecision` — the three-valued outcome with the makespan
  evidence attached.

The decision rules come straight from the proofs:

* ``Cmax < NO-bound`` certifies **YES** (a NO instance forces *every*
  feasible schedule to at least the bound — this direction is sound for
  any scheduler);
* ``Cmax >= NO-bound`` certifies **NO** only when the scheduler is
  *certified below the gap*: guaranteed to return a makespan under the
  NO bound whenever one exists (an exact solver, or any algorithm with
  approximation ratio smaller than the YES/NO gap).  This is precisely
  the paper's argument that a good approximation algorithm would decide
  an NP-complete problem;
* otherwise the outcome is inconclusive (``None``) — the wiggle room
  that keeps honest approximation algorithms from contradicting
  NP-hardness.

Note the reductions inflate instances by design (Theorem 8 appends
gadgets of size ``6 k^2 n``), so exact schedulers are only practical
with coloring oracles (:meth:`QHardnessInstance.schedule_from_extension`)
or on deliberately shrunken gadget sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Literal

from repro.graphs.precoloring import PrExtInstance
from repro.hardness.q_reduction import QHardnessInstance, theorem8_reduction
from repro.hardness.r_reduction import RHardnessInstance, theorem24_reduction
from repro.scheduling.instance import SchedulingInstance
from repro.scheduling.schedule import Schedule

__all__ = [
    "PrExtDecision",
    "decide_reduction",
    "decide_prext_via_q",
    "decide_prext_via_r",
]

Scheduler = Callable[[SchedulingInstance], Schedule]


@dataclass(frozen=True)
class PrExtDecision:
    """Outcome of deciding 1-PrExt through a scheduling reduction.

    ``answer`` is ``True`` (YES certified), ``False`` (NO certified —
    only possible with ``certified_below_gap=True`` on a reduction whose
    bounds actually separate, ``yes_bound < no_bound``) or ``None``
    (inconclusive: the schedule landed at or above the NO bound without
    a certificate that a better one was findable).
    """

    answer: bool | None
    makespan: Fraction
    yes_bound: Fraction
    no_bound: Fraction
    reduction: Literal["theorem8", "theorem24"]

    @property
    def conclusive(self) -> bool:
        return self.answer is not None


def decide_reduction(
    hard: QHardnessInstance | RHardnessInstance,
    scheduler: Scheduler,
    certified_below_gap: bool = False,
) -> PrExtDecision:
    """Apply the proofs' decision rule to a built reduction instance.

    A ``False`` (NO) certification additionally requires the reduction's
    bounds to separate (``yes_bound < no_bound``): the theorems only
    guarantee a YES instance admits a schedule below the NO bound when
    the gap parameters are large enough (Theorem 8 needs ``kn > n + 2``,
    i.e. ``k >= 2``), so on a degenerate instantiation even a
    gap-certified scheduler can only say YES or abstain.
    """
    schedule = scheduler(hard.instance)
    schedule.assert_feasible()
    cmax = schedule.makespan
    separated = hard.yes_makespan_bound < hard.no_makespan_lower_bound
    if cmax < hard.no_makespan_lower_bound:
        answer: bool | None = True
    elif certified_below_gap and separated:
        answer = False
    else:
        answer = None
    kind: Literal["theorem8", "theorem24"] = (
        "theorem8" if isinstance(hard, QHardnessInstance) else "theorem24"
    )
    return PrExtDecision(
        answer=answer,
        makespan=cmax,
        yes_bound=hard.yes_makespan_bound,
        no_bound=hard.no_makespan_lower_bound,
        reduction=kind,
    )


def decide_prext_via_q(
    prext: PrExtInstance,
    scheduler: Scheduler,
    k: int = 2,
    certified_below_gap: bool = False,
) -> PrExtDecision:
    """Decide 1-PrExt through the Theorem 8 (uniform machines) reduction.

    ``k`` controls the YES/NO gap (``>= kn`` vs ``<= n``): any scheduler
    with approximation ratio below ``k`` becomes a complete decider,
    which is exactly why no ``O(n^{1/2-eps})``-approximation can exist.
    """
    hard = theorem8_reduction(prext, k=k)
    return decide_reduction(hard, scheduler, certified_below_gap)


def decide_prext_via_r(
    prext: PrExtInstance,
    scheduler: Scheduler,
    d: int = 8,
    certified_below_gap: bool = False,
) -> PrExtDecision:
    """Decide 1-PrExt through the Theorem 24 (unrelated machines)
    reduction; ``d`` is the paper's free gap parameter."""
    hard = theorem24_reduction(prext, d=d)
    return decide_reduction(hard, scheduler, certified_below_gap)
