"""The forcing components ``H1``, ``H2``, ``H3`` of Figure 1 (Lemmas 5-7).

Each gadget is a bipartite component that attaches to one *anchor* vertex
``v`` of the host graph and makes a specific color expensive for ``v``:

* ``H1(x)`` — an independent set of ``x`` vertices, all adjacent to the
  anchor.  Lemma 5: if ``v`` has color ``c1`` then ``x`` vertices must
  avoid ``c1``.
* ``H2(x', x)`` — a path of layers ``anchor - C(x') - D(x)`` with complete
  bipartite joins.  Lemma 6: if ``v`` has ``c2``, then either ``x'``
  vertices avoid ``{c1, c2}`` or ``x`` vertices avoid ``c1``.
* ``H3(x'', x', x)`` — layers ``A(x) - B(x'') - C(x') - D(x)`` joined
  consecutively, anchor adjacent to all of ``B``.  Lemma 7: if ``v`` has
  ``c3``, then ``x''`` vertices avoid ``{c1,c2,c3}``, or ``x'`` avoid
  ``{c1,c2}``, or ``x`` avoid ``c1``.

On the topology of ``H3``: the paper's figure lists the layers but not the
joins; attaching the anchor to a size-``x`` layer would contradict the
YES-case accounting in Theorem 8's proof (both size-``x`` layers must be
colorable ``c1``, yet a layer adjacent to a ``c1`` anchor cannot).  The
layout implemented here — anchor joined to the middle ``x''`` layer, the
two size-``x`` layers at both ends — is the unique reading under which
Lemmas 5-7 *and* the ``48 k^2 n / 4 k n / 2`` vertex accounting of
Theorem 8 both check out; the property tests verify the lemmas by
exhaustive enumeration.

Cheap colorings (used to build YES-instance schedules): when the anchor
does *not* carry the punished color, the gadget colors with almost all
vertices on ``c1``:

* ``H1``: layer -> ``c1`` (cost: nothing off ``c1``);
* ``H2``: ``C -> c2``, ``D -> c1`` (cost: ``x'`` vertices on ``c2``);
* ``H3``: ``B -> c3``, ``A, D -> c1``, ``C -> c2`` (cost: ``x'`` on
  ``c2`` plus ``x''`` on ``c3``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph

__all__ = [
    "Gadget",
    "h1",
    "h2",
    "h3",
    "attach_gadget",
    "cheap_gadget_coloring",
    "enumerate_proper_colorings",
]


@dataclass(frozen=True)
class Gadget:
    """A forcing component, in local vertex ids ``0..size-1``.

    ``anchor_links`` are the local vertices adjacent to the external anchor;
    ``layers`` names each layer's vertex list for coloring construction
    (keys like ``"A"``, ``"B"``, ``"C"``, ``"D"``, ``"layer"``).
    """

    kind: str
    size: int
    edges: tuple[tuple[int, int], ...]
    anchor_links: tuple[int, ...]
    layers: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def as_graph_with_anchor(self) -> BipartiteGraph:
        """The gadget plus its anchor as vertex ``size`` (for lemma tests)."""
        edges = list(self.edges) + [(u, self.size) for u in self.anchor_links]
        return BipartiteGraph(self.size + 1, edges)


def _join(layer_a: Sequence[int], layer_b: Sequence[int]) -> list[tuple[int, int]]:
    """Complete bipartite join between two layers."""
    return [(u, w) for u in layer_a for w in layer_b]


def h1(x: int) -> Gadget:
    """``H1(x)``: ``x`` independent vertices, all linked to the anchor."""
    if x < 1:
        raise InvalidInstanceError(f"H1 needs x >= 1, got {x}")
    layer = tuple(range(x))
    return Gadget(
        kind="H1",
        size=x,
        edges=(),
        anchor_links=layer,
        layers={"layer": layer},
    )


def h2(x_prime: int, x: int) -> Gadget:
    """``H2(x', x)``: anchor — C(x') — D(x)."""
    if x_prime < 1 or x < 1:
        raise InvalidInstanceError(f"H2 needs positive sizes, got ({x_prime}, {x})")
    c_layer = tuple(range(x_prime))
    d_layer = tuple(range(x_prime, x_prime + x))
    return Gadget(
        kind="H2",
        size=x_prime + x,
        edges=tuple(_join(c_layer, d_layer)),
        anchor_links=c_layer,
        layers={"C": c_layer, "D": d_layer},
    )


def h3(x_dprime: int, x_prime: int, x: int) -> Gadget:
    """``H3(x'', x', x)``: A(x) — B(x'') — C(x') — D(x), anchor on B."""
    if min(x_dprime, x_prime, x) < 1:
        raise InvalidInstanceError(
            f"H3 needs positive sizes, got ({x_dprime}, {x_prime}, {x})"
        )
    a_layer = tuple(range(x))
    b_layer = tuple(range(x, x + x_dprime))
    c_layer = tuple(range(x + x_dprime, x + x_dprime + x_prime))
    d_layer = tuple(range(x + x_dprime + x_prime, x + x_dprime + x_prime + x))
    edges = _join(a_layer, b_layer) + _join(b_layer, c_layer) + _join(c_layer, d_layer)
    return Gadget(
        kind="H3",
        size=2 * x + x_dprime + x_prime,
        edges=tuple(edges),
        anchor_links=b_layer,
        layers={"A": a_layer, "B": b_layer, "C": c_layer, "D": d_layer},
    )


def attach_gadget(
    graph: BipartiteGraph, anchor: int, gadget: Gadget
) -> tuple[BipartiteGraph, dict[str, tuple[int, ...]]]:
    """Append ``gadget`` to ``graph`` and wire it to ``anchor``.

    Returns the extended graph and the gadget's layers translated to global
    vertex ids (gadget vertex ``u`` becomes ``graph.n + u``).
    """
    if not (0 <= anchor < graph.n):
        raise InvalidInstanceError(f"anchor {anchor} out of range")
    off = graph.n
    new_edges = (
        list(graph.edges())
        + [(u + off, w + off) for u, w in gadget.edges]
        + [(anchor, u + off) for u in gadget.anchor_links]
    )
    extended = BipartiteGraph(graph.n + gadget.size, new_edges)
    global_layers = {
        name: tuple(u + off for u in verts) for name, verts in gadget.layers.items()
    }
    return extended, global_layers


def cheap_gadget_coloring(
    gadget_kind: str,
    layers: dict[str, tuple[int, ...]],
    anchor_color: int,
) -> dict[int, int]:
    """The YES-case coloring of an attached gadget (colors 0 = c1, 1 = c2,
    2 = c3), valid when the anchor avoids the gadget's punished color.

    Raises when the anchor carries the punished color (``c1`` for H1,
    ``c2`` for H2, ``c3`` for H3): no cheap coloring exists then — that is
    the whole point of the gadget.
    """
    out: dict[int, int] = {}
    if gadget_kind == "H1":
        if anchor_color == 0:
            raise InvalidInstanceError("H1's anchor holds c1: lemma 5 fires")
        for v in layers["layer"]:
            out[v] = 0
    elif gadget_kind == "H2":
        if anchor_color == 1:
            raise InvalidInstanceError("H2's anchor holds c2: lemma 6 fires")
        for v in layers["C"]:
            out[v] = 1
        for v in layers["D"]:
            out[v] = 0
    elif gadget_kind == "H3":
        if anchor_color == 2:
            raise InvalidInstanceError("H3's anchor holds c3: lemma 7 fires")
        for v in layers["B"]:
            out[v] = 2
        for v in layers["A"]:
            out[v] = 0
        for v in layers["C"]:
            out[v] = 1
        for v in layers["D"]:
            out[v] = 0
    else:
        raise InvalidInstanceError(f"unknown gadget kind {gadget_kind!r}")
    return out


def enumerate_proper_colorings(
    graph: BipartiteGraph,
    colors: int,
    fixed: dict[int, int] | None = None,
) -> Iterator[tuple[int, ...]]:
    """All proper colorings with ``colors`` colors extending ``fixed``.

    Plain backtracking; intended for exhaustively checking Lemmas 5-7 on
    small gadget instances (property tests and bench E7).
    """
    fixed = dict(fixed or {})
    for v, c in fixed.items():
        if not (0 <= v < graph.n) or not (0 <= c < colors):
            raise InvalidInstanceError(f"bad fixed assignment {v} -> {c}")
    assignment: list[int] = [-1] * graph.n
    for v, c in fixed.items():
        assignment[v] = c

    order = sorted(range(graph.n), key=lambda v: (assignment[v] == -1, -graph.degree(v)))

    def feasible(v: int, c: int) -> bool:
        return all(assignment[u] != c for u in graph.neighbors(v))

    def walk(pos: int) -> Iterator[tuple[int, ...]]:
        if pos == graph.n:
            yield tuple(assignment)
            return
        v = order[pos]
        if assignment[v] != -1:
            if feasible(v, assignment[v]):
                yield from walk(pos + 1)
            return
        for c in range(colors):
            if feasible(v, c):
                assignment[v] = c
                yield from walk(pos + 1)
                assignment[v] = -1

    yield from walk(pos=0)
