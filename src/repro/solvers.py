"""Algorithm registry and structure-aware dispatch.

A downstream user rarely wants to remember which of the paper's
algorithms applies to which machine environment / graph class / job
shape.  :func:`solve` inspects the instance (via
:mod:`repro.graphs.structure`) and picks the strongest method whose
preconditions hold; :func:`available_algorithms` lists every registered
method with its applicability for a given instance.

Dispatch policy (first match wins):

==============================  =============================================
condition                       method
==============================  =============================================
``Q``, unit jobs, ``K_{a,b}``   exact unary algorithm ([20]/[24]); also
(+ isolated vertices)           covers unit-job edgeless instances exactly
``Q``, unit jobs, ``m = 2``     exact Theorem 4 algorithm
``Q``, edgeless, identical      dual-approximation PTAS ([11], ``1 + 1/3``)
``Q``, ``m = 2``                Algorithm 5 on ``to_unrelated()``
                                (``1 + 1/10``, the Theorem 4 route)
``Q``, edgeless                 graph-blind LPT (feasible here; factor 2)
``Q``, otherwise                Algorithm 1 (``sqrt(sum p_j)``-approx, Thm 9)
``R``, ``m = 2``                Algorithm 5 FPTAS (``eps = 1/10``)
``R``, edgeless                 Lenstra–Shmoys–Tardos 2-approx ([18])
``R``, otherwise                color split (Theorem 24 forbids guarantees)
==============================  =============================================

Every method is also callable by name (``algorithm="sqrt_approx"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from repro.core.complete_multipartite import schedule_complete_bipartite_unit
from repro.core.q2_unit_exact import q2_unit_exact
from repro.core.r2_fptas import r2_fptas
from repro.core.r2_two_approx import r2_two_approx
from repro.core.random_graph_scheduler import (
    random_graph_schedule,
    random_graph_schedule_balanced,
)
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.structure import analyze_structure
from repro.scheduling.baselines import (
    bjw_identical_approx,
    r_color_split,
    two_machine_split,
    unconstrained_lpt,
)
from repro.scheduling.brute_force import brute_force_optimal
from repro.scheduling.dual_approx import dual_approx_identical
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.scheduling.list_scheduling import graph_aware_greedy
from repro.scheduling.lp_rounding import lst_two_approx
from repro.scheduling.schedule import Schedule

__all__ = [
    "AlgorithmSpec",
    "ALGORITHMS",
    "auto_choice",
    "available_algorithms",
    "solve",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm.

    ``applies`` only checks *preconditions*; it does not promise the
    method is a good idea (brute force applies to everything).
    ``guarantee`` is the human-readable approximation guarantee, with
    its paper anchor.  ``ratio_bound`` is the *machine-checkable* form:
    given an instance it returns the exact rational ``B`` such that the
    paper claims ``Cmax <= B * OPT`` (``1`` for exact methods, ``None``
    when no worst-case ratio is declared — heuristics, a.a.s.-only
    results, and the irrational ``sqrt(sum p_j)`` guarantee, which
    :mod:`repro.certify.auditor` checks exactly via squared arithmetic
    instead).
    """

    name: str
    guarantee: str
    anchor: str
    applies: Callable[[SchedulingInstance], bool]
    run: Callable[[SchedulingInstance], Schedule]
    ratio_bound: Callable[[SchedulingInstance], Fraction | None] | None = None
    guarantee_check: (
        Callable[[SchedulingInstance, Fraction, Fraction], bool] | None
    ) = None
    """Exact predicate ``(instance, makespan, optimum) -> holds?`` for
    guarantees a rational ``ratio_bound`` cannot express (Theorem 9's
    irrational ``sqrt(sum p_j)``, checked via squared arithmetic).  Must
    be monotone in the optimum: holding against a lower bound must imply
    holding against the true optimum, so the auditor may use either."""
    graph_blind: bool = False
    """Whether the method ignores the incompatibility graph entirely.

    Graph-blind baselines deliberately emit infeasible schedules on
    graphs with edges; the certification auditor treats that as
    expected behaviour rather than a violation."""
    exponential: bool = False
    """Whether the runtime is exponential in ``n`` (exhaustive search).

    The certification auditor only runs such methods inside its oracle
    cut-off; above it they would dominate (or hang) a sweep."""


def _is_uniform(instance: SchedulingInstance) -> bool:
    return isinstance(instance, UniformInstance)


def _is_unrelated(instance: SchedulingInstance) -> bool:
    return isinstance(instance, UnrelatedInstance)


def _uniform_unit_complete_bipartite(instance: SchedulingInstance) -> bool:
    return (
        _is_uniform(instance)
        and instance.has_unit_jobs
        and analyze_structure(instance.graph).complete_bipartite_free is not None
    )


def _run_r2_fptas(instance: SchedulingInstance) -> Schedule:
    return r2_fptas(instance, eps=Fraction(1, 10))


def _run_q2_fptas(instance: SchedulingInstance) -> Schedule:
    """Two uniform machines are a special case of two unrelated ones, so
    Algorithm 5 applies verbatim (the paper's Theorem 4 route)."""
    two_machine = r2_fptas(instance.to_unrelated(), eps=Fraction(1, 10))
    return Schedule(instance, two_machine.assignment)


def _run_dual_approx(instance: SchedulingInstance) -> Schedule:
    return dual_approx_identical(instance, Fraction(1, 3)).schedule


def _run_lst(instance: SchedulingInstance) -> Schedule:
    return lst_two_approx(instance).schedule


def _run_sqrt(instance: SchedulingInstance) -> Schedule:
    return sqrt_approx_schedule(instance).schedule


def _run_greedy(instance: SchedulingInstance) -> Schedule:
    schedule = graph_aware_greedy(instance)
    if schedule is None:
        raise InvalidInstanceError(
            "graph-aware greedy ran out of conflict-free machines; "
            "use a guaranteed method (solve with algorithm='auto')"
        )
    return schedule


def _ratio_one(_: SchedulingInstance) -> Fraction:
    return Fraction(1)


def _ratio_const(value: Fraction) -> Callable[[SchedulingInstance], Fraction]:
    return lambda _: value


def _ratio_two_if_edgeless(instance: SchedulingInstance) -> Fraction | None:
    """Graph-blind 2-approximations only promise their ratio when the
    incompatibility graph has no edges (otherwise they may be
    infeasible, and no ratio is declared)."""
    return Fraction(2) if instance.graph.edge_count == 0 else None


def _sqrt_guarantee_check(
    instance: SchedulingInstance, makespan: Fraction, optimum: Fraction
) -> bool:
    """Theorem 9 without radicals: ``Cmax^2 <= sum p_j * OPT^2``.

    Monotone in ``optimum``, as :class:`AlgorithmSpec.guarantee_check`
    requires.
    """
    return makespan * makespan <= instance.total_p * optimum * optimum


ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in [
        AlgorithmSpec(
            "complete_multipartite",
            "exact (unary encoding)",
            "[20]/[24], related work",
            _uniform_unit_complete_bipartite,
            schedule_complete_bipartite_unit,
            ratio_bound=_ratio_one,
        ),
        AlgorithmSpec(
            "q2_unit_exact",
            "exact, O(n^3)",
            "Theorem 4",
            lambda inst: _is_uniform(inst) and inst.m == 2 and inst.has_unit_jobs,
            q2_unit_exact,
            ratio_bound=_ratio_one,
        ),
        AlgorithmSpec(
            "q2_fptas",
            "1 + eps on two uniform machines (eps = 1/10 here)",
            "Theorem 4's FPTAS route / Algorithm 5",
            lambda inst: _is_uniform(inst) and inst.m == 2,
            _run_q2_fptas,
            ratio_bound=_ratio_const(Fraction(11, 10)),
        ),
        AlgorithmSpec(
            "dual_approx",
            "1 + eps (eps = 1/3 here)",
            "[11], related work",
            lambda inst: _is_uniform(inst)
            and inst.graph.edge_count == 0
            and inst.is_identical,
            _run_dual_approx,
            ratio_bound=_ratio_const(Fraction(4, 3)),
        ),
        AlgorithmSpec(
            "lpt",
            "graph-blind LPT (feasible iff graph edgeless)",
            "classical",
            _is_uniform,
            unconstrained_lpt,
            ratio_bound=_ratio_two_if_edgeless,
            graph_blind=True,
        ),
        AlgorithmSpec(
            "sqrt_approx",
            "sqrt(sum p_j)-approximate",
            "Algorithm 1 / Theorem 9",
            lambda inst: _is_uniform(inst) and inst.m >= 2,
            _run_sqrt,
            # sqrt(sum p_j) is irrational, so no rational ratio_bound;
            # the predicate checks Theorem 9 exactly in squared form
            guarantee_check=_sqrt_guarantee_check,
        ),
        AlgorithmSpec(
            "random_graph",
            "a.a.s. 2-approximate on G(n,n,p), unit jobs",
            "Algorithm 2 / Theorem 19",
            lambda inst: _is_uniform(inst) and inst.has_unit_jobs,
            random_graph_schedule,
        ),
        AlgorithmSpec(
            "random_graph_balanced",
            "Algorithm 2 + isolated-job balancing (Sec. 6 improvement)",
            "Section 6 open problems",
            lambda inst: _is_uniform(inst) and inst.has_unit_jobs,
            random_graph_schedule_balanced,
        ),
        AlgorithmSpec(
            "bjw",
            "2-approximate, identical machines, m >= 3",
            "[3], related work",
            lambda inst: _is_uniform(inst) and inst.is_identical and inst.m >= 3,
            bjw_identical_approx,
            ratio_bound=_ratio_const(Fraction(2)),
        ),
        AlgorithmSpec(
            "two_machine_split",
            "feasible two-machine split (no ratio bound)",
            "Algorithm 1 fallback shape",
            lambda inst: _is_uniform(inst) and inst.m >= 2,
            two_machine_split,
        ),
        AlgorithmSpec(
            "r2_two_approx",
            "2-approximate, O(n)",
            "Algorithm 4 / Theorem 21",
            lambda inst: _is_unrelated(inst) and inst.m == 2,
            r2_two_approx,
            ratio_bound=_ratio_const(Fraction(2)),
        ),
        AlgorithmSpec(
            "r2_fptas",
            "1 + eps (eps = 1/10 here)",
            "Algorithm 5 / Theorem 22",
            lambda inst: _is_unrelated(inst) and inst.m == 2,
            _run_r2_fptas,
            ratio_bound=_ratio_const(Fraction(11, 10)),
        ),
        AlgorithmSpec(
            "lst",
            "graph-blind 2-approx for R||Cmax",
            "[18], related work",
            _is_unrelated,
            _run_lst,
            ratio_bound=_ratio_two_if_edgeless,
            graph_blind=True,
        ),
        AlgorithmSpec(
            "r_color_split",
            "feasible color split (no ratio bound; cf. Theorem 24)",
            "Theorem 24 context",
            lambda inst: _is_unrelated(inst) and inst.m >= 2,
            r_color_split,
        ),
        AlgorithmSpec(
            "greedy",
            "graph-aware greedy heuristic (no guarantee, may fail)",
            "baseline",
            lambda inst: True,
            _run_greedy,
        ),
        AlgorithmSpec(
            "brute_force",
            "exact (exponential time)",
            "ground truth",
            lambda inst: True,
            brute_force_optimal,
            ratio_bound=_ratio_one,
            exponential=True,
        ),
    ]
}


def available_algorithms(
    instance: SchedulingInstance | None = None,
) -> list[AlgorithmSpec]:
    """All registered algorithms, optionally filtered by applicability.

    Parameters
    ----------
    instance:
        When given, only specs whose preconditions hold for this
        instance are returned (``spec.applies(instance)``).

    Returns
    -------
    list of AlgorithmSpec
        Registry entries in registration order.
    """
    specs = list(ALGORITHMS.values())
    if instance is None:
        return specs
    return [s for s in specs if s.applies(instance)]


_AUTO_UNIFORM = (
    "complete_multipartite",
    "q2_unit_exact",
    "dual_approx",
    "q2_fptas",
)
_AUTO_UNRELATED = ("r2_fptas",)


def auto_choice(instance: SchedulingInstance) -> str:
    """The algorithm name ``solve(instance, "auto")`` would run.

    Exposed so batch drivers (:mod:`repro.runtime`) and reports can record
    which registered method the dispatch policy resolved to without
    re-implementing the policy.

    Parameters
    ----------
    instance:
        The instance the dispatch policy inspects (machine environment,
        unit jobs, graph structure).

    Returns
    -------
    str
        A key of :data:`ALGORITHMS`.

    Raises
    ------
    repro.exceptions.InfeasibleInstanceError
        If the instance has conflict edges but only one machine (no
        feasible schedule can exist).
    repro.exceptions.InvalidInstanceError
        If the instance type is not registered.
    """
    if _is_uniform(instance):
        for name in _AUTO_UNIFORM:
            if ALGORITHMS[name].applies(instance):
                return name
        if instance.graph.edge_count == 0:
            return "lpt"  # feasible here, classical factor 2 on Q
        if instance.m >= 2:
            return "sqrt_approx"
        raise InfeasibleInstanceError(
            "instances with conflicts need at least two machines"
        )
    if _is_unrelated(instance):
        for name in _AUTO_UNRELATED:
            if ALGORITHMS[name].applies(instance):
                return name
        if instance.graph.edge_count == 0:
            return "lst"
        if instance.m >= 2:
            return "r_color_split"
        raise InfeasibleInstanceError(
            "instances with conflicts need at least two machines"
        )
    raise InvalidInstanceError(
        f"unknown instance type {type(instance).__name__}"
    )


# backwards-compatible alias (benchmarks imported the private name)
_auto_choice = auto_choice


def solve(instance: SchedulingInstance, algorithm: str = "auto") -> Schedule:
    """Schedule ``instance`` with the requested (or auto-chosen) method.

    Parameters
    ----------
    instance:
        A :class:`~repro.scheduling.instance.UniformInstance` or
        :class:`~repro.scheduling.instance.UnrelatedInstance`.
    algorithm:
        ``"auto"`` (default) applies the dispatch policy in the module
        docstring; any other value must be a key of :data:`ALGORITHMS`.

    Returns
    -------
    repro.scheduling.schedule.Schedule
        The produced schedule.  Graph-blind baselines may return an
        infeasible schedule on graphs with edges — check
        :meth:`~repro.scheduling.schedule.Schedule.is_feasible`.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        If ``algorithm`` is unknown, or its preconditions fail for this
        instance.
    repro.exceptions.InfeasibleInstanceError
        If no feasible schedule exists (propagated from dispatch or the
        exact methods).

    Examples
    --------
    >>> from repro import BipartiteGraph, UniformInstance, solve
    >>> graph = BipartiteGraph(4, [(0, 2), (1, 3)])
    >>> inst = UniformInstance(graph, p=[5, 3, 4, 2], speeds=[3, 2, 1])
    >>> schedule = solve(inst)
    >>> schedule.is_feasible()
    True
    """
    name = auto_choice(instance) if algorithm == "auto" else algorithm
    spec = ALGORITHMS.get(name)
    if spec is None:
        known = ", ".join(sorted(ALGORITHMS))
        raise InvalidInstanceError(f"unknown algorithm {name!r}; known: {known}")
    if not spec.applies(instance):
        raise InvalidInstanceError(
            f"algorithm {name!r} does not apply to this instance "
            f"({spec.guarantee}; {spec.anchor})"
        )
    return spec.run(instance)
