"""Back-compat shim over :mod:`repro.engine` (PR 5).

The algorithm registry and structure-aware dispatch that used to live
in this module as a 450-line monolith are now the
:mod:`repro.engine` package:

* :mod:`repro.engine.registry` — :class:`AlgorithmSpec` with structured
  :class:`~repro.engine.registry.Capability` requirements, the live
  :data:`ALGORITHMS` registry, and the
  :func:`~repro.engine.registry.register_algorithm` plugin entry point;
* :mod:`repro.engine.dispatch` — :func:`solve` / :func:`auto_choice` /
  :func:`available_algorithms`, ranked capability matching, and the
  explain mode behind ``repro solve --explain`` (the dispatch-policy
  table lives in that module's docstring and the README);
* :mod:`repro.engine.portfolio` — k-way algorithm racing;
* :mod:`repro.engine.service` — the persistent ``repro serve`` loop.

Every public name below is re-exported unchanged — ``from repro.solvers
import solve`` keeps working and is behaviour-identical (the frozen
dispatch corpus in ``tests/test_engine_dispatch.py`` pins this down).
New code should import from :mod:`repro.engine` directly; importing
this module emits a :class:`DeprecationWarning` saying so.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.solvers is a back-compat shim; import from repro.engine "
    "instead (same names, same behaviour)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.engine.dispatch import (  # noqa: E402
    auto_choice,
    available_algorithms,
    solve,
)
from repro.engine.registry import (  # noqa: E402
    ALGORITHMS,
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    Capability,
)

__all__ = [
    "AlgorithmSpec",
    "AlgorithmRegistry",
    "ALGORITHMS",
    "REGISTRY",
    "Capability",
    "auto_choice",
    "available_algorithms",
    "solve",
]

# backwards-compatible alias (benchmarks imported the private name)
_auto_choice = auto_choice
