"""The pruned exact oracle: certified optima beyond brute-force sizes.

:func:`repro.scheduling.brute_force.brute_force_optimal` is exact but
tops out around ``n ~ 16``; guarantee audits want ground truth on the
instance sizes the sweeps actually use.  :func:`certified_optimal`
pushes the frontier to ``n ~ 30`` on the unit-job uniform instances the
paper's exact results target, with four ingredients:

1. **incumbent seeding** — the dispatcher's own output
   (:func:`repro.engine.solve` with ``algorithm="auto"``) starts the
   search with a feasible upper bound, often already optimal;
2. **bound-tight fast path** — when the seed's makespan equals the
   environment's exact lower bound
   (:func:`~repro.scheduling.bounds.uniform_capacity_lower_bound` /
   :func:`~repro.scheduling.bounds.unrelated_lower_bound`), optimality
   is proven with zero search nodes;
3. **partial-assignment pruning** — at every node the residual demand
   must fit the rounded-down residual capacities
   (:func:`~repro.scheduling.bounds.min_cover_time_with_loads`), and
   every unassigned job must still have a conflict-free machine whose
   completion stays below the incumbent;
4. **component decomposition**
   (:func:`repro.graphs.components.connected_components`) — branching
   proceeds component by component so conflict propagation is local,
   and the conflict-free *isolated* unit jobs are not branched on at
   all: once the connected components are placed, the optimal tail is
   computed exactly by the capacity bound and materialised greedily.

The result is a :class:`OracleResult` carrying the proof method and the
node count, so certification reports can show *why* a value is optimal.

The search inner loop memoizes everything that never changes during the
search — per-job neighbour sets, the suffix of cheapest eligible
processing times behind the unrelated volume bound, and the
identical-machine-row classes behind the empty-machine symmetry break —
instead of recomputing them at every node; the pre-optimization loop is
preserved as :func:`repro.perf.baselines.certified_optimal_baseline`
(same search tree, measured by ``repro perf --target oracle``).

**Parallel certified search.**  ``certified_optimal(instance,
workers=k)`` with ``k > 1`` root-splits the branch and bound: the first
one or two branching levels of the component-ordered search are
expanded into independent subtree tasks (mirroring the search's own
viability, empty-machine-symmetry and incumbent filters, so the union
of subtrees covers exactly the sequential tree), which fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Workers share the
incumbent makespan as a scaled 64-bit integer — the exact quantum is
the lcm of the speed numerators (uniform) or of the processing-time
denominators (unrelated), so no rounding is ever involved — through a
:func:`multiprocessing.RawValue` guarded by a lock, polled every
:data:`_PULL_EVERY` nodes and compare-and-swapped on improvement.  The
returned makespan is bit-identical to the sequential search (both
compute ``min(seed, OPT)`` exactly); node counts may differ because
cross-worker incumbent propagation prunes differently.  A killed or
crashed worker never changes the answer: its subtree is re-searched
sequentially in the parent.  When parallelism cannot apply — a single
root branch, no seed incumbent, an incumbent too large for the shared
64-bit cell, or a daemonic caller such as a
:class:`~repro.runtime.batch.BatchRunner` worker (nested pools are
forbidden by :mod:`multiprocessing`) — the oracle silently runs the
sequential search.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.exceptions import InfeasibleInstanceError, ReproError
from repro.graphs.components import connected_components
from repro.scheduling.bounds import min_cover_time_with_loads
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.scheduling.schedule import Schedule
from repro.utils.rationals import floor_fraction
from repro.certify.validators import instance_lower_bound

__all__ = ["OracleResult", "certified_optimal", "certified_optimal_makespan"]

_INT64_SAFE = 2**62
"""Largest scaled incumbent the shared 64-bit cell may carry."""

_PULL_EVERY = 64
"""Worker nodes between reads of the shared incumbent."""

_MAX_SUBTREES = 256
"""Root-splitting stops expanding once this many prefixes exist."""

_CRASH_ENV = "_REPRO_ORACLE_CRASH_SUBTREE"
"""Test hook: a worker handed the subtree with this index dies abruptly
(exercises the crashed-worker requeue path without real kill races)."""


@dataclass(frozen=True)
class OracleResult:
    """A provably optimal schedule plus its proof metadata.

    ``proof`` is ``"bound-tight"`` (the incumbent met the exact lower
    bound; zero nodes explored) or ``"search-exhausted"`` (branch and
    bound closed the gap).  ``seeded_from`` names the dispatch route
    that produced the starting incumbent (``None`` when no heuristic
    applied and the search started cold).

    ``workers`` is the number of search processes that actually ran
    (``1`` for the sequential search, including every parallel
    fallback) and ``subtrees`` the number of root-split tasks fanned
    out (``0`` when no split happened).  ``nodes`` aggregates the
    explored nodes across all workers plus the root expansion.
    """

    schedule: Schedule
    makespan: Fraction
    lower_bound: Fraction | None
    nodes: int
    proof: str
    seeded_from: str | None
    workers: int = 1
    subtrees: int = 0

    @property
    def optimal(self) -> Fraction:
        """Alias for :attr:`makespan` (it is proven optimal)."""
        return self.makespan


def _seed_incumbent(instance: SchedulingInstance) -> tuple[Schedule | None, str | None]:
    """Best feasible heuristic schedule to start the search from."""
    from repro.engine import auto_choice, solve

    best: Schedule | None = None
    chosen: str | None = None
    try:
        name = auto_choice(instance)
        schedule = solve(instance, algorithm=name)
        if schedule.is_feasible():
            best, chosen = schedule, name
    except ReproError:
        pass
    except Exception:  # noqa: BLE001 — a buggy heuristic must not stop
        # the exact search; the auditor reports the crash separately
        pass
    return best, chosen


def _branch_order(instance: SchedulingInstance) -> tuple[list[int], list[int]]:
    """``(branched, isolated_unit_tail)`` job orders.

    Branched jobs are grouped by connected component (largest first, so
    the hardest conflicts bind early), within a component by descending
    processing requirement then degree.  The tail collects isolated
    *unit* jobs of uniform instances — conflict-free and interchangeable,
    they are finished exactly by the capacity bound instead of being
    branched on.  For unrelated instances every job is branched (machine
    eligibility makes isolated jobs non-interchangeable).
    """
    graph = instance.graph
    components = connected_components(graph)
    uniform = isinstance(instance, UniformInstance)

    def weight(j: int) -> int:
        return instance.p[j] if isinstance(instance, UniformInstance) else graph.degree(j)

    tail: list[int] = []
    branched: list[int] = []
    nontrivial = [c for c in components if len(c) > 1]
    singletons = [c[0] for c in components if len(c) == 1]
    nontrivial.sort(key=len, reverse=True)
    for comp in nontrivial:
        branched.extend(
            sorted(comp, key=lambda j: (-weight(j), -graph.degree(j)))
        )
    for j in sorted(singletons, key=lambda j: -weight(j)):
        if uniform and instance.p[j] == 1:
            tail.append(j)
        else:
            branched.append(j)
    return branched, tail


class _SearchContext:
    """Everything the branch and bound precomputes once per instance.

    Immutable during the search, so one context serves both the
    sequential path and (rebuilt from the serialised instance in
    :func:`_subtree_init`) every subtree task a worker process runs.
    """

    __slots__ = (
        "instance",
        "n",
        "m",
        "uniform",
        "speeds",
        "p",
        "times",
        "neighbor_sets",
        "branched",
        "tail",
        "tail_units",
        "suffix_units",
        "suffix_cheapest",
        "earlier_identical",
    )

    def __init__(self, instance: SchedulingInstance) -> None:
        n, m = instance.n, instance.m
        self.instance = instance
        self.n = n
        self.m = m
        if isinstance(instance, UniformInstance):
            self.uniform = True
            self.speeds: tuple[Fraction, ...] = instance.speeds
            self.p: tuple[int, ...] = instance.p
        else:
            self.uniform = False
            self.speeds = ()
            self.p = ()
        self.times: list[list[Fraction | None]] = [
            [instance.processing_time(i, j) for j in range(n)] for i in range(m)
        ]
        graph = instance.graph
        self.neighbor_sets: list[frozenset[int]] = [
            graph.neighbors(j) for j in range(n)
        ]
        self.branched, self.tail = _branch_order(instance)
        self.tail_units = len(self.tail)  # all unit jobs
        # residual integer demand after position k of the branched order
        # (uniform only; includes the tail's units)
        if self.uniform:
            suffix_units = [0] * (len(self.branched) + 1)
            for k in range(len(self.branched) - 1, -1, -1):
                suffix_units[k] = suffix_units[k + 1] + self.p[self.branched[k]]
            self.suffix_units: list[int] = [
                u + self.tail_units for u in suffix_units
            ]
            self.suffix_cheapest: list[Fraction] = []
        else:
            # residual volume after position k of the branched order, each
            # job billed at its cheapest eligible machine — static, so the
            # per-node volume bound becomes one addition instead of an
            # O((len(branched) - pos) * m) rescan
            suffix_cheapest = [Fraction(0)] * (len(self.branched) + 1)
            for k in range(len(self.branched) - 1, -1, -1):
                j = self.branched[k]
                cheapest = min(
                    (
                        t
                        for i in range(m)
                        if (t := self.times[i][j]) is not None
                    ),
                    default=None,
                )
                suffix_cheapest[k] = suffix_cheapest[k + 1] + (
                    cheapest if cheapest is not None else Fraction(0)
                )
            self.suffix_cheapest = suffix_cheapest
            self.suffix_units = []
        # empty-machine symmetry break, memoized: earlier machines with an
        # identical processing-time row (recomputing the row comparison at
        # every node is pure waste — the rows never change)
        machine_rows = [tuple(self.times[i]) for i in range(m)]
        self.earlier_identical: list[tuple[int, ...]] = [
            tuple(
                other
                for other in range(i)
                if machine_rows[other] == machine_rows[i]
            )
            for i in range(m)
        ]


class _SharedIncumbent:
    """The cross-process incumbent: an exactly scaled 64-bit makespan.

    ``quantum`` is chosen so every reachable makespan times ``quantum``
    is an integer (lcm of speed numerators for uniform instances, lcm
    of time denominators for unrelated ones) — sharing is exact, never
    rounded.  A value whose scaling is not integral is simply not
    shared (pruning is weakened, correctness untouched).
    """

    __slots__ = ("value", "lock", "quantum")

    def __init__(self, value: Any, lock: Any, quantum: int) -> None:
        self.value = value
        self.lock = lock
        self.quantum = quantum

    def offer(self, makespan: Fraction) -> None:
        num = makespan.numerator * self.quantum
        if num % makespan.denominator:
            return
        scaled = num // makespan.denominator
        with self.lock:
            if scaled < self.value.value:
                self.value.value = scaled

    def read(self) -> Fraction:
        with self.lock:
            raw = int(self.value.value)
        return Fraction(raw, self.quantum)


def _run_search(
    ctx: _SearchContext,
    incumbent_makespan: Fraction | None,
    prefix: tuple[int, ...] = (),
    shared: _SharedIncumbent | None = None,
) -> tuple[Fraction | None, list[int] | None, int]:
    """Branch and bound over the subtree below ``prefix``.

    Returns ``(found_makespan, found_assignment, nodes)`` where the
    found pair is the best *materialised* schedule strictly better than
    every incumbent seen (``None`` when the subtree holds nothing
    better).  With ``prefix=()`` and ``shared=None`` this is exactly
    the pre-parallel sequential search — same tree, same node count.
    """
    instance = ctx.instance
    uniform = ctx.uniform
    speeds = ctx.speeds
    p = ctx.p
    times = ctx.times
    neighbor_sets = ctx.neighbor_sets
    branched = ctx.branched
    tail = ctx.tail
    tail_units = ctx.tail_units
    suffix_units = ctx.suffix_units
    suffix_cheapest = ctx.suffix_cheapest
    earlier_identical = ctx.earlier_identical
    n, m = ctx.n, ctx.m

    best_assignment: list[int] | None = None
    best_makespan: Fraction | None = incumbent_makespan
    found_makespan: Fraction | None = None
    completions: list[Fraction] = [Fraction(0)] * m
    unit_loads: list[int] = [0] * m  # integer units per machine (uniform)
    machine_jobs: list[set[int]] = [set() for _ in range(m)]
    assignment: list[int] = [-1] * n
    nodes = 0

    for k, i in enumerate(prefix):
        j = branched[k]
        t = times[i][j]
        if t is None or machine_jobs[i] & neighbor_sets[j]:
            raise ReproError(
                f"infeasible oracle subtree prefix: job {j} on machine {i}"
            )
        completions[i] += t
        machine_jobs[i].add(j)
        assignment[j] = i
        if uniform:
            unit_loads[i] += p[j]

    def _finish_tail() -> None:
        """Exactly place the isolated unit tail on the current loads."""
        nonlocal best_assignment, best_makespan, found_makespan
        if tail_units:
            span = min_cover_time_with_loads(speeds, unit_loads, tail_units)
        else:
            span = max(completions)
        if best_makespan is not None and span >= best_makespan:
            return
        if tail_units:
            # materialise greedily within the proven span: machine i can
            # absorb floor(s_i * span) - load_i more units
            slack = [
                floor_fraction(speeds[i] * span) - unit_loads[i]
                for i in range(m)
            ]
            pos = 0
            for j in tail:
                while slack[pos % m] <= 0:
                    pos += 1
                assignment[j] = pos % m
                slack[pos % m] -= 1
        best_makespan = span
        found_makespan = span
        best_assignment = assignment.copy()
        if shared is not None:
            shared.offer(span)
        if tail_units:
            for j in tail:
                assignment[j] = -1

    def _prune_bound(pos: int) -> Fraction:
        """An exact lower bound on any completion of the current node."""
        bound = max(completions)
        if uniform:
            capacity = min_cover_time_with_loads(
                speeds, unit_loads, suffix_units[pos]
            )
            if capacity > bound:
                bound = capacity
        else:
            volume = sum(completions, suffix_cheapest[pos])
            if volume / m > bound:
                bound = volume / m
        return bound

    def place(pos: int) -> None:
        nonlocal best_assignment, best_makespan, nodes
        if pos == len(branched):
            _finish_tail()
            return
        nodes += 1
        if shared is not None and nodes % _PULL_EVERY == 0:
            pulled = shared.read()
            if best_makespan is None or pulled < best_makespan:
                best_makespan = pulled
        if best_makespan is not None and _prune_bound(pos) >= best_makespan:
            return
        # every unassigned branched job must retain a viable machine
        for k in range(pos, len(branched)):
            jj = branched[k]
            viable = False
            jj_neighbors = neighbor_sets[jj]
            for i in range(m):
                t = times[i][jj]
                if t is None or machine_jobs[i] & jj_neighbors:
                    continue
                if (
                    best_makespan is not None
                    and completions[i] + t >= best_makespan
                ):
                    continue
                viable = True
                break
            if not viable:
                return
        j = branched[pos]
        neighbors = neighbor_sets[j]
        for i in sorted(range(m), key=lambda i: completions[i]):
            t = times[i][j]
            if t is None or machine_jobs[i] & neighbors:
                continue
            if not machine_jobs[i] and _earlier_equivalent_empty(i):
                continue
            done = completions[i] + t
            if best_makespan is not None and done >= best_makespan:
                continue
            completions[i] = done
            machine_jobs[i].add(j)
            assignment[j] = i
            if uniform:
                unit_loads[i] += p[j]
            place(pos + 1)
            completions[i] = done - t
            machine_jobs[i].remove(j)
            assignment[j] = -1
            if uniform:
                unit_loads[i] -= p[j]

    def _earlier_equivalent_empty(i: int) -> bool:
        for other in earlier_identical[i]:
            if not machine_jobs[other]:
                return True
        return False

    place(len(prefix))
    return found_makespan, best_assignment, nodes


# --------------------------------------------------------------------- #
# root splitting and the worker side
# --------------------------------------------------------------------- #


def _effective_workers(workers: int) -> int:
    """The worker count the oracle may actually use.

    Daemonic processes (:class:`multiprocessing.pool.Pool` workers, as
    used by :class:`repro.runtime.batch.BatchRunner`) cannot spawn
    children, so a nested oracle silently degrades to the sequential
    search instead of crashing the outer pool.
    """
    if workers <= 1:
        return 1
    if multiprocessing.current_process().daemon:
        return 1
    return int(workers)


def _incumbent_quantum(ctx: _SearchContext) -> int:
    """The exact scaling factor for the shared integer incumbent.

    Every reachable makespan is ``load * den_i / num_i`` (uniform; the
    capacity-bound tail spans hit the same grid) or a sum of processing
    times (unrelated), so multiplying by the lcm of the speed
    numerators resp. time denominators always lands on an integer.
    """
    if ctx.uniform:
        return math.lcm(*(s.numerator for s in ctx.speeds))
    dens = [
        t.denominator for row in ctx.times for t in row if t is not None
    ]
    return math.lcm(*dens) if dens else 1


def _scale_exact(value: Fraction, quantum: int) -> int | None:
    """``value * quantum`` as an int64-safe integer, else ``None``."""
    num = value.numerator * quantum
    if num % value.denominator:
        return None
    scaled = num // value.denominator
    return scaled if 0 <= scaled < _INT64_SAFE else None


def _enumerate_prefixes(
    ctx: _SearchContext, incumbent_makespan: Fraction, want: int
) -> tuple[list[tuple[int, ...]], int]:
    """The root split: depth-1 (or depth-2) branching prefixes.

    Mirrors :func:`_run_search`'s own candidate filters — forbidden
    pairs, conflict edges, the empty-machine symmetry break, and the
    seed-incumbent completion prune — so the surviving prefixes cover
    every branch the sequential search could descend (pruning here uses
    only the *seed* incumbent, a superset of what the evolving
    sequential incumbent keeps).  Expansion goes one level deeper when
    the first level yields fewer than ``want`` tasks, and stops rather
    than exceed :data:`_MAX_SUBTREES`.  Returns the prefixes plus the
    number of root nodes expanded (counted into the aggregate total).
    """
    if not ctx.branched:
        return [()], 0
    prefixes: list[tuple[int, ...]] = [()]
    explored = 0
    depth = 0
    while depth < 2 and depth < len(ctx.branched) and len(prefixes) < want:
        nxt: list[tuple[int, ...]] = []
        for prefix in prefixes:
            completions = [Fraction(0)] * ctx.m
            machine_jobs: list[set[int]] = [set() for _ in range(ctx.m)]
            for k, i in enumerate(prefix):
                t = ctx.times[i][ctx.branched[k]]
                if t is None:  # pragma: no cover - filtered at creation
                    raise ReproError("forbidden pair in an oracle prefix")
                completions[i] += t
                machine_jobs[i].add(ctx.branched[k])
            explored += 1
            j = ctx.branched[depth]
            neighbors = ctx.neighbor_sets[j]
            for i in sorted(range(ctx.m), key=lambda i: completions[i]):
                t = ctx.times[i][j]
                if t is None or machine_jobs[i] & neighbors:
                    continue
                if not machine_jobs[i] and any(
                    not machine_jobs[o] for o in ctx.earlier_identical[i]
                ):
                    continue
                if completions[i] + t >= incumbent_makespan:
                    continue
                nxt.append(prefix + (i,))
        if len(nxt) > _MAX_SUBTREES:
            break
        prefixes = nxt
        depth += 1
        if not prefixes:
            break
    return prefixes, explored


_WORKER_CTX: _SearchContext | None = None
_WORKER_SHARED: _SharedIncumbent | None = None


def _subtree_init(
    payload: dict[str, Any], value: Any, lock: Any, quantum: int
) -> None:
    """Worker-process initializer: rebuild the search context once.

    The instance travels as its JSON dict
    (:func:`repro.io.serialization.instance_to_dict` round-trips every
    graph family deterministically, so the worker's branch order is the
    parent's) and the shared incumbent cell plus its lock are inherited
    through the process start.
    """
    global _WORKER_CTX, _WORKER_SHARED
    from repro.io.serialization import instance_from_dict

    _WORKER_CTX = _SearchContext(instance_from_dict(payload))
    _WORKER_SHARED = _SharedIncumbent(value, lock, quantum)


def _solve_subtree(
    task: tuple[int, tuple[int, ...]]
) -> tuple[Fraction | None, list[int] | None, int]:
    """One root-split task: search the subtree under ``task``'s prefix."""
    index, prefix = task
    if os.environ.get(_CRASH_ENV) == str(index):
        os._exit(1)  # the crash-injection hook: die like a SIGKILL would
    ctx, shared = _WORKER_CTX, _WORKER_SHARED
    if ctx is None or shared is None:  # pragma: no cover - initializer ran
        raise ReproError("oracle subtree worker used before initialization")
    return _run_search(ctx, shared.read(), prefix=prefix, shared=shared)


def _parallel_certified(
    instance: SchedulingInstance,
    ctx: _SearchContext,
    incumbent: Schedule,
    seeded_from: str | None,
    lower: Fraction | None,
    workers: int,
) -> OracleResult | None:
    """Fan the root-split subtrees over a process pool.

    Returns ``None`` when parallelism cannot apply (single root branch,
    incumbent outside the shared cell's range) — the caller then runs
    the sequential search.  Crashed or killed workers lose nothing but
    time: their subtrees are re-searched in-process before aggregation.
    """
    from repro.io.serialization import instance_to_dict

    quantum = _incumbent_quantum(ctx)
    seed_scaled = _scale_exact(incumbent.makespan, quantum)
    if seed_scaled is None:
        return None
    prefixes, explored = _enumerate_prefixes(
        ctx, incumbent.makespan, 4 * workers
    )
    if len(prefixes) <= 1:
        return None

    mp_ctx = multiprocessing.get_context()
    value = mp_ctx.RawValue("q", seed_scaled)
    lock = mp_ctx.Lock()
    payload = instance_to_dict(instance)
    results: dict[int, tuple[Fraction | None, list[int] | None, int]] = {}
    failed: list[int] = []
    pool = ProcessPoolExecutor(
        max_workers=min(workers, len(prefixes)),
        mp_context=mp_ctx,
        initializer=_subtree_init,
        initargs=(payload, value, lock, quantum),
    )
    try:
        futures = {
            pool.submit(_solve_subtree, (k, prefix)): k
            for k, prefix in enumerate(prefixes)
        }
        for future, k in futures.items():
            try:
                results[k] = future.result()
            except Exception:  # noqa: BLE001 — a dead worker (SIGKILL,
                # BrokenProcessPool) must degrade to a sequential
                # re-search of its subtree, never to a wrong answer
                failed.append(k)
    finally:
        pool.shutdown(wait=True)

    nodes = explored + sum(r[2] for r in results.values())
    # re-search lost subtrees in-process, pruning with the best value
    # any surviving worker established
    if failed:
        prune = incumbent.makespan
        for found, _, _ in results.values():
            if found is not None and found < prune:
                prune = found
        for k in sorted(failed):
            found, found_assignment, sub_nodes = _run_search(
                ctx, prune, prefix=prefixes[k]
            )
            nodes += sub_nodes
            results[k] = (found, found_assignment, sub_nodes)
            if found is not None and found < prune:
                prune = found

    best_index: int | None = None
    best_makespan: Fraction | None = None
    for k in sorted(results):
        found, found_assignment, _ = results[k]
        if found is None or found_assignment is None:
            continue
        if best_makespan is None or found < best_makespan:
            best_makespan, best_index = found, k
    if best_index is None:
        # no subtree beat the seed: the incumbent was optimal
        return OracleResult(
            incumbent,
            incumbent.makespan,
            lower,
            nodes,
            "search-exhausted",
            seeded_from,
            workers=workers,
            subtrees=len(prefixes),
        )
    assignment = results[best_index][1]
    if assignment is None:  # pragma: no cover - filtered above
        raise ReproError("winning oracle subtree lost its assignment")
    schedule = Schedule(instance, assignment)
    return OracleResult(
        schedule,
        schedule.makespan,
        lower,
        nodes,
        "search-exhausted",
        seeded_from,
        workers=workers,
        subtrees=len(prefixes),
    )


def certified_optimal(
    instance: SchedulingInstance, workers: int = 1
) -> OracleResult:
    """A provably optimal schedule, with the proof that it is one.

    Parameters
    ----------
    instance:
        The instance to solve exactly (uniform or unrelated).
    workers:
        Search processes for the root-split parallel branch and bound;
        ``1`` (the default) runs the sequential search.  The makespan
        is identical either way — parallelism only changes how fast
        the proof closes (node counts may differ).  Requests from
        daemonic processes, instances with a single root branch, and
        other inapplicable cases silently degrade to ``workers=1``;
        :attr:`OracleResult.workers` reports what actually ran.

    Returns
    -------
    OracleResult
        The optimal schedule, its makespan, the proof method
        (``"bound-tight"`` or ``"search-exhausted"``), the explored
        node count, and the dispatch route that seeded the incumbent.

    Raises
    ------
    repro.exceptions.InfeasibleInstanceError
        If no feasible schedule exists.

    Notes
    -----
    Exponential in the worst case, but the pruning stack keeps unit-job
    uniform bipartite instances tractable to ``n ~ 30``.
    """
    n = instance.n
    lower = instance_lower_bound(instance)
    if n == 0:
        return OracleResult(
            Schedule(instance, []), Fraction(0), lower, 0, "bound-tight", None
        )

    incumbent, seeded_from = _seed_incumbent(instance)
    if incumbent is not None and lower is not None and incumbent.makespan == lower:
        return OracleResult(
            incumbent, incumbent.makespan, lower, 0, "bound-tight", seeded_from
        )

    ctx = _SearchContext(instance)
    effective = _effective_workers(workers)
    if effective > 1 and incumbent is not None:
        parallel = _parallel_certified(
            instance, ctx, incumbent, seeded_from, lower, effective
        )
        if parallel is not None:
            return parallel

    found_makespan, best_assignment, nodes = _run_search(
        ctx, None if incumbent is None else incumbent.makespan
    )

    if best_assignment is None:
        if incumbent is not None:
            # nothing strictly better exists: the incumbent was optimal
            # (the analogue of catching BoundExcludedError from a seeded
            # brute_force_optimal call — a feasible instance must never
            # be misreported as infeasible)
            return OracleResult(
                incumbent,
                incumbent.makespan,
                lower,
                nodes,
                "search-exhausted",
                seeded_from,
            )
        raise InfeasibleInstanceError("no feasible schedule exists")
    if incumbent is not None and found_makespan == incumbent.makespan:
        schedule = incumbent
    else:
        schedule = Schedule(instance, best_assignment)
    return OracleResult(
        schedule, schedule.makespan, lower, nodes, "search-exhausted", seeded_from
    )


def certified_optimal_makespan(instance: SchedulingInstance) -> Fraction:
    """Makespan of :func:`certified_optimal` (convenience)."""
    return certified_optimal(instance).makespan
