"""The pruned exact oracle: certified optima beyond brute-force sizes.

:func:`repro.scheduling.brute_force.brute_force_optimal` is exact but
tops out around ``n ~ 16``; guarantee audits want ground truth on the
instance sizes the sweeps actually use.  :func:`certified_optimal`
pushes the frontier to ``n ~ 30`` on the unit-job uniform instances the
paper's exact results target, with four ingredients:

1. **incumbent seeding** — the dispatcher's own output
   (:func:`repro.engine.solve` with ``algorithm="auto"``) starts the
   search with a feasible upper bound, often already optimal;
2. **bound-tight fast path** — when the seed's makespan equals the
   environment's exact lower bound
   (:func:`~repro.scheduling.bounds.uniform_capacity_lower_bound` /
   :func:`~repro.scheduling.bounds.unrelated_lower_bound`), optimality
   is proven with zero search nodes;
3. **partial-assignment pruning** — at every node the residual demand
   must fit the rounded-down residual capacities
   (:func:`~repro.scheduling.bounds.min_cover_time_with_loads`), and
   every unassigned job must still have a conflict-free machine whose
   completion stays below the incumbent;
4. **component decomposition**
   (:func:`repro.graphs.components.connected_components`) — branching
   proceeds component by component so conflict propagation is local,
   and the conflict-free *isolated* unit jobs are not branched on at
   all: once the connected components are placed, the optimal tail is
   computed exactly by the capacity bound and materialised greedily.

The result is a :class:`OracleResult` carrying the proof method and the
node count, so certification reports can show *why* a value is optimal.

The search inner loop memoizes everything that never changes during the
search — per-job neighbour sets, the suffix of cheapest eligible
processing times behind the unrelated volume bound, and the
identical-machine-row classes behind the empty-machine symmetry break —
instead of recomputing them at every node; the pre-optimization loop is
preserved as :func:`repro.perf.baselines.certified_optimal_baseline`
(same search tree, measured by ``repro perf --target oracle``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.exceptions import InfeasibleInstanceError, ReproError
from repro.graphs.components import connected_components
from repro.scheduling.bounds import min_cover_time_with_loads
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.scheduling.schedule import Schedule
from repro.certify.validators import instance_lower_bound

__all__ = ["OracleResult", "certified_optimal", "certified_optimal_makespan"]


@dataclass(frozen=True)
class OracleResult:
    """A provably optimal schedule plus its proof metadata.

    ``proof`` is ``"bound-tight"`` (the incumbent met the exact lower
    bound; zero nodes explored) or ``"search-exhausted"`` (branch and
    bound closed the gap).  ``seeded_from`` names the dispatch route
    that produced the starting incumbent (``None`` when no heuristic
    applied and the search started cold).
    """

    schedule: Schedule
    makespan: Fraction
    lower_bound: Fraction | None
    nodes: int
    proof: str
    seeded_from: str | None

    @property
    def optimal(self) -> Fraction:
        """Alias for :attr:`makespan` (it is proven optimal)."""
        return self.makespan


def _seed_incumbent(instance: SchedulingInstance) -> tuple[Schedule | None, str | None]:
    """Best feasible heuristic schedule to start the search from."""
    from repro.engine import auto_choice, solve

    best: Schedule | None = None
    chosen: str | None = None
    try:
        name = auto_choice(instance)
        schedule = solve(instance, algorithm=name)
        if schedule.is_feasible():
            best, chosen = schedule, name
    except ReproError:
        pass
    except Exception:  # noqa: BLE001 — a buggy heuristic must not stop
        # the exact search; the auditor reports the crash separately
        pass
    return best, chosen


def _branch_order(instance: SchedulingInstance) -> tuple[list[int], list[int]]:
    """``(branched, isolated_unit_tail)`` job orders.

    Branched jobs are grouped by connected component (largest first, so
    the hardest conflicts bind early), within a component by descending
    processing requirement then degree.  The tail collects isolated
    *unit* jobs of uniform instances — conflict-free and interchangeable,
    they are finished exactly by the capacity bound instead of being
    branched on.  For unrelated instances every job is branched (machine
    eligibility makes isolated jobs non-interchangeable).
    """
    graph = instance.graph
    components = connected_components(graph)
    uniform = isinstance(instance, UniformInstance)

    def weight(j: int) -> int:
        return instance.p[j] if uniform else graph.degree(j)

    tail: list[int] = []
    branched: list[int] = []
    nontrivial = [c for c in components if len(c) > 1]
    singletons = [c[0] for c in components if len(c) == 1]
    nontrivial.sort(key=len, reverse=True)
    for comp in nontrivial:
        branched.extend(
            sorted(comp, key=lambda j: (-weight(j), -graph.degree(j)))
        )
    for j in sorted(singletons, key=lambda j: -weight(j)):
        if uniform and instance.p[j] == 1:
            tail.append(j)
        else:
            branched.append(j)
    return branched, tail


def certified_optimal(instance: SchedulingInstance) -> OracleResult:
    """A provably optimal schedule, with the proof that it is one.

    Parameters
    ----------
    instance:
        The instance to solve exactly (uniform or unrelated).

    Returns
    -------
    OracleResult
        The optimal schedule, its makespan, the proof method
        (``"bound-tight"`` or ``"search-exhausted"``), the explored
        node count, and the dispatch route that seeded the incumbent.

    Raises
    ------
    repro.exceptions.InfeasibleInstanceError
        If no feasible schedule exists.

    Notes
    -----
    Exponential in the worst case, but the pruning stack keeps unit-job
    uniform bipartite instances tractable to ``n ~ 30``.
    """
    n, m = instance.n, instance.m
    lower = instance_lower_bound(instance)
    if n == 0:
        return OracleResult(
            Schedule(instance, []), Fraction(0), lower, 0, "bound-tight", None
        )

    incumbent, seeded_from = _seed_incumbent(instance)
    if incumbent is not None and lower is not None and incumbent.makespan == lower:
        return OracleResult(
            incumbent, incumbent.makespan, lower, 0, "bound-tight", seeded_from
        )

    graph = instance.graph
    uniform = isinstance(instance, UniformInstance)
    speeds = instance.speeds if uniform else None
    times: list[list[Fraction | None]] = [
        [instance.processing_time(i, j) for j in range(n)] for i in range(m)
    ]
    neighbor_sets: list[frozenset[int]] = [graph.neighbors(j) for j in range(n)]
    branched, tail = _branch_order(instance)
    tail_units = len(tail)  # all unit jobs
    # residual integer demand after position k of the branched order
    # (uniform only; includes the tail's units)
    if uniform:
        suffix_units = [0] * (len(branched) + 1)
        for k in range(len(branched) - 1, -1, -1):
            suffix_units[k] = suffix_units[k + 1] + instance.p[branched[k]]
        suffix_units = [u + tail_units for u in suffix_units]
    else:
        # residual volume after position k of the branched order, each
        # job billed at its cheapest eligible machine — static, so the
        # per-node volume bound becomes one addition instead of an
        # O((len(branched) - pos) * m) rescan
        suffix_cheapest = [Fraction(0)] * (len(branched) + 1)
        for k in range(len(branched) - 1, -1, -1):
            j = branched[k]
            cheapest = min(
                (times[i][j] for i in range(m) if times[i][j] is not None),
                default=None,
            )
            suffix_cheapest[k] = suffix_cheapest[k + 1] + (
                cheapest if cheapest is not None else Fraction(0)
            )
    # empty-machine symmetry break, memoized: earlier machines with an
    # identical processing-time row (recomputing the row comparison at
    # every node is pure waste — the rows never change)
    machine_rows = [tuple(times[i]) for i in range(m)]
    earlier_identical: list[tuple[int, ...]] = [
        tuple(
            other for other in range(i) if machine_rows[other] == machine_rows[i]
        )
        for i in range(m)
    ]

    best_assignment: list[int] | None = None
    best_makespan: Fraction | None = (
        incumbent.makespan if incumbent is not None else None
    )
    completions: list[Fraction] = [Fraction(0)] * m
    unit_loads: list[int] = [0] * m  # integer units per machine (uniform)
    machine_jobs: list[set[int]] = [set() for _ in range(m)]
    assignment: list[int] = [-1] * n
    nodes = 0

    def _finish_tail() -> None:
        """Exactly place the isolated unit tail on the current loads."""
        nonlocal best_assignment, best_makespan
        if tail_units:
            span = min_cover_time_with_loads(speeds, unit_loads, tail_units)
        else:
            span = max(completions)
        if best_makespan is not None and span >= best_makespan:
            return
        if tail_units:
            # materialise greedily within the proven span: machine i can
            # absorb floor(s_i * span) - load_i more units
            from repro.utils.rationals import floor_fraction

            slack = [
                floor_fraction(speeds[i] * span) - unit_loads[i]
                for i in range(m)
            ]
            pos = 0
            for j in tail:
                while slack[pos % m] <= 0:
                    pos += 1
                assignment[j] = pos % m
                slack[pos % m] -= 1
        best_makespan = span
        best_assignment = assignment.copy()
        if tail_units:
            for j in tail:
                assignment[j] = -1

    def _prune_bound(pos: int) -> Fraction:
        """An exact lower bound on any completion of the current node."""
        bound = max(completions)
        if uniform:
            capacity = min_cover_time_with_loads(
                speeds, unit_loads, suffix_units[pos]
            )
            if capacity > bound:
                bound = capacity
        else:
            volume = sum(completions, suffix_cheapest[pos])
            if volume / m > bound:
                bound = volume / m
        return bound

    def place(pos: int) -> None:
        nonlocal best_assignment, best_makespan, nodes
        if pos == len(branched):
            _finish_tail()
            return
        nodes += 1
        if best_makespan is not None and _prune_bound(pos) >= best_makespan:
            return
        # every unassigned branched job must retain a viable machine
        for k in range(pos, len(branched)):
            jj = branched[k]
            viable = False
            jj_neighbors = neighbor_sets[jj]
            for i in range(m):
                t = times[i][jj]
                if t is None or machine_jobs[i] & jj_neighbors:
                    continue
                if (
                    best_makespan is not None
                    and completions[i] + t >= best_makespan
                ):
                    continue
                viable = True
                break
            if not viable:
                return
        j = branched[pos]
        neighbors = neighbor_sets[j]
        for i in sorted(range(m), key=lambda i: completions[i]):
            t = times[i][j]
            if t is None or machine_jobs[i] & neighbors:
                continue
            if not machine_jobs[i] and _earlier_equivalent_empty(i):
                continue
            done = completions[i] + t
            if best_makespan is not None and done >= best_makespan:
                continue
            completions[i] = done
            machine_jobs[i].add(j)
            assignment[j] = i
            if uniform:
                unit_loads[i] += instance.p[j]
            place(pos + 1)
            completions[i] = done - t
            machine_jobs[i].remove(j)
            assignment[j] = -1
            if uniform:
                unit_loads[i] -= instance.p[j]

    def _earlier_equivalent_empty(i: int) -> bool:
        for other in earlier_identical[i]:
            if not machine_jobs[other]:
                return True
        return False

    place(0)

    if best_assignment is None:
        if incumbent is not None:
            # nothing strictly better exists: the incumbent was optimal
            # (the analogue of catching BoundExcludedError from a seeded
            # brute_force_optimal call — a feasible instance must never
            # be misreported as infeasible)
            return OracleResult(
                incumbent,
                incumbent.makespan,
                lower,
                nodes,
                "search-exhausted",
                seeded_from,
            )
        raise InfeasibleInstanceError("no feasible schedule exists")
    if incumbent is not None and best_makespan == incumbent.makespan:
        schedule = incumbent
    else:
        schedule = Schedule(instance, best_assignment)
    return OracleResult(
        schedule, schedule.makespan, lower, nodes, "search-exhausted", seeded_from
    )


def certified_optimal_makespan(instance: SchedulingInstance) -> Fraction:
    """Makespan of :func:`certified_optimal` (convenience)."""
    return certified_optimal(instance).makespan
