"""Guarantee-violation sweeps over the algorithm registry.

Every :class:`~repro.engine.registry.AlgorithmSpec` declares what it promises
(``ratio_bound``; Theorem 9's irrational ``sqrt(sum p_j)`` bound is
special-cased with exact squared arithmetic).  The auditor runs every
applicable registered algorithm on every instance of a sweep, certifies
each schedule end-to-end (:mod:`repro.certify.validators`), obtains
ground truth from the pruned exact oracle
(:mod:`repro.certify.oracle`) where tractable, and classifies the
outcome:

========================  ====================================================
status                    meaning
========================  ====================================================
``ok``                    guarantee holds against the *proven optimum*
``ok_vs_bound``           ``Cmax <= B * lower_bound``: holds a fortiori
                          (no oracle run needed)
``unverified``            above ``B * lower_bound`` but the instance is too
                          large for the oracle — not a violation, not a proof
``no_guarantee``          the spec declares no checkable worst-case ratio
``infeasible_output``     the schedule failed certification (conflict /
                          eligibility / makespan drift) — always a bug
``violated``              ``Cmax > B * OPT`` with OPT proven — the paper's
                          claim (or our implementation) is wrong
``error``                 the solver raised one of its *declared* failure
                          modes (:exc:`~repro.exceptions.ReproError`:
                          infeasible instance, heuristic gave up, ...)
``crash``                 the solver raised anything else — an undeclared
                          defect, always a bug
========================  ====================================================

``violated``, ``infeasible_output`` and ``crash`` are the rows the CI
sweep (``benchmarks/bench_certify.py``, ``repro certify``) requires to
be empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Mapping

from repro.exceptions import InvalidScheduleError, ReproError
from repro.scheduling.instance import SchedulingInstance
from repro.certify.oracle import certified_optimal
from repro.certify.validators import (
    CertificateReport,
    _frac_str,
    certify_schedule,
    instance_lower_bound,
)

__all__ = [
    "AuditRow",
    "VIOLATION_STATUSES",
    "audit_instance",
    "audit_guarantees",
]

#: statuses that must never appear in a clean sweep
VIOLATION_STATUSES = frozenset({"violated", "infeasible_output", "crash"})

#: default oracle cut-off: above this ``n`` ground truth is not computed
DEFAULT_ORACLE_MAX_N = 14


@dataclass(frozen=True)
class AuditRow:
    """One (instance, algorithm) audit outcome."""

    name: str
    algorithm: str
    n: int
    m: int
    makespan: Fraction | None
    optimal: Fraction | None
    lower_bound: Fraction | None
    bound: Fraction | None
    ratio: float | None
    status: str
    detail: str
    certificate: CertificateReport | None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe record for sweeps persisted as JSONL."""
        return {
            "kind": "audit_row",
            "name": self.name,
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "makespan": _frac_str(self.makespan),
            "optimal": _frac_str(self.optimal),
            "lower_bound": _frac_str(self.lower_bound),
            "bound": _frac_str(self.bound),
            "ratio": self.ratio,
            "status": self.status,
            "detail": self.detail,
            "certificate": (
                None if self.certificate is None else self.certificate.to_dict()
            ),
        }


def audit_instance(
    name: str,
    instance: SchedulingInstance,
    specs: Mapping[str, Any] | None = None,
    algorithms: Iterable[str] | None = None,
    oracle_max_n: int = DEFAULT_ORACLE_MAX_N,
    oracle_workers: int = 1,
) -> list[AuditRow]:
    """Audit every applicable registered algorithm on one instance.

    Parameters
    ----------
    name:
        Label stored on each produced row.
    instance:
        The instance every applicable algorithm runs on.
    specs:
        Algorithm registry to audit.  Defaults to the live engine
        registry (:data:`repro.engine.ALGORITHMS`, which plugins join
        at registration); passing a mapping makes the auditor testable
        against deliberately lying specs.
    algorithms:
        Restrict the sweep to this named subset (default: all).
    oracle_max_n:
        Ground-truth cut-off: the exact oracle runs at most once per
        instance with ``n <= oracle_max_n`` and its optimum is shared
        across all audited algorithms.  Specs marked ``exponential``
        (the brute-force oracle itself) are skipped above the same
        cut-off — they *are* exhaustive searches and would hang the
        sweep.
    oracle_workers:
        Search processes for the exact oracle's parallel branch and
        bound (``repro certify --workers``); the certified optimum is
        identical for any value, only the proof closes faster.

    Returns
    -------
    list of AuditRow
        One row per audited algorithm, in registry order; empty when
        nothing applies.
    """
    if specs is None:
        from repro.engine import ALGORITHMS

        specs = ALGORITHMS
    wanted = None if algorithms is None else set(algorithms)

    audited = [
        spec
        for spec in specs.values()
        if (wanted is None or spec.name in wanted)
        and spec.applies(instance)
        and not (
            getattr(spec, "exponential", False) and instance.n > oracle_max_n
        )
    ]
    if not audited:
        # nothing to audit: don't pay for ground truth
        return []

    optimal: Fraction | None = None
    if instance.n <= oracle_max_n:
        try:
            optimal = certified_optimal(instance, workers=oracle_workers).makespan
        except ReproError:
            optimal = None  # infeasible or oracle-inapplicable: skip OPT
        except Exception:  # noqa: BLE001 — a crashing seed heuristic
            # must degrade to "no ground truth", not kill the sweep
            optimal = None
    lower = instance_lower_bound(instance)

    return [
        _audit_one(name, instance, spec, optimal, lower) for spec in audited
    ]


def _audit_one(
    name: str,
    instance: SchedulingInstance,
    spec: Any,
    optimal: Fraction | None,
    lower: Fraction | None,
) -> AuditRow:
    base = dict(
        name=name,
        algorithm=spec.name,
        n=instance.n,
        m=instance.m,
        optimal=optimal,
        lower_bound=lower,
    )
    try:
        schedule = spec.execute(instance)
    except InvalidScheduleError as exc:
        # the solver *built* an infeasible schedule and Schedule's own
        # eager validation caught it — that is an infeasible output
        # (the certifier's target defect), not a declared failure mode
        if getattr(spec, "graph_blind", False) and instance.graph.edge_count:
            return AuditRow(
                **base,
                makespan=None,
                bound=None,
                ratio=None,
                status="no_guarantee",
                detail=(
                    "graph-blind method on a graph with edges: "
                    "infeasibility is expected, nothing is promised"
                ),
                certificate=None,
            )
        return AuditRow(
            **base,
            makespan=None,
            bound=None,
            ratio=None,
            status="infeasible_output",
            detail=f"{type(exc).__name__}: {exc}",
            certificate=None,
        )
    except ReproError as exc:
        # a declared failure mode (infeasible instance, heuristic gave
        # up): reportable but not a defect
        return AuditRow(
            **base,
            makespan=None,
            bound=None,
            ratio=None,
            status="error",
            detail=f"{type(exc).__name__}: {exc}",
            certificate=None,
        )
    except Exception as exc:  # noqa: BLE001 — anything undeclared is a
        # defect (the dual-approx speed-unit bug surfaced exactly here
        # as an AssertionError) and must FAIL the sweep, while one bad
        # solver still must not kill it
        return AuditRow(
            **base,
            makespan=None,
            bound=None,
            ratio=None,
            status="crash",
            detail=f"{type(exc).__name__}: {exc}",
            certificate=None,
        )

    certificate = certify_schedule(schedule, algorithm=spec.name)
    makespan = certificate.recomputed_makespan
    ratio: float | None = None
    if makespan is not None:
        if optimal is not None and optimal > 0:
            # repro: allow[RS001] reason=reporting-only ratio for the summary table; never compared or certified
            ratio = float(makespan / optimal)
        elif lower is not None and lower > 0:
            # repro: allow[RS001] reason=reporting-only ratio for the summary table; never compared or certified
            ratio = float(makespan / lower)

    if not certificate.ok:
        # graph-blind methods are excused *conflict* violations on edged
        # graphs (expected by design) — but nothing else: makespan drift
        # or eligibility violations are defects regardless
        only_conflicts = (
            certificate.makespan_consistent
            and certificate.lower_bound_respected
            and not certificate.eligibility_violations
        )
        if (
            getattr(spec, "graph_blind", False)
            and instance.graph.edge_count
            and only_conflicts
        ):
            return AuditRow(
                **base,
                makespan=makespan,
                bound=None,
                ratio=ratio,
                status="no_guarantee",
                detail=(
                    "graph-blind method on a graph with edges: "
                    "infeasibility is expected, nothing is promised"
                ),
                certificate=certificate,
            )
        return AuditRow(
            **base,
            makespan=makespan,
            bound=None,
            ratio=ratio,
            status="infeasible_output",
            detail=certificate.describe(),
            certificate=certificate,
        )

    # the declared guarantee, if any: a rational ratio bound, or an
    # exact predicate for guarantees a rational cannot express
    bound: Fraction | None = None
    check = getattr(spec, "guarantee_check", None)
    if spec.ratio_bound is not None:
        bound = spec.ratio_bound(instance)
    if bound is None and check is None:
        return AuditRow(
            **base,
            makespan=makespan,
            bound=None,
            ratio=ratio,
            status="no_guarantee",
            detail="no worst-case ratio declared",
            certificate=certificate,
        )

    if check is not None:
        if optimal is not None:
            holds = check(instance, makespan, optimal)
            return AuditRow(
                **base,
                makespan=makespan,
                bound=None,
                ratio=ratio,
                status="ok" if holds else "violated",
                detail=(
                    f"declared guarantee holds ({spec.guarantee}; "
                    f"{spec.anchor})"
                    if holds
                    else f"guarantee VIOLATED: Cmax={makespan}, OPT={optimal} "
                    f"({spec.guarantee}; {spec.anchor})"
                ),
                certificate=certificate,
            )
        # the predicate is monotone in the optimum, so holding against
        # the (smaller) lower bound proves the guarantee a fortiori
        if lower is not None and lower > 0 and check(instance, makespan, lower):
            return AuditRow(
                **base,
                makespan=makespan,
                bound=None,
                ratio=ratio,
                status="ok_vs_bound",
                detail="declared guarantee holds already against the "
                "lower bound",
                certificate=certificate,
            )
        return AuditRow(
            **base,
            makespan=makespan,
            bound=None,
            ratio=ratio,
            status="unverified",
            detail="instance above the oracle cut-off",
            certificate=certificate,
        )

    if lower is not None and makespan <= bound * lower:
        return AuditRow(
            **base,
            makespan=makespan,
            bound=bound,
            ratio=ratio,
            status="ok_vs_bound",
            detail=f"Cmax <= {bound} * lower bound, holds a fortiori",
            certificate=certificate,
        )
    if optimal is not None:
        if makespan <= bound * optimal:
            return AuditRow(
                **base,
                makespan=makespan,
                bound=bound,
                ratio=ratio,
                status="ok",
                detail=f"Cmax <= {bound} * OPT against the proven optimum",
                certificate=certificate,
            )
        return AuditRow(
            **base,
            makespan=makespan,
            bound=bound,
            ratio=ratio,
            status="violated",
            detail=(
                f"guarantee VIOLATED: Cmax={makespan} > "
                f"{bound} * OPT={optimal} ({spec.guarantee}; {spec.anchor})"
            ),
            certificate=certificate,
        )
    return AuditRow(
        **base,
        makespan=makespan,
        bound=bound,
        ratio=ratio,
        status="unverified",
        detail="above B * lower_bound and above the oracle cut-off",
        certificate=certificate,
    )


def audit_guarantees(
    suite: Iterable[tuple[str, SchedulingInstance]],
    specs: Mapping[str, Any] | None = None,
    algorithms: Iterable[str] | None = None,
    oracle_max_n: int = DEFAULT_ORACLE_MAX_N,
    oracle_workers: int = 1,
) -> list[AuditRow]:
    """Audit a named instance sweep; rows in suite x registry order.

    Parameters
    ----------
    suite:
        ``(name, instance)`` pairs, e.g. from
        :func:`repro.analysis.suites.certification_suite`.
    specs, algorithms, oracle_max_n, oracle_workers:
        Forwarded to :func:`audit_instance` per suite entry.

    Returns
    -------
    list of AuditRow
        One row per (instance, applicable algorithm); a clean sweep has
        no row with a status in :data:`VIOLATION_STATUSES`.
    """
    rows: list[AuditRow] = []
    for name, instance in suite:
        rows.extend(
            audit_instance(
                name,
                instance,
                specs=specs,
                algorithms=algorithms,
                oracle_max_n=oracle_max_n,
                oracle_workers=oracle_workers,
            )
        )
    return rows
