"""Correctness certification: audits, an exact oracle, guarantee sweeps.

Every approximation claim the reproduction makes (Theorem 4's exact
``Q2`` algorithm, Theorem 9's ``sqrt(sum p_j)`` ratio, Algorithm 5's
FPTAS) is only as trustworthy as the machinery that checks produced
schedules against ground truth.  This package is that machinery:

* **validators** — :func:`certify_schedule` audits any
  :class:`~repro.scheduling.schedule.Schedule` end-to-end over exact
  rationals (conflict edges, ``p_ij = None`` eligibility, independent
  makespan recomputation, lower-bound cross-check) and returns a
  machine-readable :class:`CertificateReport`;
* **oracle** — :func:`certified_optimal`, a branch-and-bound that seeds
  its incumbent from the dispatcher, prunes with partial-assignment
  capacity bounds and per-component branching, and proves optimality
  well past the naive brute force's reach;
* **auditor** — :func:`audit_guarantees` sweeps registered
  :class:`~repro.engine.registry.AlgorithmSpec`\\ s across instance suites,
  compares observed ratios against the declared guarantees, and reports
  violations (``repro certify`` on the command line;
  ``benchmarks/bench_certify.py`` in CI).
"""

from repro.certify.auditor import (
    VIOLATION_STATUSES,
    AuditRow,
    audit_guarantees,
    audit_instance,
)
from repro.certify.oracle import (
    OracleResult,
    certified_optimal,
    certified_optimal_makespan,
)
from repro.certify.validators import (
    CertificateReport,
    certify_schedule,
    instance_lower_bound,
)

__all__ = [
    "CertificateReport",
    "certify_schedule",
    "instance_lower_bound",
    "OracleResult",
    "certified_optimal",
    "certified_optimal_makespan",
    "AuditRow",
    "VIOLATION_STATUSES",
    "audit_instance",
    "audit_guarantees",
]
