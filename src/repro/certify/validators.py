"""End-to-end schedule audits over exact rationals.

:class:`Schedule` validates itself eagerly, but that check runs inside
the same object whose bookkeeping it trusts (cached completion times,
the instance's own ``machine_completion``).  The certifier re-derives
everything from first principles — conflict edges straight off the
graph's edge list, eligibility straight off the processing-time oracle,
the makespan by re-summing processing times per machine — and packages
the findings as a machine-readable :class:`CertificateReport` that the
batch engine can persist next to each result record.

A report also cross-checks the *environment's exact lower bound*: a
feasible schedule finishing below the bound is impossible, so a failed
``lower_bound_respected`` flag convicts the bound code, not the
schedule.  Both directions of drift are exactly what guarantee sweeps
(:mod:`repro.certify.auditor`) need to trust their ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any

# the shared num/den wire formatter (the auditor imports it under this
# private name, which predates the public repro.io export)
from repro.io import frac_str as _frac_str
from repro.scheduling.bounds import (
    uniform_capacity_lower_bound,
    unrelated_lower_bound,
)
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.scheduling.schedule import Schedule

__all__ = ["CertificateReport", "certify_schedule", "instance_lower_bound"]


def _frac_parse(text: str | None) -> Fraction | None:
    return None if text is None else Fraction(text)


def instance_lower_bound(instance: SchedulingInstance) -> Fraction | None:
    """The strongest cheap exact lower bound for the environment.

    ``None`` for instance types without a registered bound (future
    environments degrade to an un-cross-checked certificate rather than
    an error).
    """
    if isinstance(instance, UniformInstance):
        return uniform_capacity_lower_bound(instance)
    if isinstance(instance, UnrelatedInstance):
        return unrelated_lower_bound(instance)
    return None


@dataclass(frozen=True)
class CertificateReport:
    """Machine-readable outcome of one schedule audit.

    ``conflict_violations`` / ``eligibility_violations`` list every
    offence (not just the first), as ``(job, other_job, machine)`` and
    ``(job, machine)`` tuples.  ``recomputed_makespan`` is re-derived
    from the raw assignment; ``makespan_consistent`` compares it against
    the makespan the schedule object reports (catching stale caches or a
    lying solver).  ``lower_bound_respected`` is ``True`` whenever no
    bound is available — absence of evidence is not a violation.
    """

    algorithm: str | None
    n: int
    m: int
    edges: int
    conflict_violations: tuple[tuple[int, int, int], ...]
    eligibility_violations: tuple[tuple[int, int], ...]
    claimed_makespan: Fraction | None
    recomputed_makespan: Fraction | None
    makespan_consistent: bool
    lower_bound: Fraction | None
    lower_bound_respected: bool
    ok: bool

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe record (rationals as ``"num/den"`` strings)."""
        return {
            "kind": "certificate",
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "edges": self.edges,
            "conflict_violations": [list(v) for v in self.conflict_violations],
            "eligibility_violations": [
                list(v) for v in self.eligibility_violations
            ],
            "claimed_makespan": _frac_str(self.claimed_makespan),
            "recomputed_makespan": _frac_str(self.recomputed_makespan),
            "makespan_consistent": self.makespan_consistent,
            "lower_bound": _frac_str(self.lower_bound),
            "lower_bound_respected": self.lower_bound_respected,
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CertificateReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            algorithm=data.get("algorithm"),
            n=int(data["n"]),
            m=int(data["m"]),
            edges=int(data["edges"]),
            conflict_violations=tuple(
                (int(a), int(b), int(i))
                for a, b, i in data.get("conflict_violations", [])
            ),
            eligibility_violations=tuple(
                (int(j), int(i))
                for j, i in data.get("eligibility_violations", [])
            ),
            claimed_makespan=_frac_parse(data.get("claimed_makespan")),
            recomputed_makespan=_frac_parse(data.get("recomputed_makespan")),
            makespan_consistent=bool(data.get("makespan_consistent", False)),
            lower_bound=_frac_parse(data.get("lower_bound")),
            lower_bound_respected=bool(data.get("lower_bound_respected", False)),
            ok=bool(data.get("ok", False)),
        )

    def describe(self) -> str:
        """One-line human summary."""
        if self.ok:
            return (
                f"certified ok: Cmax={self.recomputed_makespan}, "
                f"lower bound {self.lower_bound}"
            )
        parts: list[str] = []
        if self.conflict_violations:
            parts.append(f"{len(self.conflict_violations)} conflict violation(s)")
        if self.eligibility_violations:
            parts.append(
                f"{len(self.eligibility_violations)} eligibility violation(s)"
            )
        if not self.makespan_consistent:
            parts.append(
                f"makespan mismatch (claimed {self.claimed_makespan}, "
                f"recomputed {self.recomputed_makespan})"
            )
        if not self.lower_bound_respected:
            parts.append(
                f"makespan {self.recomputed_makespan} below exact lower "
                f"bound {self.lower_bound}"
            )
        return "certificate FAILED: " + "; ".join(parts)


def _recompute_makespan(
    instance: SchedulingInstance, assignment: tuple[int, ...]
) -> Fraction | None:
    """Makespan re-derived from raw processing times (``None`` if some
    assigned pair is forbidden — eligibility violations are reported
    separately and must not crash the audit)."""
    totals = [Fraction(0)] * instance.m
    for j, i in enumerate(assignment):
        t = instance.processing_time(i, j)
        if t is None:
            return None
        totals[i] += t
    return max(totals) if totals else Fraction(0)


def certify_schedule(
    schedule: Schedule,
    algorithm: str | None = None,
    claimed_makespan: Fraction | None = None,
) -> CertificateReport:
    """Audit ``schedule`` end-to-end and return the certificate.

    Parameters
    ----------
    schedule:
        The schedule to audit (its instance travels with it).
    algorithm:
        Name stored on the report (provenance only; no registry lookup).
    claimed_makespan:
        The makespan a solver or cache record *claimed*.  Defaults to
        what the schedule object itself reports; passing a persisted
        value cross-checks stored data against the actual assignment.

    Returns
    -------
    CertificateReport
        Conflict edges, eligibility violations, the independently
        recomputed makespan, and the lower-bound cross-check; ``.ok``
        summarises them.
    """
    instance = schedule.instance
    graph = instance.graph
    assignment = schedule.assignment

    conflicts: list[tuple[int, int, int]] = []
    for a, b in graph.edges():
        if assignment[a] == assignment[b]:
            conflicts.append((min(a, b), max(a, b), assignment[a]))
    conflicts.sort()

    eligibility: list[tuple[int, int]] = []
    for j, i in enumerate(assignment):
        if instance.processing_time(i, j) is None:
            eligibility.append((j, i))

    recomputed = _recompute_makespan(instance, assignment)
    if claimed_makespan is None and recomputed is not None:
        claimed_makespan = schedule.makespan
    consistent = recomputed is not None and claimed_makespan == recomputed

    lower = instance_lower_bound(instance)
    bound_ok = (
        lower is None or recomputed is None or recomputed >= lower
    )

    ok = (
        not conflicts
        and not eligibility
        and consistent
        and bound_ok
    )
    return CertificateReport(
        algorithm=algorithm,
        n=instance.n,
        m=instance.m,
        edges=graph.edge_count,
        conflict_violations=tuple(conflicts),
        eligibility_violations=tuple(eligibility),
        claimed_makespan=claimed_makespan,
        recomputed_makespan=recomputed,
        makespan_consistent=consistent,
        lower_bound=lower,
        lower_bound_respected=bound_ok,
        ok=ok,
    )
