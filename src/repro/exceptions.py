"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotBipartiteError",
    "InfeasibleInstanceError",
    "InvalidInstanceError",
    "InvalidScheduleError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class NotBipartiteError(ReproError):
    """Raised when a graph expected to be bipartite is not.

    The paper's model requires ``G`` to be bipartite (all algorithms rely on
    a proper 2-coloring existing); odd cycles make every algorithm here
    undefined rather than merely suboptimal.
    """


class InfeasibleInstanceError(ReproError):
    """Raised when no feasible schedule exists.

    For a bipartite incompatibility graph this can only happen when fewer
    than two machines are available while ``G`` contains at least one edge
    (a single machine must hold an independent set).
    """


class InvalidInstanceError(ReproError):
    """Raised when instance data is malformed (shapes, signs, ranges)."""


class InvalidScheduleError(ReproError):
    """Raised when a schedule fails validation against its instance."""
