"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotBipartiteError",
    "InfeasibleInstanceError",
    "BoundExcludedError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "CacheCollisionError",
    "BenchSchemaError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class NotBipartiteError(ReproError):
    """Raised when a graph expected to be bipartite is not.

    The paper's model requires ``G`` to be bipartite (all algorithms rely on
    a proper 2-coloring existing); odd cycles make every algorithm here
    undefined rather than merely suboptimal.
    """


class InfeasibleInstanceError(ReproError):
    """Raised when no feasible schedule exists.

    For a bipartite incompatibility graph this can only happen when fewer
    than two machines are available while ``G`` contains at least one edge
    (a single machine must hold an independent set).
    """


class BoundExcludedError(InfeasibleInstanceError):
    """Raised when a *seeded* upper bound excluded every schedule.

    Exact search with an incumbent bound (``brute_force_optimal(...,
    upper_bound=...)``) cannot tell "no feasible schedule exists" apart
    from "no schedule beats the bound" without this distinction: the
    former is a property of the instance, the latter merely certifies
    the seed was already optimal.  Subclasses
    :exc:`InfeasibleInstanceError` so existing blanket handlers keep
    working, but callers seeding incumbents (``repro.certify``'s oracle)
    must catch this first and not misreport feasible instances.
    """


class InvalidInstanceError(ReproError):
    """Raised when instance data is malformed (shapes, signs, ranges)."""


class InvalidScheduleError(ReproError):
    """Raised when a schedule fails validation against its instance."""


class BenchSchemaError(ReproError):
    """Raised when a ``BENCH_<id>.json`` perf artifact violates the schema.

    The perf trajectory (:mod:`repro.perf.record`) is machine-read by CI
    and by :func:`repro.analysis.perf_trend.perf_trend_table`; a record
    with missing fields or malformed rows must fail loudly at emit or
    validation time, not silently corrupt the trend tables downstream.
    """


class CacheCollisionError(ReproError):
    """Raised when a result cache key is re-stored with different data.

    Task keys are content hashes over (version, algorithm, instance), so
    two *different* records under one key mean either a serialisation
    drift or a poisoned cache file — exactly the class of silent
    mismatch the certification subsystem exists to surface.
    """
