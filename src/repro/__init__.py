"""repro — reproduction of *"Scheduling on uniform and unrelated machines
with bipartite incompatibility graphs"* (Pikies & Furmańczyk, IPPS 2022,
arXiv:2106.14354).

The model: jobs with a bipartite *incompatibility graph* must be assigned
to machines so that each machine's job set is an independent set, while
minimising makespan.  This package provides

* the paper's algorithms — Algorithm 1 (:func:`sqrt_approx_schedule`),
  Algorithm 2 (:func:`random_graph_schedule`), Algorithms 3-5 for two
  unrelated machines (:func:`reduce_r2`, :func:`r2_two_approx`,
  :func:`r2_fptas`) and the exact ``Q2`` unit-job algorithm of Theorem 4
  (:func:`q2_unit_exact`);
* the substrate they need — bipartite graph algorithms (matching,
  König covers, max-weight independent sets, inequitable colorings),
  exact capacity lower bounds, list scheduling, exact solvers;
* the hardness constructions of Theorems 8 and 24 as executable
  reductions; and
* the Section 4.1 random-graph theory with Monte-Carlo estimators.

Quickstart::

    from fractions import Fraction
    from repro import BipartiteGraph, UniformInstance, sqrt_approx_schedule

    graph = BipartiteGraph(4, [(0, 2), (1, 3)])      # two incompatible pairs
    inst = UniformInstance(graph, p=[5, 3, 4, 2], speeds=[3, 2, 1])
    result = sqrt_approx_schedule(inst)
    print(result.schedule.assignment, result.schedule.makespan)
"""

from repro.exceptions import (
    ReproError,
    NotBipartiteError,
    InfeasibleInstanceError,
    BoundExcludedError,
    InvalidInstanceError,
    InvalidScheduleError,
    CacheCollisionError,
    BenchSchemaError,
)
from repro.graphs import (
    BipartiteGraph,
    connected_components,
    proper_two_coloring,
    inequitable_two_coloring,
    hopcroft_karp,
    maximum_matching_size,
    konig_vertex_cover,
    min_weight_vertex_cover,
    max_weight_independent_set,
    max_weight_independent_set_containing,
    independence_number,
    PrExtInstance,
    solve_prext,
)
from repro.scheduling import (
    UniformInstance,
    UnrelatedInstance,
    identical_instance,
    unit_uniform_instance,
    make_uniform_instance,
    Schedule,
    schedule_from_groups,
    min_cover_time,
    uniform_capacity_lower_bound,
    brute_force_optimal,
    solve_r2_dp,
    graph_aware_greedy,
    bjw_identical_approx,
)
from repro.core import (
    sqrt_approx_schedule,
    satisfies_sqrt_guarantee,
    SqrtApproxResult,
    random_graph_schedule,
    reduce_r2,
    r2_two_approx,
    r2_fptas,
    q2_unit_exact,
    feasible_first_machine_counts,
)
from repro.hardness import theorem8_reduction, theorem24_reduction
from repro.random_graphs import gnnp

# Single-sourced from pyproject.toml: installed wheels read the
# distribution metadata; source checkouts (PYTHONPATH=src, the CI
# workflow) use the constant below, which MUST match [project].version —
# the release test pins the two together.  The source tree is detected
# first so a *different* version pip-installed elsewhere on the machine
# can never misreport the code actually being executed.
_FALLBACK_VERSION = "1.9.0"


def _resolve_version() -> str:  # pragma: no cover — per-install-mode
    from pathlib import Path

    here = Path(__file__).resolve()
    # this checkout's layout is <root>/src/repro/ — require the "src"
    # segment so an unrelated pyproject.toml above an installed copy
    # (pip --target into some project tree) cannot masquerade as us
    if (
        here.parents[1].name == "src"
        and (here.parents[2] / "pyproject.toml").is_file()
    ):
        return _FALLBACK_VERSION  # running from a source checkout
    try:
        from importlib.metadata import version as _dist_version

        return _dist_version("repro-bipartite-scheduling")
    except Exception:  # no dist-info: vendored/zipped tree
        return _FALLBACK_VERSION


__version__ = _resolve_version()

# imported below the paper-facing API so the registry sees every algorithm
from repro.core import (
    MultipartiteSolution,
    complete_multipartite_min_time,
    schedule_complete_bipartite_unit,
)
from repro.graphs import GraphStructure, analyze_structure
from repro.scheduling import (
    DualApproxResult,
    LpRoundingResult,
    dual_approx_identical,
    lst_two_approx,
    r_color_split,
)
from repro.engine import (
    ALGORITHMS,
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    Capability,
    DispatchReport,
    EngineService,
    PortfolioResult,
    auto_choice,
    available_algorithms,
    explain_dispatch,
    portfolio_solve,
    register_algorithm,
    solve,
    unregister_algorithm,
)
from repro.runtime import (
    BatchResult,
    BatchRunner,
    BatchStats,
    BatchTask,
    ResultCache,
    ShardedResultCache,
)
from repro.workloads import (
    UNRELATED_MODELS,
    build_machines_instance,
    build_unrelated_instance,
)
from repro.certify import (
    AuditRow,
    CertificateReport,
    OracleResult,
    VIOLATION_STATUSES,
    audit_guarantees,
    audit_instance,
    certified_optimal,
    certify_schedule,
)
from repro.perf import (
    BenchPhase,
    BenchRecord,
    ProfileReport,
    TimingResult,
    measure,
    profile_top,
    validate_bench_record,
    write_bench_record,
)

__all__ = [
    "ReproError",
    "NotBipartiteError",
    "InfeasibleInstanceError",
    "BoundExcludedError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "CacheCollisionError",
    "BipartiteGraph",
    "connected_components",
    "proper_two_coloring",
    "inequitable_two_coloring",
    "hopcroft_karp",
    "maximum_matching_size",
    "konig_vertex_cover",
    "min_weight_vertex_cover",
    "max_weight_independent_set",
    "max_weight_independent_set_containing",
    "independence_number",
    "PrExtInstance",
    "solve_prext",
    "UniformInstance",
    "UnrelatedInstance",
    "identical_instance",
    "unit_uniform_instance",
    "make_uniform_instance",
    "Schedule",
    "schedule_from_groups",
    "min_cover_time",
    "uniform_capacity_lower_bound",
    "brute_force_optimal",
    "solve_r2_dp",
    "graph_aware_greedy",
    "bjw_identical_approx",
    "sqrt_approx_schedule",
    "satisfies_sqrt_guarantee",
    "SqrtApproxResult",
    "random_graph_schedule",
    "reduce_r2",
    "r2_two_approx",
    "r2_fptas",
    "q2_unit_exact",
    "feasible_first_machine_counts",
    "theorem8_reduction",
    "theorem24_reduction",
    "gnnp",
    "MultipartiteSolution",
    "complete_multipartite_min_time",
    "schedule_complete_bipartite_unit",
    "GraphStructure",
    "analyze_structure",
    "DualApproxResult",
    "LpRoundingResult",
    "dual_approx_identical",
    "lst_two_approx",
    "r_color_split",
    "ALGORITHMS",
    "REGISTRY",
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "Capability",
    "DispatchReport",
    "EngineService",
    "PortfolioResult",
    "auto_choice",
    "available_algorithms",
    "explain_dispatch",
    "portfolio_solve",
    "register_algorithm",
    "unregister_algorithm",
    "solve",
    "BatchResult",
    "BatchRunner",
    "BatchStats",
    "BatchTask",
    "ResultCache",
    "ShardedResultCache",
    "UNRELATED_MODELS",
    "build_machines_instance",
    "build_unrelated_instance",
    "AuditRow",
    "CertificateReport",
    "OracleResult",
    "VIOLATION_STATUSES",
    "audit_guarantees",
    "audit_instance",
    "certified_optimal",
    "certify_schedule",
    "BenchSchemaError",
    "BenchPhase",
    "BenchRecord",
    "ProfileReport",
    "TimingResult",
    "measure",
    "profile_top",
    "validate_bench_record",
    "write_bench_record",
    "__version__",
]
