"""Plain-text table rendering for the benchmark harnesses.

Every benchmark prints the table or series it regenerates in a stable,
diff-friendly format; EXPERIMENTS.md embeds these outputs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

__all__ = ["format_table", "render_number"]


def render_number(value: object, digits: int = 3) -> str:
    """Human-friendly rendering: ints verbatim, rationals/floats rounded."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{float(value):.{digits}f}"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    digits: int = 3,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[render_number(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
