"""A small deterministic parameter-sweep runner.

Benchmarks express their grid as keyword lists; :func:`run_grid` walks the
cartesian product in a fixed order and hands each cell its own child RNG,
so adding a grid axis never reshuffles the instances of existing cells.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["ExperimentRow", "run_grid"]


@dataclass(frozen=True)
class ExperimentRow:
    """One grid cell: the parameters plus the measurement dict."""

    params: dict[str, Any]
    results: dict[str, Any] = field(default_factory=dict)

    def cells(self, param_keys: Sequence[str], result_keys: Sequence[str]) -> list[Any]:
        """Flatten to a table row in the requested column order."""
        return [self.params[k] for k in param_keys] + [
            self.results[k] for k in result_keys
        ]


def run_grid(
    grid: Mapping[str, Sequence[Any]],
    measure: Callable[..., dict[str, Any]],
    seed: int | np.random.Generator | None = 0,
) -> list[ExperimentRow]:
    """Run ``measure(rng=..., **params)`` over the cartesian product of ``grid``.

    ``measure`` receives one deterministic child generator per cell and
    returns a dict of measurements.
    """
    keys = list(grid.keys())
    combos = list(itertools.product(*(grid[k] for k in keys)))
    root = ensure_rng(seed)
    seeds = root.bit_generator.seed_seq.spawn(len(combos))
    rows: list[ExperimentRow] = []
    for combo, child_seed in zip(combos, seeds):
        params = dict(zip(keys, combo))
        rng = np.random.default_rng(child_seed)
        rows.append(ExperimentRow(params=params, results=measure(rng=rng, **params)))
    return rows
