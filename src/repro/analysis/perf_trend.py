"""Perf-trajectory aggregation: BENCH artifacts into trend tables.

Every benchmark run leaves ``BENCH_<id>.json`` records (plus an
append-only ``BENCH_trajectory.jsonl``) in ``benchmarks/out/``
(:mod:`repro.perf.record`).  This module folds those records into the
tables that answer "is the system getting faster": per-experiment
summaries (:func:`perf_trend_table`) and per-phase timing rows
(:func:`phase_table`), keyed by git revision and timestamp so a
trajectory across commits reads top to bottom.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.perf.record import validate_bench_record

__all__ = [
    "load_bench_records",
    "perf_trend_rows",
    "perf_trend_table",
    "phase_table",
]


def load_bench_records(
    out_dir: str | Path, trajectory: bool = False
) -> list[dict[str, Any]]:
    """Load (and validate) the bench records of an artifact directory.

    Parameters
    ----------
    out_dir:
        The artifact directory (``benchmarks/out``).
    trajectory:
        Read the append-only ``BENCH_trajectory.jsonl`` (every run ever
        emitted, the *trend* view) instead of the per-experiment
        ``BENCH_*.json`` files (latest run per experiment).

    Returns
    -------
    list of dict
        Schema-valid record dicts, in filename / append order.

    Raises
    ------
    repro.exceptions.BenchSchemaError
        If any record violates the schema.
    """
    from repro.io import iter_jsonl, load_json

    directory = Path(out_dir)
    records: list[dict[str, Any]] = []
    if trajectory:
        path = directory / "BENCH_trajectory.jsonl"
        if path.exists():
            for record in iter_jsonl(path):
                validate_bench_record(record)
                records.append(record)
        return records
    for path in sorted(directory.glob("BENCH_*.json")):
        record = load_json(path)
        validate_bench_record(record)
        records.append(record)
    return records


def perf_trend_rows(records: Iterable[dict[str, Any]]) -> list[list[Any]]:
    """One summary row per record.

    Each row: ``[experiment, git rev, timestamp, sweep rows, phases,
    phase wall (ms)]``; the wall column sums the record's per-phase
    medians (``nan`` when the record carries no phases — ratio-only
    experiments).
    """
    rows: list[list[Any]] = []
    for record in records:
        phases = record.get("phases", [])
        wall = (
            sum(float(p.get("wall_time_s", 0.0)) for p in phases) * 1e3
            if phases
            else float("nan")
        )
        rows.append(
            [
                record["experiment_id"],
                record["git_rev"],
                record["timestamp"],
                len(record.get("rows", [])),
                len(phases),
                wall,
            ]
        )
    return rows


def perf_trend_table(
    records: Iterable[dict[str, Any]], title: str | None = None
) -> str:
    """Render :func:`perf_trend_rows` as an aligned monospace table."""
    from repro.analysis.tables import format_table

    return format_table(
        ["experiment", "git rev", "timestamp", "rows", "phases", "phase wall (ms)"],
        perf_trend_rows(records),
        title=title or "perf trajectory (BENCH records)",
    )


def phase_table(
    records: Iterable[dict[str, Any]], title: str | None = None
) -> str:
    """Per-phase timing rows across records (the drill-down view).

    Each row: ``[experiment, phase, size, wall (ms), cpu (ms),
    repeat]`` in record order; ``size`` renders the phase's size dict
    compactly (``n=800,edges=6357``).
    """
    from repro.analysis.tables import format_table

    rows: list[list[Any]] = []
    for record in records:
        for phase in record.get("phases", []):
            size = ",".join(f"{k}={v}" for k, v in phase.get("size", {}).items())
            cpu = phase.get("cpu_time_s")
            rows.append(
                [
                    record["experiment_id"],
                    phase["name"],
                    size or "-",
                    float(phase["wall_time_s"]) * 1e3,
                    float(cpu) * 1e3 if cpu is not None else float("nan"),
                    phase.get("repeat", 1),
                ]
            )
    return format_table(
        ["experiment", "phase", "size", "wall (ms)", "cpu (ms)", "repeat"],
        rows,
        title=title or "per-phase timings (BENCH records)",
    )
