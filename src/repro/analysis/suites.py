"""Named instance suites shared by the benchmarks, and batch aggregation.

Keeping the workloads in one place makes experiment tables comparable:
E2 (Algorithm 1 ratios), E5/E6 (R2 algorithms) and E9 (baseline
comparison) all draw from these families.  :func:`summarize_batch`
closes the loop on the other side: it folds a
:class:`~repro.runtime.batch.BatchResult` stream (from
:class:`~repro.runtime.batch.BatchRunner` or a results JSONL) into the
per-algorithm aggregate rows the experiment tables are built from.
"""

from __future__ import annotations

from typing import Any, Iterable, Literal

import numpy as np

from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.machines.profiles import (
    geometric_speeds,
    identical_speeds,
    power_law_speeds,
    random_integer_speeds,
    two_fast_speeds,
)
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.utils.rng import ensure_rng

__all__ = [
    "standard_graph_families",
    "job_weight_profile",
    "speed_profile_suite",
    "random_r2_instance",
    "standard_uniform_suite",
    "unrelated_workload_suite",
    "certification_suite",
    "workload_model_of",
    "summarize_batch",
    "summarize_models",
    "batch_summary_table",
    "model_ratio_table",
    "violation_table",
    "certification_summary",
    "portfolio_gain_rows",
    "portfolio_gain_table",
]

WeightKind = Literal["unit", "uniform", "heavy_tailed", "one_giant"]


def standard_graph_families(
    n: int, seed=None
) -> list[tuple[str, BipartiteGraph]]:
    """The graph families used across experiment tables.

    ``n`` is a *target* vertex count; each family hits it approximately
    (exact counts depend on the family's structure).
    """
    rng = ensure_rng(seed)
    half = max(1, n // 2)
    return [
        ("empty", generators.empty_graph(n)),
        ("matching", generators.matching_graph(half)),
        ("path", generators.path_graph(n)),
        ("cycle", generators.even_cycle(n if n % 2 == 0 else n + 1)),
        ("star", generators.star(n - 1)),
        ("double_star", generators.double_star(half - 1, n - half - 1)),
        ("caterpillar", generators.caterpillar(max(1, n // 4), 3)),
        ("tree", generators.random_tree(n, rng)),
        ("forest", generators.random_forest(n, max(1, n // 8), rng)),
        ("complete_bipartite", generators.complete_bipartite(half, n - half)),
        ("crown", generators.crown(half)),
        ("degree_bounded_3", generators.random_bipartite_degree_bounded(half, n - half, 3, rng)),
        ("gilbert_sparse", gnnp(half, min(1.0, 1.5 / half), rng)),
        ("gilbert_dense", gnnp(half, min(1.0, 0.3), rng)),
    ]


def job_weight_profile(n: int, kind: WeightKind, seed=None) -> tuple[int, ...]:
    """Processing requirements for ``n`` jobs.

    * ``unit`` — all 1 (the ``p_j = 1`` restriction);
    * ``uniform`` — iid uniform ``{1..20}``;
    * ``heavy_tailed`` — Pareto-like (many small, few large): stresses
      Algorithm 1's heavy-job independent set;
    * ``one_giant`` — one job of weight ``~n`` among units: forces the
      ``p_max`` condition of ``C**max``.
    """
    rng = ensure_rng(seed)
    if kind == "unit":
        return tuple(1 for _ in range(n))
    if kind == "uniform":
        return tuple(int(x) for x in rng.integers(1, 21, size=n))
    if kind == "heavy_tailed":
        raw = rng.pareto(1.2, size=n) + 1.0
        return tuple(int(min(x, 50 * n)) for x in np.ceil(raw))
    if kind == "one_giant":
        p = [1] * n
        p[int(rng.integers(0, n))] = max(2, n)
        return tuple(p)
    raise ValueError(f"unknown weight profile {kind!r}")


def speed_profile_suite(m: int, seed=None) -> list[tuple[str, tuple]]:
    """The machine-speed profiles used across experiment tables."""
    rng = ensure_rng(seed)
    profiles: list[tuple[str, tuple]] = [
        ("identical", identical_speeds(m)),
        ("power_law", power_law_speeds(m)),
        ("random_int", random_integer_speeds(m, 1, 10, rng)),
    ]
    if m >= 2:
        profiles.append(("two_fast", two_fast_speeds(m, 4)))
    if m <= 12:
        profiles.append(("geometric", geometric_speeds(m, 2)))
    return profiles


def standard_uniform_suite(
    n: int = 24, m: int = 4, weight_kind: WeightKind = "uniform", seed=None
) -> list[tuple[str, UniformInstance]]:
    """Cross product of graph families with one weight/speed draw each."""
    rng = ensure_rng(seed)
    out: list[tuple[str, UniformInstance]] = []
    for gname, graph in standard_graph_families(n, rng):
        p = job_weight_profile(graph.n, weight_kind, rng)
        for sname, speeds in speed_profile_suite(m, rng):
            out.append((f"{gname}/{sname}", UniformInstance(graph, p, speeds)))
    return out


def _as_result_dict(result: Any) -> dict[str, Any]:
    """Accept ``BatchResult`` objects or their JSONL dicts alike."""
    if isinstance(result, dict):
        return result
    to_dict = getattr(result, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise TypeError(f"cannot summarise {type(result).__name__} as a batch result")


def _aggregate_by(
    results: Iterable[Any], label_of: Any
) -> list[list[Any]]:
    """Fold a result stream into per-label aggregate rows (shared core).

    Each row: ``[*label, count, cached, errors, mean ratio, worst ratio,
    solve time (ms)]`` sorted by label.  ``label_of(record)`` may return a
    string or a tuple (tuples spread over several leading columns).
    """
    grouped: dict[tuple, dict[str, Any]] = {}
    for raw in results:
        record = _as_result_dict(raw)
        label = label_of(record)
        key = label if isinstance(label, tuple) else (label,)
        agg = grouped.setdefault(
            key,
            {"count": 0, "cached": 0, "errors": 0, "ratios": [], "time": 0.0},
        )
        agg["count"] += 1
        if record.get("cached"):
            agg["cached"] += 1
        if record.get("error") is not None:
            agg["errors"] += 1
        ratio = record.get("ratio")
        if ratio is not None:
            agg["ratios"].append(float(ratio))
        if not record.get("cached"):
            agg["time"] += float(record.get("wall_time_s", 0.0))
    rows: list[list[Any]] = []
    for key in sorted(grouped):
        agg = grouped[key]
        ratios = agg["ratios"]
        rows.append(
            [
                *key,
                agg["count"],
                agg["cached"],
                agg["errors"],
                sum(ratios) / len(ratios) if ratios else float("nan"),
                max(ratios) if ratios else float("nan"),
                agg["time"] * 1e3,
            ]
        )
    return rows


def summarize_batch(results: Iterable[Any]) -> list[list[Any]]:
    """Per-algorithm aggregate rows for a batch result stream.

    Each row: ``[algorithm, count, cached, errors, mean ratio,
    worst ratio, solve time (ms)]``, sorted by algorithm name.  Ratios
    average only the records that carry one (a zero lower bound or an
    errored solve contributes to the counts but not the ratio columns);
    the time column sums fresh-solve wall time, so a fully warm batch
    reads 0.
    """
    return _aggregate_by(
        results,
        lambda record: record.get("chosen") or record.get("algorithm") or "?",
    )


def workload_model_of(name: str) -> str:
    """The workload-model tag of a batch task name (``model/rest`` or ``?``).

    Spec-v2 ``machines`` entries and :func:`unrelated_workload_suite` both
    name tasks ``<model>/<family>-...``, which is what makes per-model
    aggregation possible downstream.
    """
    return name.split("/", 1)[0] if "/" in name else "?"


def summarize_models(results: Iterable[Any]) -> list[list[Any]]:
    """Per-(model, algorithm) aggregate rows for a batch result stream.

    The model tag comes from the task-name prefix (see
    :func:`workload_model_of`); ratios are against the environment's
    exact lower bound (:func:`repro.scheduling.bounds.unrelated_lower_bound`
    for ``R`` records), so the table reads directly as "how far above the
    bound does each algorithm land on each workload family".
    """
    return _aggregate_by(
        results,
        lambda record: (
            workload_model_of(str(record.get("name", ""))),
            record.get("chosen") or record.get("algorithm") or "?",
        ),
    )


def batch_summary_table(results: Iterable[Any], title: str | None = None) -> str:
    """Render :func:`summarize_batch` as an aligned monospace table."""
    from repro.analysis.tables import format_table

    return format_table(
        ["algorithm", "count", "cached", "errors", "mean ratio", "worst ratio",
         "solve time (ms)"],
        summarize_batch(results),
        title=title,
    )


def model_ratio_table(results: Iterable[Any], title: str | None = None) -> str:
    """Render :func:`summarize_models` as an aligned monospace table."""
    from repro.analysis.tables import format_table

    return format_table(
        ["model", "algorithm", "count", "cached", "errors", "mean ratio",
         "worst ratio", "solve time (ms)"],
        summarize_models(results),
        title=title,
    )


def _as_audit_dict(row: Any) -> dict[str, Any]:
    """Accept ``repro.certify.AuditRow`` objects or their dicts alike."""
    if isinstance(row, dict):
        return row
    to_dict = getattr(row, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise TypeError(f"cannot summarise {type(row).__name__} as an audit row")


def certification_summary(rows: Iterable[Any]) -> list[list[Any]]:
    """Per-(algorithm, status) aggregate rows for an audit sweep.

    Each row: ``[algorithm, status, count, worst ratio]`` sorted by
    algorithm then status; the ratio column is the worst observed
    makespan/OPT (falling back to makespan/lower-bound) quotient in the
    group.
    """
    grouped: dict[tuple[str, str], dict[str, Any]] = {}
    for raw in rows:
        record = _as_audit_dict(raw)
        key = (str(record.get("algorithm", "?")), str(record.get("status", "?")))
        agg = grouped.setdefault(key, {"count": 0, "ratios": []})
        agg["count"] += 1
        ratio = record.get("ratio")
        if ratio is not None:
            agg["ratios"].append(float(ratio))
    return [
        [
            *key,
            agg["count"],
            max(agg["ratios"]) if agg["ratios"] else float("nan"),
        ]
        for key, agg in sorted(grouped.items())
    ]


def violation_table(rows: Iterable[Any], title: str | None = None) -> str:
    """Render an audit sweep: the violating rows, else a clean summary.

    When any row carries a violation status (``violated`` /
    ``infeasible_output``), those rows are listed individually with
    their details; otherwise the per-(algorithm, status) summary from
    :func:`certification_summary` is rendered.
    """
    from repro.analysis.tables import format_table
    from repro.certify import VIOLATION_STATUSES

    records = [_as_audit_dict(row) for row in rows]
    bad = [r for r in records if r.get("status") in VIOLATION_STATUSES]
    if bad:
        return format_table(
            ["instance", "algorithm", "status", "ratio", "detail"],
            [
                [
                    r.get("name", "?"),
                    r.get("algorithm", "?"),
                    r.get("status", "?"),
                    r.get("ratio"),
                    r.get("detail", ""),
                ]
                for r in bad
            ],
            title=title or f"{len(bad)} guarantee/certification VIOLATION(S)",
        )
    return format_table(
        ["algorithm", "status", "count", "worst ratio"],
        certification_summary(records),
        title=title or f"certification sweep clean ({len(records)} audits)",
    )


def portfolio_gain_rows(
    suite: Iterable[tuple[str, Any]], k: int = 3, runner: Any | None = None
) -> list[list[Any]]:
    """Single-algorithm ``auto`` vs k-way portfolio, per named instance.

    Each row: ``[name, auto choice, auto Cmax, auto ms, portfolio
    winner, portfolio Cmax, portfolio ms, gain]`` where ``gain`` is
    ``auto Cmax / portfolio Cmax`` (``>= 1`` always — the portfolio
    races the auto choice among its candidates, so it can never lose).
    Exact makespans are rendered as floats for table cells; the
    underlying race is exact (:func:`repro.engine.portfolio_solve`).
    This is what ``benchmarks/bench_engine_portfolio.py`` (E19) emits.
    """
    from time import perf_counter

    from repro.engine import auto_choice, portfolio_solve, solve

    rows: list[list[Any]] = []
    for name, instance in suite:
        chosen = auto_choice(instance)
        start = perf_counter()
        auto_schedule = solve(instance, algorithm=chosen)
        auto_ms = (perf_counter() - start) * 1e3
        result = portfolio_solve(instance, k=k, runner=runner)
        gain = float(auto_schedule.makespan / result.makespan)
        rows.append(
            [
                name,
                chosen,
                float(auto_schedule.makespan),
                auto_ms,
                result.chosen,
                float(result.makespan),
                result.wall_time_s * 1e3,
                gain,
            ]
        )
    return rows


def portfolio_gain_table(
    suite: Iterable[tuple[str, Any]],
    k: int = 3,
    runner: Any | None = None,
    title: str | None = None,
) -> str:
    """Render :func:`portfolio_gain_rows` as an aligned monospace table."""
    from repro.analysis.tables import format_table

    return format_table(
        ["instance", "auto choice", "auto Cmax", "auto ms",
         "portfolio winner", "portfolio Cmax", "portfolio ms", "gain"],
        portfolio_gain_rows(suite, k=k, runner=runner),
        title=title,
    )


def random_r2_instance(
    n: int,
    edge_probability: float = 0.15,
    time_range: tuple[int, int] = (1, 30),
    seed=None,
) -> UnrelatedInstance:
    """A random two-machine unrelated instance on a Gilbert-style graph."""
    rng = ensure_rng(seed)
    half = max(1, n // 2)
    graph = gnnp(half, edge_probability, rng)
    lo, hi = time_range
    times = [
        [int(x) for x in rng.integers(lo, hi + 1, size=graph.n)] for _ in range(2)
    ]
    return UnrelatedInstance(graph, times)


DEFAULT_UNRELATED_MODELS = (
    "uniform_pij",
    "correlated",
    "restricted_assignment",
    "two_value",
)


def certification_suite(
    n: int = 10,
    m: int = 3,
    graph_families: tuple[str, ...] = ("gnnp", "path", "crown", "matching", "empty"),
    models: tuple[str, ...] = DEFAULT_UNRELATED_MODELS,
    uniform_profiles: tuple[str, ...] = ("identical", "geometric"),
    weight_kinds: tuple[str, ...] = ("unit", "uniform"),
    seeds: int = 1,
    seed: int = 0,
) -> list[tuple[str, Any]]:
    """Named instances for guarantee-violation sweeps (``repro certify``).

    Crosses the graph families with both machine environments: uniform
    instances (each speed profile x job-weight kind) and unrelated
    instances (each :mod:`repro.workloads` ``p_ij`` model, at ``m = 2``
    so the R2 algorithms are exercised, plus the given ``m``).  Small
    ``n`` by design — every instance should sit inside the exact
    oracle's reach so the auditor can compare against proven optima.
    Deterministic: cell ``(family, ..., r)`` uses integer seed
    ``seed + r`` throughout, so growing the sweep never perturbs
    existing cells.
    """
    from repro.runtime.specs import build_family_graph
    from repro.workloads import UNIFORM_PROFILES, build_unrelated_instance

    out: list[tuple[str, Any]] = []
    for family in graph_families:
        for replica in range(seeds):
            s = seed + replica
            graph = build_family_graph(family, n, seed=s)
            for profile in uniform_profiles:
                speeds = UNIFORM_PROFILES[profile](m)
                for kind in weight_kinds:
                    p = job_weight_profile(graph.n, kind, s)
                    out.append(
                        (
                            f"Q/{profile}/{kind}/{family}-n{n}-s{s}",
                            UniformInstance(graph, p, sorted(speeds, reverse=True)),
                        )
                    )
            for model in models:
                for mm in sorted({2, m}):
                    inst = build_unrelated_instance(graph, model, mm, seed=s)
                    out.append((f"R/{model}/m{mm}/{family}-n{n}-s{s}", inst))
    return out


def unrelated_workload_suite(
    n: int = 16,
    m: int = 2,
    models: tuple[str, ...] = DEFAULT_UNRELATED_MODELS,
    graph_families: tuple[str, ...] = ("gnnp", "path", "crown"),
    seeds: int = 2,
    seed: int = 0,
) -> list[tuple[str, UnrelatedInstance]]:
    """Named unrelated instances: workload models x graph families x seeds.

    Names follow the ``model/family-n{n}-s{seed}`` convention that
    :func:`summarize_models` groups on.  Every cell is deterministic: cell
    ``(model, family, r)`` uses integer seed ``seed + r`` for both the
    graph and the time matrix, so adding models or families never
    perturbs the other cells.  ``hardness_r`` (Theorem 24 geometry) needs
    ``m >= 3`` and is therefore not in the default model list.
    """
    from repro.runtime.specs import build_family_graph
    from repro.workloads import build_unrelated_instance

    out: list[tuple[str, UnrelatedInstance]] = []
    for model in models:
        for family in graph_families:
            for replica in range(seeds):
                s = seed + replica
                graph = build_family_graph(family, n, seed=s)
                inst = build_unrelated_instance(graph, model, m, seed=s)
                out.append((f"{model}/{family}-n{n}-s{s}", inst))
    return out
