"""Empirical probe for the paper's first open problem (Section 6).

The paper asks: *for a given, fixed sequence of machine speeds, what is
the best achievable approximation ratio?*  (For equal speeds [3] proves
the answer is exactly 2.)  No method for computing this is known; this
module provides the measurement harness such a study needs:

* :func:`worst_ratio_exhaustive` — enumerate **every** bipartite
  incompatibility graph on ``n`` unit jobs (up to the bipartition sizes)
  and report the worst ``Cmax(alg) / C*max`` an algorithm attains on the
  fixed speeds.  Exact and exhaustive, so feasible only for small ``n``;
  it yields true lower bounds on the algorithm's approximation ratio for
  those speeds.
* :func:`worst_ratio_sampled` — the same probe over seeded random
  instances for larger ``n``.

Both return the witness instance achieving the worst ratio, so hard
cases can be inspected, saved (:mod:`repro.io`) and minimised by hand —
the workflow the open problem invites.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError, ReproError
from repro.graphs.bipartite import BipartiteGraph
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.brute_force import brute_force_makespan
from repro.scheduling.instance import UniformInstance, unit_uniform_instance
from repro.scheduling.schedule import Schedule
from repro.utils.rng import ensure_rng

__all__ = ["ProbeResult", "worst_ratio_exhaustive", "worst_ratio_sampled"]

Algorithm = Callable[[UniformInstance], Schedule]


@dataclass(frozen=True)
class ProbeResult:
    """Worst case found by a probe.

    ``ratio`` is exact (``Fraction``); ``witness`` is the instance
    achieving it and ``witness_makespan`` / ``witness_optimum`` its two
    sides.  ``instances_tried`` counts instances actually evaluated
    (infeasible or degenerate candidates are skipped and not counted).
    """

    ratio: Fraction
    witness: UniformInstance | None
    witness_makespan: Fraction
    witness_optimum: Fraction
    instances_tried: int


def _probe(
    instances,
    algorithm: Algorithm,
) -> ProbeResult:
    worst = Fraction(0)
    witness = None
    w_mk = w_opt = Fraction(0)
    tried = 0
    for inst in instances:
        try:
            schedule = algorithm(inst)
        except ReproError:
            continue  # algorithm declines this instance (e.g. m too small)
        if not schedule.is_feasible():
            raise InvalidInstanceError(
                "probed algorithm returned an infeasible schedule"
            )
        optimum = brute_force_makespan(inst)
        tried += 1
        if optimum == 0:
            continue
        ratio = schedule.makespan / optimum
        if ratio > worst:
            worst, witness = ratio, inst
            w_mk, w_opt = schedule.makespan, optimum
    return ProbeResult(worst, witness, w_mk, w_opt, tried)


def _all_bipartite_graphs(left: int, right: int):
    """Every spanning subgraph of ``K_{left,right}`` (by edge subset)."""
    cells = [(i, j) for i in range(left) for j in range(right)]
    for k in range(len(cells) + 1):
        for subset in combinations(cells, k):
            yield BipartiteGraph.from_parts(left, right, list(subset))


def worst_ratio_exhaustive(
    speeds: Sequence[Fraction],
    left: int,
    right: int,
    algorithm: Algorithm,
    weights: Sequence[int] | None = None,
) -> ProbeResult:
    """Exhaustive probe over all bipartite graphs on the given parts.

    ``weights`` fixes the processing requirements (default: unit jobs;
    pass weights with ``sum > 16`` to exercise Algorithm 1's
    approximation path rather than its exact base case).  The number of
    instances is ``2^(left*right)``; keep ``left * right`` at 16 or
    below.  The returned ratio is a certified lower bound on the
    algorithm's worst-case ratio for these speeds.
    """
    if left * right > 16:
        raise InvalidInstanceError(
            f"exhaustive probe over 2^{left * right} graphs is not sensible; "
            "use worst_ratio_sampled"
        )
    if weights is not None and len(weights) != left + right:
        raise InvalidInstanceError(
            f"{len(weights)} weights for {left + right} jobs"
        )

    def gen():
        for g in _all_bipartite_graphs(left, right):
            if weights is None:
                yield unit_uniform_instance(g, speeds)
            else:
                yield UniformInstance(g, weights, speeds)

    return _probe(gen(), algorithm)


def worst_ratio_sampled(
    speeds: Sequence[Fraction],
    n_side: int,
    algorithm: Algorithm,
    samples: int = 50,
    edge_probability: float | None = None,
    max_p: int = 1,
    seed=None,
) -> ProbeResult:
    """Randomised probe: seeded ``G(n,n,p)`` graphs, optional random
    integer weights up to ``max_p`` (``1`` keeps jobs unit).

    ``edge_probability=None`` samples a fresh ``p`` per instance
    (log-uniform between ``1/(4n)`` and ``1``) so all three density
    regimes are visited.
    """
    rng = ensure_rng(seed)

    def gen():
        for _ in range(samples):
            p = (
                edge_probability
                if edge_probability is not None
                else float(np.exp(rng.uniform(np.log(0.25 / n_side), 0.0)))
            )
            graph = gnnp(n_side, p, seed=rng)
            if max_p <= 1:
                yield unit_uniform_instance(graph, speeds)
            else:
                weights = [int(x) for x in rng.integers(1, max_p + 1, size=graph.n)]
                yield UniformInstance(graph, weights, speeds)

    return _probe(gen(), algorithm)
