"""Aggregate regenerated experiment tables into one report.

Every benchmark writes its table to ``benchmarks/out/<id>.txt``
(:mod:`benchmarks._common`); :func:`collect_tables` gathers them,
:func:`render_report` produces a single markdown document grouping
tables by experiment id, and the CLI exposes it as
``python -m repro report``.  The report is regenerable evidence — the
reproduction's equivalent of the paper's (absent) results section.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ExperimentTable", "collect_tables", "render_report"]

_ID_RE = re.compile(r"^(E\d+)", re.IGNORECASE)


@dataclass(frozen=True)
class ExperimentTable:
    """One emitted table: its experiment id, name and text content."""

    experiment: str
    name: str
    content: str
    path: Path


def collect_tables(out_dir: str | Path) -> list[ExperimentTable]:
    """Read every ``*.txt`` table under ``out_dir``, sorted by id.

    Files whose names do not start with an experiment id (``E<number>``)
    are grouped under ``"misc"``.
    """
    directory = Path(out_dir)
    tables: list[ExperimentTable] = []
    for path in sorted(directory.glob("*.txt")):
        match = _ID_RE.match(path.stem)
        experiment = match.group(1).upper() if match else "misc"
        tables.append(
            ExperimentTable(
                experiment=experiment,
                name=path.stem,
                content=path.read_text(encoding="utf-8").rstrip(),
                path=path,
            )
        )
    tables.sort(key=lambda t: (_sort_key(t.experiment), t.name))
    return tables


def _sort_key(experiment: str) -> tuple[int, int]:
    if experiment == "misc":
        return (1, 0)
    return (0, int(experiment[1:]))


def render_report(tables: list[ExperimentTable], title: str | None = None) -> str:
    """Render collected tables as one markdown document."""
    lines: list[str] = [f"# {title or 'Regenerated experiment tables'}", ""]
    if not tables:
        lines.append("*(no tables found — run `pytest benchmarks/ --benchmark-only`)*")
        return "\n".join(lines) + "\n"
    current = None
    for table in tables:
        if table.experiment != current:
            current = table.experiment
            lines.append(f"## {current}")
            lines.append("")
        lines.append(f"### {table.name}")
        lines.append("")
        lines.append("```text")
        lines.append(table.content)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
