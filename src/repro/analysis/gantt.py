"""ASCII Gantt charts and schedule summaries.

Makespan scheduling without preemption fixes only the job-to-machine
assignment; within a machine we draw jobs back-to-back in id order.  The
renderer is exact-arithmetic aware: bar lengths are scaled from rational
completion times, and the makespan ruler is printed verbatim.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.tables import format_table, render_number
from repro.scheduling.schedule import Schedule

__all__ = ["render_gantt", "render_schedule_summary"]


def _bar(segments: list[tuple[int, Fraction]], scale: Fraction, width: int) -> str:
    """One machine's bar: each job drawn as its id repeated to length.

    ``segments`` are ``(job, duration)`` pairs; ``scale`` converts time to
    columns.  Every job occupies at least one column so short jobs stay
    visible; the bar is clipped to ``width`` (clipping only triggers when
    minimum-width padding overflows).
    """
    out: list[str] = []
    for job, duration in segments:
        cols = max(1, round(float(duration * scale)))
        label = str(job)
        if cols >= len(label) + 2:
            body = label.center(cols - 2, "-")
            out.append("[" + body + "]")
        else:
            out.append("#" * cols)
    bar = "".join(out)
    return bar[:width]


def render_gantt(schedule: Schedule, width: int = 64) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    One row per machine: ``M<i> |[---0---][-3-]#  | <completion>``.
    Rows are scaled so the latest-finishing machine spans ``width``
    columns.  Zero-duration schedules render as an empty chart.
    """
    inst = schedule.instance
    makespan = schedule.makespan
    lines: list[str] = [
        f"Gantt chart: {inst.n} jobs on {inst.m} machines, "
        f"Cmax = {render_number(makespan)}"
    ]
    if makespan == 0:
        for i in range(inst.m):
            lines.append(f"M{i:<3}|{' ' * width}| 0")
        return "\n".join(lines)
    scale = Fraction(width) / makespan
    completions = schedule.completion_times()
    for i, jobs in enumerate(schedule.machine_groups()):
        segments = []
        for j in jobs:
            t = inst.processing_time(i, j)
            if t is None:  # pragma: no cover - infeasible placements skipped
                continue
            segments.append((j, t))
        bar = _bar(segments, scale, width)
        lines.append(
            f"M{i:<3}|{bar:<{width}}| {render_number(completions[i])}"
        )
    ruler = f"{'0':<{width // 2}}{render_number(makespan):>{width // 2}}"
    lines.append("    |" + ruler + "|")
    return "\n".join(lines)


def render_schedule_summary(schedule: Schedule) -> str:
    """Per-machine table: job list, job count, completion time, share."""
    inst = schedule.instance
    makespan = schedule.makespan
    completions = schedule.completion_times()
    rows = []
    for i, jobs in enumerate(schedule.machine_groups()):
        share = (
            float(completions[i] / makespan) if makespan else 0.0
        )
        job_list = ",".join(map(str, jobs)) if jobs else "-"
        if len(job_list) > 40:
            job_list = job_list[:37] + "..."
        rows.append([f"M{i}", len(jobs), job_list, completions[i], f"{share:.0%}"])
    status = "feasible" if schedule.is_feasible() else "INFEASIBLE"
    return format_table(
        ["machine", "jobs", "job ids", "completion", "of Cmax"],
        rows,
        title=f"Schedule: Cmax = {render_number(makespan)} ({status})",
    )
