"""Approximation-ratio bookkeeping.

Ratios compare a schedule's makespan against a *reference*: the exact
optimum where affordable, otherwise an exact lower bound (``C**max`` et
al.), in which case the reported number upper-bounds the true ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

__all__ = ["RatioStats", "ratio_of", "collect_ratio_stats"]


def ratio_of(value: Fraction, reference: Fraction) -> float:
    """``value / reference`` as a float; 1.0 when both are zero."""
    if reference == 0:
        if value == 0:
            return 1.0
        raise ZeroDivisionError("positive makespan against a zero reference")
    return float(value / reference)


@dataclass(frozen=True)
class RatioStats:
    """Summary statistics over a set of measured ratios."""

    count: int
    mean: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def collect_ratio_stats(ratios: Iterable[float]) -> RatioStats:
    """Aggregate an iterable of ratios (must be non-empty)."""
    values = list(ratios)
    if not values:
        raise ValueError("no ratios to aggregate")
    return RatioStats(
        count=len(values),
        mean=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
    )
