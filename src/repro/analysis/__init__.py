"""Experiment infrastructure: ratio measurement, parameter sweeps,
plain-text table rendering, and the named instance suites every benchmark
draws from (so results are comparable across experiments)."""

from repro.analysis.ratio import RatioStats, ratio_of, collect_ratio_stats
from repro.analysis.tables import format_table, render_number
from repro.analysis.experiments import run_grid, ExperimentRow
from repro.analysis.gantt import render_gantt, render_schedule_summary
from repro.analysis.perf_trend import (
    load_bench_records,
    perf_trend_rows,
    perf_trend_table,
    phase_table,
)
from repro.analysis.speed_probe import (
    ProbeResult,
    worst_ratio_exhaustive,
    worst_ratio_sampled,
)
from repro.analysis.suites import (
    standard_graph_families,
    job_weight_profile,
    speed_profile_suite,
    random_r2_instance,
    standard_uniform_suite,
)

__all__ = [
    "RatioStats",
    "ratio_of",
    "collect_ratio_stats",
    "format_table",
    "render_number",
    "run_grid",
    "ExperimentRow",
    "render_gantt",
    "render_schedule_summary",
    "ProbeResult",
    "worst_ratio_exhaustive",
    "worst_ratio_sampled",
    "load_bench_records",
    "perf_trend_rows",
    "perf_trend_table",
    "phase_table",
    "standard_graph_families",
    "job_weight_profile",
    "speed_profile_suite",
    "random_r2_instance",
    "standard_uniform_suite",
]
