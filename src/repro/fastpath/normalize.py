"""Per-instance integer normalization: the :class:`IntView` certificate.

Every fast-path kernel in :mod:`repro.fastpath` runs on machine
integers, not :class:`~fractions.Fraction` objects.  The bridge is a
one-time *normalization*: multiply all machine speeds by the least
common multiple ``scale`` of their denominators, so that

* ``speeds_scaled[i] = speeds[i] * scale`` is an exact integer,
* a machine carrying integer load ``L`` completes at the exact rational
  time ``L * scale / speeds_scaled[i]``, and
* comparing completion times across machines reduces to integer
  cross-multiplication — ``scale`` cancels, so the kernels never touch
  it inside their hot loops.

The :class:`IntView` carries the **scaling certificate**: the scale and
the scaled integers, with :meth:`IntView.verify` re-deriving the
original rationals and checking minimality of the scale.  The
differential suite (``tests/differential/``) property-tests this
round-trip for random rational speed vectors, including big-int scales
beyond ``2**63`` — Python integers are arbitrary precision, so nothing
silently truncates (the numpy kernels must *check* their operands fit
``int64`` and fall back; see :mod:`repro.fastpath.kernels_numpy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

from repro.exceptions import InvalidInstanceError
from repro.utils.rationals import lcm_of_denominators

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scheduling.instance import UniformInstance

__all__ = ["IntView", "int_view", "scaled_speeds"]


@dataclass(frozen=True)
class IntView:
    """Integer view of a uniform instance's numeric data.

    Parameters
    ----------
    speeds_scaled:
        ``speeds[i] * scale`` for every machine, exact integers.
    scale:
        The least common multiple of the speed denominators (the
        smallest positive integer making every scaled speed integral).
    speeds:
        The original exact rational speeds (the certificate's other
        half: ``Fraction(speeds_scaled[i], scale) == speeds[i]``).
    p:
        Integer job sizes (already integral in the paper's model;
        carried so kernels take one object, empty for speed-only views).
    """

    speeds_scaled: tuple[int, ...]
    scale: int
    speeds: tuple[Fraction, ...]
    p: tuple[int, ...] = ()

    def verify(self) -> bool:
        """Check the scaling certificate.

        Returns ``True`` iff every scaled speed divides back exactly to
        the original rational *and* ``scale`` is minimal (the true LCM
        of the denominators) — a coarser common multiple would still
        round-trip, so minimality is asserted separately.
        """
        if self.scale <= 0 or len(self.speeds_scaled) != len(self.speeds):
            return False
        for scaled, speed in zip(self.speeds_scaled, self.speeds):
            if Fraction(scaled, self.scale) != speed:
                return False
        return self.scale == lcm_of_denominators(self.speeds)

    def completion(self, machine: int, load: int) -> Fraction:
        """Exact completion time of ``machine`` carrying ``load`` units."""
        return Fraction(load * self.scale, self.speeds_scaled[machine])


@lru_cache(maxsize=256)
def scaled_speeds(speeds: tuple[Fraction, ...]) -> tuple[tuple[int, ...], int]:
    """``(speeds_scaled, scale)`` for a speed tuple, certificate-checked.

    Cached: the exact oracle calls the capacity bound with the same
    speed tuple at every search node, and the LCM/verification pass
    must not be paid per node.  The cache key is the (hashable,
    immutable) speed tuple itself.
    """
    scale = lcm_of_denominators(speeds)
    scaled: list[int] = []
    for s in speeds:
        num = s.numerator * (scale // s.denominator)
        if Fraction(num, scale) != s:
            raise InvalidInstanceError(
                f"integer normalization failed for speed {s} at scale {scale}"
            )
        scaled.append(num)
    return tuple(scaled), scale


def int_view(instance: "UniformInstance") -> IntView:
    """Build the :class:`IntView` of a uniform instance.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        If the certificate fails to verify (cannot happen for a valid
        instance; the check is the fast path's safety net).
    """
    scaled, scale = scaled_speeds(tuple(instance.speeds))
    view = IntView(
        speeds_scaled=scaled,
        scale=scale,
        speeds=tuple(instance.speeds),
        p=tuple(instance.p),
    )
    if not view.verify():
        raise InvalidInstanceError(
            "integer normalization certificate failed verification"
        )
    return view
