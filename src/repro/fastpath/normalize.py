"""Per-instance integer normalization: the :class:`IntView` certificate.

Every fast-path kernel in :mod:`repro.fastpath` runs on machine
integers, not :class:`~fractions.Fraction` objects.  The bridge is a
one-time *normalization*: multiply all machine speeds by the least
common multiple ``scale`` of their denominators, so that

* ``speeds_scaled[i] = speeds[i] * scale`` is an exact integer,
* a machine carrying integer load ``L`` completes at the exact rational
  time ``L * scale / speeds_scaled[i]``, and
* comparing completion times across machines reduces to integer
  cross-multiplication — ``scale`` cancels, so the kernels never touch
  it inside their hot loops.

The :class:`IntView` carries the **scaling certificate**: the scale and
the scaled integers, with :meth:`IntView.verify` re-deriving the
original rationals and checking minimality of the scale.  The
differential suite (``tests/differential/``) property-tests this
round-trip for random rational speed vectors, including big-int scales
beyond ``2**63`` — Python integers are arbitrary precision, so nothing
silently truncates (the numpy kernels must *check* their operands fit
``int64`` and fall back; see :mod:`repro.fastpath.kernels_numpy`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

from repro.exceptions import InvalidInstanceError
from repro.utils.rationals import lcm_of_denominators

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scheduling.instance import UniformInstance

__all__ = [
    "IntView",
    "int_view",
    "scaled_speeds",
    "scaled_speeds_cache_stats",
    "scaled_speeds_cache_clear",
]


@dataclass(frozen=True)
class IntView:
    """Integer view of a uniform instance's numeric data.

    Parameters
    ----------
    speeds_scaled:
        ``speeds[i] * scale`` for every machine, exact integers.
    scale:
        The least common multiple of the speed denominators (the
        smallest positive integer making every scaled speed integral).
    speeds:
        The original exact rational speeds (the certificate's other
        half: ``Fraction(speeds_scaled[i], scale) == speeds[i]``).
    p:
        Integer job sizes (already integral in the paper's model;
        carried so kernels take one object, empty for speed-only views).
    """

    speeds_scaled: tuple[int, ...]
    scale: int
    speeds: tuple[Fraction, ...]
    p: tuple[int, ...] = ()

    def verify(self) -> bool:
        """Check the scaling certificate.

        Returns ``True`` iff every scaled speed divides back exactly to
        the original rational *and* ``scale`` is minimal (the true LCM
        of the denominators) — a coarser common multiple would still
        round-trip, so minimality is asserted separately.
        """
        if self.scale <= 0 or len(self.speeds_scaled) != len(self.speeds):
            return False
        for scaled, speed in zip(self.speeds_scaled, self.speeds):
            if Fraction(scaled, self.scale) != speed:
                return False
        return self.scale == lcm_of_denominators(self.speeds)

    def completion(self, machine: int, load: int) -> Fraction:
        """Exact completion time of ``machine`` carrying ``load`` units."""
        return Fraction(load * self.scale, self.speeds_scaled[machine])


class _ScaledSpeedsCache:
    """Bounded LRU over *content digests* of speed tuples.

    The previous ``functools.lru_cache`` keyed on the speed tuple
    itself, so the cache held strong references to every distinct
    ``Fraction`` tuple it ever saw — for the long-running ``repro
    serve`` tier that is a slow leak of caller objects.  Here the key
    is a SHA-256 digest of the exact ``numerator/denominator`` content
    and the stored value is pure machine integers, so nothing a caller
    passed in is retained.  Hit/miss counters are surfaced by the
    serving tier's ``{"op": "stats"}`` response.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[bytes, tuple[tuple[int, ...], int]] = (
            OrderedDict()
        )

    @staticmethod
    def content_key(speeds: Sequence[Fraction]) -> bytes:
        digest = hashlib.sha256()
        for s in speeds:
            digest.update(b"%d/%d;" % (s.numerator, s.denominator))
        return digest.digest()

    def lookup(self, key: bytes) -> tuple[tuple[int, ...], int] | None:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def store(self, key: bytes, value: tuple[tuple[int, ...], int]) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_SPEEDS_CACHE = _ScaledSpeedsCache(maxsize=256)


def scaled_speeds_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the ``scaled_speeds`` content cache."""
    return _SPEEDS_CACHE.stats()


def scaled_speeds_cache_clear() -> None:
    """Drop every cached normalization (tests / leak hunts)."""
    _SPEEDS_CACHE.clear()


def scaled_speeds(speeds: tuple[Fraction, ...]) -> tuple[tuple[int, ...], int]:
    """``(speeds_scaled, scale)`` for a speed tuple, certificate-checked.

    Cached: the exact oracle calls the capacity bound with the same
    speed tuple at every search node, and the LCM/verification pass
    must not be paid per node.  The cache is bounded (LRU, 256
    entries) and keyed by a digest of the speeds' exact content, so it
    never pins caller objects alive; see :class:`_ScaledSpeedsCache`.
    """
    key = _ScaledSpeedsCache.content_key(speeds)
    cached = _SPEEDS_CACHE.lookup(key)
    if cached is not None:
        return cached
    scale = lcm_of_denominators(speeds)
    scaled: list[int] = []
    for s in speeds:
        num = s.numerator * (scale // s.denominator)
        if Fraction(num, scale) != s:
            raise InvalidInstanceError(
                f"integer normalization failed for speed {s} at scale {scale}"
            )
        scaled.append(num)
    value = tuple(scaled), scale
    _SPEEDS_CACHE.store(key, value)
    return value


def int_view(instance: "UniformInstance") -> IntView:
    """Build the :class:`IntView` of a uniform instance.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        If the certificate fails to verify (cannot happen for a valid
        instance; the check is the fast path's safety net).
    """
    scaled, scale = scaled_speeds(tuple(instance.speeds))
    view = IntView(
        speeds_scaled=scaled,
        scale=scale,
        speeds=tuple(instance.speeds),
        p=tuple(instance.p),
    )
    if not view.verify():
        raise InvalidInstanceError(
            "integer normalization certificate failed verification"
        )
    return view
