"""Pure-Python integer kernels for the three hot loops.

Each kernel is an independent re-implementation of a public hot path on
machine integers (arbitrary-precision Python ints — exactness is never
traded away).  They are *not* refactors of the reference code: the
differential suite (``tests/differential/``) runs reference and kernel
on the same instances and asserts byte-identical results, so the two
implementations deliberately share no code.

Tie-break policy (pinned; the differential tests assert it):

* ``hopcroft_karp``: the mate array is a deterministic function of the
  adjacency iteration order — greedy seeding scans left vertices in
  index order, BFS levels are order-independent (a vertex's level is
  its true distance), and the augmenting DFS consumes each adjacency
  list left to right.
* ``assign_group_greedy``: jobs in LPT order (ties by job id); each job
  goes to the machine minimising the exact completion time, ties to the
  earliest position in the ``machines`` argument.
* ``min_cover_time`` / ``min_cover_time_with_loads``: single-valued
  (the least feasible jump point); no ties exist.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

from repro.exceptions import InvalidInstanceError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.graphs.bipartite import BipartiteGraph

__all__ = [
    "hopcroft_karp_int",
    "assign_group_greedy_int",
    "lpt_order_int",
    "min_cover_time_int",
    "min_cover_time_with_loads_int",
]


# --------------------------------------------------------------------- #
# Hopcroft–Karp on int levels
# --------------------------------------------------------------------- #


def hopcroft_karp_int(graph: "BipartiteGraph") -> list[int]:
    """Maximum-matching mate array, all-integer BFS levels.

    Same structure as :func:`repro.graphs.matching.hopcroft_karp` but
    with an integer ``UNREACHED`` sentinel instead of ``float("inf")``
    — level comparisons and resets stay in int space, which is what the
    adjacency-walk inner loops spend their time on.
    """
    n = graph.n
    unreached = n + 1  # larger than any real BFS level
    left = graph.vertices_on_side(0)
    adj: list[list[int]] = [[] for _ in range(n)]
    mate = [-1] * n
    for u in left:
        nbrs = list(graph.neighbors(u))
        adj[u] = nbrs
        for v in nbrs:
            if mate[v] == -1:
                mate[u] = v
                mate[v] = u
                break
    dist = [unreached] * n

    path_u: list[int] = []
    path_v: list[int] = []
    iters: list = []
    while True:
        q: deque[int] = deque()
        for u in left:
            if mate[u] == -1:
                dist[u] = 0
                q.append(u)
            else:
                dist[u] = unreached
        found = False
        while q:
            u = q.popleft()
            du1 = dist[u] + 1
            for v in adj[u]:
                w = mate[v]
                if w == -1:
                    found = True
                elif dist[w] == unreached:
                    dist[w] = du1
                    q.append(w)
        if not found:
            return mate
        for root in left:
            if mate[root] != -1:
                continue
            path_u.append(root)
            iters.append(iter(adj[root]))
            while path_u:
                u = path_u[-1]
                du1 = dist[u] + 1
                for v in iters[-1]:
                    w = mate[v]
                    if w == -1:
                        path_v.append(v)
                        for k in range(len(path_u)):
                            pu = path_u[k]
                            pv = path_v[k]
                            mate[pu] = pv
                            mate[pv] = pu
                        path_u.clear()
                        path_v.clear()
                        iters.clear()
                        break
                    if dist[w] == du1:
                        path_v.append(v)
                        path_u.append(w)
                        iters.append(iter(adj[w]))
                        break
                else:
                    dist[u] = unreached
                    path_u.pop()
                    iters.pop()
                    if path_v:
                        path_v.pop()


# --------------------------------------------------------------------- #
# greedy list scheduling on scaled integer speeds
# --------------------------------------------------------------------- #


def lpt_order_int(p: Sequence[int], jobs: Sequence[int]) -> list[int]:
    """Jobs by non-increasing size, ties by id (the pinned LPT order)."""
    return sorted(jobs, key=lambda j: (-p[j], j))


def assign_group_greedy_int(
    p: Sequence[int],
    speeds_scaled: Sequence[int],
    jobs: Sequence[int],
    machines: Sequence[int],
) -> dict[int, int]:
    """Greedy list scheduling over an :class:`~repro.fastpath.normalize.IntView`.

    ``speeds_scaled`` are the normalized integer speeds; the common
    ``scale`` cancels out of every completion-time comparison, so it is
    not even a parameter.  Machines are grouped by (integer) speed with
    one load-min-heap per group — two rational speeds are equal iff
    their scaled integers are, so the grouping matches the reference's
    ``Fraction``-keyed grouping exactly, including insertion order.

    Runs of equal-size jobs (contiguous in LPT order) bypass the
    per-job group scan and place through a machine-level *event
    calendar*: with ``L = lcm(distinct scaled speeds)`` the key
    ``(load + k * p_j) * (L / S_i)`` orders exactly like the rational
    completion time ``(load + k * p_j) / s_i``, each machine's keys
    during a run form an arithmetic progression with constant step
    ``p_j * L / S_i``, and popping the ``(key, rank)``-min heap ``r``
    times reproduces the one-job-at-a-time choices (the stepwise
    greedy consumes the run's completion pairs in ascending
    lexicographic order — a k-way merge of the per-machine
    progressions).  Group heaps are rebuilt from the load array only
    when a singleton run follows a batched one.
    """
    if not machines and jobs:
        raise InvalidInstanceError("cannot schedule jobs on an empty machine group")
    count = len(machines)
    speed_by_rank = [speeds_scaled[i] for i in machines]
    loads = [0] * count  # by position ("rank") in `machines`
    group_ranks: dict[int, list[int]] = {}
    for rank, i in enumerate(machines):
        group_ranks.setdefault(speed_by_rank[rank], []).append(rank)

    def build_groups() -> list[tuple[int, list[tuple[int, int, int]]]]:
        rebuilt: list[tuple[int, list[tuple[int, int, int]]]] = []
        for speed, ranks in group_ranks.items():
            heap = [(loads[r], r, machines[r]) for r in ranks]
            heapq.heapify(heap)
            rebuilt.append((speed, heap))
        return rebuilt

    groups = build_groups()
    groups_stale = False
    mult: list[int] | None = None  # L / S_i per rank, built on first batch
    result: dict[int, int] = {}
    order = lpt_order_int(p, jobs)
    idx = 0
    while idx < len(order):
        p_j = p[order[idx]]
        end = idx
        while end < len(order) and p[order[end]] == p_j:
            end += 1
        run = order[idx:end]
        idx = end
        if len(run) > 1:
            if mult is None:
                common = math.lcm(*group_ranks)
                mult = [common // s for s in speed_by_rank]
            incs = [p_j * m_r for m_r in mult]
            calendar = [((loads[r] + p_j) * mult[r], r) for r in range(count)]
            heapq.heapify(calendar)
            for j in run:
                key, r = calendar[0]
                heapq.heapreplace(calendar, (key + incs[r], r))
                result[j] = machines[r]
                loads[r] += p_j
            groups_stale = True
            continue
        if groups_stale:
            groups = build_groups()
            groups_stale = False
        (j,) = run
        # completion of a group = (load + p_j) / S; compare the running
        # best a/S_best against a'/S' by integer cross-multiplication
        best_heap: list[tuple[int, int, int]] | None = None
        best_a = best_s = 0
        best_rank = -1
        for s, heap in groups:
            load, rank, _ = heap[0]
            a = load + p_j
            if best_heap is None:
                better = True
            else:
                lhs = a * best_s
                rhs = best_a * s
                better = lhs < rhs or (lhs == rhs and rank < best_rank)
            if better:
                best_a, best_s, best_rank, best_heap = a, s, rank, heap
        if best_heap is None:
            raise InvalidInstanceError("cannot list-schedule onto zero machine groups")
        load, rank, i = heapq.heappop(best_heap)
        heapq.heappush(best_heap, (load + p_j, rank, i))
        loads[rank] = load + p_j
        result[j] = i
    return result


# --------------------------------------------------------------------- #
# capacity cover times on scaled integer speeds
# --------------------------------------------------------------------- #


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def min_cover_time_int(
    speeds_scaled: Sequence[int], scale: int, demand: int
) -> Fraction:
    """Least ``T >= 0`` with ``sum_i floor(s_i * T) >= demand``, int-only.

    With ``s_i = S_i / scale`` the count function jumps only at times
    ``c * scale / S_i``; at such a time the capacity is
    ``sum_k (S_k * c) // S_i`` — pure integer arithmetic.  The answer
    lives in ``[demand / sum(s), (demand + m) / sum(s)]`` exactly as in
    the rational reference; the returned :class:`Fraction` is equal
    (hence canonically identical) to the reference's.
    """
    if demand <= 0:
        return Fraction(0)
    if not speeds_scaled:
        raise InvalidInstanceError("positive demand but no machines")
    m = len(speeds_scaled)
    total = sum(speeds_scaled)  # sum(s_i) * scale
    # window in "c per machine" space: s_i * lo = S_i * demand / total
    hi_num, hi_den = (demand + m) * scale, total  # hi as a fraction
    candidates: set[Fraction] = {Fraction(hi_num, hi_den)}
    for s in speeds_scaled:
        c_lo = max(1, _ceil_div(s * demand, total))
        c_hi = (s * (demand + m)) // total
        for c in range(c_lo, c_hi + 1):
            candidates.add(Fraction(c * scale, s))
    lo = Fraction(demand * scale, total)
    hi = Fraction(hi_num, hi_den)
    feasible = sorted(t for t in candidates if lo <= t <= hi)
    left, right = 0, len(feasible) - 1
    answer = feasible[right]
    while left <= right:
        mid = (left + right) // 2
        t = feasible[mid]
        num, den = t.numerator, t.denominator
        d = den * scale
        covered = 0
        for s in speeds_scaled:
            covered += (s * num) // d
            if covered >= demand:
                break
        if covered >= demand:
            answer = t
            right = mid - 1
        else:
            left = mid + 1
    return answer


def min_cover_time_with_loads_int(
    speeds_scaled: Sequence[int],
    scale: int,
    loads: Sequence[int],
    demand: int,
) -> Fraction:
    """Pre-loaded variant of :func:`min_cover_time_int`, int-only.

    The answer is the least ``T`` with ``T >= max_i loads[i] / s_i``
    and ``sum_i max(0, floor(s_i * T) - loads[i]) >= demand``; all
    comparisons run on the scaled integers.
    """
    if len(speeds_scaled) != len(loads):
        raise InvalidInstanceError(
            f"{len(loads)} loads for {len(speeds_scaled)} machines"
        )
    if not speeds_scaled:
        if demand > 0:
            raise InvalidInstanceError("positive demand but no machines")
        return Fraction(0)
    # frontier = max_i loads[i] * scale / S_i by integer cross-mult
    f_num, f_den = 0, 1
    for load, s in zip(loads, speeds_scaled):
        if load * f_den > f_num * s:  # load/s > f_num/(f_den*scale) scaled out
            f_num, f_den = load, s
    frontier = Fraction(f_num * scale, f_den)
    if demand <= 0:
        return frontier
    m = len(speeds_scaled)
    total = sum(speeds_scaled)
    total_units = sum(loads) + demand
    lo = max(frontier, Fraction(total_units * scale, total))
    hi = max(frontier, Fraction((total_units + m) * scale, total))
    candidates: set[Fraction] = {hi}
    for s in speeds_scaled:
        # c_lo/c_hi bracket s * lo .. s * hi; lo/hi already include the
        # frontier so the same window arithmetic as the reference holds
        c_lo = max(1, _ceil_div(s * lo.numerator, lo.denominator * scale))
        c_hi = (s * hi.numerator) // (hi.denominator * scale)
        for c in range(c_lo, c_hi + 1):
            candidates.add(Fraction(c * scale, s))
    feasible = sorted(t for t in candidates if lo <= t <= hi)

    def _covers(t: Fraction) -> bool:
        num, den = t.numerator, t.denominator
        d = den * scale
        residual = 0
        for s, load in zip(speeds_scaled, loads):
            extra = (s * num) // d - load
            if extra > 0:
                residual += extra
                if residual >= demand:
                    return True
        return False

    left, right = 0, len(feasible) - 1
    answer = feasible[right]
    while left <= right:
        mid = (left + right) // 2
        if _covers(feasible[mid]):
            answer = feasible[mid]
            right = mid - 1
        else:
            left = mid + 1
    return answer
