"""Integer fast paths for the hot loops, proven exact by differential tests.

``repro.fastpath`` is the "raw-speed core" from the ROADMAP: per-instance
integer normalization (:mod:`~repro.fastpath.normalize`, the
:class:`IntView` scaling certificate) plus two independent kernel tiers
for each of the three hot loops:

* ``graphs.matching.hopcroft_karp`` — ``hopcroft_karp_int`` /
  ``hopcroft_karp_numpy``
* ``scheduling.list_scheduling.assign_group_greedy`` —
  ``assign_group_greedy_int`` / ``assign_group_greedy_numpy``
* ``scheduling.bounds.min_cover_time`` and ``..._with_loads`` (the
  exact oracle's per-node bound) — ``min_cover_time*_int`` /
  ``min_cover_time*_numpy``

Selection is transparent: the public functions call the dispatchers
here, which pick a kernel by the ``REPRO_FASTPATH`` environment
variable and the instance size.  Nothing about results changes, ever —
the differential suite (``tests/differential/``) asserts byte-identical
outputs across all three tiers on every instance kind, and the
tie-break policy that makes that possible is pinned in
:mod:`~repro.fastpath.kernels_int`.

``REPRO_FASTPATH`` values:

``0`` / ``off`` / ``false`` / ``no``
    Escape hatch — public APIs run their original rational reference
    implementations, fastpath code is never entered.
``int``
    Integer kernels only (arbitrary-precision, no numpy) — useful to
    rule numpy in/out when debugging, and what the differential tests
    use to pin each tier down individually.
anything else / unset
    Auto: numpy kernels above the size cutoffs below when numpy is
    importable and the operands fit ``int64`` (checked, never assumed),
    integer kernels otherwise.  Numpy failures
    (:exc:`FastpathUnavailable`) fall back to the int kernels silently
    — the int tier is always correct and always available.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

from repro.fastpath import kernels_int, kernels_numpy
from repro.fastpath.kernels_numpy import FastpathUnavailable, numpy_available
from repro.fastpath.normalize import (
    IntView,
    int_view,
    scaled_speeds,
    scaled_speeds_cache_clear,
    scaled_speeds_cache_stats,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.graphs.bipartite import BipartiteGraph
    from repro.scheduling.instance import UniformInstance

__all__ = [
    "FastpathUnavailable",
    "IntView",
    "int_view",
    "scaled_speeds",
    "scaled_speeds_cache_stats",
    "scaled_speeds_cache_clear",
    "numpy_available",
    "fastpath_mode",
    "enabled",
    "hopcroft_karp_fast",
    "assign_group_greedy_fast",
    "min_cover_time_fast",
    "min_cover_time_with_loads_fast",
    "MATCHING_NUMPY_MIN_N",
    "GREEDY_NUMPY_MIN_JOBS",
    "COVER_NUMPY_MIN_MACHINES",
]

_OFF_VALUES = frozenset({"0", "off", "false", "no"})

#: size cutoffs below which the numpy kernels lose to the int kernels
#: (array setup dominates); measured with ``repro perf --target fastpath``
MATCHING_NUMPY_MIN_N = 512
GREEDY_NUMPY_MIN_JOBS = 1024
COVER_NUMPY_MIN_MACHINES = 256

#: below this average degree the vectorized BFS loses to the int kernel
#: even on large graphs — the per-phase CSR gather moves more data than
#: the sparse frontier it saves
MATCHING_NUMPY_MIN_AVG_DEGREE = 4.0


def fastpath_mode() -> str:
    """Resolve ``REPRO_FASTPATH`` to ``'off'``, ``'int'`` or ``'auto'``."""
    raw = os.environ.get("REPRO_FASTPATH", "").strip().lower()
    if raw in _OFF_VALUES:
        return "off"
    if raw == "int":
        return "int"
    return "auto"


def enabled() -> bool:
    """Whether the public APIs should route into the fast path at all."""
    return fastpath_mode() != "off"


def hopcroft_karp_fast(graph: "BipartiteGraph", mode: str | None = None) -> list[int]:
    """Fast-path Hopcroft–Karp; same mate array as the reference."""
    if mode is None:
        mode = fastpath_mode()
    if (
        mode == "auto"
        and graph.n >= MATCHING_NUMPY_MIN_N
        and graph.edge_count * 2 >= MATCHING_NUMPY_MIN_AVG_DEGREE * graph.n
        and numpy_available()
    ):
        try:
            return kernels_numpy.hopcroft_karp_numpy(graph)
        except FastpathUnavailable:
            pass
    return kernels_int.hopcroft_karp_int(graph)


def assign_group_greedy_fast(
    instance: "UniformInstance",
    jobs: Sequence[int],
    machines: Sequence[int],
    mode: str | None = None,
) -> dict[int, int]:
    """Fast-path greedy list scheduling; same mapping as the reference."""
    if mode is None:
        mode = fastpath_mode()
    view = int_view(instance)
    if mode == "auto" and len(jobs) >= GREEDY_NUMPY_MIN_JOBS and numpy_available():
        try:
            return kernels_numpy.assign_group_greedy_numpy(
                view.p, view.speeds_scaled, jobs, machines
            )
        except FastpathUnavailable:
            pass
    return kernels_int.assign_group_greedy_int(
        view.p, view.speeds_scaled, jobs, machines
    )


def min_cover_time_fast(
    speeds: Sequence[Fraction], demand: int, mode: str | None = None
) -> Fraction:
    """Fast-path cover time; canonically identical Fraction to the reference."""
    if mode is None:
        mode = fastpath_mode()
    scaled, scale = scaled_speeds(tuple(speeds))
    if (
        mode == "auto"
        and len(scaled) >= COVER_NUMPY_MIN_MACHINES
        and numpy_available()
    ):
        try:
            return kernels_numpy.min_cover_time_numpy(scaled, scale, demand)
        except FastpathUnavailable:
            pass
    return kernels_int.min_cover_time_int(scaled, scale, demand)


def min_cover_time_with_loads_fast(
    speeds: Sequence[Fraction],
    loads: Sequence[int],
    demand: int,
    mode: str | None = None,
) -> Fraction:
    """Fast-path pre-loaded cover time (the oracle's per-node bound)."""
    if mode is None:
        mode = fastpath_mode()
    scaled, scale = scaled_speeds(tuple(speeds))
    if (
        mode == "auto"
        and len(scaled) >= COVER_NUMPY_MIN_MACHINES
        and numpy_available()
    ):
        try:
            return kernels_numpy.min_cover_time_with_loads_numpy(
                scaled, scale, loads, demand
            )
        except FastpathUnavailable:
            pass
    return kernels_int.min_cover_time_with_loads_int(scaled, scale, loads, demand)
