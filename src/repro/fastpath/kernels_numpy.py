"""Numpy-vectorized kernels, overflow-guarded, import-safe without numpy.

Numpy is a declared dependency, but the fast path must not *require* it
(``repro.staticcheck`` RS005 exempts numpy precisely because the core
degrades gracefully): every entry point here raises
:exc:`FastpathUnavailable` when numpy is missing or when the operands
would overflow ``int64``, and the dispatchers in the public modules
fall back to the pure-Python integer kernels.  Overflow is *checked*,
never assumed — a silently wrapped ``int64`` would corrupt an exact
result, which is the one failure mode this subsystem exists to make
impossible (the differential suite crosses ``2**63`` on purpose).

Vectorized pieces:

* ``hopcroft_karp_numpy`` — the BFS phase runs level-synchronously on a
  CSR adjacency (one :func:`numpy.repeat` gather per level); the
  augmenting DFS is inherently sequential and stays in Python, reusing
  the exact iteration order of the int kernel, so the mate array is
  byte-identical (a vertex's BFS level is its graph distance, which no
  intra-level reordering can change).
* ``assign_group_greedy_numpy`` — the LPT order is a
  :func:`numpy.lexsort`; when all jobs in the batch have one size and
  all machines one speed, greedy placement collapses to round-robin
  over the machine list and is emitted in closed form (the paper's
  ``p_j = 1`` restriction, vectorized end to end).  Long runs of
  equal-size jobs place by a vectorized event calendar: a binary
  search finds the run's completion-key threshold, the surviving
  ``(key, rank)`` pairs are generated wholesale and ordered by one
  :func:`numpy.lexsort` — no per-job work at all.  Short runs keep
  the integer kernel's heap loop.
* ``capacity_at_numpy`` — the ``sum_i floor(S_i * num / d)`` capacity
  evaluation behind the cover-time bounds as one vector expression.
"""

from __future__ import annotations

import heapq
import math
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.exceptions import InvalidInstanceError, ReproError

try:  # pragma: no cover - exercised via numpy_available()
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.graphs.bipartite import BipartiteGraph

__all__ = [
    "FastpathUnavailable",
    "numpy_available",
    "hopcroft_karp_numpy",
    "assign_group_greedy_numpy",
    "capacity_at_numpy",
    "min_cover_time_numpy",
    "min_cover_time_with_loads_numpy",
]

#: conservative magnitude bound: products below this cannot overflow
#: int64 even after a full-column sum
_INT64_SAFE = 2**62

#: shortest equal-size run worth the vectorized event-calendar batch —
#: below this the per-run array setup costs more than the heap pops save
_GREEDY_RUN_MIN = 32


class FastpathUnavailable(ReproError):
    """A numpy kernel cannot run here (no numpy, or int64 would overflow)."""


def numpy_available() -> bool:
    """Whether the numpy kernels can be used at all."""
    return np is not None


def _require_numpy() -> None:
    if np is None:
        raise FastpathUnavailable("numpy is not importable")


# --------------------------------------------------------------------- #
# Hopcroft–Karp: vectorized BFS, sequential DFS
# --------------------------------------------------------------------- #


def hopcroft_karp_numpy(graph: "BipartiteGraph") -> list[int]:
    """Maximum-matching mate array with a CSR/numpy BFS phase."""
    _require_numpy()
    n = graph.n
    unreached = n + 1
    left = graph.vertices_on_side(0)
    adj: list[list[int]] = [[] for _ in range(n)]
    mate = [-1] * n
    for u in left:
        nbrs = list(graph.neighbors(u))
        adj[u] = nbrs
        for v in nbrs:
            if mate[v] == -1:
                mate[u] = v
                mate[v] = u
                break
    # CSR over ALL vertices (right rows are empty) so frontier indices
    # need no translation
    indptr = np.zeros(n + 1, dtype=np.int64)
    for u in left:
        indptr[u + 1] = len(adj[u])
    np.cumsum(indptr, out=indptr)
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for u in left:
        indices[int(indptr[u]) : int(indptr[u + 1])] = adj[u] or []
    left_arr = np.asarray(left, dtype=np.int64)

    path_u: list[int] = []
    path_v: list[int] = []
    iters: list[Iterator[int]] = []
    while True:
        mate_arr = np.asarray(mate, dtype=np.int64)
        dist_arr = np.full(n, unreached, dtype=np.int64)
        if left_arr.size:
            frontier = left_arr[mate_arr[left_arr] == -1]
        else:
            frontier = left_arr
        dist_arr[frontier] = 0
        found = False
        level = 0
        while frontier.size:
            level += 1
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # gather all neighbours of the frontier in one shot
            offsets = np.repeat(starts, counts) + (
                np.arange(total, dtype=np.int64)
                - np.repeat(np.cumsum(counts) - counts, counts)
            )
            vs = indices[offsets]
            ws = mate_arr[vs]
            if not found and bool((ws == -1).any()):
                found = True
            ws = ws[ws != -1]
            ws = ws[dist_arr[ws] == unreached]
            if ws.size == 0:
                frontier = ws
                continue
            ws = np.unique(ws)
            dist_arr[ws] = level
            frontier = ws
        if not found:
            return mate
        dist = dist_arr.tolist()
        # augmenting DFS: identical to the int kernel, byte for byte
        for root in left:
            if mate[root] != -1:
                continue
            path_u.append(root)
            iters.append(iter(adj[root]))
            while path_u:
                u = path_u[-1]
                du1 = dist[u] + 1
                for v in iters[-1]:
                    w = mate[v]
                    if w == -1:
                        path_v.append(v)
                        for k in range(len(path_u)):
                            pu = path_u[k]
                            pv = path_v[k]
                            mate[pu] = pv
                            mate[pv] = pu
                        path_u.clear()
                        path_v.clear()
                        iters.clear()
                        break
                    if dist[w] == du1:
                        path_v.append(v)
                        path_u.append(w)
                        iters.append(iter(adj[w]))
                        break
                else:
                    dist[u] = unreached
                    path_u.pop()
                    iters.pop()
                    if path_v:
                        path_v.pop()


# --------------------------------------------------------------------- #
# greedy list scheduling: vectorized LPT + closed-form uniform case
# --------------------------------------------------------------------- #


def assign_group_greedy_numpy(
    p: Sequence[int],
    speeds_scaled: Sequence[int],
    jobs: Sequence[int],
    machines: Sequence[int],
) -> dict[int, int]:
    """Numpy-accelerated greedy list scheduling (same tie-break policy).

    Raises :exc:`FastpathUnavailable` when numpy is missing or job
    sizes / scaled speeds would not fit ``int64`` — callers fall back
    to :func:`repro.fastpath.kernels_int.assign_group_greedy_int`.
    """
    _require_numpy()
    if not machines:
        if jobs:
            raise InvalidInstanceError(
                "cannot schedule jobs on an empty machine group"
            )
        return {}
    if not jobs:
        return {}
    jobs_arr = np.asarray(jobs, dtype=np.int64)
    try:
        p_full = np.asarray(p, dtype=np.int64)
    except OverflowError as exc:
        raise FastpathUnavailable(
            "operands exceed the int64 safety bound"
        ) from exc
    p_arr = p_full[jobs_arr]
    if (
        int(p_arr.max()) >= _INT64_SAFE
        or max(speeds_scaled[i] for i in machines) >= _INT64_SAFE
    ):
        raise FastpathUnavailable("operands exceed the int64 safety bound")
    # LPT order, ties by job id: lexsort's last key is primary
    order = jobs_arr[np.lexsort((jobs_arr, -p_arr))]
    speeds_of = {speeds_scaled[i] for i in machines}
    if len(speeds_of) == 1 and int(p_arr.min()) == int(p_arr.max()):
        # one speed, one job size: greedy is round-robin over the
        # machine list (after k full passes all loads are equal, and
        # equal loads tie-break to the earliest machine position)
        mach_arr = np.asarray(machines, dtype=np.int64)
        assigned = mach_arr[np.arange(order.size, dtype=np.int64) % len(machines)]
        return dict(zip(order.tolist(), assigned.tolist()))
    # general case: vectorized ordering, then per equal-size run either a
    # vectorized event-calendar batch (long runs) or the integer heap
    # placement (short runs / all-distinct sizes)
    count = len(machines)
    speed_by_rank = [speeds_scaled[i] for i in machines]
    loads = [0] * count  # by position ("rank") in `machines`
    group_ranks: dict[int, list[int]] = {}
    for rank, i in enumerate(machines):
        group_ranks.setdefault(speed_by_rank[rank], []).append(rank)

    def build_groups() -> list[tuple[int, list[tuple[int, int, int]]]]:
        rebuilt: list[tuple[int, list[tuple[int, int, int]]]] = []
        for speed, ranks in group_ranks.items():
            heap = [(loads[r], r, machines[r]) for r in ranks]
            heapq.heapify(heap)
            rebuilt.append((speed, heap))
        return rebuilt

    # calendar keys are (load + k * p_j) * (L / S_i) with L the lcm of the
    # distinct scaled speeds; bound the largest key ever formed (loads
    # never exceed the call's total work) — outside int64, long runs just
    # take the heap path on Python ints instead
    common = math.lcm(*group_ranks)
    sum_s = sum(speed_by_rank)
    total_units = int(p_arr.sum())
    p_max = int(p_arr.max())
    batch_ok = (
        common < _INT64_SAFE
        and (total_units + p_max) * (common // min(group_ranks)) < _INT64_SAFE
    )
    if batch_ok:
        mult_np = np.asarray(
            [common // s for s in speed_by_rank], dtype=np.int64
        )
        mach_np = np.asarray(machines, dtype=np.int64)
        ranks_np = np.arange(count, dtype=np.int64)

    groups = build_groups()
    groups_stale = False
    result: dict[int, int] = {}
    order_list = order.tolist()
    n_jobs = len(order_list)
    sorted_p = -np.sort(-p_arr)
    bounds = (np.flatnonzero(sorted_p[1:] != sorted_p[:-1]) + 1).tolist()
    bounds = [0, *bounds, n_jobs]
    for b_idx in range(len(bounds) - 1):
        idx, end = bounds[b_idx], bounds[b_idx + 1]
        p_j = int(sorted_p[idx])
        run = order_list[idx:end]
        r = end - idx
        if batch_ok and r >= _GREEDY_RUN_MIN:
            pj64 = np.int64(p_j)
            loads_np = np.asarray(loads, dtype=np.int64)
            # a threshold T with at least r calendar keys <= T: the
            # "water level" where the fractional key count reaches
            # r + #machines (exact big-int arithmetic; the +m slack
            # absorbs the per-machine floor, and dropping the max(0, .)
            # clamp only raises the level further), capped by key_i(r)
            # of any single machine
            t_cap = int(((loads_np + np.int64(r) * pj64) * mult_np).min())
            water = ((r + count) * p_j + int(loads_np.sum())) * common
            t_use = min(t_cap, -(-water // sum_s))
            counts = np.maximum(
                (np.int64(t_use) // mult_np - loads_np) // pj64, 0
            )
            c = int(counts.sum())
            if c < r:
                # unbalanced loads pulled the linearized level below the
                # true threshold; the single-machine cap always covers
                t_use = t_cap
                counts = np.maximum(
                    (np.int64(t_use) // mult_np - loads_np) // pj64, 0
                )
                c = int(counts.sum())
            if c > r + 4 * count + 1024:
                # wildly unbalanced loads: tighten to the exact least
                # threshold by binary search before materializing keys
                lo = int(((loads_np + pj64) * mult_np).min())
                while lo < t_use:
                    mid = (lo + t_use) // 2
                    at_mid = int(
                        np.maximum(
                            (np.int64(mid) // mult_np - loads_np) // pj64, 0
                        ).sum()
                    )
                    if at_mid >= r:
                        t_use = mid
                    else:
                        lo = mid + 1
                counts = np.maximum(
                    (np.int64(t_use) // mult_np - loads_np) // pj64, 0
                )
            # materialize every (key, rank) pair below the threshold and
            # keep the r lexicographically smallest — ties at equal keys
            # resolve to the lower rank inside the sort itself
            sel = counts > 0
            reps = counts[sel]
            cum = np.cumsum(reps)
            total_c = int(cum[-1])
            ks = np.arange(1, total_c + 1, dtype=np.int64) - np.repeat(
                cum - reps, reps
            )
            keys = (np.repeat(loads_np[sel], reps) + ks * pj64) * np.repeat(
                mult_np[sel], reps
            )
            cand_ranks = np.repeat(ranks_np[sel], reps)
            chosen = cand_ranks[np.lexsort((cand_ranks, keys))[:r]]
            result.update(zip(run, mach_np[chosen].tolist()))
            loads_np += np.bincount(chosen, minlength=count) * pj64
            loads = loads_np.tolist()
            groups_stale = True
            continue
        if groups_stale:
            groups = build_groups()
            groups_stale = False
        if len(groups) == 1:
            heap = groups[0][1]
            for j in run:
                load, rank, i = heap[0]
                heapq.heapreplace(heap, (load + p_j, rank, i))
                loads[rank] = load + p_j
                result[j] = i
            continue
        for j in run:
            best_heap: list[tuple[int, int, int]] | None = None
            best_a = best_s = 0
            best_rank = -1
            for s, heap in groups:
                load, rank, _ = heap[0]
                a = load + p_j
                if best_heap is None:
                    better = True
                else:
                    lhs = a * best_s
                    rhs = best_a * s
                    better = lhs < rhs or (lhs == rhs and rank < best_rank)
                if better:
                    best_a, best_s, best_rank, best_heap = a, s, rank, heap
            assert best_heap is not None  # repro: allow[RS004] reason=groups is non-empty whenever machines is, validated above
            load, rank, i = heapq.heappop(best_heap)
            heapq.heappush(best_heap, (load + p_j, rank, i))
            loads[rank] = load + p_j
            result[j] = i
    return result


# --------------------------------------------------------------------- #
# capacity evaluation for the cover-time bounds
# --------------------------------------------------------------------- #


def capacity_at_numpy(
    speeds_scaled: Any, num: int, d: int, loads: Any = None
) -> int:
    """``sum_i max(0, (S_i * num) // d - load_i)`` as one vector op.

    ``speeds_scaled`` (and ``loads``) may be pre-built int64 arrays so
    repeated binary-search probes share the conversion.  Raises
    :exc:`FastpathUnavailable` on potential int64 overflow — the probe
    multiplies ``S_i * num``, so both factors are bounded explicitly.
    """
    _require_numpy()
    try:
        arr = np.asarray(speeds_scaled, dtype=np.int64)
        loads_arr = (
            None if loads is None else np.asarray(loads, dtype=np.int64)
        )
    except OverflowError as exc:
        raise FastpathUnavailable(
            "operands exceed the int64 safety bound"
        ) from exc
    if arr.size == 0:
        return 0
    if num >= _INT64_SAFE or d >= _INT64_SAFE or int(arr.max()) * max(num, 1) >= _INT64_SAFE:
        raise FastpathUnavailable("operands exceed the int64 safety bound")
    floors = (arr * np.int64(num)) // np.int64(d)
    if loads_arr is not None:
        floors = np.maximum(floors - loads_arr, 0)
    return int(floors.sum())


# --------------------------------------------------------------------- #
# cover-time bounds: vectorized jump-point search
# --------------------------------------------------------------------- #


def _search_jump_points(
    speeds_scaled: Sequence[int],
    scale: int,
    loads: Sequence[int] | None,
    demand: int,
    lo: Fraction,
    hi: Fraction,
) -> Fraction:
    """Least jump point ``t`` in ``[lo, hi]`` whose capacity covers ``demand``.

    Candidates are kept as raw ``(num, den)`` integer pairs — never
    reduced, never turned into :class:`Fraction` inside the loop.  They
    are totally ordered by the exact big-int key ``(num * K) // den``
    with ``K > max_den**2``: two distinct values ``a/b != c/d`` with
    ``b, d <= max_den`` differ by at least ``1 / max_den**2 < 1/K``
    scaled, so their keys differ, while equal values always map to equal
    keys — the key is injective and monotone on values, giving an exact
    sort without any rational arithmetic.  Capacity probes are one
    vectorized floor-sum each.
    """
    m = len(speeds_scaled)
    s_max = max(speeds_scaled)
    lo_num, lo_den = lo.numerator, lo.denominator
    hi_num, hi_den = hi.numerator, hi.denominator
    d_lo = lo_den * scale
    d_hi = hi_den * scale
    max_c = (s_max * hi_num) // d_hi
    max_num = max(max_c * scale, hi_num, lo_num)
    load_max = max(loads) if loads else 0
    if (
        max_num >= _INT64_SAFE
        or max(d_lo, d_hi) >= _INT64_SAFE
        or s_max * max(max_num, 1) >= _INT64_SAFE // max(m, 1)
        or load_max >= _INT64_SAFE
    ):
        raise FastpathUnavailable("operands exceed the int64 safety bound")
    arr = np.asarray(speeds_scaled, dtype=np.int64)
    loads_arr = np.asarray(loads, dtype=np.int64) if loads is not None else None
    # per-machine candidate windows c_lo..c_hi (c counts completed units
    # on that machine), exactly the int kernel's bracketing
    c_lo = np.maximum(1, (arr * np.int64(lo_num) + np.int64(d_lo - 1)) // np.int64(d_lo))
    c_hi = (arr * np.int64(hi_num)) // np.int64(d_hi)
    counts = np.maximum(c_hi - c_lo + 1, 0)
    total = int(counts.sum())
    offsets = np.repeat(c_lo, counts) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    nums = (offsets * np.int64(scale)).tolist()
    dens = np.repeat(arr, counts).tolist()
    nums.append(hi_num)
    dens.append(hi_den)
    kden = max(s_max, lo_den, hi_den)
    big_k = kden * kden + 1
    lo_key = (lo_num * big_k) // lo_den
    hi_key = (hi_num * big_k) // hi_den
    items = sorted(
        (key, a, b)
        for key, a, b in (((a * big_k) // b, a, b) for a, b in zip(nums, dens))
        if lo_key <= key <= hi_key
    )
    left, right = 0, len(items) - 1
    _, ans_num, ans_den = items[right]
    while left <= right:
        mid = (left + right) // 2
        _, num, den = items[mid]
        floors = (arr * np.int64(num)) // np.int64(den * scale)
        if loads_arr is not None:
            floors = np.maximum(floors - loads_arr, 0)
        if int(floors.sum()) >= demand:
            _, ans_num, ans_den = items[mid]
            right = mid - 1
        else:
            left = mid + 1
    return Fraction(ans_num, ans_den)


def min_cover_time_numpy(
    speeds_scaled: Sequence[int], scale: int, demand: int
) -> Fraction:
    """Vectorized :func:`repro.fastpath.kernels_int.min_cover_time_int`.

    Same window, same jump-point candidate set, same least-feasible
    answer — the returned :class:`Fraction` is canonically identical to
    both the int kernel's and the rational reference's.
    """
    _require_numpy()
    if demand <= 0:
        return Fraction(0)
    if not speeds_scaled:
        raise InvalidInstanceError("positive demand but no machines")
    m = len(speeds_scaled)
    total = sum(speeds_scaled)
    lo = Fraction(demand * scale, total)
    hi = Fraction((demand + m) * scale, total)
    return _search_jump_points(speeds_scaled, scale, None, demand, lo, hi)


def min_cover_time_with_loads_numpy(
    speeds_scaled: Sequence[int],
    scale: int,
    loads: Sequence[int],
    demand: int,
) -> Fraction:
    """Vectorized pre-loaded cover time (same semantics as the int kernel)."""
    _require_numpy()
    if len(speeds_scaled) != len(loads):
        raise InvalidInstanceError(
            f"{len(loads)} loads for {len(speeds_scaled)} machines"
        )
    if not speeds_scaled:
        if demand > 0:
            raise InvalidInstanceError("positive demand but no machines")
        return Fraction(0)
    f_num, f_den = 0, 1
    for load, s in zip(loads, speeds_scaled):
        if load * f_den > f_num * s:
            f_num, f_den = load, s
    frontier = Fraction(f_num * scale, f_den)
    if demand <= 0:
        return frontier
    m = len(speeds_scaled)
    total = sum(speeds_scaled)
    total_units = sum(loads) + demand
    lo = max(frontier, Fraction(total_units * scale, total))
    hi = max(frontier, Fraction((total_units + m) * scale, total))
    return _search_jump_points(speeds_scaled, scale, loads, demand, lo, hi)
