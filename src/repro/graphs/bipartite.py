"""The :class:`BipartiteGraph` container.

Vertices are integers ``0..n-1``.  Every instance carries an explicit
bipartition witness (``side[v] in {0, 1}``) validated at construction, so
all downstream algorithms may assume bipartiteness instead of re-checking
it.  Graphs are immutable after construction; structural edits go through
the functional helpers (:meth:`induced_subgraph`, :meth:`disjoint_union`,
:meth:`with_edges`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import InvalidInstanceError, NotBipartiteError
from repro.graphs.conflict import ConflictGraph

__all__ = ["BipartiteGraph"]


class BipartiteGraph(ConflictGraph):
    """An undirected bipartite conflict graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops and out-of-range endpoints
        are rejected; parallel edges collapse.
    side:
        Optional bipartition witness: ``side[v]`` is 0 or 1.  When omitted
        a witness is computed by BFS (:exc:`NotBipartiteError` if none
        exists).  When given, every edge must cross sides.
    """

    __slots__ = ("_n", "_side", "_adj", "_edge_count")

    family = "bipartite"

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] = (),
        side: Sequence[int] | None = None,
    ) -> None:
        if n < 0:
            raise InvalidInstanceError(f"vertex count must be non-negative, got {n}")
        self._n = n
        adj: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidInstanceError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise InvalidInstanceError(f"self loop at vertex {u}")
            adj[u].add(v)
            adj[v].add(u)
        self._adj: tuple[frozenset[int], ...] = tuple(frozenset(s) for s in adj)
        self._edge_count = sum(len(s) for s in self._adj) // 2
        if side is None:
            self._side = self._infer_side()
        else:
            side_t = tuple(int(s) for s in side)
            if len(side_t) != n:
                raise InvalidInstanceError(
                    f"side witness has length {len(side_t)}, expected {n}"
                )
            if any(s not in (0, 1) for s in side_t):
                raise InvalidInstanceError("side entries must be 0 or 1")
            for u in range(n):
                for v in self._adj[u]:
                    if side_t[u] == side_t[v]:
                        raise NotBipartiteError(
                            f"edge ({u}, {v}) does not cross the declared bipartition"
                        )
            self._side = side_t

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_parts(
        cls, left: int, right: int, edges: Iterable[tuple[int, int]] = ()
    ) -> "BipartiteGraph":
        """Build a graph with parts ``{0..left-1}`` and ``{left..left+right-1}``.

        ``edges`` are given as ``(i, j)`` with ``i`` indexing the left part
        and ``j`` the right part (both 0-based within their part), matching
        the `G(n, n, p)` convention of Section 4.1.
        """
        n = left + right
        side = [0] * left + [1] * right
        remapped = [(i, left + j) for i, j in edges]
        for i, j in remapped:
            if not (0 <= i < left and left <= j < n):
                raise InvalidInstanceError(f"part-indexed edge out of range: ({i - 0}, {j - left})")
        return cls(n, remapped, side=side)

    def _infer_side(self) -> tuple[int, ...]:
        """BFS 2-coloring used as the bipartition witness.

        Isolated vertices land on side 0; each component's lowest-index
        vertex lands on side 0, making the witness deterministic.
        """
        side = [-1] * self._n
        for start in range(self._n):
            if side[start] != -1:
                continue
            side[start] = 0
            queue = [start]
            while queue:
                u = queue.pop()
                for v in self._adj[u]:
                    if side[v] == -1:
                        side[v] = 1 - side[u]
                        queue.append(v)
                    elif side[v] == side[u]:
                        raise NotBipartiteError(
                            f"odd cycle detected through edge ({u}, {v})"
                        )
        return tuple(side)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    @property
    def side(self) -> tuple[int, ...]:
        """The bipartition witness (0/1 per vertex)."""
        return self._side

    def neighbors(self, v: int) -> frozenset[int]:
        """Neighbour set of ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Maximum degree (0 for the empty graph)."""
        return max((len(a) for a in self._adj), default=0)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ordered pairs ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self._adj[u]

    def vertices_on_side(self, s: int) -> list[int]:
        """All vertices whose witness side equals ``s``."""
        return [v for v in range(self._n) if self._side[v] == s]

    def parts(self) -> tuple[tuple[int, ...], ...]:
        """The two bipartition sides as vertex classes (witness order)."""
        return (
            tuple(self.vertices_on_side(0)),
            tuple(self.vertices_on_side(1)),
        )

    def isolated_vertices(self) -> list[int]:
        """Vertices of degree zero."""
        return [v for v in range(self._n) if not self._adj[v]]

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        """Whether ``vertices`` induce no edge (the machine-feasibility test)."""
        vs = list(vertices)
        vset = set(vs)
        if len(vset) != len(vs):
            # duplicated vertices are still fine for independence purposes
            pass
        for v in vset:
            if self._adj[v] & vset:
                return False
        return True

    def closed_neighborhood(self, vertices: Iterable[int]) -> set[int]:
        """``N[S]``: the vertices of ``S`` together with all their neighbours."""
        out = set(vertices)
        for v in list(out):
            out |= self._adj[v]
        return out

    # ------------------------------------------------------------------ #
    # structural operations (all functional — graphs are immutable)
    # ------------------------------------------------------------------ #

    def induced_subgraph(
        self, vertices: Iterable[int]
    ) -> tuple["BipartiteGraph", list[int]]:
        """Subgraph induced by ``vertices``.

        Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
        vertex of ``self`` that became vertex ``i`` of the subgraph.  The
        bipartition witness is inherited.
        """
        keep = sorted(set(vertices))
        index = {v: i for i, v in enumerate(keep)}
        edges = [
            (index[u], index[v])
            for u, v in self.edges()
            if u in index and v in index
        ]
        side = [self._side[v] for v in keep]
        return BipartiteGraph(len(keep), edges, side=side), keep

    def disjoint_union(self, other: "BipartiteGraph") -> "BipartiteGraph":
        """Disjoint union; ``other``'s vertices are shifted by ``self.n``."""
        off = self._n
        edges = list(self.edges()) + [(u + off, v + off) for u, v in other.edges()]
        side = list(self._side) + list(other._side)
        return BipartiteGraph(self._n + other._n, edges, side=side)

    def with_edges(self, extra: Iterable[tuple[int, int]]) -> "BipartiteGraph":
        """A copy with additional edges (bipartition witness recomputed)."""
        edges = list(self.edges()) + list(extra)
        return BipartiteGraph(self._n, edges)

    def relabeled(self, mapping: Sequence[int]) -> "BipartiteGraph":
        """Apply the permutation ``mapping`` (``new_id = mapping[old_id]``)."""
        if sorted(mapping) != list(range(self._n)):
            raise InvalidInstanceError("mapping must be a permutation of the vertices")
        edges = [(mapping[u], mapping[v]) for u, v in self.edges()]
        side = [0] * self._n
        for old, new in enumerate(mapping):
            side[new] = self._side[old]
        return BipartiteGraph(self._n, edges, side=side)

    # ------------------------------------------------------------------ #
    # interop & dunder
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Export to :class:`networkx.Graph` (test/diagnostic use only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for v in range(self._n):
            g.nodes[v]["bipartite"] = self._side[v]
        g.add_edges_from(self.edges())
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:
        return hash((self._n, self._adj))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BipartiteGraph(n={self._n}, edges={self._edge_count})"
