"""1-PrExt: precoloring extension with one precoloured vertex per colour.

Definition 2 of the paper: given a graph ``G``, ``k >= 3`` and vertices
``(v_1, ..., v_k)``, decide whether a proper ``k``-coloring ``f`` exists with
``f(v_i) = c_i``.  Theorem 3 (from [3]) states this is NP-complete on
bipartite graphs already for ``k = 3``; both hardness reductions of the
paper (Theorems 8 and 24) start from it.

This module provides the instance type, an exact backtracking solver (the
ground truth for experiments at small scale), and generators for YES / NO
instances with known answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import ensure_rng

__all__ = [
    "PrExtInstance",
    "solve_prext",
    "claw_no_instance",
    "planted_yes_instance",
    "random_prext_instance",
]


@dataclass(frozen=True)
class PrExtInstance:
    """A 1-PrExt instance with ``k = len(precolored)`` colors.

    ``precolored[i]`` is the vertex that must receive color ``i``.
    """

    graph: BipartiteGraph
    precolored: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.precolored) < 3:
            raise InvalidInstanceError("1-PrExt needs k >= 3 precolored vertices")
        if len(set(self.precolored)) != len(self.precolored):
            raise InvalidInstanceError("precolored vertices must be distinct")
        for v in self.precolored:
            if not (0 <= v < self.graph.n):
                raise InvalidInstanceError(f"precolored vertex {v} out of range")

    @property
    def k(self) -> int:
        """Number of colors."""
        return len(self.precolored)


def solve_prext(instance: PrExtInstance) -> tuple[int, ...] | None:
    """Exact solver: a full coloring (vertex -> color index) or ``None``.

    Backtracking with forward checking over candidate-color bitmasks,
    choosing the most-constrained vertex first.  Exponential in the worst
    case (the problem is NP-complete) but comfortably handles the instance
    sizes used as reduction seeds in the experiments (tens of vertices).
    """
    g = instance.graph
    k = instance.k
    full_mask = (1 << k) - 1
    domain = [full_mask] * g.n
    color = [-1] * g.n

    def assign(v: int, c: int, trail: list[tuple[int, int]]) -> bool:
        """Set color ``c`` on ``v`` and propagate; False on wipe-out."""
        color[v] = c
        bit = 1 << c
        for u in g.neighbors(v):
            if color[u] == c:
                return False
            if color[u] == -1 and domain[u] & bit:
                trail.append((u, domain[u]))
                domain[u] &= ~bit
                if domain[u] == 0:
                    return False
        return True

    # seed the precoloring
    trail0: list[tuple[int, int]] = []
    for c, v in enumerate(instance.precolored):
        if color[v] != -1:
            return None
        if not (domain[v] >> c) & 1:
            return None
        if not assign(v, c, trail0):
            return None

    order = sorted(
        (v for v in range(g.n) if color[v] == -1),
        key=lambda v: -g.degree(v),
    )

    def backtrack(pos_hint: int) -> bool:
        # most-constrained-vertex selection among the uncolored
        best, best_count = -1, k + 1
        for v in order:
            if color[v] != -1:
                continue
            cnt = bin(domain[v]).count("1")
            if cnt < best_count:
                best, best_count = v, cnt
                if cnt == 1:
                    break
        if best == -1:
            return True
        v = best
        mask = domain[v]
        while mask:
            bit = mask & -mask
            mask ^= bit
            c = bit.bit_length() - 1
            trail: list[tuple[int, int]] = []
            if assign(v, c, trail) and backtrack(pos_hint + 1):
                return True
            color[v] = -1
            for u, old in reversed(trail):
                domain[u] = old
        return False

    if backtrack(0):
        return tuple(color)
    return None


def claw_no_instance(padding: int = 0) -> PrExtInstance:
    """The minimal NO instance: a claw ``K_{1,3}`` with the 3 leaves
    precolored with distinct colors — the centre has no color left.

    ``padding`` appends that many isolated vertices (to scale instance
    size without changing the answer).
    """
    if padding < 0:
        raise InvalidInstanceError(f"padding must be >= 0, got {padding}")
    n = 4 + padding
    edges = [(0, 1), (0, 2), (0, 3)]
    graph = BipartiteGraph(n, edges)
    return PrExtInstance(graph, (1, 2, 3))


def planted_yes_instance(
    n: int, edge_probability: float = 0.3, seed=None
) -> PrExtInstance:
    """A YES instance with a planted proper 3-coloring.

    Vertices receive random sides and random colors from a side-compatible
    palette (side 0 uses colors {0, 1}, side 1 uses {1, 2} — classes overlap
    on color 1 but edges only join vertices with distinct planted colors).
    Edges are then sampled only between cross-side, cross-color pairs, so
    the planted coloring extends the precoloring by construction.
    """
    if n < 3:
        raise InvalidInstanceError(f"need n >= 3, got {n}")
    rng = ensure_rng(seed)
    # ensure all three colors appear; v0->c0, v1->c1, v2->c2
    planted = [0, 1, 2] + [int(c) for c in rng.integers(0, 3, size=n - 3)]
    # pick sides compatible with bipartiteness: color 0 on side 0, color 2 on
    # side 1, color 1 vertices on a random side
    side = [0 if c == 0 else 1 if c == 2 else int(rng.integers(0, 2)) for c in planted]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if side[u] != side[v] and planted[u] != planted[v]:
                if rng.random() < edge_probability:
                    edges.append((u, v))
    graph = BipartiteGraph(n, edges, side=side)
    return PrExtInstance(graph, (0, 1, 2))


def random_prext_instance(
    n: int, edge_probability: float = 0.25, seed=None
) -> PrExtInstance:
    """A random bipartite 1-PrExt instance with *unknown* answer.

    Used together with :func:`solve_prext` to harvest labelled YES / NO
    seeds for the hardness-reduction experiments.
    """
    if n < 3:
        raise InvalidInstanceError(f"need n >= 3, got {n}")
    rng = ensure_rng(seed)
    side = [int(s) for s in rng.integers(0, 2, size=n)]
    # ensure both sides inhabited so cross edges are possible
    side[0], side[1] = 0, 1
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if side[u] != side[v] and rng.random() < edge_probability
    ]
    graph = BipartiteGraph(n, edges, side=side)
    verts = rng.choice(n, size=3, replace=False)
    return PrExtInstance(graph, tuple(int(v) for v in verts))
