"""Deterministic and random bipartite instance families.

These are the workload generators for the experiment suite: classical
families (complete bipartite graphs, crowns, paths, even cycles, stars,
double stars, caterpillars), random trees/forests, and random
bounded-degree bipartite graphs.  The Gilbert model ``G(n, n, p)`` of
Section 4.1 lives in :mod:`repro.random_graphs.gilbert`.

All random generators accept ``seed`` (int or :class:`numpy.random.Generator`)
and are fully reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import ensure_rng

__all__ = [
    "empty_graph",
    "complete_bipartite",
    "crown",
    "path_graph",
    "even_cycle",
    "star",
    "double_star",
    "caterpillar",
    "matching_graph",
    "random_tree",
    "random_forest",
    "random_bipartite_degree_bounded",
    "random_subgraph",
]


def empty_graph(n: int) -> BipartiteGraph:
    """``n`` isolated vertices — the classical ``alpha||Cmax`` special case."""
    return BipartiteGraph(n, [])


def complete_bipartite(a: int, b: int) -> BipartiteGraph:
    """``K_{a,b}``; the family behind Theorem 23's inapproximability."""
    return BipartiteGraph.from_parts(a, b, [(i, j) for i in range(a) for j in range(b)])


def crown(k: int) -> BipartiteGraph:
    """The crown ``S_k^0``: ``K_{k,k}`` minus a perfect matching.

    Dense but with large independent sets spanning both parts — a stress
    case for Algorithm 1's independent-set step.
    """
    if k < 1:
        raise InvalidInstanceError(f"crown size must be >= 1, got {k}")
    edges = [(i, j) for i in range(k) for j in range(k) if i != j]
    return BipartiteGraph.from_parts(k, k, edges)


def path_graph(n: int) -> BipartiteGraph:
    """The path ``P_n`` on ``n`` vertices (a tree, as in [3]'s 5/3 result)."""
    return BipartiteGraph(n, [(i, i + 1) for i in range(n - 1)])


def even_cycle(n: int) -> BipartiteGraph:
    """The cycle ``C_n`` for even ``n >= 4``."""
    if n < 4 or n % 2:
        raise InvalidInstanceError(f"cycle must have even length >= 4, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return BipartiteGraph(n, edges)


def star(leaves: int) -> BipartiteGraph:
    """The star ``K_{1,leaves}``: vertex 0 is the centre."""
    if leaves < 0:
        raise InvalidInstanceError(f"leaf count must be >= 0, got {leaves}")
    return BipartiteGraph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def double_star(a: int, b: int) -> BipartiteGraph:
    """Two adjacent centres (0 and 1) with ``a`` and ``b`` leaves."""
    edges = [(0, 1)]
    edges += [(0, 2 + i) for i in range(a)]
    edges += [(1, 2 + a + i) for i in range(b)]
    return BipartiteGraph(2 + a + b, edges)


def caterpillar(spine: int, legs_per_vertex: int) -> BipartiteGraph:
    """A caterpillar: path of length ``spine`` with ``legs_per_vertex`` leaves
    hanging off each spine vertex."""
    if spine < 1:
        raise InvalidInstanceError(f"spine must have >= 1 vertex, got {spine}")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((s, nxt))
            nxt += 1
    return BipartiteGraph(nxt, edges)


def matching_graph(k: int) -> BipartiteGraph:
    """``k`` disjoint edges (a perfect matching on ``2k`` vertices)."""
    return BipartiteGraph(2 * k, [(2 * i, 2 * i + 1) for i in range(k)])


def random_tree(n: int, seed=None) -> BipartiteGraph:
    """A uniformly random labelled tree on ``n`` vertices (Prüfer decode).

    Trees are the subclass of bipartite graphs for which [3] gives a 5/3
    approximation; they appear in the experiment suites as an "easy" family.
    """
    if n < 1:
        raise InvalidInstanceError(f"tree needs >= 1 vertex, got {n}")
    if n == 1:
        return BipartiteGraph(1, [])
    if n == 2:
        return BipartiteGraph(2, [(0, 1)])
    rng = ensure_rng(seed)
    prufer = [int(v) for v in rng.integers(0, n, size=n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    edges: list[tuple[int, int]] = []
    for v in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    edges.append((u, w))
    return BipartiteGraph(n, edges)


def random_forest(n: int, trees: int, seed=None) -> BipartiteGraph:
    """A forest: ``trees`` random trees totalling ``n`` vertices."""
    if trees < 1 or trees > n:
        raise InvalidInstanceError(f"need 1 <= trees <= n, got trees={trees}, n={n}")
    rng = ensure_rng(seed)
    # sample sizes summing to n, each >= 1
    cuts = np.sort(rng.choice(np.arange(1, n), size=trees - 1, replace=False)) if trees > 1 else np.array([], dtype=int)
    sizes = np.diff(np.concatenate(([0], cuts, [n])))
    graph = BipartiteGraph(0, [])
    for size in sizes:
        graph = graph.disjoint_union(random_tree(int(size), rng))
    return graph


def random_bipartite_degree_bounded(
    left: int, right: int, max_degree: int, seed=None
) -> BipartiteGraph:
    """Random bipartite graph where every vertex has degree ``<= max_degree``.

    Greedy edge sampling; covers the bounded-degree regimes studied in
    [7], [8] and [23] (e.g. ``max_degree=3`` cubic-ish, ``=4`` bisubquartic).
    """
    rng = ensure_rng(seed)
    deg_l = [0] * left
    deg_r = [0] * right
    edges: list[tuple[int, int]] = []
    present: set[tuple[int, int]] = set()
    candidates = [(i, j) for i in range(left) for j in range(right)]
    rng.shuffle(candidates)
    for i, j in candidates:
        if deg_l[i] < max_degree and deg_r[j] < max_degree and (i, j) not in present:
            present.add((i, j))
            edges.append((i, j))
            deg_l[i] += 1
            deg_r[j] += 1
    return BipartiteGraph.from_parts(left, right, edges)


def random_subgraph(graph: BipartiteGraph, keep_probability: float, seed=None) -> BipartiteGraph:
    """Keep each edge independently with probability ``keep_probability``."""
    if not (0.0 <= keep_probability <= 1.0):
        raise InvalidInstanceError(f"keep_probability must be in [0,1], got {keep_probability}")
    rng = ensure_rng(seed)
    edges = [e for e in graph.edges() if rng.random() < keep_probability]
    return BipartiteGraph(graph.n, edges, side=graph.side)
