"""Connected-component decomposition.

Algorithms 3-5 of the paper operate *per connected component* of the
incompatibility graph; Algorithm 1's inequitable coloring likewise chooses
an orientation per component.  Both consume the helpers here.
"""

from __future__ import annotations

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.conflict import ConflictGraph

__all__ = ["connected_components", "component_subgraphs"]


def connected_components(graph: ConflictGraph) -> list[list[int]]:
    """Vertex lists of the connected components, each sorted ascending.

    Components are ordered by their smallest vertex, so the decomposition is
    deterministic.  Isolated vertices form singleton components.
    """
    seen = [False] * graph.n
    components: list[list[int]] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        comp = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    stack.append(v)
        comp.sort()
        components.append(comp)
    return components


def component_subgraphs(
    graph: BipartiteGraph,
) -> list[tuple[BipartiteGraph, list[int]]]:
    """Each component as ``(subgraph, original_vertex_ids)``.

    The second element maps subgraph vertex ``i`` back to its id in the
    parent graph, which the R2 reduction uses to reconstruct schedules.
    (Bipartite-only: ``induced_subgraph`` carries the side witness.)
    """
    return [graph.induced_subgraph(comp) for comp in connected_components(graph)]
