"""Structural recognition of bipartite graph classes.

The literature around the paper attaches better algorithms to restricted
graph classes: complete (multi)partite graphs get exact unary-encoding
algorithms ([20], [24]), trees get a 5/3-approximation ([3]), cubic and
bisubquartic graphs get dedicated uniform-machine results ([8], [23]).
This module recognises those classes so :mod:`repro.solvers` can dispatch
to the strongest applicable method, and so tests can assert that
generators produce what they claim.

All predicates run in ``O(|V| + |E|)`` except complete-bipartite
recognition which is ``O(|V| + |E|)`` with an ``O(a*b)`` edge-count check
(it never enumerates non-edges).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import connected_components

__all__ = [
    "is_empty",
    "is_perfect_matching_graph",
    "is_forest",
    "is_path",
    "is_regular",
    "is_cubic",
    "is_bisubquartic",
    "complete_bipartite_parts",
    "complete_bipartite_parts_with_free",
    "GraphStructure",
    "analyze_structure",
]


def is_empty(graph: BipartiteGraph) -> bool:
    """Whether the graph has no edges (``alpha||Cmax``: no constraint)."""
    return graph.edge_count == 0


def is_perfect_matching_graph(graph: BipartiteGraph) -> bool:
    """Whether every vertex has degree exactly 1 (disjoint edges only)."""
    return graph.n > 0 and all(graph.degree(v) == 1 for v in range(graph.n))


def is_forest(graph: BipartiteGraph) -> bool:
    """Whether the graph is acyclic.

    A graph is a forest iff every connected component on ``c`` vertices has
    exactly ``c - 1`` edges; trees are the class for which [3] gives an
    ``O(n log n)`` 5/3-approximation on identical machines.
    """
    for comp in connected_components(graph):
        comp_set = set(comp)
        edges = sum(1 for v in comp for u in graph.neighbors(v) if u in comp_set)
        if edges // 2 != len(comp) - 1:
            return False
    return True


def is_path(graph: BipartiteGraph) -> bool:
    """Whether the graph is a single simple path (possibly one vertex)."""
    if graph.n == 0:
        return False
    comps = connected_components(graph)
    if len(comps) != 1:
        return False
    degs = sorted(graph.degree(v) for v in range(graph.n))
    if graph.n == 1:
        return degs == [0]
    return degs[0] == degs[1] == 1 and all(d == 2 for d in degs[2:])


def is_regular(graph: BipartiteGraph, degree: int) -> bool:
    """Whether every vertex has degree exactly ``degree``."""
    return all(graph.degree(v) == degree for v in range(graph.n))


def is_cubic(graph: BipartiteGraph) -> bool:
    """Whether the graph is 3-regular (the class studied in [8])."""
    return graph.n > 0 and is_regular(graph, 3)


def is_bisubquartic(graph: BipartiteGraph) -> bool:
    """Whether the maximum degree is at most 4.

    Bisubquartic graphs (bipartite subgraphs of 4-regular graphs) are the
    class for which [23] gives a 2-approximation with unit jobs.
    """
    return graph.max_degree() <= 4


def complete_bipartite_parts(
    graph: BipartiteGraph,
) -> tuple[list[int], list[int]] | None:
    """The two parts if the graph is exactly ``K_{a,b}``, else ``None``.

    "Exactly" means every vertex is incident to every vertex of the other
    part; in particular isolated vertices (and edgeless graphs) are
    rejected — use :func:`complete_bipartite_parts_with_free` to tolerate
    them.  ``K_{a,b}`` is the family behind Theorem 23's inapproximability
    and the exact unary algorithm of [20]/[24].
    """
    if graph.edge_count == 0:
        return None
    parts = complete_bipartite_parts_with_free(graph)
    if parts is None:
        return None
    left, right, free = parts
    if free:
        return None
    return left, right


def complete_bipartite_parts_with_free(
    graph: BipartiteGraph,
) -> tuple[list[int], list[int], list[int]] | None:
    """Decompose into ``(left, right, free)`` when the non-isolated part of
    the graph is complete bipartite.

    ``free`` collects the isolated vertices (jobs with no conflicts, which
    any machine may take).  Returns ``None`` when the non-isolated
    subgraph is not a complete join of two independent sets.  Edgeless
    graphs decompose as ``([], [], all_vertices)``.
    """
    free = [v for v in range(graph.n) if graph.degree(v) == 0]
    active = [v for v in range(graph.n) if graph.degree(v) > 0]
    if not active:
        return [], [], free
    # a complete bipartite graph is connected, so all active vertices must
    # share one component and the two parts are the two coloring classes
    comps = [c for c in connected_components(graph) if len(c) > 1]
    if len(comps) != 1:
        return None
    left = [v for v in comps[0] if graph.side[v] == 0]
    right = [v for v in comps[0] if graph.side[v] == 1]
    # completeness: every left vertex sees every right vertex.  Comparing
    # degree to |other part| suffices (no multi-edges exist).
    if any(graph.degree(v) != len(right) for v in left):
        return None
    if any(graph.degree(v) != len(left) for v in right):
        return None
    return left, right, free


@dataclass(frozen=True)
class GraphStructure:
    """A structural fingerprint used by the solver dispatcher.

    Flags are not mutually exclusive (a path is also a forest and
    bisubquartic); :func:`repro.engine.solve` consults them from most
    to least specific.
    """

    n: int
    edge_count: int
    max_degree: int
    components: int
    empty: bool
    perfect_matching: bool
    forest: bool
    path: bool
    cubic: bool
    bisubquartic: bool
    complete_bipartite: tuple[tuple[int, ...], tuple[int, ...]] | None
    complete_bipartite_free: (
        tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]] | None
    )

    def describe(self) -> str:
        """Human-readable one-line summary (used by the CLI)."""
        tags: list[str] = []
        if self.empty:
            tags.append("empty")
        if self.perfect_matching:
            tags.append("perfect matching")
        if self.path:
            tags.append("path")
        elif self.forest:
            tags.append("forest")
        if self.cubic:
            tags.append("cubic")
        if self.complete_bipartite is not None:
            a = len(self.complete_bipartite[0])
            b = len(self.complete_bipartite[1])
            tags.append(f"complete bipartite K_{{{a},{b}}}")
        elif self.complete_bipartite_free is not None and not self.empty:
            a = len(self.complete_bipartite_free[0])
            b = len(self.complete_bipartite_free[1])
            f = len(self.complete_bipartite_free[2])
            tags.append(f"K_{{{a},{b}}} + {f} isolated")
        if self.bisubquartic and not self.empty:
            tags.append("bisubquartic")
        if not tags:
            tags.append("general bipartite")
        return (
            f"n={self.n}, |E|={self.edge_count}, max_deg={self.max_degree}, "
            f"components={self.components}: " + ", ".join(tags)
        )


def analyze_structure(graph: BipartiteGraph) -> GraphStructure:
    """Compute the full :class:`GraphStructure` fingerprint of ``graph``."""
    cb = complete_bipartite_parts(graph)
    cbf = complete_bipartite_parts_with_free(graph)
    return GraphStructure(
        n=graph.n,
        edge_count=graph.edge_count,
        max_degree=graph.max_degree(),
        components=len(connected_components(graph)),
        empty=is_empty(graph),
        perfect_matching=is_perfect_matching_graph(graph),
        forest=is_forest(graph),
        path=is_path(graph),
        cubic=is_cubic(graph),
        bisubquartic=is_bisubquartic(graph),
        complete_bipartite=(
            (tuple(cb[0]), tuple(cb[1])) if cb is not None else None
        ),
        complete_bipartite_free=(
            (tuple(cbf[0]), tuple(cbf[1]), tuple(cbf[2]))
            if cbf is not None
            else None
        ),
    )
