"""Structural recognition of conflict-graph classes.

The literature around the paper attaches better algorithms to restricted
graph classes: complete (multi)partite graphs get exact unary-encoding
algorithms ([20], [24], Pikies–Turowski arXiv:2010.13207), trees get a
5/3-approximation ([3]), cubic and bisubquartic graphs get dedicated
uniform-machine results ([8], [23]), and block-type graphs (every
biconnected component a clique, Furmańczyk et al. arXiv:2207.05868) admit
optimal greedy coloring.  This module recognises those classes so
:mod:`repro.engine` can dispatch to the strongest applicable method, and
so tests can assert that generators produce what they claim.

Every predicate works on any :class:`~repro.graphs.conflict.ConflictGraph`
— recognition is *structural* (adjacency-based), independent of which
representation class the graph happens to be stored in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import NotBipartiteError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import connected_components
from repro.graphs.conflict import ConflictGraph, biconnected_components

__all__ = [
    "is_empty",
    "is_perfect_matching_graph",
    "is_forest",
    "is_path",
    "is_regular",
    "is_cubic",
    "is_bisubquartic",
    "is_bipartite_structure",
    "as_bipartite_graph",
    "is_block_structure",
    "multipartite_decomposition",
    "classify_conflict_graph",
    "complete_bipartite_parts",
    "complete_bipartite_parts_with_free",
    "GraphStructure",
    "analyze_structure",
]


def is_empty(graph: ConflictGraph) -> bool:
    """Whether the graph has no edges (``alpha||Cmax``: no constraint)."""
    return graph.edge_count == 0


def is_perfect_matching_graph(graph: ConflictGraph) -> bool:
    """Whether every vertex has degree exactly 1 (disjoint edges only)."""
    return graph.n > 0 and all(graph.degree(v) == 1 for v in range(graph.n))


def is_forest(graph: ConflictGraph) -> bool:
    """Whether the graph is acyclic.

    A graph is a forest iff every connected component on ``c`` vertices has
    exactly ``c - 1`` edges; trees are the class for which [3] gives an
    ``O(n log n)`` 5/3-approximation on identical machines.
    """
    for comp in connected_components(graph):
        comp_set = set(comp)
        edges = sum(1 for v in comp for u in graph.neighbors(v) if u in comp_set)
        if edges // 2 != len(comp) - 1:
            return False
    return True


def is_path(graph: ConflictGraph) -> bool:
    """Whether the graph is a single simple path (possibly one vertex)."""
    if graph.n == 0:
        return False
    comps = connected_components(graph)
    if len(comps) != 1:
        return False
    degs = sorted(graph.degree(v) for v in range(graph.n))
    if graph.n == 1:
        return degs == [0]
    return degs[0] == degs[1] == 1 and all(d == 2 for d in degs[2:])


def is_regular(graph: ConflictGraph, degree: int) -> bool:
    """Whether every vertex has degree exactly ``degree``."""
    return all(graph.degree(v) == degree for v in range(graph.n))


def is_cubic(graph: ConflictGraph) -> bool:
    """Whether the graph is 3-regular (the class studied in [8])."""
    return graph.n > 0 and is_regular(graph, 3)


def is_bisubquartic(graph: ConflictGraph) -> bool:
    """Whether the maximum degree is at most 4.

    Bisubquartic graphs (bipartite subgraphs of 4-regular graphs) are the
    class for which [23] gives a 2-approximation with unit jobs.
    """
    return graph.max_degree() <= 4


def is_bipartite_structure(graph: ConflictGraph) -> bool:
    """Whether the graph is 2-colorable (structurally bipartite).

    :class:`~repro.graphs.bipartite.BipartiteGraph` instances carry a
    validated witness and short-circuit to ``True``; other
    representations are checked by BFS 2-coloring.
    """
    if isinstance(graph, BipartiteGraph):
        return True
    color = [-1] * graph.n
    for start in range(graph.n):
        if color[start] != -1:
            continue
        color[start] = 0
        queue = [start]
        while queue:
            u = queue.pop()
            for v in graph.neighbors(u):
                if color[v] == -1:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def as_bipartite_graph(graph: ConflictGraph) -> BipartiteGraph:
    """A :class:`BipartiteGraph` view of any 2-colorable conflict graph.

    Bipartite-specific algorithms (Hopcroft–Karp matching, König vertex
    covers) need the concrete representation with its side witness, but
    :mod:`repro.engine` gates them *structurally* — a 2-colorable
    :class:`~repro.graphs.conflict.BlockGraph` (a forest, say) passes the
    gate.  This converts such a graph by BFS 2-coloring, preserving
    vertex numbering; isolated vertices land on side 0.  Raises
    :class:`~repro.exceptions.NotBipartiteError` on an odd cycle.

    ``BipartiteGraph`` inputs are returned unchanged.
    """
    if isinstance(graph, BipartiteGraph):
        return graph
    color = [-1] * graph.n
    for start in range(graph.n):
        if color[start] != -1:
            continue
        color[start] = 0
        queue = [start]
        while queue:
            u = queue.pop()
            for v in graph.neighbors(u):
                if color[v] == -1:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    raise NotBipartiteError(
                        f"graph has an odd cycle through vertices {u} and {v}"
                    )
    edges = [
        (u, v) for u in range(graph.n) for v in graph.neighbors(u) if u < v
    ]
    return BipartiteGraph(graph.n, edges, side=color)


def is_block_structure(graph: ConflictGraph) -> bool:
    """Whether every biconnected component induces a clique.

    This is the defining property of block graphs (clique forests,
    Furmańczyk et al. arXiv:2207.05868).  Forests and disjoint clique
    unions qualify; any chordless cycle of length >= 4 does not.
    """
    for comp in biconnected_components(graph):
        need = len(comp) - 1
        comp_set = set(comp)
        for v in comp:
            if len(graph.neighbors(v) & comp_set) < need:
                return False
    return True


def multipartite_decomposition(
    graph: ConflictGraph,
) -> tuple[list[list[int]], list[int]] | None:
    """Decompose into ``(classes, free)`` when the graph is complete
    multipartite on its non-isolated vertices.

    A graph is complete multipartite iff non-adjacency is transitive on
    the active (degree > 0) vertices: the classes are the groups of
    active vertices with *identical* neighbour sets, and every vertex
    must see exactly the active vertices outside its own class.
    Isolated vertices are returned as ``free`` (edgeless graphs
    decompose as ``([], all_vertices)``).  Returns ``None`` when the
    graph is not complete multipartite.
    """
    free = [v for v in range(graph.n) if graph.degree(v) == 0]
    active = [v for v in range(graph.n) if graph.degree(v) > 0]
    if not active:
        return [], free
    active_set = frozenset(active)
    groups: dict[frozenset[int], list[int]] = {}
    for v in active:
        groups.setdefault(graph.neighbors(v), []).append(v)
    classes: list[list[int]] = []
    for nbrs, members in groups.items():
        if nbrs != active_set - frozenset(members):
            return None
        classes.append(sorted(members))
    classes.sort()
    return classes, free


def classify_conflict_graph(graph: ConflictGraph) -> str:
    """Structural class of ``graph``, independent of its representation.

    Returns one of ``"edgeless"``, ``"complete_bipartite"``,
    ``"complete_multipartite"``, ``"bipartite"``, ``"block"``, or
    ``"general"``.  Precedence runs most-specific-first: a complete
    multipartite graph with two classes reports ``"complete_bipartite"``
    even when stored as a :class:`CompleteMultipartiteGraph`, and a
    triangle (three singleton classes — also a block) reports
    ``"complete_multipartite"``.  Classification depends only on
    adjacency, so it is stable under vertex relabeling.
    """
    if graph.edge_count == 0:
        return "edgeless"
    mp = multipartite_decomposition(graph)
    if mp is not None:
        classes, _free = mp
        if len(classes) == 2:
            return "complete_bipartite"
        return "complete_multipartite"
    if is_bipartite_structure(graph):
        return "bipartite"
    if is_block_structure(graph):
        return "block"
    return "general"


def complete_bipartite_parts(
    graph: ConflictGraph,
) -> tuple[list[int], list[int]] | None:
    """The two parts if the graph is exactly ``K_{a,b}``, else ``None``.

    "Exactly" means every vertex is incident to every vertex of the other
    part; in particular isolated vertices (and edgeless graphs) are
    rejected — use :func:`complete_bipartite_parts_with_free` to tolerate
    them.  ``K_{a,b}`` is the family behind Theorem 23's inapproximability
    and the exact unary algorithm of [20]/[24].
    """
    if graph.edge_count == 0:
        return None
    parts = complete_bipartite_parts_with_free(graph)
    if parts is None:
        return None
    left, right, free = parts
    if free:
        return None
    return left, right


def complete_bipartite_parts_with_free(
    graph: ConflictGraph,
) -> tuple[list[int], list[int], list[int]] | None:
    """Decompose into ``(left, right, free)`` when the non-isolated part of
    the graph is complete bipartite.

    ``free`` collects the isolated vertices (jobs with no conflicts, which
    any machine may take).  Returns ``None`` when the non-isolated
    subgraph is not a complete join of two independent sets.  Edgeless
    graphs decompose as ``([], [], all_vertices)``.

    For :class:`~repro.graphs.bipartite.BipartiteGraph` the split follows
    the bipartition witness (side 0 left), keeping pre-refactor behaviour
    bit-for-bit; other representations split by the (deterministic,
    sorted) structural decomposition.
    """
    free = [v for v in range(graph.n) if graph.degree(v) == 0]
    active = [v for v in range(graph.n) if graph.degree(v) > 0]
    if not active:
        return [], [], free
    if isinstance(graph, BipartiteGraph):
        # a complete bipartite graph is connected, so all active vertices
        # must share one component; the parts are the two coloring classes
        comps = [c for c in connected_components(graph) if len(c) > 1]
        if len(comps) != 1:
            return None
        left = [v for v in comps[0] if graph.side[v] == 0]
        right = [v for v in comps[0] if graph.side[v] == 1]
        # completeness: every left vertex sees every right vertex.
        # Comparing degree to |other part| suffices (no multi-edges).
        if any(graph.degree(v) != len(right) for v in left):
            return None
        if any(graph.degree(v) != len(left) for v in right):
            return None
        return left, right, free
    mp = multipartite_decomposition(graph)
    if mp is None:
        return None
    classes, mp_free = mp
    if len(classes) != 2:
        return None
    return classes[0], classes[1], mp_free


@dataclass(frozen=True)
class GraphStructure:
    """A structural fingerprint used by the solver dispatcher.

    Flags are not mutually exclusive (a path is also a forest and
    bisubquartic); :func:`repro.engine.solve` consults them from most
    to least specific.
    """

    n: int
    edge_count: int
    max_degree: int
    components: int
    empty: bool
    perfect_matching: bool
    forest: bool
    path: bool
    cubic: bool
    bisubquartic: bool
    complete_bipartite: tuple[tuple[int, ...], tuple[int, ...]] | None
    complete_bipartite_free: (
        tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]] | None
    )
    # conflict-graph generalization (defaults keep older construction sites
    # and serialized fingerprints working)
    graph_family: str = "bipartite"
    conflict_class: str = "general"
    multipartite: (
        tuple[tuple[tuple[int, ...], ...], tuple[int, ...]] | None
    ) = None
    block: bool = False

    def describe(self) -> str:
        """Human-readable one-line summary (used by the CLI)."""
        tags: list[str] = []
        if self.empty:
            tags.append("empty")
        if self.perfect_matching:
            tags.append("perfect matching")
        if self.path:
            tags.append("path")
        elif self.forest:
            tags.append("forest")
        if self.cubic:
            tags.append("cubic")
        if self.complete_bipartite is not None:
            a = len(self.complete_bipartite[0])
            b = len(self.complete_bipartite[1])
            tags.append(f"complete bipartite K_{{{a},{b}}}")
        elif self.complete_bipartite_free is not None and not self.empty:
            a = len(self.complete_bipartite_free[0])
            b = len(self.complete_bipartite_free[1])
            f = len(self.complete_bipartite_free[2])
            tags.append(f"K_{{{a},{b}}} + {f} isolated")
        if self.conflict_class == "complete_multipartite" and self.multipartite:
            classes, free = self.multipartite
            sizes = ",".join(str(len(c)) for c in classes)
            tag = f"complete multipartite K_{{{sizes}}}"
            if free:
                tag += f" + {len(free)} isolated"
            tags.append(tag)
        if self.conflict_class == "block":
            tags.append("block graph")
        if self.bisubquartic and not self.empty:
            tags.append("bisubquartic")
        if not tags:
            tags.append(
                "general bipartite"
                if self.conflict_class == "bipartite"
                else "general conflict graph"
            )
        return (
            f"n={self.n}, |E|={self.edge_count}, max_deg={self.max_degree}, "
            f"components={self.components}: " + ", ".join(tags)
        )


def analyze_structure(graph: ConflictGraph) -> GraphStructure:
    """Compute the full :class:`GraphStructure` fingerprint of ``graph``."""
    cb = complete_bipartite_parts(graph)
    cbf = complete_bipartite_parts_with_free(graph)
    mp = multipartite_decomposition(graph)
    return GraphStructure(
        n=graph.n,
        edge_count=graph.edge_count,
        max_degree=graph.max_degree(),
        components=len(connected_components(graph)),
        empty=is_empty(graph),
        perfect_matching=is_perfect_matching_graph(graph),
        forest=is_forest(graph),
        path=is_path(graph),
        cubic=is_cubic(graph),
        bisubquartic=is_bisubquartic(graph),
        complete_bipartite=(
            (tuple(cb[0]), tuple(cb[1])) if cb is not None else None
        ),
        complete_bipartite_free=(
            (tuple(cbf[0]), tuple(cbf[1]), tuple(cbf[2]))
            if cbf is not None
            else None
        ),
        graph_family=getattr(type(graph), "family", "general"),
        conflict_class=classify_conflict_graph(graph),
        multipartite=(
            (tuple(tuple(c) for c in mp[0]), tuple(mp[1]))
            if mp is not None
            else None
        ),
        block=is_block_structure(graph),
    )
