"""Maximum flow / minimum cut via Dinic's algorithm.

This is the substrate behind the maximum-*weight* independent set needed in
step 2 of Algorithm 1 (the paper cites Orlin [22] for an ``O(|J||E|)`` max
flow; Dinic's ``O(V^2 E)`` — ``O(E sqrt(V))`` on unit-capacity bipartite
networks — is more than sufficient at reproduction scale and is exact).

Capacities are non-negative integers; ``INF`` models uncuttable edges.
"""

from __future__ import annotations

from collections import deque

__all__ = ["FlowNetwork", "max_flow_min_cut", "INF"]

#: Effectively infinite capacity: larger than any sum of finite capacities
#: used in this package (total job weight is bounded well below this).
INF = 1 << 60


class FlowNetwork:
    """A directed flow network with integer capacities (Dinic's algorithm).

    Arc ``i`` and its reverse arc ``i ^ 1`` are stored adjacently in a flat
    arc list, the usual trick that makes residual updates O(1).
    """

    __slots__ = ("n", "nxt", "to", "cap", "first")

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("a flow network needs at least source and sink")
        self.n = n
        self.to: list[int] = []
        self.cap: list[int] = []
        self.first: list[int] = [-1] * n
        self.nxt: list[int] = []

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge ``u -> v``; returns its arc index."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge endpoints ({u}, {v}) out of range")
        for (a, b, c) in ((u, v, capacity), (v, u, 0)):
            self.to.append(b)
            self.cap.append(c)
            self.nxt.append(self.first[a])
            self.first[a] = len(self.to) - 1
        return len(self.to) - 2

    # ------------------------------------------------------------------ #

    def _bfs_levels(self, s: int, t: int) -> list[int] | None:
        """Level graph for the current residual network; ``None`` if ``t``
        is unreachable (i.e. the flow is maximum)."""
        level = [-1] * self.n
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            e = self.first[u]
            while e != -1:
                v = self.to[e]
                if self.cap[e] > 0 and level[v] == -1:
                    level[v] = level[u] + 1
                    q.append(v)
                e = self.nxt[e]
        return level if level[t] != -1 else None

    def _augment(self, s: int, t: int, level: list[int], it: list[int]) -> int:
        """Push one augmenting path along the level graph (iterative DFS
        with the current-arc optimisation); returns the amount pushed."""
        stack = [s]
        path: list[int] = []  # arc indices along the current partial path
        while stack:
            u = stack[-1]
            if u == t:
                pushed = min(self.cap[e] for e in path)
                for e in path:
                    self.cap[e] -= pushed
                    self.cap[e ^ 1] += pushed
                return pushed
            e = it[u]
            while e != -1:
                v = self.to[e]
                if self.cap[e] > 0 and level[v] == level[u] + 1:
                    break
                e = self.nxt[e]
            it[u] = e
            if e != -1:
                path.append(e)
                stack.append(self.to[e])
            else:
                level[u] = -1  # dead end in this phase: prune
                stack.pop()
                if path:
                    path.pop()
        return 0

    def max_flow(self, s: int, t: int) -> int:
        """Total maximum flow from ``s`` to ``t``."""
        if s == t:
            raise ValueError("source and sink must differ")
        total = 0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return total
            it = list(self.first)
            while True:
                pushed = self._augment(s, t, level, it)
                if pushed == 0:
                    break
                total += pushed

    def min_cut_source_side(self, s: int) -> set[int]:
        """Vertices reachable from ``s`` in the residual graph.

        Call after :meth:`max_flow`; the returned set ``S`` (with
        ``T = V \\ S``) is a minimum cut, and the saturated arcs from ``S``
        to ``T`` realise its capacity.
        """
        seen = {s}
        stack = [s]
        while stack:
            u = stack.pop()
            e = self.first[u]
            while e != -1:
                v = self.to[e]
                if self.cap[e] > 0 and v not in seen:
                    seen.add(v)
                    stack.append(v)
                e = self.nxt[e]
        return seen


def max_flow_min_cut(
    n: int,
    edges: list[tuple[int, int, int]],
    s: int,
    t: int,
) -> tuple[int, set[int]]:
    """One-shot helper: build the network, run Dinic, return ``(flow, S)``.

    ``S`` is the source side of a minimum cut.
    """
    net = FlowNetwork(n)
    for u, v, c in edges:
        net.add_edge(u, v, c)
    value = net.max_flow(s, t)
    return value, net.min_cut_source_side(s)
