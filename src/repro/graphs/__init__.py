"""Conflict-graph substrate.

Everything the paper's algorithms need from graph theory, implemented
from scratch: the :class:`ConflictGraph` abstraction with its
:class:`BipartiteGraph`, :class:`CompleteMultipartiteGraph`, and
:class:`BlockGraph` implementations, proper/inequitable 2-colorings
(Definition 1), maximum matching (Hopcroft-Karp), König vertex covers,
maximum-weight independent sets via min-cut (used by Algorithm 1),
deterministic instance-family generators, structural conflict-class
recognition, and the 1-PrExt precoloring-extension problem
(Definition 2 / Theorem 3).
"""

from repro.graphs.conflict import (
    BlockGraph,
    CompleteMultipartiteGraph,
    ConflictGraph,
    biconnected_components,
)
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import connected_components, component_subgraphs
from repro.graphs.coloring import (
    proper_two_coloring,
    inequitable_two_coloring,
    is_proper_coloring,
)
from repro.graphs.matching import hopcroft_karp, maximum_matching_size
from repro.graphs.maximal_matching import (
    greedy_maximal_matching,
    is_maximal_matching,
    matching_size,
    minimum_maximal_matching_size,
    small_maximal_matching,
)
from repro.graphs.vertex_cover import (
    konig_vertex_cover,
    min_weight_vertex_cover,
    is_vertex_cover,
)
from repro.graphs.independent_set import (
    max_weight_independent_set,
    max_weight_independent_set_containing,
    independence_number,
)
from repro.graphs.flow import FlowNetwork, max_flow_min_cut
from repro.graphs import generators
from repro.graphs.precoloring import (
    PrExtInstance,
    solve_prext,
    claw_no_instance,
    planted_yes_instance,
    random_prext_instance,
)
from repro.graphs.structure import (
    GraphStructure,
    analyze_structure,
    classify_conflict_graph,
    complete_bipartite_parts,
    complete_bipartite_parts_with_free,
    is_bipartite_structure,
    is_bisubquartic,
    is_block_structure,
    is_cubic,
    is_empty,
    is_forest,
    is_path,
    is_perfect_matching_graph,
    is_regular,
    multipartite_decomposition,
)

__all__ = [
    "ConflictGraph",
    "BipartiteGraph",
    "CompleteMultipartiteGraph",
    "BlockGraph",
    "biconnected_components",
    "connected_components",
    "component_subgraphs",
    "proper_two_coloring",
    "inequitable_two_coloring",
    "is_proper_coloring",
    "hopcroft_karp",
    "maximum_matching_size",
    "greedy_maximal_matching",
    "is_maximal_matching",
    "matching_size",
    "minimum_maximal_matching_size",
    "small_maximal_matching",
    "konig_vertex_cover",
    "min_weight_vertex_cover",
    "is_vertex_cover",
    "max_weight_independent_set",
    "max_weight_independent_set_containing",
    "independence_number",
    "FlowNetwork",
    "max_flow_min_cut",
    "generators",
    "PrExtInstance",
    "solve_prext",
    "claw_no_instance",
    "planted_yes_instance",
    "random_prext_instance",
    "GraphStructure",
    "analyze_structure",
    "classify_conflict_graph",
    "complete_bipartite_parts",
    "complete_bipartite_parts_with_free",
    "is_bipartite_structure",
    "is_bisubquartic",
    "is_block_structure",
    "is_cubic",
    "is_empty",
    "is_forest",
    "is_path",
    "is_perfect_matching_graph",
    "is_regular",
    "multipartite_decomposition",
]
