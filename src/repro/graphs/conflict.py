"""First-class conflict graphs: the abstraction every layer types against.

The paper studies ``Q|G = bipartite|Cmax``, but the wider literature the
repo tracks — Pikies & Turowski's complete multipartite incompatibility
graphs (arXiv:2010.13207) and Furmańczyk et al.'s block-type conflict
graphs (arXiv:2207.05868) — needs richer families.  This module defines
the :class:`ConflictGraph` base that scheduling instances, serialization,
batch specs, and the engine registry all consume, plus two non-bipartite
implementations:

* :class:`CompleteMultipartiteGraph` — vertices split into classes; any
  two vertices from *different* classes conflict (jobs inside a class are
  mutually compatible).  ``K_{a,b}`` is the two-class special case.
* :class:`BlockGraph` — a union of cliques in which every biconnected
  component (block) is itself a clique (a "clique forest").  Block graphs
  are chordal, so greedy coloring along a maximum-cardinality-search
  order is an optimal coloring — the structural fact
  :mod:`repro.scheduling.conflict_split` exploits.

:class:`~repro.graphs.bipartite.BipartiteGraph` subclasses
:class:`ConflictGraph`; all adjacency-generic algorithms in the repo
(:func:`~repro.graphs.components.connected_components`, the greedy and
brute-force schedulers, schedule validation, certification) work on any
implementation unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

from repro.exceptions import InvalidInstanceError

__all__ = [
    "ConflictGraph",
    "CompleteMultipartiteGraph",
    "BlockGraph",
    "biconnected_components",
]


class ConflictGraph(ABC):
    """An undirected conflict graph on vertices ``0..n-1``.

    Edges mean *incompatibility*: two adjacent jobs may never share a
    machine, i.e. every machine's job set must be an independent set.
    Implementations are immutable after construction.

    Subclasses must provide :attr:`n` and :meth:`neighbors`; everything
    else has an adjacency-generic default (override for speed where a
    representation allows it).  ``family`` names the representation class
    ("bipartite", "complete_multipartite", "block") and is what the
    serialization layer tags payloads with.
    """

    __slots__ = ()

    #: representation-family tag, overridden per subclass
    family: str = "general"

    # ------------------------------------------------------------------ #
    # required surface
    # ------------------------------------------------------------------ #

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of vertices."""

    @abstractmethod
    def neighbors(self, v: int) -> frozenset[int]:
        """Neighbour set of ``v``."""

    # ------------------------------------------------------------------ #
    # generic adjacency API
    # ------------------------------------------------------------------ #

    def conflicts(self, u: int, v: int) -> bool:
        """Whether jobs ``u`` and ``v`` may not share a machine."""
        return v in self.neighbors(u)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge (alias of :meth:`conflicts`)."""
        return self.conflicts(u, v)

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return len(self.neighbors(v))

    def max_degree(self) -> int:
        """Maximum degree (0 for the empty graph)."""
        return max((self.degree(v) for v in range(self.n)), default=0)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return sum(self.degree(v) for v in range(self.n)) // 2

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ordered pairs ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    def isolated_vertices(self) -> list[int]:
        """Vertices of degree zero (jobs compatible with everything)."""
        return [v for v in range(self.n) if not self.neighbors(v)]

    def parts(self) -> tuple[tuple[int, ...], ...] | None:
        """Known mutually-compatible vertex classes, or ``None``.

        For representations that carry class structure (bipartition
        sides, multipartite classes) this returns the classes as tuples
        of vertex ids; representations without inherent class metadata
        return ``None``.  Purely informational — algorithms that *need*
        class structure should recompute it structurally via
        :mod:`repro.graphs.structure`.
        """
        return None

    # ------------------------------------------------------------------ #
    # feasibility helpers shared by the scheduling layer
    # ------------------------------------------------------------------ #

    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        """Whether ``vertices`` induce no edge (the machine-feasibility test)."""
        vset = set(vertices)
        for v in vset:
            if self.neighbors(v) & vset:
                return False
        return True

    def closed_neighborhood(self, vertices: Iterable[int]) -> set[int]:
        """``N[S]``: the vertices of ``S`` together with all their neighbours."""
        out = set(vertices)
        for v in list(out):
            out |= self.neighbors(v)
        return out

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConflictGraph):
            return NotImplemented
        return self.n == other.n and all(
            self.neighbors(v) == other.neighbors(v) for v in range(self.n)
        )

    def __hash__(self) -> int:
        return hash((self.n, tuple(self.neighbors(v) for v in range(self.n))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, edges={self.edge_count})"


def _check_vertex_range(vertices: Iterable[int], n: int, what: str) -> tuple[int, ...]:
    out = tuple(int(v) for v in vertices)
    for v in out:
        if not 0 <= v < n:
            raise InvalidInstanceError(f"{what} vertex {v} out of range for n={n}")
    return out


class CompleteMultipartiteGraph(ConflictGraph):
    """A complete multipartite conflict graph.

    Parameters
    ----------
    n:
        Number of vertices.
    parts:
        Disjoint non-empty vertex classes.  Two vertices conflict iff
        they lie in *different* classes.  Vertices in no class are
        *free* (isolated — compatible with every job), matching the
        "free jobs" of the Pikies–Turowski model.

    With two classes and no free vertices this is exactly ``K_{a,b}``;
    with one class (or none) it is edgeless.
    """

    __slots__ = ("_n", "_parts", "_class", "_class_neighbors")

    family = "complete_multipartite"

    def __init__(self, n: int, parts: Sequence[Iterable[int]]) -> None:
        if n < 0:
            raise InvalidInstanceError(f"vertex count must be non-negative, got {n}")
        self._n = int(n)
        cls = [-1] * self._n
        norm: list[tuple[int, ...]] = []
        for k, raw in enumerate(parts):
            part = _check_vertex_range(raw, self._n, f"part {k}")
            if not part:
                raise InvalidInstanceError(f"part {k} is empty")
            if len(set(part)) != len(part):
                raise InvalidInstanceError(f"part {k} repeats a vertex")
            for v in part:
                if cls[v] != -1:
                    raise InvalidInstanceError(
                        f"vertex {v} appears in parts {cls[v]} and {k}"
                    )
                cls[v] = k
            norm.append(tuple(sorted(part)))
        self._parts = tuple(norm)
        self._class = tuple(cls)
        # neighbor set shared by every vertex of class k: all classified
        # vertices outside class k.  Built lazily on first adjacency query.
        self._class_neighbors: dict[int, frozenset[int]] = {}

    @classmethod
    def from_sizes(
        cls, sizes: Sequence[int], free: int = 0
    ) -> "CompleteMultipartiteGraph":
        """Build from class sizes: classes take consecutive vertex ranges.

        ``free`` extra isolated vertices are appended after the classes.
        """
        sizes_t = tuple(int(s) for s in sizes)
        if any(s < 1 for s in sizes_t):
            raise InvalidInstanceError("part sizes must be positive")
        if int(free) < 0:
            raise InvalidInstanceError("free vertex count must be non-negative")
        n = sum(sizes_t) + int(free)
        parts: list[range] = []
        start = 0
        for s in sizes_t:
            parts.append(range(start, start + s))
            start += s
        return cls(n, parts)

    @property
    def n(self) -> int:
        return self._n

    def parts(self) -> tuple[tuple[int, ...], ...]:
        """The vertex classes (free vertices belong to none)."""
        return self._parts

    def free_vertices(self) -> list[int]:
        """Vertices in no class (isolated, compatible with every job)."""
        return [v for v in range(self._n) if self._class[v] == -1]

    def neighbors(self, v: int) -> frozenset[int]:
        k = self._class[v]
        if k == -1:
            return frozenset()
        cached = self._class_neighbors.get(k)
        if cached is None:
            cached = frozenset(
                u
                for u in range(self._n)
                if self._class[u] != -1 and self._class[u] != k
            )
            self._class_neighbors[k] = cached
        return cached

    def conflicts(self, u: int, v: int) -> bool:
        cu, cv = self._class[u], self._class[v]
        return cu != -1 and cv != -1 and cu != cv and u != v

    def degree(self, v: int) -> int:
        k = self._class[v]
        if k == -1:
            return 0
        return len(self.neighbors(v))

    def relabeled(self, mapping: Sequence[int]) -> "CompleteMultipartiteGraph":
        """Apply the permutation ``mapping`` (``new_id = mapping[old_id]``)."""
        if sorted(mapping) != list(range(self._n)):
            raise InvalidInstanceError("mapping must be a permutation of the vertices")
        parts = [[mapping[v] for v in part] for part in self._parts]
        return CompleteMultipartiteGraph(self._n, parts)

    def induced_subgraph(
        self, vertices: Iterable[int]
    ) -> tuple["CompleteMultipartiteGraph", list[int]]:
        """Subgraph induced by ``vertices`` (still complete multipartite).

        Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is
        the vertex of ``self`` that became vertex ``i`` of the subgraph;
        classes are intersected with the kept set and empty ones dropped.
        """
        keep = sorted(set(vertices))
        index = {v: i for i, v in enumerate(keep)}
        parts = [
            trimmed
            for part in self._parts
            if (trimmed := [index[v] for v in part if v in index])
        ]
        return CompleteMultipartiteGraph(len(keep), parts), keep

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ",".join(str(len(p)) for p in self._parts)
        return f"CompleteMultipartiteGraph(n={self._n}, sizes=[{sizes}])"


def biconnected_components(graph: ConflictGraph) -> list[list[int]]:
    """Vertex sets of the biconnected components (blocks), sorted.

    Iterative Hopcroft–Tarjan with an explicit edge stack.  Bridges form
    two-vertex blocks; isolated vertices form singleton blocks (so every
    vertex appears in at least one block and cut vertices in several).
    Deterministic: blocks are returned sorted by their vertex lists.
    """
    n = graph.n
    visited = [False] * n
    depth = [0] * n
    low = [0] * n
    blocks: list[list[int]] = []
    edge_stack: list[tuple[int, int]] = []

    for root in range(n):
        if visited[root]:
            continue
        if not graph.neighbors(root):
            blocks.append([root])
            visited[root] = True
            continue
        # iterative DFS frame: (vertex, parent, iterator over neighbors)
        stack = [(root, -1, iter(sorted(graph.neighbors(root))))]
        visited[root] = True
        depth[root] = low[root] = 0
        while stack:
            u, parent, it = stack[-1]
            advanced = False
            for v in it:
                if not visited[v]:
                    edge_stack.append((u, v))
                    visited[v] = True
                    depth[v] = low[v] = depth[u] + 1
                    stack.append((v, u, iter(sorted(graph.neighbors(v)))))
                    advanced = True
                    break
                if v != parent and depth[v] < depth[u]:
                    edge_stack.append((u, v))
                    low[u] = min(low[u], depth[v])
            if advanced:
                continue
            stack.pop()
            if stack:
                p = stack[-1][0]
                low[p] = min(low[p], low[u])
                if low[u] >= depth[p]:
                    # p is a cut vertex (or the root): every edge pushed
                    # since the tree edge (p, u) belongs to one block
                    comp: set[int] = set()
                    while True:
                        a, b = edge_stack.pop()
                        comp.add(a)
                        comp.add(b)
                        if (a, b) == (p, u):
                            break
                    blocks.append(sorted(comp))
    blocks.sort()
    return blocks


class BlockGraph(ConflictGraph):
    """A block-type conflict graph: every biconnected component is a clique.

    Parameters
    ----------
    n:
        Number of vertices.
    blocks:
        Cliques, given as vertex lists.  The graph is the union of these
        cliques.  Construction *validates* the block property — if two
        declared cliques overlap in two or more vertices their union
        creates a biconnected component that is not complete, and the
        constructor raises :exc:`~repro.exceptions.InvalidInstanceError`.

    This is the "clique forest" family of Furmańczyk et al.
    (arXiv:2207.05868): trees are block graphs (every block an edge), as
    is any disjoint union of cliques.
    """

    __slots__ = ("_n", "_blocks", "_adj", "_edge_count")

    family = "block"

    def __init__(self, n: int, blocks: Sequence[Iterable[int]]) -> None:
        if n < 0:
            raise InvalidInstanceError(f"vertex count must be non-negative, got {n}")
        self._n = int(n)
        adj: list[set[int]] = [set() for _ in range(self._n)]
        norm: list[tuple[int, ...]] = []
        for k, raw in enumerate(blocks):
            clique = _check_vertex_range(raw, self._n, f"block {k}")
            if not clique:
                raise InvalidInstanceError(f"block {k} is empty")
            if len(set(clique)) != len(clique):
                raise InvalidInstanceError(f"block {k} repeats a vertex")
            cs = tuple(sorted(clique))
            for i, u in enumerate(cs):
                for v in cs[i + 1 :]:
                    adj[u].add(v)
                    adj[v].add(u)
            norm.append(cs)
        self._adj: tuple[frozenset[int], ...] = tuple(frozenset(s) for s in adj)
        self._edge_count = sum(len(s) for s in self._adj) // 2
        self._blocks = tuple(norm)
        # validate the block property structurally: every biconnected
        # component of the union must induce a clique
        for comp in biconnected_components(self):
            need = len(comp) - 1
            comp_set = set(comp)
            for v in comp:
                if len(self._adj[v] & comp_set) < need:
                    raise InvalidInstanceError(
                        "declared cliques overlap into a non-clique biconnected "
                        f"component {comp}; a block graph's blocks may share at "
                        "most one (cut) vertex"
                    )

    @classmethod
    def chain(cls, block_sizes: Sequence[int]) -> "BlockGraph":
        """Cliques chained at shared cut vertices (a "caterpillar of cliques").

        ``chain([3, 2, 4])`` builds ``K_3`` sharing its last vertex with a
        ``K_2`` sharing *its* last vertex with a ``K_4``.
        """
        sizes = tuple(int(s) for s in block_sizes)
        if any(s < 1 for s in sizes):
            raise InvalidInstanceError("block sizes must be positive")
        blocks: list[list[int]] = []
        nxt = 0
        last = None
        for s in sizes:
            verts = ([] if last is None else [last]) + list(
                range(nxt, nxt + (s if last is None else s - 1))
            )
            if len(verts) != s:  # s == 1 with a shared vertex collapses
                verts = list(range(nxt, nxt + s))
            nxt = max(verts) + 1
            blocks.append(verts)
            last = verts[-1]
        return cls(nxt, blocks)

    @property
    def n(self) -> int:
        return self._n

    def blocks(self) -> tuple[tuple[int, ...], ...]:
        """The declared cliques (normalised, in declaration order)."""
        return self._blocks

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def neighbors(self, v: int) -> frozenset[int]:
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def relabeled(self, mapping: Sequence[int]) -> "BlockGraph":
        """Apply the permutation ``mapping`` (``new_id = mapping[old_id]``)."""
        if sorted(mapping) != list(range(self._n)):
            raise InvalidInstanceError("mapping must be a permutation of the vertices")
        blocks = [[mapping[v] for v in blk] for blk in self._blocks]
        return BlockGraph(self._n, blocks)

    def induced_subgraph(
        self, vertices: Iterable[int]
    ) -> tuple["BlockGraph", list[int]]:
        """Subgraph induced by ``vertices`` (still a block graph).

        Returns ``(subgraph, original_ids)``.  Each declared clique is
        intersected with the kept set; two original blocks share at most
        one vertex, so the trimmed blocks do too and the block property
        is preserved by construction.
        """
        keep = sorted(set(vertices))
        index = {v: i for i, v in enumerate(keep)}
        blocks = [
            trimmed
            for blk in self._blocks
            if (trimmed := [index[v] for v in blk if v in index])
        ]
        return BlockGraph(len(keep), blocks), keep

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockGraph(n={self._n}, blocks={len(self._blocks)}, "
            f"edges={self._edge_count})"
        )
