"""Maximum(-weight) independent sets in bipartite graphs.

Step 2 of Algorithm 1 needs *"an independent set of the highest weight
containing all jobs of processing requirement at least sqrt(sum p_j)"*.
That decomposes into:

1. check that the heavy jobs themselves are independent (else no such set
   exists and Algorithm 1 falls back to the two-machine schedule ``S1``);
2. delete the closed neighbourhood of the heavy jobs;
3. take a maximum-weight independent set of the remainder (complement of a
   minimum-weight vertex cover) and union it with the heavy jobs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.matching import maximum_matching_size
from repro.graphs.vertex_cover import min_weight_vertex_cover

__all__ = [
    "max_weight_independent_set",
    "max_weight_independent_set_containing",
    "independence_number",
]


def max_weight_independent_set(
    graph: BipartiteGraph, weights: Sequence[int]
) -> set[int]:
    """Maximum-weight independent set (positive integer weights).

    Complement of a minimum-weight vertex cover (König–Egerváry); exact.
    """
    cover = min_weight_vertex_cover(graph, weights)
    return set(range(graph.n)) - cover


def max_weight_independent_set_containing(
    graph: BipartiteGraph,
    weights: Sequence[int],
    required: Iterable[int],
) -> set[int] | None:
    """Max-weight independent set containing all of ``required``, or ``None``.

    Returns ``None`` exactly when ``required`` is not itself independent
    (the paper's "if such a set exists" condition).  Otherwise the returned
    set has maximum total weight among independent sets including
    ``required``.
    """
    req = set(required)
    if not graph.is_independent_set(req):
        return None
    banned = graph.closed_neighborhood(req)
    free = [v for v in range(graph.n) if v not in banned]
    sub, original_ids = graph.induced_subgraph(free)
    sub_weights = [weights[v] for v in original_ids]
    inner = max_weight_independent_set(sub, sub_weights) if sub.n else set()
    return req | {original_ids[i] for i in inner}


def independence_number(graph: BipartiteGraph) -> int:
    """``alpha(G) = n - mu(G)`` for bipartite graphs (König/Gallai)."""
    return graph.n - maximum_matching_size(graph)
