"""Maximal matchings and the smallest-maximal-matching number ``beta``.

Theorem 17 (Zito [26]) lower-bounds ``beta(G(n,n,p))`` — the size of the
*smallest* maximal matching — and the paper's Corollary 18 turns it into
the matching-size guarantee behind Algorithm 2's analysis.  This module
provides the measurement side:

* :func:`greedy_maximal_matching` — any maximal matching (size between
  ``beta`` and ``mu``), in ``O(E)``;
* :func:`small_maximal_matching` — a min-degree-first heuristic that
  targets *small* maximal matchings, i.e. an upper-bound estimator for
  ``beta``;
* :func:`minimum_maximal_matching_size` — exact ``beta`` by
  branch-and-bound (minimum maximal matching is NP-hard; use only on
  small graphs — it is the test oracle).

Every maximal matching is a valid certificate: its size is sandwiched by
``beta <= |M| <= mu``, so the heuristic and Zito's bound bracket the true
value from both sides in the experiment tables.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.bipartite import BipartiteGraph

__all__ = [
    "is_maximal_matching",
    "greedy_maximal_matching",
    "small_maximal_matching",
    "matching_size",
    "minimum_maximal_matching_size",
]


def is_maximal_matching(graph: BipartiteGraph, mate: Sequence[int]) -> bool:
    """Whether ``mate`` encodes a matching no edge can extend.

    ``mate[v]`` is ``v``'s partner or ``-1``; symmetry is required.
    """
    n = graph.n
    if len(mate) != n:
        return False
    for v in range(n):
        w = mate[v]
        if w != -1 and (not 0 <= w < n or mate[w] != v or not graph.has_edge(v, w)):
            return False
    for u, v in graph.edges():
        if mate[u] == -1 and mate[v] == -1:
            return False  # extendable: not maximal
    return True


def greedy_maximal_matching(
    graph: BipartiteGraph, order: Sequence[tuple[int, int]] | None = None
) -> list[int]:
    """A maximal matching built by scanning edges in ``order``.

    The default order is the canonical edge iteration; any order yields a
    maximal (not necessarily maximum or minimum) matching.
    """
    mate = [-1] * graph.n
    edges = graph.edges() if order is None else order
    for u, v in edges:
        if mate[u] == -1 and mate[v] == -1:
            mate[u] = v
            mate[v] = u
    return mate


def small_maximal_matching(graph: BipartiteGraph) -> list[int]:
    """Heuristically small maximal matching (upper bound on ``beta``).

    Greedy max-coverage: repeatedly match the edge whose endpoints have
    the largest combined *alive* degree (degree among uncovered
    vertices).  Each matched edge then dominates as many still-open
    edges as possible, so few edges are needed before every edge has a
    covered endpoint — the quantity ``beta`` measures.  (The opposite
    order — saturating low-degree vertices first — tends to produce
    near-*maximum* matchings instead.)
    """
    n = graph.n
    mate = [-1] * n
    alive_deg = [graph.degree(v) for v in range(n)]
    covered = [False] * n

    def cover(v: int) -> None:
        covered[v] = True
        for w in graph.neighbors(v):
            alive_deg[w] -= 1

    open_edges = set(graph.edges())
    while open_edges:
        u, v = max(
            open_edges,
            key=lambda e: (alive_deg[e[0]] + alive_deg[e[1]], -e[0], -e[1]),
        )
        mate[u], mate[v] = v, u
        cover(u)
        cover(v)
        open_edges = {
            (a, b) for a, b in open_edges if not covered[a] and not covered[b]
        }
    return mate


def matching_size(mate: Sequence[int]) -> int:
    """Number of edges in a mate-encoded matching."""
    return sum(1 for v, w in enumerate(mate) if w > v)


def minimum_maximal_matching_size(graph: BipartiteGraph) -> int:
    """Exact ``beta(G)`` by branch-and-bound (small graphs only).

    Branches on the lowest-indexed vertex that still has an uncovered
    neighbour: either one of its incident edges joins the matching, or
    the vertex stays exposed — in which case *all* its alive neighbours
    must eventually be covered by other edges (enforced lazily by
    maximality checking at the leaves).
    """
    edges = list(graph.edges())
    n = graph.n
    # seed the incumbent with the better of the two heuristics
    best = [
        min(
            matching_size(greedy_maximal_matching(graph)),
            matching_size(small_maximal_matching(graph)),
        )
    ]
    covered = [False] * n

    def alive_edges() -> list[tuple[int, int]]:
        return [(u, v) for u, v in edges if not covered[u] and not covered[v]]

    def recurse(size: int) -> None:
        if size >= best[0]:
            return  # cannot improve
        alive = alive_edges()
        if not alive:
            best[0] = min(best[0], size)
            return
        # lower bound: each chosen edge covers <= 2 endpoints, and alive
        # edges form a graph needing >= ceil(matching of alive)/... keep
        # it simple: at least one more edge is required
        u, v = alive[0]
        # every maximal matching must cover u or v; branch on the edges
        # incident to u, then on covering u "from the other side"
        for w in sorted(graph.neighbors(u)):
            if covered[w]:
                continue
            covered[u] = covered[w] = True
            recurse(size + 1)
            covered[u] = covered[w] = False
        # u stays exposed: every alive neighbour of u must be matched
        # using one of *its* other edges; branch on covering v via v's
        # incident edges excluding u
        for w in sorted(graph.neighbors(v)):
            if covered[w] or w == u:
                continue
            covered[v] = covered[w] = True
            recurse(size + 1)
            covered[v] = covered[w] = False

    recurse(0)
    return best[0]
