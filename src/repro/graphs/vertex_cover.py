"""Minimum vertex covers in bipartite graphs.

Two constructions:

* :func:`konig_vertex_cover` — the cardinality version from a maximum
  matching (König's theorem), used to compute independence numbers for the
  random-graph experiments of Section 4.1.
* :func:`min_weight_vertex_cover` — the weighted version via a minimum
  s-t cut (König–Egerváry), the engine behind the maximum-*weight*
  independent set that step 2 of Algorithm 1 requires.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.flow import FlowNetwork, INF
from repro.graphs.matching import hopcroft_karp

__all__ = ["konig_vertex_cover", "min_weight_vertex_cover", "is_vertex_cover"]


def konig_vertex_cover(graph: BipartiteGraph) -> set[int]:
    """A minimum-cardinality vertex cover (König construction).

    Starting from the exposed left vertices of a maximum matching, walk
    alternating paths (unmatched edge left->right, matched edge
    right->left); with ``Z`` the set of visited vertices the cover is
    ``(L \\ Z) | (R & Z)`` and its size equals the matching size.
    """
    mate = hopcroft_karp(graph)
    left = graph.vertices_on_side(0)
    in_z = [False] * graph.n
    stack = [u for u in left if mate[u] == -1]
    for u in stack:
        in_z[u] = True
    while stack:
        u = stack.pop()
        if graph.side[u] == 0:  # move along non-matching edges
            for v in graph.neighbors(u):
                if v != mate[u] and not in_z[v]:
                    in_z[v] = True
                    stack.append(v)
        else:  # move along the matching edge
            w = mate[u]
            if w != -1 and not in_z[w]:
                in_z[w] = True
                stack.append(w)
    cover = {u for u in range(graph.n) if graph.side[u] == 0 and not in_z[u]}
    cover |= {u for u in range(graph.n) if graph.side[u] == 1 and in_z[u]}
    return cover


def min_weight_vertex_cover(
    graph: BipartiteGraph, weights: Sequence[int]
) -> set[int]:
    """A minimum-weight vertex cover for positive integer weights.

    Network: ``source -> l`` with capacity ``w(l)`` for left vertices,
    ``r -> sink`` with capacity ``w(r)`` for right vertices, and capacity
    ``INF`` across each edge.  A minimum cut can only sever weight arcs;
    the severed arcs identify the cover.
    """
    if len(weights) != graph.n:
        raise ValueError(f"weights has length {len(weights)}, expected {graph.n}")
    if any(w <= 0 for w in weights):
        raise ValueError("vertex weights must be positive")
    if graph.n == 0:
        return set()
    s, t = graph.n, graph.n + 1
    net = FlowNetwork(graph.n + 2)
    for v in range(graph.n):
        if graph.side[v] == 0:
            net.add_edge(s, v, weights[v])
        else:
            net.add_edge(v, t, weights[v])
    for u, v in graph.edges():
        l, r = (u, v) if graph.side[u] == 0 else (v, u)
        net.add_edge(l, r, INF)
    net.max_flow(s, t)
    source_side = net.min_cut_source_side(s)
    cover = {
        v
        for v in range(graph.n)
        if (graph.side[v] == 0 and v not in source_side)
        or (graph.side[v] == 1 and v in source_side)
    }
    return cover


def is_vertex_cover(graph: BipartiteGraph, cover: Iterable[int]) -> bool:
    """Whether every edge has at least one endpoint in ``cover``."""
    cset = set(cover)
    return all(u in cset or v in cset for u, v in graph.edges())
