"""Maximum matching in bipartite graphs (Hopcroft–Karp).

Matching size ``mu(G)`` drives the random-graph analysis of Section 4.1:
by König's theorem ``alpha(G) = n - mu(G)`` for bipartite ``G`` on ``n``
vertices, which Lemma 14 and Theorem 19 use to lower-bound the work that
must leave machine ``M_1``.

Runs in ``O(E sqrt(V))``.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.bipartite import BipartiteGraph

__all__ = ["hopcroft_karp", "maximum_matching_size", "is_matching"]

_INF = float("inf")


def hopcroft_karp(graph: BipartiteGraph) -> list[int]:
    """Maximum matching as a mate array.

    Returns ``mate`` with ``mate[v]`` the partner of ``v`` or ``-1`` when
    ``v`` is exposed.  The declared bipartition witness provides the two
    sides; left = side 0.
    """
    left = graph.vertices_on_side(0)
    mate = [-1] * graph.n
    dist: dict[int, float] = {}

    def bfs() -> bool:
        q = deque()
        for u in left:
            if mate[u] == -1:
                dist[u] = 0
                q.append(u)
            else:
                dist[u] = _INF
        found = False
        while q:
            u = q.popleft()
            for v in graph.neighbors(u):
                w = mate[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    q.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in graph.neighbors(u):
            w = mate[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                mate[u] = v
                mate[v] = u
                return True
        dist[u] = _INF
        return False

    import sys

    # Augmenting-path DFS recursion depth is bounded by the phase count of
    # Hopcroft-Karp (O(sqrt(V))) times constant, but allow for deep paths on
    # path-like graphs.
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, graph.n * 2 + 100))
    try:
        while bfs():
            for u in left:
                if mate[u] == -1:
                    dfs(u)
    finally:
        sys.setrecursionlimit(old_limit)
    return mate


def maximum_matching_size(graph: BipartiteGraph) -> int:
    """``mu(G)``: the number of edges in a maximum matching."""
    mate = hopcroft_karp(graph)
    return sum(1 for v in range(graph.n) if mate[v] != -1) // 2


def is_matching(graph: BipartiteGraph, mate: list[int]) -> bool:
    """Validate a mate array: symmetric, uses only real edges."""
    if len(mate) != graph.n:
        return False
    for v in range(graph.n):
        w = mate[v]
        if w == -1:
            continue
        if not (0 <= w < graph.n) or mate[w] != v or not graph.has_edge(v, w):
            return False
    return True
