"""Maximum matching in bipartite graphs (Hopcroft–Karp).

Matching size ``mu(G)`` drives the random-graph analysis of Section 4.1:
by König's theorem ``alpha(G) = n - mu(G)`` for bipartite ``G`` on ``n``
vertices, which Lemma 14 and Theorem 19 use to lower-bound the work that
must leave machine ``M_1``.

Runs in ``O(E sqrt(V))``.  Optimized (vs the preserved reference
:func:`repro.perf.baselines.hopcroft_karp_baseline`, measured by
``repro perf --target hopcroft_karp``):

* **adjacency reuse** — each left vertex's neighbourhood is materialised
  once per call as a plain list, so every BFS/DFS phase walks lists
  instead of re-fetching frozensets (int-set iteration order is stable
  for a fixed graph, so the mate array stays deterministic);
* **greedy seeding** — a maximal matching is built during the adjacency
  pass, so the phase loop only has to augment the (typically small)
  remainder instead of growing the matching from empty;
* **iterative DFS** — the augmenting search keeps an explicit
  path/iterator stack in plain locals: no recursion, no recursion-limit
  juggling, no per-frame Python call overhead.
"""

from __future__ import annotations

from collections import deque

from repro import fastpath
from repro.graphs.bipartite import BipartiteGraph

__all__ = ["hopcroft_karp", "maximum_matching_size", "is_matching"]

_INF = float("inf")


def hopcroft_karp(graph: BipartiteGraph) -> list[int]:
    """Maximum matching as a mate array.

    Returns ``mate`` with ``mate[v]`` the partner of ``v`` or ``-1`` when
    ``v`` is exposed.  The declared bipartition witness provides the two
    sides; left = side 0.

    Routed through :mod:`repro.fastpath` (integer/numpy kernels,
    differentially tested byte-identical) unless ``REPRO_FASTPATH=0``,
    in which case the rational-era reference below runs.
    """
    if fastpath.enabled():
        return fastpath.hopcroft_karp_fast(graph)
    n = graph.n
    left = graph.vertices_on_side(0)
    adj: list[list[int]] = [[] for _ in range(n)]
    mate = [-1] * n
    # one pass builds the reusable adjacency AND seeds a maximal matching
    for u in left:
        nbrs = list(graph.neighbors(u))
        adj[u] = nbrs
        for v in nbrs:
            if mate[v] == -1:
                mate[u] = v
                mate[v] = u
                break
    dist: list[float] = [_INF] * n

    # per-root DFS state, reused across the whole call (cleared on use)
    path_u: list[int] = []
    path_v: list[int] = []
    iters: list = []
    while True:
        # BFS phase: level the alternating-path graph from free lefts
        q: deque[int] = deque()
        for u in left:
            if mate[u] == -1:
                dist[u] = 0
                q.append(u)
            else:
                dist[u] = _INF
        found = False
        while q:
            u = q.popleft()
            du1 = dist[u] + 1
            for v in adj[u]:
                w = mate[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = du1
                    q.append(w)
        if not found:
            return mate
        # DFS phase: vertex-disjoint augmenting paths along the levels
        for root in left:
            if mate[root] != -1:
                continue
            path_u.append(root)
            iters.append(iter(adj[root]))
            while path_u:
                u = path_u[-1]
                du1 = dist[u] + 1
                for v in iters[-1]:
                    w = mate[v]
                    if w == -1:
                        # free right vertex: flip the augmenting path
                        path_v.append(v)
                        for k in range(len(path_u)):
                            pu = path_u[k]
                            pv = path_v[k]
                            mate[pu] = pv
                            mate[pv] = pu
                        path_u.clear()
                        path_v.clear()
                        iters.clear()
                        break
                    if dist[w] == du1:
                        # descend; resuming this level later continues
                        # exactly where the saved iterator left off
                        path_v.append(v)
                        path_u.append(w)
                        iters.append(iter(adj[w]))
                        break
                else:
                    # exhausted: u is off any augmenting path this phase
                    dist[u] = _INF
                    path_u.pop()
                    iters.pop()
                    if path_v:
                        path_v.pop()


def maximum_matching_size(graph: BipartiteGraph) -> int:
    """``mu(G)``: the number of edges in a maximum matching."""
    mate = hopcroft_karp(graph)
    return sum(1 for v in range(graph.n) if mate[v] != -1) // 2


def is_matching(graph: BipartiteGraph, mate: list[int]) -> bool:
    """Validate a mate array: symmetric, uses only real edges."""
    if len(mate) != graph.n:
        return False
    for v in range(graph.n):
        w = mate[v]
        if w == -1:
            continue
        if not (0 <= w < graph.n) or mate[w] != v or not graph.has_edge(v, w):
            return False
    return True
