"""Proper and inequitable 2-colorings (paper Definition 1).

An *inequitable 2-coloring* ``(V'_1, V'_2)`` is a proper 2-coloring whose
first class has maximum cardinality (maximum total weight in the weighted
case).  It is computed in ``O(|V| + |E|)`` by 2-coloring each connected
component and putting the heavier side of every component into class 1 —
orientation choices of distinct components are independent, so the greedy
per-component choice is globally optimal.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import connected_components

__all__ = [
    "proper_two_coloring",
    "inequitable_two_coloring",
    "is_proper_coloring",
]


def proper_two_coloring(graph: BipartiteGraph) -> tuple[int, ...]:
    """A canonical proper 2-coloring (0/1 per vertex).

    Within each component, the smallest-index vertex receives color 0; the
    result therefore depends only on the graph, not on the declared
    bipartition witness.
    """
    color = [-1] * graph.n
    for comp in connected_components(graph):
        root = comp[0]
        color[root] = 0
        stack = [root]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if color[v] == -1:
                    color[v] = 1 - color[u]
                    stack.append(v)
    return tuple(color)


def inequitable_two_coloring(
    graph: BipartiteGraph,
    weights: Sequence[int] | None = None,
) -> tuple[list[int], list[int]]:
    """Inequitable 2-coloring ``(V'_1, V'_2)`` of Definition 1.

    Parameters
    ----------
    graph:
        The bipartite (incompatibility) graph.
    weights:
        Optional positive vertex weights (job processing requirements in
        Algorithm 1).  ``None`` means unit weights, i.e. maximise
        cardinality of ``V'_1``.

    Returns
    -------
    ``(V'_1, V'_2)`` as sorted vertex lists; ``V'_1`` has total weight at
    least that of ``V'_2`` and both classes are independent sets.
    Ties within a component break toward placing the side containing the
    component's smallest vertex into class 1, making output deterministic.
    """
    if weights is not None and len(weights) != graph.n:
        raise ValueError(
            f"weights has length {len(weights)}, expected {graph.n}"
        )
    base = proper_two_coloring(graph)
    class1: list[int] = []
    class2: list[int] = []
    for comp in connected_components(graph):
        side_a = [v for v in comp if base[v] == 0]  # contains comp[0]
        side_b = [v for v in comp if base[v] == 1]
        if weights is None:
            wa, wb = len(side_a), len(side_b)
        else:
            wa = sum(weights[v] for v in side_a)
            wb = sum(weights[v] for v in side_b)
        if wa >= wb:
            class1.extend(side_a)
            class2.extend(side_b)
        else:
            class1.extend(side_b)
            class2.extend(side_a)
    class1.sort()
    class2.sort()
    return class1, class2


def is_proper_coloring(graph: BipartiteGraph, colors: Sequence[int]) -> bool:
    """Whether ``colors`` assigns distinct values across every edge."""
    if len(colors) != graph.n:
        return False
    return all(colors[u] != colors[v] for u, v in graph.edges())
