"""RS003 — the serving tier's event loop must never block."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.model import FileContext, Finding
from repro.staticcheck.rules.base import Rule

__all__ = ["AsyncSafetyRule"]

#: method names that are blocking I/O on the objects this codebase uses
#: them on (sockets, pathlib paths) — never acceptable on the event loop
_BLOCKING_METHODS = frozenset(
    {
        "accept",
        "connect",
        "recv",
        "recvfrom",
        "sendall",
        "makefile",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
    }
)

#: blocking ``subprocess`` entry points
_SUBPROCESS_CALLS = frozenset({"run", "call", "check_call", "check_output"})


class AsyncSafetyRule(Rule):
    """No blocking calls inside ``async def`` bodies.

    The asyncio serving tier's whole design (PR 6) is that the event
    loop only parses, hashes, and routes — solves run off-loop on an
    executor or worker pool.  One ``time.sleep`` or blocking
    socket/file call inside a coroutine stalls *every* connection
    multiplexed on the loop.  Flags ``time.sleep``, ``open(...)``,
    blocking socket/pathlib methods, ``subprocess`` calls, and
    synchronous ``BatchRunner.run(...)`` fan-out (recognised as a
    ``.run(...)`` call on a receiver whose name mentions ``runner``)
    inside any ``async def``.  Function bodies of *sync* ``def``s
    nested in a coroutine are exempt — they are the callbacks and
    worker entry points that deliberately run off-loop.
    """

    rule_id = "RS003"
    title = "async-safety"
    rationale = (
        "the asyncio tier multiplexes every connection on one event "
        "loop; a blocking call in a coroutine stalls all of them"
    )
    anchor = "PR 6 (repro.engine.aserve / service)"
    fix_hint = (
        "await asyncio.sleep(...) instead of time.sleep; run blocking "
        "work through loop.run_in_executor or BatchRunner's "
        "apply_async bridge (see aserve._dispatch)"
    )
    scope = ()  # async defs may appear anywhere as the serving tier grows

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        time_sleep_aliases = _collect_time_sleep_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node, time_sleep_aliases)

    def _check_coroutine(
        self,
        ctx: FileContext,
        coro: ast.AsyncFunctionDef,
        sleep_aliases: frozenset[str],
    ) -> Iterator[Finding]:
        for node in _walk_coroutine_body(coro):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "open":
                    yield self.finding(
                        ctx,
                        node,
                        "open(...) is blocking file I/O on the event loop; "
                        "hand it to loop.run_in_executor",
                    )
                elif func.id in sleep_aliases:
                    yield self.finding(
                        ctx,
                        node,
                        "time.sleep blocks the event loop; await "
                        "asyncio.sleep(...) instead",
                    )
            elif isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name) and base.id == "time":
                    if func.attr == "sleep":
                        yield self.finding(
                            ctx,
                            node,
                            "time.sleep blocks the event loop; await "
                            "asyncio.sleep(...) instead",
                        )
                elif isinstance(base, ast.Name) and base.id == "subprocess":
                    if func.attr in _SUBPROCESS_CALLS or func.attr == "Popen":
                        yield self.finding(
                            ctx,
                            node,
                            f"subprocess.{func.attr} blocks the event loop; "
                            "use asyncio.create_subprocess_exec",
                        )
                elif func.attr in _BLOCKING_METHODS:
                    yield self.finding(
                        ctx,
                        node,
                        f".{func.attr}(...) is blocking I/O on the event "
                        "loop; use the asyncio stream/executor equivalent",
                    )
                elif func.attr == "run" and "runner" in ast.unparse(base).lower():
                    yield self.finding(
                        ctx,
                        node,
                        "BatchRunner.run(...) is the synchronous fan-out "
                        "loop; bridge the pool with apply_async callbacks "
                        "instead (aserve._dispatch)",
                    )


def _collect_time_sleep_aliases(tree: ast.Module) -> frozenset[str]:
    """Names that ``from time import sleep [as x]`` binds in this module."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    aliases.add(alias.asname or alias.name)
    return frozenset(aliases)


def _walk_coroutine_body(coro: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a coroutine's body, skipping nested *sync* function bodies.

    Nested ``async def``s are walked (they run on the same loop); nested
    plain ``def``s are not — in this codebase they are executor targets
    and ``call_soon_threadsafe`` callbacks that run off-loop by design.
    """
    stack: list[ast.AST] = list(coro.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.FunctionDef):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
