"""RS005 — optional heavy backends import behind ``try/except ImportError``."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.model import FileContext, Finding
from repro.staticcheck.rules.base import Rule

__all__ = ["ImportGuardsRule", "OPTIONAL_HEAVY_DEPS"]

#: top-level packages that are *optional* backends: the core package
#: must import and run without them (``numpy`` is the one hard dep and
#: is exempt).  ``ortools``/``pulp`` back the ROADMAP's CP/ILP engine
#: plugin; ``cython``/``mypyc`` back the planned compiled kernels.
OPTIONAL_HEAVY_DEPS = frozenset({"ortools", "pulp", "cython", "mypyc"})


def _catches_import_error(handler: ast.ExceptHandler) -> bool:
    """Whether one ``except`` clause catches ImportError (or a subclass)."""
    t = handler.type
    if t is None:
        return True  # bare except catches everything, ImportError included
    names: list[ast.expr] = list(t.elts) if isinstance(t, ast.Tuple) else [t]
    for name in names:
        ident = name.id if isinstance(name, ast.Name) else (
            name.attr if isinstance(name, ast.Attribute) else None
        )
        if ident in ("ImportError", "ModuleNotFoundError", "Exception"):
            return True
    return False


class ImportGuardsRule(Rule):
    """Heavy optional dependencies never break a bare install.

    The ROADMAP's CP/ILP backend (OR-Tools CP-SAT / PuLP, cf. the
    ``UnrelatedParallelMachines`` snippet) and the planned
    Cython/mypyc kernels are *optional*: the core must import, solve,
    and certify on a machine that has only numpy.  Every import of one
    of these packages must therefore sit inside ``try/except
    ImportError`` (setting a capability flag such as ``HAS_ORTOOLS``),
    so absence degrades to an unregistered backend instead of an
    ``ImportError`` at package import time.
    """

    rule_id = "RS005"
    title = "import-guards"
    rationale = (
        "optional backends (ortools, pulp, cython kernels) must degrade "
        "to 'not registered' when absent; an unguarded import breaks "
        "every bare install at import time"
    )
    anchor = "ROADMAP (CP/ILP backend item) / SNIPPETS.md CP-SAT model"
    fix_hint = (
        "wrap the import: `try: import ortools...` / "
        "`except ImportError: HAS_ORTOOLS = False` and gate the "
        "backend's register_algorithm on the flag"
    )
    scope = ()  # a backend module can live anywhere under repro/

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree, guarded=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, guarded: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Try):
                inner = guarded or any(
                    _catches_import_error(h) for h in child.handlers
                )
                for stmt in child.body:
                    yield from self._walk_stmt(ctx, stmt, inner)
                for other in (
                    *child.handlers,
                    *child.orelse,
                    *child.finalbody,
                ):
                    yield from self._walk(ctx, other, guarded)
            else:
                yield from self._walk_stmt(ctx, child, guarded)

    def _walk_stmt(
        self, ctx: FileContext, stmt: ast.AST, guarded: bool
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield from self._check_import(ctx, stmt, guarded)
        else:
            yield from self._walk(ctx, stmt, guarded)

    def _check_import(
        self,
        ctx: FileContext,
        node: ast.Import | ast.ImportFrom,
        guarded: bool,
    ) -> Iterator[Finding]:
        if guarded:
            return
        if isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0].lower()
            heavy = [top] if top in OPTIONAL_HEAVY_DEPS else []
        else:
            heavy = [
                alias.name.split(".")[0].lower()
                for alias in node.names
                if alias.name.split(".")[0].lower() in OPTIONAL_HEAVY_DEPS
            ]
        for name in heavy:
            yield self.finding(
                ctx,
                node,
                f"optional heavy dependency {name!r} imported without a "
                "try/except ImportError guard and capability flag (numpy "
                "is the only hard dependency)",
            )
