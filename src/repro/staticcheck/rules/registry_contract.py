"""RS002 — honest ``Capability`` declarations in the algorithm registry."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.model import FileContext, Finding
from repro.staticcheck.rules.base import Rule

__all__ = ["RegistryContractRule"]


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class RegistryContractRule(Rule):
    """Every registered algorithm declares a structured capability.

    The engine's dispatch, explain mode, portfolio racing, and the
    certification auditor all reason from
    :class:`~repro.engine.registry.Capability` — a spec registered
    without one falls back to an opaque predicate the dispatcher can
    neither rank nor explain, and the auditor cannot tell *why* it
    applies.  The rule also keeps the ``auto`` policy a total order:
    ``auto_rank`` values must be integer literals (statically
    comparable) and unique within a file, so "lowest rank wins" never
    ties arbitrarily.
    """

    rule_id = "RS002"
    title = "registry-contract"
    rationale = (
        "dispatch, explain mode, the portfolio, and the auditor all "
        "reason from structured Capability declarations; opaque or "
        "ambiguous registrations break ranked auto selection"
    )
    anchor = "PR 5 (repro.engine registry/dispatch)"
    fix_hint = (
        "pass capability=Capability(machine_kind=..., graph=..., ...) to "
        "every AlgorithmSpec, and give each auto-ranked spec a unique "
        "integer auto_rank literal"
    )
    scope = ()  # AlgorithmSpec construction can happen anywhere (plugins)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        seen_ranks: dict[int, int] = {}  # rank value -> first line
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node.func) != "AlgorithmSpec":
                continue
            keywords = {
                kw.arg: kw.value for kw in node.keywords if kw.arg is not None
            }
            has_spread = any(kw.arg is None for kw in node.keywords)
            capability = keywords.get("capability")
            if capability is None and not has_spread:
                yield self.finding(
                    ctx,
                    node,
                    "AlgorithmSpec registered without capability=...; the "
                    "dispatcher cannot rank or explain an opaque spec",
                )
            elif isinstance(capability, ast.Constant) and capability.value is None:
                yield self.finding(
                    ctx,
                    node,
                    "capability=None is an opaque registration; declare a "
                    "structured Capability(...)",
                )
            rank = keywords.get("auto_rank")
            if rank is None:
                continue
            if isinstance(rank, ast.Constant) and rank.value is None:
                continue
            if not (isinstance(rank, ast.Constant) and isinstance(rank.value, int)):
                yield self.finding(
                    ctx,
                    rank,
                    "auto_rank must be an integer literal (or None) so the "
                    "auto policy's ordering is statically total",
                )
                continue
            first = seen_ranks.get(rank.value)
            if first is not None:
                yield self.finding(
                    ctx,
                    rank,
                    f"duplicate auto_rank {rank.value} (first used on line "
                    f"{first}); ranked dispatch needs unique ranks to stay "
                    "a total order",
                )
            else:
                seen_ranks[rank.value] = rank.lineno
